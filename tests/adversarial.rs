//! Adversarial integration tests: attacks cut across layers, so their
//! tests should too. Every scenario here is an attack the paper's
//! architecture is supposed to stop; each test asserts the exact refusal.

use gridsec_authz::gridmap::GridMapFile;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::{GramError, JobDescription, Requestor};
use gridsec_gsi::sso;
use gridsec_integration::{basic_world, dn};
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::{validate_chain, validate_chain_with_crls};
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::SimOs;
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;

/// Replaying a captured signed job request after its timestamp expires
/// must fail, even though the signature itself is still valid.
#[test]
fn replayed_signed_request_rejected_after_expiry() {
    let mut w = basic_world(b"adv replay");
    let env = Envelope::request("createManagedJob", Element::new("j").with_text("/bin/x"));
    let signed = xmlsig::sign_envelope(&env, &w.user, 100, 60);
    let parsed = Envelope::parse(&signed.to_xml()).unwrap();
    // Within the window: fine.
    assert!(xmlsig::verify_envelope(&parsed, &w.trust, &CrlStore::new(), 150).is_ok());
    // Replay later: stale.
    assert!(matches!(
        xmlsig::verify_envelope(&parsed, &w.trust, &CrlStore::new(), 200).unwrap_err(),
        gridsec_wsse::WsseError::Stale { .. }
    ));
    let _ = &mut w;
}

/// An attacker who captures a user's *proxy certificate* (but not its
/// private key) cannot construct a working credential.
#[test]
fn stolen_proxy_cert_without_key_is_useless() {
    let mut w = basic_world(b"adv stolen proxy");
    let session =
        sso::grid_proxy_init(&mut w.rng, &w.user, sso::ProxyOptions::default(), 0).unwrap();
    // The attacker has the chain (public) and their own key.
    let attacker_key = gridsec_crypto::rsa::RsaKeyPair::generate(&mut w.rng, 512);
    // Assembling a Credential with a mismatched key is rejected outright.
    let result = std::panic::catch_unwind(|| {
        gridsec_pki::credential::Credential::new(
            session.credential().chain().to_vec(),
            attacker_key,
        )
    });
    assert!(result.is_err());
}

/// A user cannot escalate: signing a proxy that claims a *different*
/// base identity fails validation at the name-chaining check.
#[test]
fn identity_grafting_rejected() {
    let mut w = basic_world(b"adv grafting");
    let eve =
        w.ca.issue_identity(&mut w.rng, dn("/O=G/CN=Eve"), 512, 0, 1_000_000);
    // Eve issues a proxy... then doctors its subject to extend User's DN.
    let proxy = issue_proxy(&mut w.rng, &eve, ProxyType::Impersonation, 512, 10, 1000).unwrap();
    let mut chain = proxy.chain().to_vec();
    chain[0].tbs.subject = dn("/O=G/CN=User").with_extra_cn("1337");
    let err = validate_chain(&chain, &w.trust, 100).unwrap_err();
    assert!(matches!(
        err,
        gridsec_pki::PkiError::BadSignature | gridsec_pki::PkiError::InvalidProxy(_)
    ));
}

/// Revoking a user's EEC kills every live proxy derived from it, across
/// the whole stack (chain validation and message verification).
#[test]
fn revocation_cascades_to_all_derived_credentials() {
    let mut w = basic_world(b"adv revocation");
    let session =
        sso::grid_proxy_init(&mut w.rng, &w.user, sso::ProxyOptions::default(), 0).unwrap();
    let deep = issue_proxy(
        &mut w.rng,
        session.credential(),
        ProxyType::Impersonation,
        512,
        10,
        10_000,
    )
    .unwrap();

    let serial = w.user.certificate().tbs.serial;
    let crl = w.ca.issue_crl(vec![serial], 50, 1_000_000);
    let mut crls = CrlStore::new();
    assert!(crls.add(crl, w.ca.certificate()));

    // Chain validation fails for both proxy levels.
    assert!(validate_chain_with_crls(session.credential().chain(), &w.trust, &crls, 100).is_err());
    assert!(validate_chain_with_crls(deep.chain(), &w.trust, &crls, 100).is_err());

    // Signed messages from the revoked identity are rejected too.
    let env = Envelope::request("op", Element::new("x"));
    let signed = xmlsig::sign_envelope(&env, &deep, 100, 300);
    assert!(xmlsig::verify_envelope(
        &Envelope::parse(&signed.to_xml()).unwrap(),
        &w.trust,
        &crls,
        150
    )
    .is_err());
}

/// Confused-deputy at GRAM: Eve, who IS a mapped user, submits a job and
/// then tries to hijack Jane's MJS in step 7. The MJS's owner check and
/// Jane's GRIM check both refuse.
#[test]
fn mjs_hijack_by_other_mapped_user_fails() {
    let mut rng = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"adv hijack");
    let clock = SimClock::starting_at(100);
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 1_000_000);
    let eve = ca.issue_identity(&mut rng, dn("/O=G/CN=Eve"), 512, 0, 1_000_000);
    let host = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host h1"),
        vec!["h1".to_string()],
        512,
        0,
        1_000_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n\"/O=G/CN=Eve\" eve\n").unwrap();
    let mut resource = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "h1",
        trust.clone(),
        host,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();

    // Jane submits (steps 1-6 only; she has not connected yet).
    let mut jane_req = Requestor::new(jane, trust.clone(), b"jane");
    let signed = jane_req.signed_request(&JobDescription::new("/bin/x"), clock.now());
    let outcome = resource.submit(&signed).unwrap();

    // Eve races to connect to Jane's MJS.
    let mut eve_req = Requestor::new(eve, trust.clone(), b"eve");
    let err = eve_req
        .connect_and_start(&mut resource, &outcome.mjs_handle, None, clock.now())
        .unwrap_err();
    // Eve fails her own GRIM check (the credential embeds Jane's
    // identity) — the client-side refusal the paper describes.
    assert!(matches!(err, GramError::GrimRejected(_)), "got {err:?}");

    // Even if Eve skipped her client-side check, the MJS owner check
    // refuses to start the job for her: she presents her own delegated
    // credential, but she does not own the MJS.
    let eve2 = ca.issue_identity(&mut rng, dn("/O=G/CN=Eve"), 512, 0, 1000);
    let eve_delegated = issue_proxy(
        &mut rng,
        &eve2,
        ProxyType::Impersonation,
        512,
        clock.now(),
        500,
    )
    .unwrap();
    let err = resource
        .mjs_start_job(&outcome.mjs_handle, &dn("/O=G/CN=Eve"), eve_delegated)
        .unwrap_err();
    assert!(matches!(err, GramError::NotAuthorized(_)));
}

/// Limited proxies must not pass where full impersonation is required:
/// a resource policy can see the difference after validation.
#[test]
fn limited_proxy_visibly_limited_everywhere() {
    let mut w = basic_world(b"adv limited");
    let limited = issue_proxy(&mut w.rng, &w.user, ProxyType::Limited, 512, 0, 10_000).unwrap();
    // Stateless message verification surfaces the limitation.
    let env = Envelope::request("op", Element::new("x"));
    let signed = xmlsig::sign_envelope(&env, &limited, 10, 300);
    let verified = xmlsig::verify_envelope(
        &Envelope::parse(&signed.to_xml()).unwrap(),
        &w.trust,
        &CrlStore::new(),
        50,
    )
    .unwrap();
    assert_eq!(
        verified.identity.rights,
        gridsec_pki::validate::EffectiveRights::Limited
    );
    // And so does a GSS context peer.
    use gridsec_gssapi::context::establish_in_memory;
    use gridsec_tls::handshake::TlsConfig;
    let (_ic, ac) = establish_in_memory(
        TlsConfig::new(limited, w.trust.clone(), 50),
        TlsConfig::new(w.service.clone(), w.trust.clone(), 50),
        &mut w.rng,
    )
    .unwrap();
    assert_eq!(
        ac.peer().rights,
        gridsec_pki::validate::EffectiveRights::Limited
    );
}
