//! Seeded chaos suite: every paper flow (Figures 1–4, plus the
//! resumable GridFTP transfer "figure 5") must complete under a lossy
//! WAN profile — 10% drop, 10% duplication (≤ 2 extra copies),
//! reordering — because the retry/backoff layers absorb the faults.
//! With `ChaosOpts::crashes` the services additionally run under
//! seeded [`CrashPlan`]s that kill them at injection points
//! mid-request; recovery from the write-ahead journals must leave the
//! flows complete and side effects exactly-once. The scenarios
//! themselves live in [`gridsec_integration::scenarios`]; every fault
//! decision is drawn from one `DetRng` and every trace timestamp from
//! the scenario's `SimClock`, so transcript AND trace dump are pure
//! functions of the seed:
//!
//! * `GRIDSEC_CHAOS_SEED` — override the seed (decimal or `0x`-hex).
//!   A failing CI seed replays locally, byte for byte.
//! * `GRIDSEC_CHAOS_TRANSCRIPT` — write the combined event transcript
//!   to this path; `scripts/verify.sh` runs the suite twice and
//!   `cmp`s the two files to prove determinism from outside the
//!   process.
//! * `GRIDSEC_CHAOS_TRACE` — same, for the combined trace dump.
//! * `GRIDSEC_FLIGHT_DUMP` — path prefix for automatic flight-recorder
//!   dumps (each figure appends its tag).
//!
//! Each figure gets a fresh network seeded from the master seed, so
//! scenarios stay independent (a new flow cannot shift an earlier
//! one's fault schedule) while remaining reproducible together.

use gridsec_integration::scenarios::{figure1_gss, figure5_xfer, run_all, ChaosOpts};

/// Default master seed; override with `GRIDSEC_CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xC4A0_5EED;

fn chaos_seed() -> u64 {
    match std::env::var("GRIDSEC_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable GRIDSEC_CHAOS_SEED: {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

#[test]
fn figure_flows_complete_under_lossy_wan() {
    let run = run_all(chaos_seed(), &ChaosOpts::default());
    // The profile must actually have bitten — otherwise this suite
    // proves nothing about the retry layers.
    let total = run.stats;
    assert!(total.dropped > 0, "no drops at all: {total:?}");
    assert!(total.duplicated > 0, "no duplicates at all: {total:?}");
    assert!(total.delivered > total.dropped);
    // Every figure mirrored span events into its audit hash chain
    // (verified inside each scenario).
    assert!(run.audit_records > 0, "audit chain must record flow events");
}

#[test]
fn same_seed_reproduces_byte_identical_transcript() {
    let seed = chaos_seed();
    let r1 = run_all(seed, &ChaosOpts::default());
    let r2 = run_all(seed, &ChaosOpts::default());
    assert_eq!(r1.stats, r2.stats);
    assert_eq!(
        r1.transcript, r2.transcript,
        "same seed must replay the same event schedule"
    );
    if let Ok(path) = std::env::var("GRIDSEC_CHAOS_TRANSCRIPT") {
        std::fs::write(&path, &r1.transcript).expect("write chaos transcript");
    }
}

#[test]
fn same_seed_reproduces_byte_identical_trace_dump() {
    let seed = chaos_seed();
    let r1 = run_all(seed, &ChaosOpts::default());
    let r2 = run_all(seed, &ChaosOpts::default());
    assert_eq!(
        r1.trace, r2.trace,
        "same seed must replay the same spans, events, and metrics"
    );
    // The dump carries real flow structure: nested spans from all four
    // figures, timestamps from the simulated clock.
    for needle in [
        "gss.establish",
        "cas.fetch",
        "ogsa.envelope",
        "gram.submit",
        "gram.delegation",
        "rpc.call",
        "[t=",
        "parent=#",
    ] {
        assert!(r1.trace.contains(needle), "trace dump missing {needle}");
    }
    if let Ok(path) = std::env::var("GRIDSEC_CHAOS_TRACE") {
        std::fs::write(&path, &r1.trace).expect("write chaos trace dump");
    }
}

#[test]
fn different_seed_draws_a_different_schedule() {
    let seed = chaos_seed();
    let r1 = run_all(seed, &ChaosOpts::default());
    let r2 = run_all(seed ^ 0x5EED_0000_0000_5EED, &ChaosOpts::default());
    assert_ne!(
        r1.transcript, r2.transcript,
        "seed must actually drive the fault schedule"
    );
}

#[test]
fn flow_metrics_accumulate_per_figure() {
    let run = run_all(chaos_seed(), &ChaosOpts::default());
    let m = &run.metrics;
    // Counters from every figure's flow, name-prefixed by run_all.
    assert!(m.counters["fig1.gss.contexts_established"] >= 1);
    assert!(m.counters["fig2.cas.assertions_fetched"] >= 1);
    assert!(m.counters["fig3.ogsa.envelopes"] >= 1);
    assert!(m.counters["fig4.gram.jobs_submitted"] >= 1);
    // The repeat sign-on in figure 1 went through the session cache:
    // no chaos is armed here, so it resumed without touching RSA/DH.
    assert!(m.counters["fig1.gss.contexts_resumed"] >= 1);
    // Latency histograms auto-recorded from span durations.
    assert!(m.hists["fig1.span.gss.establish.secs"].count >= 1);
    assert!(m.hists["fig1.span.gss.resume.secs"].count >= 1);
    assert!(m.hists["fig4.span.gram.connect_start.secs"].count >= 1);
    // RPC traffic accounting exists for every RPC-based figure.
    for fig in ["fig1", "fig2", "fig3", "fig4"] {
        assert!(m.counters[&format!("{fig}.rpc.calls")] >= 1, "{fig}");
        assert!(m.counters[&format!("{fig}.rpc.bytes_sent")] > 0, "{fig}");
    }
    // Data movement is covered too: figure 5's streaming transfers.
    assert_eq!(m.counters["fig5.xfer.bytes_got"], 4096);
    assert_eq!(m.counters["fig5.xfer.bytes_put"], 4096);
    assert!(m.counters["fig5.xfer.resumes"] >= 1, "lossy streams tear");
    assert!(m.hists["fig5.span.xfer.get.secs"].count >= 1);
    assert!(m.hists["fig5.span.xfer.put.secs"].count >= 1);
}

#[test]
fn all_flows_complete_under_combined_crash_and_loss() {
    let opts = ChaosOpts {
        crashes: true,
        ..ChaosOpts::default()
    };
    let run = run_all(chaos_seed(), &opts);
    // The crash plans must actually have bitten — otherwise this proves
    // nothing about recovery — and every killed service came back.
    assert!(run.crashes >= 1, "no crashes fired: raise probabilities");
    assert_eq!(
        run.restarts, run.crashes,
        "every killed service must have restarted"
    );
    assert!(run.transcript.contains("crash svc="));
    assert!(run.transcript.contains("restart svc="));
    assert!(run.stats.dropped > 0, "network chaos stays on too");
    assert!(run.audit_records > 0);
}

#[test]
fn crash_chaos_same_seed_is_byte_identical() {
    let opts = ChaosOpts {
        crashes: true,
        ..ChaosOpts::default()
    };
    let seed = chaos_seed();
    let r1 = run_all(seed, &opts);
    let r2 = run_all(seed, &opts);
    assert_eq!(
        r1.transcript, r2.transcript,
        "crash schedule must replay byte-identically"
    );
    assert_eq!(r1.trace, r2.trace);
    assert_eq!((r1.crashes, r1.restarts), (r2.crashes, r2.restarts));
    if let Ok(path) = std::env::var("GRIDSEC_CRASH_TRANSCRIPT") {
        std::fs::write(&path, &r1.transcript).expect("write crash transcript");
    }
    if let Ok(path) = std::env::var("GRIDSEC_CRASH_TRACE") {
        std::fs::write(&path, &r1.trace).expect("write crash trace dump");
    }
}

#[test]
fn different_crash_seed_draws_a_different_schedule() {
    let opts = ChaosOpts {
        crashes: true,
        ..ChaosOpts::default()
    };
    let seed = chaos_seed();
    let r1 = run_all(seed, &opts);
    let r2 = run_all(seed ^ 0xDEAD_0000_0000_DEAD, &opts);
    assert_ne!(
        r1.transcript, r2.transcript,
        "seed must drive the crash schedule"
    );
}

#[test]
fn mid_request_crash_yields_no_duplicate_side_effects() {
    // Kill each durable service in the worst window: *after* its
    // write-ahead record is journaled but *before* the reply leaves the
    // process. The retransmission re-executes the handler, which must
    // find its own journal record instead of re-applying the effect.
    // The exactly-once assertions (one assertion issued, one job
    // process, hash-equal file bytes) live inside the scenarios.
    let opts = ChaosOpts {
        armed_crashes: vec![
            ("cas.issue.journaled".to_string(), 1),
            ("gram.start.journaled".to_string(), 1),
            ("xfer.put.chunk".to_string(), 2),
        ],
        ..ChaosOpts::default()
    };
    let run = run_all(chaos_seed(), &opts);
    assert_eq!(run.crashes, 3, "each armed point fired exactly once");
    assert_eq!(run.restarts, 3);
    for needle in [
        "crash svc=cas point=cas.issue.journaled",
        "crash svc=gram point=gram.start.journaled",
        "crash svc=gridftp point=xfer.put.chunk",
    ] {
        assert!(run.transcript.contains(needle), "missing {needle}");
    }
}

#[test]
fn mid_resume_kill_falls_back_to_full_handshake() {
    // Kill the acceptor at the worst moment for session resumption: while
    // it is executing a resume op. The reborn acceptor has lost its
    // session cache, so the retransmitted ticket is refused and the
    // initiator must transparently fall back to the full handshake —
    // on the still-lossy link.
    let opts = ChaosOpts {
        armed_crashes: vec![("gss.accept.resume".to_string(), 1)],
        ..ChaosOpts::default()
    };
    let rep = figure1_gss(chaos_seed(), &opts);
    assert!(rep.completed, "fallback must still complete the flow");
    assert_eq!(rep.crashes, 1, "the armed mid-resume kill fired");
    assert_eq!(rep.restarts, 1, "the acceptor came back");
    assert!(
        rep.trace.contains("gss.resume.fallback"),
        "fallback event missing from trace:\n{}",
        rep.trace
    );
    assert!(rep.metrics.counters["gss.resume_fallbacks"] >= 1);
    // The abbreviated exchange never finished, so nothing was resumed —
    // both contexts came from full handshakes.
    assert!(!rep.metrics.counters.contains_key("gss.contexts_resumed"));
    assert!(rep.metrics.counters["gss.contexts_established"] >= 2);

    // Determinism gate: the crash-plus-fallback schedule replays
    // byte-identically from the same seed.
    let rep2 = figure1_gss(chaos_seed(), &opts);
    assert_eq!(rep.lines, rep2.lines);
    assert_eq!(rep.trace, rep2.trace);
}

#[test]
fn resumable_transfer_is_hash_equal_under_drop_and_crash() {
    let opts = ChaosOpts {
        crashes: true,
        ..ChaosOpts::default()
    };
    let rep = figure5_xfer(chaos_seed(), &opts);
    // Byte-equality of both directions is asserted inside the scenario;
    // here we check the chaos actually exercised the resume path.
    assert!(rep.completed);
    assert!(rep.stats.dropped >= 1, "no session ever tore");
    assert_eq!(rep.metrics.counters["xfer.bytes_got"], 4096);
    assert_eq!(rep.metrics.counters["xfer.bytes_put"], 4096);
}

#[test]
fn forced_failure_dumps_the_flight_recorder() {
    let dir = std::env::temp_dir().join(format!("gridsec-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir flight dir");
    let path = dir.join("flight.fig1").to_string_lossy().into_owned();
    let opts = ChaosOpts {
        partition_all: true,
        flight_path: Some(path.clone()),
        ..ChaosOpts::default()
    };
    let rep = figure1_gss(chaos_seed(), &opts);
    assert!(!rep.completed);
    let dump = std::fs::read_to_string(&path)
        .expect("retry exhaustion must write the flight recorder dump");
    assert!(
        dump.contains("flight recorder dump: rpc retry budget exhausted"),
        "{dump}"
    );
    // The ring holds the doomed flow's recent history: the span that
    // was open and the retransmission events that preceded exhaustion.
    assert!(dump.contains("gss.establish"), "{dump}");
    assert!(dump.contains("rpc.retransmit"), "{dump}");
    assert!(dump.contains("counter rpc.timeouts"), "{dump}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure5_striped_completes_with_armed_mid_stripe_kills() {
    use gridsec_integration::scenarios::figure5_striped;
    let opts = ChaosOpts {
        armed_crashes: vec![
            ("xfer.stripe.get.chunk".to_string(), 3),
            ("xfer.stripe.put.chunk".to_string(), 3),
            ("xfer.stripe.merge".to_string(), 1),
        ],
        ..ChaosOpts::default()
    };
    let r = figure5_striped(chaos_seed(), &opts);
    assert!(r.completed, "striped transfer survives armed kills");
    assert_eq!(r.crashes, 3, "each armed point fired exactly once");
    assert_eq!(r.restarts, 3);
    let transcript = r.lines.join("\n");
    for needle in [
        "point=xfer.stripe.get.chunk",
        "point=xfer.stripe.put.chunk",
        "point=xfer.stripe.merge",
    ] {
        assert!(
            transcript.contains(needle),
            "missing {needle}:\n{transcript}"
        );
    }
}

#[test]
fn figure5_striped_same_seed_is_byte_identical() {
    use gridsec_integration::scenarios::figure5_striped;
    // Loss plus seeded crashes plus the AIMD controller's probabilistic
    // moves: the transcript embeds the decision log, so byte-equality
    // here proves the whole adaptation sequence replays.
    let opts = ChaosOpts {
        crashes: true,
        ..ChaosOpts::default()
    };
    let seed = chaos_seed();
    let r1 = figure5_striped(seed, &opts);
    let r2 = figure5_striped(seed, &opts);
    let t1 = r1.lines.join("\n");
    let t2 = r2.lines.join("\n");
    assert_eq!(t1, t2, "striped transcript must replay byte-identically");
    assert_eq!(
        r1.trace, r2.trace,
        "striped trace must replay byte-identically"
    );
    assert_eq!((r1.crashes, r1.restarts), (r2.crashes, r2.restarts));
    assert!(
        t1.contains("fig5s aimd"),
        "controller decisions belong in the transcript:\n{t1}"
    );
    if let Ok(path) = std::env::var("GRIDSEC_STRIPED_TRANSCRIPT") {
        std::fs::write(&path, &t1).expect("write striped transcript");
    }
    if let Ok(path) = std::env::var("GRIDSEC_STRIPED_TRACE") {
        std::fs::write(&path, &r1.trace).expect("write striped trace dump");
    }
}

#[test]
fn portal_recovers_from_armed_credential_kills() {
    use gridsec_integration::scenarios::portal::portal_recovery;
    // Kill the portal (the *client*) at each credential kill point in
    // turn: after storing at the repository, after re-acquiring a
    // proxy, and after the mid-job renewal. Each reborn incarnation
    // replays its journaled intent; the scenario itself asserts the
    // repository issued exactly one proxy per intent and that exactly
    // one job process exists at the end.
    let opts = ChaosOpts {
        armed_crashes: vec![
            ("cred.store".to_string(), 1),
            ("cred.reacquire".to_string(), 1),
            ("cred.renew".to_string(), 1),
        ],
        ..ChaosOpts::default()
    };
    let r = portal_recovery(chaos_seed(), &opts);
    assert!(r.completed, "portal flow survives armed credential kills");
    assert_eq!(r.crashes, 3, "each armed point fired exactly once");
    assert_eq!(r.restarts, 3);
    assert_eq!(r.metrics.counters.get("portal.incarnations"), Some(&4));
    assert_eq!(
        r.metrics.counters.get("portal.intents.recovered"),
        Some(&2),
        "acquire and renew each completed by a reborn portal"
    );
    let transcript = r.lines.join("\n");
    for needle in ["cred.store", "cred.reacquire", "cred.renew"] {
        assert!(
            transcript.contains(needle),
            "missing {needle}:\n{transcript}"
        );
    }
}

#[test]
fn expiry_storm_same_seed_is_byte_identical() {
    use gridsec_integration::scenarios::expiry_storm::{run_expiry_storm, ExpiryOpts};
    // Hundreds of staggered-lifetime principals, seeded issuer skew,
    // near-zero lifetimes, renewal waves batched through the handshake
    // mill, corrupt openers — the full metrics render must be a pure
    // function of the seed across two in-process runs (verify.sh
    // additionally compares across two fresh processes).
    let principals = std::env::var("GRIDSEC_EXPIRY_PRINCIPALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let opts = ExpiryOpts::new(principals, chaos_seed());
    let r1 = run_expiry_storm(&opts);
    let r2 = run_expiry_storm(&opts);
    let render = r1.deterministic_render();
    assert_eq!(
        render,
        r2.deterministic_render(),
        "expiry-storm metrics must replay byte-identically"
    );
    // The storm must actually exercise every lifetime failure mode —
    // otherwise the determinism gate is vacuous.
    assert!(r1.renewals > 0, "no renewals happened:\n{render}");
    assert!(r1.stillborn > 0, "no skew-stillborn proxies:\n{render}");
    assert!(r1.failed_closed > 0, "nothing failed closed:\n{render}");
    assert!(
        r1.mill_rejected > 0,
        "no corrupt openers rejected:\n{render}"
    );
    assert_eq!(
        r1.survived + r1.stillborn + r1.failed_closed,
        principals as u64,
        "every principal must reach a verdict:\n{render}"
    );
    if let Ok(path) = std::env::var("GRIDSEC_EXPIRY_RENDER") {
        std::fs::write(&path, &render).expect("write expiry-storm render");
    }
}

#[test]
fn figure5_striped_seed_drives_the_run() {
    use gridsec_integration::scenarios::figure5_striped;
    let opts = ChaosOpts::default();
    let seed = chaos_seed();
    let r1 = figure5_striped(seed, &opts);
    let r2 = figure5_striped(seed ^ 0x5712_0000_0000_5712, &opts);
    assert_ne!(
        r1.lines.join("\n"),
        r2.lines.join("\n"),
        "seed must drive stripe loss, crashes, and controller draws"
    );
}
