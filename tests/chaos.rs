//! Seeded chaos suite: every paper flow (Figures 1–4) must complete
//! under a lossy WAN profile — 10% drop, 10% duplication (≤ 2 extra
//! copies), reordering — because the retry/backoff layers absorb the
//! faults. Every fault decision is drawn from one `DetRng`, so the
//! whole run is a pure function of the seed:
//!
//! * `GRIDSEC_CHAOS_SEED` — override the seed (decimal or `0x`-hex).
//!   A failing CI seed replays locally, byte for byte.
//! * `GRIDSEC_CHAOS_TRANSCRIPT` — write the combined event transcript
//!   to this path; `scripts/verify.sh` runs the suite twice and
//!   `cmp`s the two files to prove determinism from outside the
//!   process.
//!
//! Each figure gets a fresh network seeded from the master seed, so
//! scenarios stay independent (a new flow cannot shift an earlier
//! one's fault schedule) while remaining reproducible together.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gridsec_authz::cas::{CasServer, ResourceGate};
use gridsec_authz::net::{fetch_assertion, CasService};
use gridsec_authz::policy::{CombiningAlg, Decision, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gram::remote::{job_state_remote, submit_job_remote, RemoteGram};
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::{JobDescription, JobState};
use gridsec_gram::Requestor;
use gridsec_gssapi::net::{establish_initiator, AcceptorService};
use gridsec_integration::{basic_world, dn};
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::{RetryTransport, RpcService};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::net::{FaultProfile, FaultStats, Network};
use gridsec_testbed::rpc::{RpcClient, RpcServer};
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::retry::RetryPolicy;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

/// Default master seed; override with `GRIDSEC_CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xC4A0_5EED;

fn chaos_seed() -> u64 {
    match std::env::var("GRIDSEC_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable GRIDSEC_CHAOS_SEED: {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// The retry policy all chaos clients use: ample attempts, timeout
/// windows comfortably above the profile's worst-case latency so an
/// attempt only fails on an actual drop or partition.
fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_timeout: 16,
        multiplier: 2,
        max_timeout: 64,
    }
}

/// One scenario's contribution to the run: its transcript lines
/// (prefixed with the figure tag) and its fault counters.
struct ScenarioLog {
    lines: Vec<String>,
    stats: FaultStats,
}

fn drain(tag: &str, net: &Network) -> ScenarioLog {
    ScenarioLog {
        lines: net
            .transcript()
            .into_iter()
            .map(|l| format!("{tag} {l}"))
            .collect(),
        stats: net.fault_stats().expect("faults were enabled"),
    }
}

/// Figure 1: GSS-API context establishment (the VO sign-on handshake)
/// across the lossy network, then a secured message both ways.
fn figure1_gss(seed: u64) -> ScenarioLog {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock, seed ^ 0xF16_1, FaultProfile::lossy_wan());

    let mut w = basic_world(b"chaos fig1");
    let initiator_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 100);
    let acceptor_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 100);
    let acceptor_rng = ChaChaRng::from_seed_bytes(b"chaos fig1 acceptor");

    let service = Rc::new(RefCell::new(AcceptorService::new(acceptor_cfg, acceptor_rng)));
    let server = Rc::new(RefCell::new(RpcServer::new(net.register("service"))));
    let mut rpc = RpcClient::new(net.register("user"), "service", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
    });

    let mut user_ctx = establish_initiator(&mut rpc, initiator_cfg, &mut w.rng)
        .expect("figure 1 must establish under lossy WAN");
    let mut service_ctx = service
        .borrow_mut()
        .take_established("user")
        .expect("acceptor side established");

    // The contexts are live: protect one message in each direction.
    let sealed = user_ctx.wrap(b"vo sign-on complete");
    assert_eq!(
        service_ctx.unwrap(&sealed).expect("unwrap at service"),
        b"vo sign-on complete"
    );
    let back = service_ctx.wrap(b"welcome");
    assert_eq!(user_ctx.unwrap(&back).expect("unwrap at user"), b"welcome");
    assert_eq!(service_ctx.peer().base_identity, dn("/O=G/CN=User"));

    drain("fig1", &net)
}

/// Figure 2: CAS-mediated authorization — fetch a signed capability
/// assertion over the lossy network, then present it to a resource
/// gate that intersects VO rights with local policy.
fn figure2_cas(seed: u64) -> ScenarioLog {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF16_2, FaultProfile::lossy_wan());

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig2");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=VO/CN=CA"), 512, 0, 1_000_000);
    let cas_cred = ca.issue_identity(&mut rng, dn("/O=VO/CN=CAS"), 512, 0, 500_000);
    let cas = Arc::new(CasServer::new("physics-vo", cas_cred, 3600));
    let alice = dn("/O=G/CN=Alice");
    cas.enroll(&alice, vec!["group:analysts".into()]);
    cas.add_rule(Rule::new(
        SubjectMatch::Exact("group:analysts".to_string()),
        "dataset/*",
        "read",
        Effect::Permit,
    ));

    let service = Rc::new(RefCell::new(CasService::new(cas.clone(), clock.clone())));
    let server = Rc::new(RefCell::new(RpcServer::new(net.register("cas"))));
    let mut rpc = RpcClient::new(net.register("alice"), "cas", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
    });

    let assertion =
        fetch_assertion(&mut rpc, &alice).expect("figure 2 must fetch under lossy WAN");

    let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
    local.add(Rule::new(
        SubjectMatch::Exact("vo:physics-vo".to_string()),
        "dataset/*",
        "read",
        Effect::Permit,
    ));
    let mut gate = ResourceGate::new(local);
    gate.trust_cas("physics-vo", cas.public_key().clone());
    let decision = gate
        .authorize_with_cas(&assertion, &alice, "dataset/run7", "read", clock.now())
        .expect("assertion accepted");
    assert_eq!(decision, Decision::Permit);

    drain("fig2", &net)
}

/// Echo service for the Figure 3 hosting environment.
struct EchoService;

impl GridService for EchoService {
    fn service_type(&self) -> &str {
        "echo"
    }
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "echo" => Ok(Element::new("echo:Reply")
                .with_attr("caller", ctx.caller.base_identity.to_string())
                .with_text(payload.text_content())),
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
    fn service_data(&self, name: &str) -> Option<Element> {
        (name == "serviceType").then(|| Element::new("sde").with_text("echo"))
    }
}

/// Figure 3: the secured OGSA pipeline — policy fetch, secure
/// conversation, createService, invoke, destroy — every envelope an
/// at-most-once RPC over the lossy network. A duplicated
/// `createService` answered from the reply cache must not create a
/// second instance.
fn figure3_ogsa(seed: u64) -> ScenarioLog {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF16_3, FaultProfile::lossy_wan());

    let w = basic_world(b"chaos fig3");
    let published = SecurityPolicy {
        service: "echo".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "gsi-secure-conversation".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "factory:echo",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "service:echo",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "echo-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("echo", Box::new(|_ctx, _args| Ok(Box::new(EchoService))));
    let env = Rc::new(RefCell::new(env));

    let service = Rc::new(RefCell::new(RpcService::new(&net, "echo-host", env.clone())));
    let mut transport = RetryTransport::connect(&net, "user", "echo-host", policy());
    let hook = service.clone();
    transport.set_pump(move || hook.borrow_mut().poll());
    let mut client = OgsaClient::new(transport, w.trust.clone(), clock, b"chaos fig3 client");
    client.add_source(Box::new(StaticCredential(w.user.clone())));

    let handle = client
        .create_service("echo", Element::new("args"))
        .expect("figure 3 createService under lossy WAN");
    let reply = client
        .invoke(&handle, "echo", Element::new("m").with_text("hello grid"))
        .expect("figure 3 invoke under lossy WAN");
    assert_eq!(reply.text_content(), "hello grid");
    assert_eq!(reply.attr("caller"), Some("/O=G/CN=User"));
    // Exactly one instance exists despite any duplicated createService.
    assert_eq!(env.borrow().registry.instance_count(), 1);
    client.destroy(&handle).expect("figure 3 destroy");
    assert_eq!(env.borrow().registry.instance_count(), 0);

    drain("fig3", &net)
}

/// Figure 4: the GT3 GRAM chain — signed submission through MMJFS /
/// Setuid Starter / GRIM / LMJFS, then step-7 mutual authentication,
/// GRIM authorization, delegation, and job start, every leg retried
/// over the lossy network. Exactly one LMJFS cold start may happen no
/// matter how many times the submission frame is duplicated.
fn figure4_gram(seed: u64) -> ScenarioLog {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF16_4, FaultProfile::lossy_wan());

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig4");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host compute1"),
        vec!["compute1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = gridsec_authz::gridmap::GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
    let resource = GramResource::install(
        gridsec_testbed::os::SimOs::new(),
        clock.clone(),
        "compute1",
        trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let shared = Rc::new(RefCell::new(resource));

    let service = Rc::new(RefCell::new(RemoteGram::new(shared.clone(), b"chaos mjs")));
    let server = Rc::new(RefCell::new(RpcServer::new(net.register("mjs-host"))));
    let mut rpc = RpcClient::new(net.register("jane"), "mjs-host", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
    });

    let mut jane = Requestor::new(jane, trust, b"chaos jane");
    let job = submit_job_remote(
        &mut jane,
        &mut rpc,
        &JobDescription::new("/bin/sim"),
        &dn("/O=G/CN=host compute1"),
        clock.now(),
    )
    .expect("figure 4 must submit under lossy WAN");
    assert!(job.cold_start);
    assert_eq!(job.account, "jdoe");
    assert_eq!(
        job_state_remote(&mut rpc, &job.handle).expect("state query"),
        JobState::Active
    );
    // The reply cache absorbed duplicated submissions: one cold start.
    assert_eq!(shared.borrow().stats.cold_starts, 1);

    drain("fig4", &net)
}

/// Run all four figures from one master seed; returns the combined
/// transcript and the summed fault counters.
fn run_all(seed: u64) -> (String, FaultStats) {
    let mut out = format!("chaos transcript seed=0x{seed:016x}\n");
    let mut total = FaultStats::default();
    for log in [
        figure1_gss(seed),
        figure2_cas(seed),
        figure3_ogsa(seed),
        figure4_gram(seed),
    ] {
        for line in &log.lines {
            out.push_str(line);
            out.push('\n');
        }
        total.sent += log.stats.sent;
        total.delivered += log.stats.delivered;
        total.dropped += log.stats.dropped;
        total.duplicated += log.stats.duplicated;
        total.blocked += log.stats.blocked;
    }
    out.push_str(&format!(
        "totals sent={} delivered={} dropped={} duplicated={} blocked={}\n",
        total.sent, total.delivered, total.dropped, total.duplicated, total.blocked
    ));
    (out, total)
}

#[test]
fn figure_flows_complete_under_lossy_wan() {
    let (_, total) = run_all(chaos_seed());
    // The profile must actually have bitten — otherwise this suite
    // proves nothing about the retry layers.
    assert!(total.dropped > 0, "no drops at all: {total:?}");
    assert!(total.duplicated > 0, "no duplicates at all: {total:?}");
    assert!(total.delivered > total.dropped);
}

#[test]
fn same_seed_reproduces_byte_identical_transcript() {
    let seed = chaos_seed();
    let (t1, s1) = run_all(seed);
    let (t2, s2) = run_all(seed);
    assert_eq!(s1, s2);
    assert_eq!(t1, t2, "same seed must replay the same event schedule");
    if let Ok(path) = std::env::var("GRIDSEC_CHAOS_TRANSCRIPT") {
        std::fs::write(&path, &t1).expect("write chaos transcript");
    }
}

#[test]
fn different_seed_draws_a_different_schedule() {
    let seed = chaos_seed();
    let (t1, _) = run_all(seed);
    let (t2, _) = run_all(seed ^ 0x5EED_0000_0000_5EED);
    assert_ne!(t1, t2, "seed must actually drive the fault schedule");
}
