//! Cross-mechanism integration: Kerberos sites and PKI sites
//! interoperating through the paper's §3 gateways, end to end.

use std::sync::Arc;

use gridsec_authz::gridmap::GridMapFile;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::{JobDescription, JobState, Requestor};
use gridsec_integration::dn;
use gridsec_kerberos::Kdc;
use gridsec_ogsa::client::CredentialSource;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::store::TrustStore;
use gridsec_services::kca::{KcaCredentialSource, KerberosCa};
use gridsec_services::sslk5::sslk5_login;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::SimOs;

/// A Kerberos-site user runs a GRAM job on a PKI grid resource: KDC →
/// KCA → GSI credential → signed job request → Figure 4.
#[test]
fn kerberos_user_runs_grid_job_via_kca() {
    let mut rng = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"xmech kca gram");
    let clock = SimClock::starting_at(1_000);

    // Kerberos site with a KCA.
    let kdc = Kdc::new(&mut rng, "HEP.SITE", 36_000);
    kdc.add_principal("alice", "pw");
    let kca = Arc::new(KerberosCa::new(&mut rng, &kdc, 512, 10_000_000, 43_200));
    let kdc = Arc::new(kdc);

    // PKI grid site whose GRAM resource unilaterally trusts the KCA.
    let grid_ca =
        CertificateAuthority::create_root(&mut rng, dn("/O=Grid/CN=CA"), 512, 0, 10_000_000);
    let host_cred = grid_ca.issue_host_identity(
        &mut rng,
        dn("/O=Grid/CN=host hpc1"),
        vec!["hpc1".to_string()],
        512,
        0,
        10_000_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(grid_ca.certificate().clone());
    trust.add_root(kca.certificate().clone()); // the unilateral bridge

    let gridmap = GridMapFile::parse("\"/O=KCA HEP.SITE/CN=alice\" alice_grid\n").unwrap();
    let mut resource = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "hpc1",
        trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();

    // Kerberos login → KCA conversion → GSI credential.
    let mut source =
        KcaCredentialSource::new(kdc.clone(), kca.clone(), "alice", "pw", 512, b"alice");
    let gsi_cred = source.obtain(clock.now()).unwrap();
    assert_eq!(gsi_cred.base_identity(), &dn("/O=KCA HEP.SITE/CN=alice"));

    // Submit a job with the converted credential.
    let mut requestor = Requestor::new(gsi_cred, trust, b"alice requestor");
    let job = requestor
        .submit_job(
            &mut resource,
            &JobDescription::new("/bin/reco"),
            clock.now(),
        )
        .expect("kerberos-rooted job submission");
    assert_eq!(job.account, "alice_grid");
    assert_eq!(resource.job_state(&job.handle).unwrap(), JobState::Active);
}

/// Round trip: PKI → Kerberos → PKI. A grid user PKINITs into a Kerberos
/// realm, and a Kerberos user of that realm KCAs back out to the grid —
/// each mechanism remains authoritative for its own site.
#[test]
fn bidirectional_bridge_round_trip() {
    let mut rng = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"xmech roundtrip");

    let kdc = Kdc::new(&mut rng, "SITE.K", 36_000);
    kdc.add_principal("kuser", "kpw");
    kdc.add_principal("gbob", "unused");
    let kca = Arc::new(KerberosCa::new(&mut rng, &kdc, 512, 10_000_000, 43_200));
    let kdc = Arc::new(kdc);

    let grid_ca =
        CertificateAuthority::create_root(&mut rng, dn("/O=Grid/CN=CA"), 512, 0, 10_000_000);
    let bob = grid_ca.issue_identity(&mut rng, dn("/O=Grid/CN=Bob"), 512, 0, 10_000_000);
    let mut kdc_trust = TrustStore::new();
    kdc_trust.add_root(grid_ca.certificate().clone());

    // PKI → Kerberos.
    let login = sslk5_login(
        &mut rng,
        &kdc,
        &bob,
        &kdc_trust,
        |d| (d == &dn("/O=Grid/CN=Bob")).then(|| "gbob".to_string()),
        100,
        10_000,
    )
    .unwrap();
    assert_eq!(login.principal, "gbob");

    // Kerberos → PKI.
    let mut source =
        KcaCredentialSource::new(kdc.clone(), kca.clone(), "kuser", "kpw", 512, b"kuser");
    let cred = source.obtain(100).unwrap();
    let mut grid_trust = TrustStore::new();
    grid_trust.add_root(kca.certificate().clone());
    let id = gridsec_pki::validate::validate_chain(cred.chain(), &grid_trust, 200).unwrap();
    assert_eq!(id.base_identity, dn("/O=KCA SITE.K/CN=kuser"));
}

/// The KCA conversion respects Kerberos-side failures at every stage.
#[test]
fn kca_conversion_failure_modes() {
    let mut rng = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"xmech failures");
    let kdc = Kdc::new(&mut rng, "SITE.K", 36_000);
    kdc.add_principal("alice", "pw");
    let kca = Arc::new(KerberosCa::new(&mut rng, &kdc, 512, 10_000_000, 43_200));
    let kdc = Arc::new(kdc);

    // Wrong password.
    let mut bad_pw = KcaCredentialSource::new(kdc.clone(), kca.clone(), "alice", "nope", 512, b"x");
    assert!(bad_pw.obtain(100).is_err());

    // Unknown principal.
    let mut unknown =
        KcaCredentialSource::new(kdc.clone(), kca.clone(), "mallory", "pw", 512, b"y");
    assert!(unknown.obtain(100).is_err());

    // Success case still works after failures.
    let mut good = KcaCredentialSource::new(kdc, kca, "alice", "pw", 512, b"z");
    assert!(good.obtain(100).is_ok());
}

/// KCA-issued credentials expire on the KCA's short schedule; the grid
/// site rejects them after expiry with no Kerberos interaction.
#[test]
fn kca_credentials_are_short_lived_grid_side() {
    let mut rng = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"xmech expiry");
    let kdc = Kdc::new(&mut rng, "SITE.K", 360_000);
    kdc.add_principal("alice", "pw");
    let kca = Arc::new(KerberosCa::new(&mut rng, &kdc, 512, 10_000_000, 1_000));
    let kdc = Arc::new(kdc);
    let mut source = KcaCredentialSource::new(kdc, kca.clone(), "alice", "pw", 512, b"s");
    let cred = source.obtain(100).unwrap();

    let mut trust = TrustStore::new();
    trust.add_root(kca.certificate().clone());
    assert!(gridsec_pki::validate::validate_chain(cred.chain(), &trust, 500).is_ok());
    assert!(gridsec_pki::validate::validate_chain(cred.chain(), &trust, 2_000).is_err());
}
