//! Whole-paper integration: a multi-domain grid with VO formation, GRAM
//! submission by a foreign-domain user, OGSA security services, and a
//! verifiable audit trail.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_gsi::sso;
use gridsec_integration::scenarios::{cross_domain_vo, ChaosOpts};
use gridsec_integration::{basic_world, dn};
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::transport::InProcessTransport;
use gridsec_pki::validate::validate_chain;
use gridsec_services::audit::AuditLog;
use gridsec_testbed::clock::SimClock;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

/// The headline scenario: a user from domain A, signed on with a proxy,
/// submits a job to a GRAM resource in domain B — possible only because
/// the VO overlay created the trust path. The whole world now runs over
/// the fault layer ([`gridsec_integration::scenarios::cross_domain_vo`]):
/// a lossy WAN between the domains and the MMJFS under an armed crash
/// plan, so the headline claim holds under failure, not just in the
/// sunny case. Internal asserts cover the account mapping, job state,
/// exactly-one job process, and least privilege.
#[test]
fn cross_domain_job_submission_via_vo() {
    let opts = ChaosOpts {
        // Kill the MMJFS after the job-start record is journaled but
        // before the reply leaves — the nastiest window for duplicate
        // job starts.
        armed_crashes: vec![("gram.start.journaled".to_string(), 1)],
        ..ChaosOpts::default()
    };
    let rep = cross_domain_vo(0xE2E_5EED, &opts);
    assert!(rep.completed);
    assert_eq!(rep.crashes, 1, "the armed kill must fire");
    assert_eq!(rep.restarts, 1, "and the MMJFS must come back");
    assert!(rep.stats.dropped > 0, "the WAN chaos must have bitten");
    assert!(rep
        .lines
        .iter()
        .any(|l| l.contains("crash svc=gram point=gram.start.journaled")));
}

/// The same scenario under a *seeded* crash schedule rather than an
/// armed one: kills land wherever the draw says, and the flow must
/// still complete exactly-once.
#[test]
fn cross_domain_submission_survives_seeded_crashes() {
    let opts = ChaosOpts {
        crashes: true,
        ..ChaosOpts::default()
    };
    let rep = cross_domain_vo(0xE2E_5EED, &opts);
    assert!(rep.completed);
    assert_eq!(rep.restarts, rep.crashes);
}

/// The OGSA pipeline with an audit service capturing every decision in a
/// tamper-evident chain.
#[test]
fn ogsa_invocations_produce_verifiable_audit_chain() {
    let mut w = basic_world(b"e2e audit");
    let clock = SimClock::starting_at(100);

    struct Null;
    impl gridsec_ogsa::service::GridService for Null {
        fn service_type(&self) -> &str {
            "null"
        }
        fn invoke(
            &mut self,
            _ctx: &gridsec_ogsa::service::RequestContext,
            _op: &str,
            _p: &Element,
        ) -> Result<Element, gridsec_ogsa::OgsaError> {
            Ok(Element::new("ok"))
        }
    }

    let published = SecurityPolicy {
        service: "null".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "xml-signature".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "factory:null",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "service:null",
        "run",
        Effect::Permit,
    ));

    let audit = AuditLog::new();
    let mut env = HostingEnvironment::new(
        "audited-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.set_audit(audit.sink());
    env.registry
        .register_factory("null", Box::new(|_c, _a| Ok(Box::new(Null))));
    let env = Rc::new(RefCell::new(env));

    let mut client = OgsaClient::new(
        InProcessTransport::new(env),
        w.trust.clone(),
        clock.clone(),
        b"audited client",
    );
    client.add_source(Box::new(StaticCredential(w.user.clone())));

    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "run", Element::new("p")).unwrap();
    // A denied operation also lands in the log.
    let denied = client.invoke(&handle, "explode", Element::new("p"));
    assert!(denied.is_err());

    assert_eq!(audit.len(), 3);
    assert!(audit.verify().is_ok());
    let records = audit.records();
    assert!(records.iter().all(|r| r.event.caller == "/O=G/CN=User"));
    assert_eq!(records[0].event.outcome, "permit");
    assert_eq!(records[2].event.outcome, "deny");
    let _ = &mut w;
}

/// Delegation chains survive multiple hops with identity intact.
#[test]
fn multi_hop_delegation_preserves_base_identity() {
    let mut w = basic_world(b"e2e delegation");
    let session =
        sso::grid_proxy_init(&mut w.rng, &w.user, sso::ProxyOptions::default(), 0).unwrap();

    // Hop 1: user proxy delegates to service A; hop 2: A delegates on to
    // service B (e.g. a job that spawns a file transfer).
    use gridsec_gssapi::context::establish_in_memory;
    use gridsec_gssapi::delegation;
    use gridsec_tls::handshake::TlsConfig;

    let mut hop_cred = session.credential().clone();
    for hop in 0..3 {
        let (mut ic, mut ac) = establish_in_memory(
            TlsConfig::new(hop_cred.clone(), w.trust.clone(), 10),
            TlsConfig::new(w.service.clone(), w.trust.clone(), 10),
            &mut w.rng,
        )
        .unwrap();
        let t1 = delegation::request_delegation(&mut ic);
        let (t2, pending) = delegation::respond_with_key(&mut ac, &mut w.rng, &t1, 512).unwrap();
        let t3 = delegation::deliver_proxy(
            &mut ic,
            &mut w.rng,
            &hop_cred,
            &t2,
            gridsec_pki::proxy::ProxyType::Impersonation,
            10,
            100_000,
        )
        .unwrap();
        hop_cred = pending.finish(&mut ac, &t3).unwrap();
        assert_eq!(hop_cred.proxy_depth(), hop + 2); // session proxy + hops
    }
    let id = validate_chain(hop_cred.chain(), &w.trust, 50).unwrap();
    assert_eq!(id.base_identity, dn("/O=G/CN=User"));
    assert_eq!(id.proxy_depth, 4);
}

/// GT2-token/GT3-envelope equivalence (paper §5.1) at the system level:
/// one GT2-established and one WS-Trust-established context, both
/// produced from the same deterministic seed, interoperate bitwise.
#[test]
fn gt2_and_gt3_share_token_formats() {
    let w = basic_world(b"e2e tokens");
    use gridsec_tls::handshake::TlsConfig;
    use gridsec_wsse::wssc::{establish, WsscResponder};

    // GT3 path.
    let mut rng_a = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"tok");
    let mut responder = WsscResponder::new(TlsConfig::new(w.service.clone(), w.trust.clone(), 10));
    let mut session = establish(
        TlsConfig::new(w.user.clone(), w.trust.clone(), 10),
        &mut responder,
        &mut rng_a,
    )
    .unwrap();

    // Exchange application data to prove the contexts work.
    let env = gridsec_wsse::soap::Envelope::request("op", Element::new("x").with_text("data"));
    let protected = session.protect(&env);
    let (_id, inner) = responder.unprotect(&protected).unwrap();
    assert_eq!(inner.payload().unwrap().text_content(), "data");

    // GT2 path with identical inputs: the first token bytes match those
    // embedded in the GT3 RST (checked at unit level in wssc; here we
    // assert the peers agree on identity, the system-level consequence).
    assert_eq!(session.peer().base_identity, dn("/O=G/CN=Service"));
    assert_eq!(
        responder.peer(&session.ctx_id).unwrap().base_identity,
        dn("/O=G/CN=User")
    );
}
