//! Whole-paper integration: a multi-domain grid with VO formation, GRAM
//! submission by a foreign-domain user, OGSA security services, and a
//! verifiable audit trail.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_authz::gridmap::GridMapFile;
use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::{JobDescription, JobState, Requestor};
use gridsec_gsi::sso;
use gridsec_gsi::vo::{create_domain, form_vo};
use gridsec_integration::{basic_world, dn};
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::transport::InProcessTransport;
use gridsec_pki::validate::validate_chain;
use gridsec_services::audit::AuditLog;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::SimOs;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

/// The headline scenario: a user from domain A, signed on with a proxy,
/// submits a job to a GRAM resource in domain B — possible only because
/// the VO overlay created the trust path.
#[test]
fn cross_domain_job_submission_via_vo() {
    let mut rng = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"e2e vo gram");
    let clock = SimClock::starting_at(1_000);

    let mut domains = vec![
        create_domain(&mut rng, "siteA", 2, 512, 10_000_000),
        create_domain(&mut rng, "siteB", 2, 512, 10_000_000),
    ];
    let _vo = form_vo(&mut rng, "compute-vo", &mut domains, 512, 10_000_000);

    // Domain B hosts a GRAM resource; its trust store now (post-VO)
    // includes siteA's CA. Its grid-mapfile maps the siteA user.
    let host_cred = domains[1].ca.issue_host_identity(
        &mut rng,
        dn("/O=siteB/CN=host cluster1"),
        vec!["cluster1.siteB".to_string()],
        512,
        0,
        10_000_000,
    );
    let gridmap = GridMapFile::parse("\"/O=siteA/CN=user0\" grid_a0\n").unwrap();
    let mut resource = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "cluster1",
        domains[1].resource_trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();

    // The siteA user signs on and submits.
    let user = domains[0].users[0].clone();
    let session =
        sso::grid_proxy_init(&mut rng, &user, sso::ProxyOptions::default(), clock.now()).unwrap();
    // The requestor must trust siteB's CA to accept the MJS's GRIM
    // credential — their own unilateral act.
    let mut requestor_trust = domains[0].resource_trust.clone();
    requestor_trust.add_root(domains[1].ca.certificate().clone());
    let mut requestor = Requestor::new(session.credential().clone(), requestor_trust, b"a0");

    let job = requestor
        .submit_job(
            &mut resource,
            &JobDescription::new("/bin/hpc-sim"),
            clock.now(),
        )
        .expect("cross-domain submission");
    assert!(job.cold_start);
    assert_eq!(job.account, "grid_a0");
    assert_eq!(resource.job_state(&job.handle).unwrap(), JobState::Active);

    // Least privilege held throughout.
    assert!(resource
        .os()
        .privileged_network_facing("cluster1")
        .unwrap()
        .is_empty());
}

/// The OGSA pipeline with an audit service capturing every decision in a
/// tamper-evident chain.
#[test]
fn ogsa_invocations_produce_verifiable_audit_chain() {
    let mut w = basic_world(b"e2e audit");
    let clock = SimClock::starting_at(100);

    struct Null;
    impl gridsec_ogsa::service::GridService for Null {
        fn service_type(&self) -> &str {
            "null"
        }
        fn invoke(
            &mut self,
            _ctx: &gridsec_ogsa::service::RequestContext,
            _op: &str,
            _p: &Element,
        ) -> Result<Element, gridsec_ogsa::OgsaError> {
            Ok(Element::new("ok"))
        }
    }

    let published = SecurityPolicy {
        service: "null".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "xml-signature".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "factory:null",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "service:null",
        "run",
        Effect::Permit,
    ));

    let audit = AuditLog::new();
    let mut env = HostingEnvironment::new(
        "audited-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.set_audit(audit.sink());
    env.registry
        .register_factory("null", Box::new(|_c, _a| Ok(Box::new(Null))));
    let env = Rc::new(RefCell::new(env));

    let mut client = OgsaClient::new(
        InProcessTransport::new(env),
        w.trust.clone(),
        clock.clone(),
        b"audited client",
    );
    client.add_source(Box::new(StaticCredential(w.user.clone())));

    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "run", Element::new("p")).unwrap();
    // A denied operation also lands in the log.
    let denied = client.invoke(&handle, "explode", Element::new("p"));
    assert!(denied.is_err());

    assert_eq!(audit.len(), 3);
    assert!(audit.verify().is_ok());
    let records = audit.records();
    assert!(records.iter().all(|r| r.event.caller == "/O=G/CN=User"));
    assert_eq!(records[0].event.outcome, "permit");
    assert_eq!(records[2].event.outcome, "deny");
    let _ = &mut w;
}

/// Delegation chains survive multiple hops with identity intact.
#[test]
fn multi_hop_delegation_preserves_base_identity() {
    let mut w = basic_world(b"e2e delegation");
    let session =
        sso::grid_proxy_init(&mut w.rng, &w.user, sso::ProxyOptions::default(), 0).unwrap();

    // Hop 1: user proxy delegates to service A; hop 2: A delegates on to
    // service B (e.g. a job that spawns a file transfer).
    use gridsec_gssapi::context::establish_in_memory;
    use gridsec_gssapi::delegation;
    use gridsec_tls::handshake::TlsConfig;

    let mut hop_cred = session.credential().clone();
    for hop in 0..3 {
        let (mut ic, mut ac) = establish_in_memory(
            TlsConfig::new(hop_cred.clone(), w.trust.clone(), 10),
            TlsConfig::new(w.service.clone(), w.trust.clone(), 10),
            &mut w.rng,
        )
        .unwrap();
        let t1 = delegation::request_delegation(&mut ic);
        let (t2, pending) = delegation::respond_with_key(&mut ac, &mut w.rng, &t1, 512).unwrap();
        let t3 = delegation::deliver_proxy(
            &mut ic,
            &mut w.rng,
            &hop_cred,
            &t2,
            gridsec_pki::proxy::ProxyType::Impersonation,
            10,
            100_000,
        )
        .unwrap();
        hop_cred = pending.finish(&mut ac, &t3).unwrap();
        assert_eq!(hop_cred.proxy_depth(), hop + 2); // session proxy + hops
    }
    let id = validate_chain(hop_cred.chain(), &w.trust, 50).unwrap();
    assert_eq!(id.base_identity, dn("/O=G/CN=User"));
    assert_eq!(id.proxy_depth, 4);
}

/// GT2-token/GT3-envelope equivalence (paper §5.1) at the system level:
/// one GT2-established and one WS-Trust-established context, both
/// produced from the same deterministic seed, interoperate bitwise.
#[test]
fn gt2_and_gt3_share_token_formats() {
    let w = basic_world(b"e2e tokens");
    use gridsec_tls::handshake::TlsConfig;
    use gridsec_wsse::wssc::{establish, WsscResponder};

    // GT3 path.
    let mut rng_a = gridsec_crypto::rng::ChaChaRng::from_seed_bytes(b"tok");
    let mut responder = WsscResponder::new(TlsConfig::new(w.service.clone(), w.trust.clone(), 10));
    let mut session = establish(
        TlsConfig::new(w.user.clone(), w.trust.clone(), 10),
        &mut responder,
        &mut rng_a,
    )
    .unwrap();

    // Exchange application data to prove the contexts work.
    let env = gridsec_wsse::soap::Envelope::request("op", Element::new("x").with_text("data"));
    let protected = session.protect(&env);
    let (_id, inner) = responder.unprotect(&protected).unwrap();
    assert_eq!(inner.payload().unwrap().text_content(), "data");

    // GT2 path with identical inputs: the first token bytes match those
    // embedded in the GT3 RST (checked at unit level in wssc; here we
    // assert the peers agree on identity, the system-level consequence).
    assert_eq!(session.peer().base_identity, dn("/O=G/CN=Service"));
    assert_eq!(
        responder.peer(&session.ctx_id).unwrap().base_identity,
        dn("/O=G/CN=User")
    );
}
