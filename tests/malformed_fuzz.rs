//! Malformed-envelope fuzz: every wire-facing handler must return a
//! typed error for garbage input — never panic.
//!
//! A faulty WAN (or an attacker) can deliver any byte string to any
//! endpoint. The paper's availability story dies if a hosting
//! environment aborts on the first bad frame, so this test drives
//! seeded mutations — truncations, splices, byte flips, insertions,
//! deep-nesting bombs, and pure noise — through:
//!
//! * `gridsec_wsse::soap::Envelope::parse` (and through it the XML
//!   parser's recursion-depth cap),
//! * `HostingEnvironment::handle_message` (the full OGSA pipeline),
//! * `AcceptorService::handle` (GSS token exchange),
//! * `CasService::handle` (community authorization),
//! * `RemoteGram::handle` (job management),
//! * the batch/precomputed crypto entry points (`RsaVerifyCtx`,
//!   `verify_batch`, `CachedValidator::validate_batch`,
//!   `HandshakeMill::accept_wave`, fixed-base/modulus precomputation) —
//!   mutated signatures, degenerate keys and group parameters.
//!
//! All mutations derive from one `DetRng` seed, so a failure replays
//! exactly. The assertion is simply that every call returns: a panic
//! anywhere fails the test.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gridsec_authz::cas::CasServer;
use gridsec_authz::gridmap::GridMapFile;
use gridsec_authz::net::CasService;
use gridsec_authz::policy::{CombiningAlg, PolicySet};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gram::remote::RemoteGram;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gssapi::net::AcceptorService;
use gridsec_integration::basic_world;
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::SimOs;
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::rng::{DetRng, RngCore};
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;

const CASES_PER_TARGET: usize = 400;

/// Apply one seeded mutation to `base`.
fn mutate(rng: &mut DetRng, base: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    match rng.next_u64() % 6 {
        // Truncate.
        0 => {
            if !out.is_empty() {
                out.truncate(rng.next_u64() as usize % out.len());
            }
        }
        // Delete a slice.
        1 => {
            if out.len() > 2 {
                let a = rng.next_u64() as usize % out.len();
                let b = (a + 1 + rng.next_u64() as usize % 40).min(out.len());
                out.drain(a..b);
            }
        }
        // Flip bytes.
        2 => {
            for _ in 0..1 + rng.next_u64() % 8 {
                if out.is_empty() {
                    break;
                }
                let i = rng.next_u64() as usize % out.len();
                out[i] = rng.next_u64() as u8;
            }
        }
        // Insert garbage.
        3 => {
            let i = if out.is_empty() {
                0
            } else {
                rng.next_u64() as usize % out.len()
            };
            let n = 1 + rng.next_u64() as usize % 32;
            let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            out.splice(i..i, junk);
        }
        // Nesting bomb: thousands of open tags, the classic
        // stack-overflow vector the parser's depth cap must absorb.
        4 => {
            let depth = 500 + rng.next_u64() as usize % 3000;
            out = "<d>".repeat(depth).into_bytes();
        }
        // Pure noise.
        _ => {
            let n = rng.next_u64() as usize % 300;
            out = (0..n).map(|_| rng.next_u64() as u8).collect();
        }
    }
    out
}

/// A valid signed OGSA request to mutate from (mutants that stay
/// well-formed-ish penetrate deeper than pure noise).
fn signed_corpus(clock: &SimClock) -> Vec<Vec<u8>> {
    let w = basic_world(b"fuzz corpus");
    let mut corpus = Vec::new();
    for (action, payload) in [
        (
            "createService",
            Element::new("ogsa:CreateService").with_attr("type", "echo"),
        ),
        (
            "invoke",
            Element::new("ogsa:Invoke")
                .with_attr("handle", "h-1")
                .with_attr("op", "echo"),
        ),
        (
            "queryServiceData",
            Element::new("ogsa:Query")
                .with_attr("handle", "h-1")
                .with_attr("name", "serviceType"),
        ),
        (
            "destroy",
            Element::new("ogsa:Destroy").with_attr("handle", "h-1"),
        ),
    ] {
        let env = Envelope::request(action, payload);
        let signed = xmlsig::sign_envelope(&env, &w.user, clock.now(), 60);
        corpus.push(signed.to_xml().into_bytes());
        corpus.push(env.to_xml().into_bytes()); // unsigned variant
    }
    corpus.push(b"<soap:Envelope><soap:Body/></soap:Envelope>".to_vec());
    corpus
}

#[test]
fn no_wire_facing_handler_panics_on_malformed_input() {
    let clock = SimClock::starting_at(100);
    let w = basic_world(b"fuzz world");
    let corpus = signed_corpus(&clock);
    let mut rng = DetRng::seed_from_u64(0xFA22_0611);

    // Target: Envelope::parse + the OGSA hosting pipeline.
    let mut hosting = HostingEnvironment::new(
        "fuzz-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        SecurityPolicy {
            service: "echo".to_string(),
            alternatives: vec![PolicyAlternative {
                mechanism: "xmlsig".to_string(),
                token_types: vec!["x509-chain".to_string()],
                trust_roots: vec![],
                protection: Protection::Sign,
            }],
        },
        PolicySet::new(CombiningAlg::DenyOverrides),
    );
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let text = String::from_utf8_lossy(&bytes);
        let _ = Envelope::parse(&text);
        let reply = hosting.handle_message(&text);
        assert!(!reply.is_empty(), "handler must always produce a reply");
    }

    // Target: GSS acceptor.
    let mut acceptor = AcceptorService::new(
        TlsConfig::new(w.service.clone(), w.trust.clone(), clock.now()),
        ChaChaRng::from_seed_bytes(b"fuzz acceptor"),
    );
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let reply = acceptor.handle("mallory", &bytes);
        assert!(!reply.is_empty());
    }

    // Target: CAS service.
    let cas = Arc::new(CasServer::new("vo-fuzz", w.service.clone(), 600));
    let mut cas_svc = CasService::new(cas, clock.clone());
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let reply = cas_svc.handle("mallory", &bytes);
        assert!(!reply.is_empty());
    }

    // Target: remote GRAM.
    let gridmap = GridMapFile::parse("\"/O=G/CN=User\" juser\n").unwrap();
    let resource = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "compute1",
        w.trust.clone(),
        w.service.clone(),
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let mut gram = RemoteGram::new(Rc::new(RefCell::new(resource)), b"fuzz gram");
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let reply = gram.handle("mallory", &bytes);
        assert!(!reply.is_empty());
    }
}

/// The batch + precomputed crypto paths added for login-wave
/// amortization face the same wire: signatures and certificate fields
/// come straight from attacker-controlled bytes, and group parameters
/// can be degenerate. Every entry point must return — and, for the
/// batch verifiers, agree with its single-shot counterpart — on any
/// input.
#[test]
fn batch_crypto_entry_points_absorb_malformed_input() {
    use gridsec_bignum::{precomp, BigUint};
    use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaVerifyCtx};
    use gridsec_gssapi::mill::HandshakeMill;
    use gridsec_gssapi::InitiatorContext;
    use gridsec_pki::cert::Certificate;
    use gridsec_pki::store::CrlStore;
    use gridsec_pki::validate::{validate_chain_with_crls, CachedValidator};

    let mut rng = DetRng::seed_from_u64(0xFA22_0611);
    let w = basic_world(b"batch fuzz world");
    let mut crng = ChaChaRng::from_seed_bytes(b"batch fuzz rng");

    // Target: RsaVerifyCtx::verify_batch with mutated signatures. The
    // batch verdict must match the uncached single-shot verifier on
    // every item, mutant or not.
    let pair = RsaKeyPair::generate(&mut crng, 512);
    let good_sig = pair.sign_pkcs1_sha256(b"wave payload");
    let ctx = RsaVerifyCtx::new(pair.public());
    for i in 0..CASES_PER_TARGET / 4 {
        let mut sigs: Vec<Vec<u8>> = (0..4).map(|_| mutate(&mut rng, &good_sig)).collect();
        sigs.push(good_sig.clone());
        // Oversized: longer than the modulus, and absurdly long.
        sigs.push([good_sig.clone(), vec![0xFF; 1 + i % 7]].concat());
        sigs.push(vec![0xAB; 4096]);
        sigs.push(Vec::new());
        let items: Vec<(&[u8], &[u8])> = sigs
            .iter()
            .map(|s| (b"wave payload".as_slice(), s.as_slice()))
            .collect();
        let outcome = ctx.verify_batch(&items);
        assert_eq!(outcome.len(), items.len());
        for (j, (msg, sig)) in items.iter().enumerate() {
            assert_eq!(
                outcome.valid()[j],
                pair.public().verify_pkcs1_sha256(msg, sig),
                "batch/individual divergence at case {i} item {j}"
            );
        }
    }

    // Target: verify contexts over degenerate keys (an attacker
    // controls the modulus bytes in a presented certificate). Even,
    // zero, trivial, and tiny moduli must build and verify (falsely)
    // without panicking.
    for n in [
        BigUint::from(0u64),
        BigUint::from(1u64),
        BigUint::from(2u64),
        BigUint::from(15u64),
        BigUint::from(u64::MAX),     // odd, but far too small for PKCS#1
        &BigUint::from(1u64) << 512, // even 513-bit
    ] {
        for e in [
            BigUint::from(0u64),
            BigUint::from(1u64),
            BigUint::from(65537u64),
        ] {
            let key = RsaPublicKey::new(n.clone(), e);
            let ctx = RsaVerifyCtx::new(&key);
            for sig in [&b""[..], &[0u8; 64][..], &good_sig[..]] {
                assert!(!ctx.verify_pkcs1_sha256(b"m", sig));
            }
            let outcome = ctx.verify_batch(&[(b"m", &good_sig), (b"m", b"")]);
            assert_eq!(outcome.invalid_indices(), vec![0, 1]);
        }
    }

    // Target: fixed-base/modulus precomputation with degenerate group
    // parameters. Registration must refuse (or absorb) them and the
    // registry must stay consistent.
    let one = BigUint::from(1u64);
    let cases = [
        (BigUint::from(0u64), BigUint::from(0u64)),
        (BigUint::from(0u64), one.clone()),
        (one.clone(), BigUint::from(2u64)),
        (BigUint::from(7u64), BigUint::from(4u64)), // even modulus
        (BigUint::from(9u64), BigUint::from(7u64)), // base >= modulus
        (BigUint::from(3u64), BigUint::from(7u64)), // fine but tiny
    ];
    for (base, modulus) in &cases {
        let _ = precomp::register_fixed_base(base, modulus, 0);
        let _ = precomp::register_fixed_base(base, modulus, 4096);
        precomp::unregister_fixed_base(base, modulus);
        let _ = precomp::register_modulus(modulus);
        precomp::unregister_modulus(modulus);
    }
    precomp::clear();
    assert_eq!(precomp::stats().tables, 0);

    // Target: CachedValidator::validate_batch over chains whose
    // signature bytes are mutated wholesale. Verdicts must match the
    // stateless walk, chain for chain.
    let mut validator = CachedValidator::new(32);
    let crls = CrlStore::new();
    let good_chain = w.user.chain().to_vec();
    for _ in 0..CASES_PER_TARGET / 8 {
        let mut broken = good_chain.clone();
        let which = rng.next_u64() as usize % broken.len();
        broken[which].signature = mutate(&mut rng, &broken[which].signature);
        let chains: Vec<&[Certificate]> = vec![&good_chain, &broken, &[]];
        let batch = validator.validate_batch(&chains, &w.trust, &crls, 100);
        assert_eq!(batch.len(), 3);
        for (i, chain) in chains.iter().enumerate() {
            let individual = validate_chain_with_crls(chain, &w.trust, &crls, 100);
            assert_eq!(
                batch[i].is_ok(),
                individual.is_ok(),
                "batch/stateless divergence on chain {i}"
            );
            if let (Err(b), Err(s)) = (&batch[i], &individual) {
                assert_eq!(b, s);
            }
        }
    }

    // Target: HandshakeMill::accept_wave on waves mixing valid hellos
    // with mutants of them. The mill must survive and still accept the
    // intact hello in every wave.
    let mut mill = HandshakeMill::new(TlsConfig::new(w.service.clone(), w.trust.clone(), 100));
    let (_init, good_hello) = InitiatorContext::new(
        TlsConfig::new(w.user.clone(), w.trust.clone(), 100),
        &mut crng,
    );
    for _ in 0..CASES_PER_TARGET / 8 {
        let mutants: Vec<Vec<u8>> = (0..3).map(|_| mutate(&mut rng, &good_hello)).collect();
        let mut wave: Vec<&[u8]> = mutants.iter().map(|m| m.as_slice()).collect();
        wave.push(&good_hello);
        let results = mill.accept_wave(&mut crng, &wave);
        assert_eq!(results.len(), wave.len());
        assert!(
            results.last().unwrap().is_ok(),
            "intact hello must still accept amid mutants"
        );
    }
}
