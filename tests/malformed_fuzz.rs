//! Malformed-envelope fuzz: every wire-facing handler must return a
//! typed error for garbage input — never panic.
//!
//! A faulty WAN (or an attacker) can deliver any byte string to any
//! endpoint. The paper's availability story dies if a hosting
//! environment aborts on the first bad frame, so this test drives
//! seeded mutations — truncations, splices, byte flips, insertions,
//! deep-nesting bombs, and pure noise — through:
//!
//! * `gridsec_wsse::soap::Envelope::parse` (and through it the XML
//!   parser's recursion-depth cap),
//! * `HostingEnvironment::handle_message` (the full OGSA pipeline),
//! * `AcceptorService::handle` (GSS token exchange),
//! * `CasService::handle` (community authorization),
//! * `RemoteGram::handle` (job management).
//!
//! All mutations derive from one `DetRng` seed, so a failure replays
//! exactly. The assertion is simply that every call returns: a panic
//! anywhere fails the test.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gridsec_authz::cas::CasServer;
use gridsec_authz::gridmap::GridMapFile;
use gridsec_authz::net::CasService;
use gridsec_authz::policy::{CombiningAlg, PolicySet};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gram::remote::RemoteGram;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gssapi::net::AcceptorService;
use gridsec_integration::basic_world;
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::SimOs;
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::rng::{DetRng, RngCore};
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;

const CASES_PER_TARGET: usize = 400;

/// Apply one seeded mutation to `base`.
fn mutate(rng: &mut DetRng, base: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    match rng.next_u64() % 6 {
        // Truncate.
        0 => {
            if !out.is_empty() {
                out.truncate(rng.next_u64() as usize % out.len());
            }
        }
        // Delete a slice.
        1 => {
            if out.len() > 2 {
                let a = rng.next_u64() as usize % out.len();
                let b = (a + 1 + rng.next_u64() as usize % 40).min(out.len());
                out.drain(a..b);
            }
        }
        // Flip bytes.
        2 => {
            for _ in 0..1 + rng.next_u64() % 8 {
                if out.is_empty() {
                    break;
                }
                let i = rng.next_u64() as usize % out.len();
                out[i] = rng.next_u64() as u8;
            }
        }
        // Insert garbage.
        3 => {
            let i = if out.is_empty() {
                0
            } else {
                rng.next_u64() as usize % out.len()
            };
            let n = 1 + rng.next_u64() as usize % 32;
            let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            out.splice(i..i, junk);
        }
        // Nesting bomb: thousands of open tags, the classic
        // stack-overflow vector the parser's depth cap must absorb.
        4 => {
            let depth = 500 + rng.next_u64() as usize % 3000;
            out = "<d>".repeat(depth).into_bytes();
        }
        // Pure noise.
        _ => {
            let n = rng.next_u64() as usize % 300;
            out = (0..n).map(|_| rng.next_u64() as u8).collect();
        }
    }
    out
}

/// A valid signed OGSA request to mutate from (mutants that stay
/// well-formed-ish penetrate deeper than pure noise).
fn signed_corpus(clock: &SimClock) -> Vec<Vec<u8>> {
    let w = basic_world(b"fuzz corpus");
    let mut corpus = Vec::new();
    for (action, payload) in [
        (
            "createService",
            Element::new("ogsa:CreateService").with_attr("type", "echo"),
        ),
        (
            "invoke",
            Element::new("ogsa:Invoke")
                .with_attr("handle", "h-1")
                .with_attr("op", "echo"),
        ),
        (
            "queryServiceData",
            Element::new("ogsa:Query")
                .with_attr("handle", "h-1")
                .with_attr("name", "serviceType"),
        ),
        (
            "destroy",
            Element::new("ogsa:Destroy").with_attr("handle", "h-1"),
        ),
    ] {
        let env = Envelope::request(action, payload);
        let signed = xmlsig::sign_envelope(&env, &w.user, clock.now(), 60);
        corpus.push(signed.to_xml().into_bytes());
        corpus.push(env.to_xml().into_bytes()); // unsigned variant
    }
    corpus.push(b"<soap:Envelope><soap:Body/></soap:Envelope>".to_vec());
    corpus
}

#[test]
fn no_wire_facing_handler_panics_on_malformed_input() {
    let clock = SimClock::starting_at(100);
    let w = basic_world(b"fuzz world");
    let corpus = signed_corpus(&clock);
    let mut rng = DetRng::seed_from_u64(0xFA22_0611);

    // Target: Envelope::parse + the OGSA hosting pipeline.
    let mut hosting = HostingEnvironment::new(
        "fuzz-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        SecurityPolicy {
            service: "echo".to_string(),
            alternatives: vec![PolicyAlternative {
                mechanism: "xmlsig".to_string(),
                token_types: vec!["x509-chain".to_string()],
                trust_roots: vec![],
                protection: Protection::Sign,
            }],
        },
        PolicySet::new(CombiningAlg::DenyOverrides),
    );
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let text = String::from_utf8_lossy(&bytes);
        let _ = Envelope::parse(&text);
        let reply = hosting.handle_message(&text);
        assert!(!reply.is_empty(), "handler must always produce a reply");
    }

    // Target: GSS acceptor.
    let mut acceptor = AcceptorService::new(
        TlsConfig::new(w.service.clone(), w.trust.clone(), clock.now()),
        ChaChaRng::from_seed_bytes(b"fuzz acceptor"),
    );
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let reply = acceptor.handle("mallory", &bytes);
        assert!(!reply.is_empty());
    }

    // Target: CAS service.
    let cas = Arc::new(CasServer::new("vo-fuzz", w.service.clone(), 600));
    let mut cas_svc = CasService::new(cas, clock.clone());
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let reply = cas_svc.handle("mallory", &bytes);
        assert!(!reply.is_empty());
    }

    // Target: remote GRAM.
    let gridmap = GridMapFile::parse("\"/O=G/CN=User\" juser\n").unwrap();
    let resource = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "compute1",
        w.trust.clone(),
        w.service.clone(),
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let mut gram = RemoteGram::new(Rc::new(RefCell::new(resource)), b"fuzz gram");
    for i in 0..CASES_PER_TARGET {
        let base = &corpus[i % corpus.len()];
        let bytes = mutate(&mut rng, base);
        let reply = gram.handle("mallory", &bytes);
        assert!(!reply.is_empty());
    }
}
