#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build and test entirely
# offline, and no manifest may declare a registry (crates.io) dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== grep guard: no registry dependencies =="
# The seven dependencies removed in the hermetic-build change must not return.
if grep -rE '^(parking_lot|crossbeam|rand|bytes|serde|proptest|criterion)\b' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: banned registry dependency declared above" >&2
    exit 1
fi
# More generally: every dependency entry must be a path or workspace dep.
# Scan [dependencies]/[dev-dependencies]/[build-dependencies] sections for
# entries that reference neither `path =` nor `workspace = true`.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    while IFS= read -r line; do
        echo "FAIL: non-path dependency in $manifest: $line" >&2
        bad=1
    done < <(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
        in_deps && /^[A-Za-z0-9_-]+ *=/ && !/path *=/ && !/workspace *= *true/ { print }
    ' "$manifest")
done
[ "$bad" -eq 0 ] || exit 1
echo "ok"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "verify.sh: all checks passed"
