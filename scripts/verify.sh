#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build and test entirely
# offline, no manifest may declare a registry (crates.io) dependency, and
# the seeded chaos suite must be deterministic (same seed -> byte-identical
# event transcript across two fresh processes).
#
# Knobs:
#   GRIDSEC_CHAOS_SEED   seed for the chaos stage (default pinned below)
#   GRIDSEC_VERIFY_DEEP=1  elevate property-test case counts (GRIDSEC_PT_CASES)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${GRIDSEC_VERIFY_DEEP:-0}" = "1" ]; then
    # Deep mode: drive every `check` property through far more cases.
    export GRIDSEC_PT_CASES="${GRIDSEC_PT_CASES:-2000}"
    echo "== deep mode: GRIDSEC_PT_CASES=$GRIDSEC_PT_CASES =="
fi

echo "== grep guard: no registry dependencies =="
# The seven dependencies removed in the hermetic-build change must not return.
if grep -rE '^(parking_lot|crossbeam|rand|bytes|serde|proptest|criterion)\b' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: banned registry dependency declared above" >&2
    exit 1
fi
# More generally: every dependency entry must be a path or workspace dep.
# Scan [dependencies]/[dev-dependencies]/[build-dependencies] sections for
# entries that reference neither `path =` nor `workspace = true`.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    while IFS= read -r line; do
        echo "FAIL: non-path dependency in $manifest: $line" >&2
        bad=1
    done < <(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
        in_deps && /^[A-Za-z0-9_-]+ *=/ && !/path *=/ && !/workspace *= *true/ { print }
    ' "$manifest")
done
[ "$bad" -eq 0 ] || exit 1
echo "ok"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== chaos determinism: same seed, byte-identical transcripts =="
chaos_seed="${GRIDSEC_CHAOS_SEED:-0xC4A05EED}"
tdir="$(mktemp -d)"
trap 'rm -rf "$tdir"' EXIT
for run in 1 2; do
    GRIDSEC_CHAOS_SEED="$chaos_seed" \
    GRIDSEC_CHAOS_TRANSCRIPT="$tdir/transcript.$run" \
        cargo test -q --offline -p gridsec-integration --test chaos -- \
        same_seed_reproduces_byte_identical_transcript > /dev/null
done
if ! cmp -s "$tdir/transcript.1" "$tdir/transcript.2"; then
    echo "FAIL: chaos transcripts differ across runs with seed $chaos_seed" >&2
    diff "$tdir/transcript.1" "$tdir/transcript.2" | head -20 >&2 || true
    exit 1
fi
lines=$(wc -l < "$tdir/transcript.1")
echo "ok: $lines transcript lines identical across two runs (seed $chaos_seed)"

echo "verify.sh: all checks passed"
