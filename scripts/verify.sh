#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build and test entirely
# offline, no manifest may declare a registry (crates.io) dependency,
# formatting and clippy must be clean, every example must run, the seeded
# chaos suite must be deterministic (same seed -> byte-identical event
# transcript AND trace dump across two fresh processes) — the
# network-faults-only profile, the combined crash/restart profile
# (seeded process kills + write-ahead-journal recovery), the striped
# GridFTP scenario (mid-stripe kills + AIMD congestion control), and the
# credential-lifetime suite (expiry-storm renewal waves + portal armed
# kills with exactly-once proxy issuance) — the
# perf claims must hold, the storm/striped bench metrics must be
# two-run byte-identical, and the committed EXPERIMENTS.md tables must
# match what the pinned seed regenerates (drift gate).
#
# The pipeline is a sequence of named stages. Each stage is timed; the
# wall-clock table is printed at the end and written to
# $GRIDSEC_STAGE_TIMINGS (markdown) for CI job summaries.
#
# Usage:
#   scripts/verify.sh                 run every stage
#   scripts/verify.sh --stage NAME    run one stage (repeatable)
#   scripts/verify.sh --list          list stage names
#
# Knobs:
#   GRIDSEC_CHAOS_SEED     seed for the chaos stages (default pinned below)
#   GRIDSEC_VERIFY_TMPDIR  scratch dir (kept for the caller; default mktemp,
#                          removed on exit) — CI uploads it on failure
#   GRIDSEC_STAGE_TIMINGS  where to write the markdown timing table
#   GRIDSEC_VERIFY_DEEP=1  elevate property-test case counts
#                          (GRIDSEC_PT_CASES) and sweep a crash-schedule
#                          seed matrix
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${GRIDSEC_VERIFY_DEEP:-0}" = "1" ]; then
    # Deep mode: drive every `check` property through far more cases.
    export GRIDSEC_PT_CASES="${GRIDSEC_PT_CASES:-2000}"
    echo "== deep mode: GRIDSEC_PT_CASES=$GRIDSEC_PT_CASES =="
fi

chaos_seed="${GRIDSEC_CHAOS_SEED:-0xC4A05EED}"
if [ -n "${GRIDSEC_VERIFY_TMPDIR:-}" ]; then
    tdir="$GRIDSEC_VERIFY_TMPDIR"
    mkdir -p "$tdir"
else
    tdir="$(mktemp -d)"
    trap 'rm -rf "$tdir"' EXIT
fi
timings="${GRIDSEC_STAGE_TIMINGS:-$tdir/stage-timings.md}"

# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------

stage_grep_guard() {
    # The seven dependencies removed in the hermetic-build change must not
    # return.
    if grep -rE '^(parking_lot|crossbeam|rand|bytes|serde|proptest|criterion)\b' \
        Cargo.toml crates/*/Cargo.toml; then
        echo "FAIL: banned registry dependency declared above" >&2
        exit 1
    fi
    # More generally: every dependency entry must be a path or workspace dep.
    # Scan [dependencies]/[dev-dependencies]/[build-dependencies] sections for
    # entries that reference neither `path =` nor `workspace = true`.
    local bad=0
    for manifest in Cargo.toml crates/*/Cargo.toml; do
        while IFS= read -r line; do
            echo "FAIL: non-path dependency in $manifest: $line" >&2
            bad=1
        done < <(awk '
            /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
            in_deps && /^[A-Za-z0-9_-]+ *=/ && !/path *=/ && !/workspace *= *true/ { print }
        ' "$manifest")
    done
    [ "$bad" -eq 0 ] || exit 1
    # The TLS/GridFTP data path is sans-io and scheduler-driven: no code
    # in those crates may spawn or scope a thread (doc comments excepted).
    if grep -rEn 'thread::(spawn|scope)\(' crates/tls/src crates/gridftp/src \
        | grep -vE '^[^:]+:[0-9]+: *//'; then
        echo "FAIL: thread spawn/scope in the TLS/GridFTP data path above" >&2
        exit 1
    fi
}

stage_fmt() {
    cargo fmt --all --check
}

stage_build() {
    cargo build --release --offline
}

stage_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

stage_test() {
    cargo test -q --offline
}

stage_examples() {
    for example in quickstart credential_bridging gram_job vo_collaboration; do
        echo "-- example $example"
        cargo run -q --offline --release -p gridsec-gsi --example "$example" > /dev/null
    done
}

# Two fresh processes, same seed -> byte-identical transcript + trace.
stage_chaos() {
    for run in 1 2; do
        GRIDSEC_CHAOS_SEED="$chaos_seed" \
        GRIDSEC_CHAOS_TRANSCRIPT="$tdir/transcript.$run" \
        GRIDSEC_CHAOS_TRACE="$tdir/trace.$run" \
            cargo test -q --offline -p gridsec-integration --test chaos -- \
            same_seed_reproduces_byte_identical > /dev/null
    done
    if ! cmp -s "$tdir/transcript.1" "$tdir/transcript.2"; then
        echo "FAIL: chaos transcripts differ across runs with seed $chaos_seed" >&2
        diff "$tdir/transcript.1" "$tdir/transcript.2" | head -20 >&2 || true
        exit 1
    fi
    if ! cmp -s "$tdir/trace.1" "$tdir/trace.2"; then
        echo "FAIL: chaos trace dumps differ across runs with seed $chaos_seed" >&2
        diff "$tdir/trace.1" "$tdir/trace.2" | head -20 >&2 || true
        exit 1
    fi
    local lines tlines
    lines=$(wc -l < "$tdir/transcript.1")
    tlines=$(wc -l < "$tdir/trace.1")
    echo "ok: $lines transcript + $tlines trace lines identical across two runs (seed $chaos_seed)"
}

# Same two-process gate, with every service additionally running under a
# seeded CrashPlan (kills at injection points mid-request + journal
# recovery). The transcript carries crash/restart events; both it and
# the trace dump must still be pure functions of the seed.
stage_crash_chaos() {
    for run in 1 2; do
        GRIDSEC_CHAOS_SEED="$chaos_seed" \
        GRIDSEC_CRASH_TRANSCRIPT="$tdir/crash-transcript.$run" \
        GRIDSEC_CRASH_TRACE="$tdir/crash-trace.$run" \
            cargo test -q --offline -p gridsec-integration --test chaos -- \
            crash_chaos_same_seed_is_byte_identical > /dev/null
    done
    if ! cmp -s "$tdir/crash-transcript.1" "$tdir/crash-transcript.2"; then
        echo "FAIL: crash-chaos transcripts differ across runs with seed $chaos_seed" >&2
        diff "$tdir/crash-transcript.1" "$tdir/crash-transcript.2" | head -20 >&2 || true
        exit 1
    fi
    if ! cmp -s "$tdir/crash-trace.1" "$tdir/crash-trace.2"; then
        echo "FAIL: crash-chaos trace dumps differ across runs with seed $chaos_seed" >&2
        diff "$tdir/crash-trace.1" "$tdir/crash-trace.2" | head -20 >&2 || true
        exit 1
    fi
    if ! grep -q "crash svc=" "$tdir/crash-transcript.1"; then
        echo "FAIL: crash stage drew no crashes — the gate is vacuous" >&2
        exit 1
    fi
    local clines
    clines=$(wc -l < "$tdir/crash-transcript.1")
    echo "ok: $clines crash-transcript lines identical across two runs (seed $chaos_seed)"
}

# The striped GridFTP scenario under lossy streams, mid-stripe kills and
# the AIMD congestion controller: transcript (including the controller's
# decision log) and trace must be byte-identical across two processes.
stage_striped_chaos() {
    for run in 1 2; do
        GRIDSEC_CHAOS_SEED="$chaos_seed" \
        GRIDSEC_STRIPED_TRANSCRIPT="$tdir/striped-transcript.$run" \
        GRIDSEC_STRIPED_TRACE="$tdir/striped-trace.$run" \
            cargo test -q --offline -p gridsec-integration --test chaos -- \
            figure5_striped_same_seed_is_byte_identical > /dev/null
    done
    if ! cmp -s "$tdir/striped-transcript.1" "$tdir/striped-transcript.2"; then
        echo "FAIL: striped transcripts differ across runs with seed $chaos_seed" >&2
        diff "$tdir/striped-transcript.1" "$tdir/striped-transcript.2" | head -20 >&2 || true
        exit 1
    fi
    if ! cmp -s "$tdir/striped-trace.1" "$tdir/striped-trace.2"; then
        echo "FAIL: striped trace dumps differ across runs with seed $chaos_seed" >&2
        diff "$tdir/striped-trace.1" "$tdir/striped-trace.2" | head -20 >&2 || true
        exit 1
    fi
    if ! grep -q "fig5s aimd" "$tdir/striped-transcript.1"; then
        echo "FAIL: striped transcript carries no AIMD decisions — gate is vacuous" >&2
        exit 1
    fi
    local slines
    slines=$(wc -l < "$tdir/striped-transcript.1")
    echo "ok: $slines striped-transcript lines identical across two runs (seed $chaos_seed)"
}

# Credential-lifetime chaos: the expiry-storm scenario (hundreds of
# staggered-lifetime principals, seeded issuer skew and near-zero
# lifetimes, renewal waves batched through the handshake mill, corrupt
# openers) must render its metrics byte-identically across two fresh
# processes, and the portal armed-kill flow (client killed at
# cred.store / cred.reacquire / cred.renew) must recover with
# exactly-once proxy issuance.
stage_cred_chaos() {
    for run in 1 2; do
        GRIDSEC_CHAOS_SEED="$chaos_seed" \
        GRIDSEC_EXPIRY_RENDER="$tdir/expiry-render.$run" \
            cargo test -q --offline -p gridsec-integration --test chaos -- \
            expiry_storm_same_seed_is_byte_identical > /dev/null
    done
    if ! cmp -s "$tdir/expiry-render.1" "$tdir/expiry-render.2"; then
        echo "FAIL: expiry-storm renders differ across runs with seed $chaos_seed" >&2
        diff "$tdir/expiry-render.1" "$tdir/expiry-render.2" | head -20 >&2 || true
        exit 1
    fi
    # The storm must actually exercise the lifetime failure modes —
    # a run with no renewals or no fail-closed principals gates nothing.
    if ! grep -q "^renewal waves=" "$tdir/expiry-render.1" || \
       grep -Eq " renewals=0( |$)" "$tdir/expiry-render.1" || \
       grep -Eq " failed_closed=0( |$)" "$tdir/expiry-render.1" || \
       grep -Eq " stillborn=0( |$)" "$tdir/expiry-render.1"; then
        echo "FAIL: expiry-storm render is vacuous (missing renewals or failure modes):" >&2
        head -3 "$tdir/expiry-render.1" >&2
        exit 1
    fi
    GRIDSEC_CHAOS_SEED="$chaos_seed" \
        cargo test -q --offline -p gridsec-integration --test chaos -- \
        portal_recovers_from_armed_credential_kills > /dev/null
    echo "ok: $(head -1 "$tdir/expiry-render.1") (byte-identical across two runs; portal armed kills recovered)"
}

# Deep only: sweep a fixed matrix of crash seeds — each must complete
# every flow (recovery works wherever the kills land) and replay
# byte-identically within the process (asserted by the test itself).
# The same matrix drives the credential-lifetime suite: the portal must
# recover from armed kills and the expiry storm must replay
# byte-identically wherever the renewal/crash schedules land.
stage_deep_matrix() {
    for s in 0xC4A05EED 0x1 0xDEADBEEF 0xA5A5A5A5 0x7777777777777777; do
        echo "-- crash seed $s"
        GRIDSEC_CHAOS_SEED="$s" \
            cargo test -q --offline -p gridsec-integration --test chaos -- \
            all_flows_complete_under_combined_crash_and_loss \
            crash_chaos_same_seed_is_byte_identical \
            portal_recovers_from_armed_credential_kills \
            expiry_storm_same_seed_is_byte_identical > /dev/null
    done
    # The same matrix sweeps the crypto-real login storm: whatever the
    # seed does to credential assignment, stagger, and wave shapes, the
    # metrics must stay byte-identical across two fresh processes.
    for s in 0xC4A05EED 0x1 0xDEADBEEF 0xA5A5A5A5 0x7777777777777777; do
        echo "-- crypto_storm seed $s"
        for run in 1 2; do
            GRIDSEC_STORM_SEED="$s" GRIDSEC_STORM_PRINCIPALS=800 \
            GRIDSEC_BENCH_DIR="$tdir" \
                cargo run -q --offline --release -p gridsec-bench --bin crypto_storm -- \
                --metrics-out "$tdir/cstorm-deep.$run" > /dev/null
        done
        if ! cmp -s "$tdir/cstorm-deep.1" "$tdir/cstorm-deep.2"; then
            echo "FAIL: crypto_storm metrics differ across runs with seed $s" >&2
            diff "$tdir/cstorm-deep.1" "$tdir/cstorm-deep.2" | head -20 >&2 || true
            exit 1
        fi
    done
    echo "ok: crash seed matrix complete (incl. credential-lifetime suite + crypto_storm)"
}

# Offline micro-gate on the four perf claims (DESIGN.md §13.4, §14):
# Montgomery modexp beats the classic window reference, the resumed
# handshake beats the full handshake, a HandshakeMill batched wave
# accepts at >=2x the per-session baseline, and four stripes beat one
# stream >=1.5x at 5% loss (tick-model, deterministic). Every claim
# prints measured ratio, threshold and source BENCH json, pass or fail.
stage_perf_guard() {
    cargo run -q --offline --release -p gridsec-bench --bin perf_guard
}

# Reduced-scale run of the discrete-event VO storm (the bench bin
# defaults to 10^5 principals; see bench-results/after/BENCH_vo_storm.json
# for the full-scale record). Every metric except wall time must be a
# pure function of the seed across two fresh processes, and every flow
# must reach a verdict.
stage_vo_storm() {
    for run in 1 2; do
        GRIDSEC_STORM_PRINCIPALS="${GRIDSEC_STORM_PRINCIPALS:-2000}" \
        GRIDSEC_BENCH_DIR="$tdir" \
            cargo run -q --offline --release -p gridsec-bench --bin vo_storm -- \
            --metrics-out "$tdir/storm.$run" > /dev/null
    done
    if ! cmp -s "$tdir/storm.1" "$tdir/storm.2"; then
        echo "FAIL: vo_storm metrics differ across two runs of the same seed" >&2
        diff "$tdir/storm.1" "$tdir/storm.2" | head -20 >&2 || true
        exit 1
    fi
    if ! head -1 "$tdir/storm.1" | grep -q " failed=0 "; then
        echo "FAIL: vo_storm flows exhausted their retry budget:" >&2
        head -1 "$tdir/storm.1" >&2
        exit 1
    fi
    echo "ok: $(head -1 "$tdir/storm.1") (byte-identical across two runs)"
}

# Reduced-scale run of the batched-handshake storm (the bench bin
# defaults to 10^4 sessions; bench-results/after/BENCH_handshake_storm.json
# records the full-scale run — the timing claim itself is gated by
# perf_guard). Every metric except wall time must be a pure function of
# the seed across two fresh processes.
stage_handshake_storm() {
    for run in 1 2; do
        GRIDSEC_BENCH_DIR="$tdir" \
            cargo run -q --offline --release -p gridsec-bench --bin handshake_storm -- \
            --sessions "${GRIDSEC_STORM_SESSIONS:-400}" --clients 16 --wave 64 \
            --baseline-sessions 100 --metrics-out "$tdir/hstorm.$run" > /dev/null
    done
    if ! cmp -s "$tdir/hstorm.1" "$tdir/hstorm.2"; then
        echo "FAIL: handshake_storm metrics differ across two runs of the same seed" >&2
        diff "$tdir/hstorm.1" "$tdir/hstorm.2" | head -20 >&2 || true
        exit 1
    fi
    if ! grep -q "^counter storm.completed = " "$tdir/hstorm.1" || \
       grep -q "^counter storm.completed = 0$" "$tdir/hstorm.1"; then
        echo "FAIL: handshake_storm completed no end-to-end sessions:" >&2
        cat "$tdir/hstorm.1" >&2
        exit 1
    fi
    echo "ok: $(head -1 "$tdir/hstorm.1") (byte-identical across two runs)"
}

# Reduced-scale run of the striped-transfer goodput grid (the bench bin
# defaults to 32 KiB; bench-results/after/BENCH_striped_xfer.json records
# the full-scale run — the >=1.5x striping claim itself is gated by
# perf_guard). The grid is tick-model arithmetic, so the entire metrics
# render must be byte-identical across two fresh processes.
stage_striped_xfer() {
    for run in 1 2; do
        GRIDSEC_STRIPED_BYTES="${GRIDSEC_STRIPED_BYTES:-8192}" \
        GRIDSEC_BENCH_DIR="$tdir" \
            cargo run -q --offline --release -p gridsec-bench --bin striped_xfer -- \
            --metrics-out "$tdir/striped.$run" > /dev/null
    done
    if ! cmp -s "$tdir/striped.1" "$tdir/striped.2"; then
        echo "FAIL: striped_xfer metrics differ across two runs of the same seed" >&2
        diff "$tdir/striped.1" "$tdir/striped.2" | head -20 >&2 || true
        exit 1
    fi
    if ! grep -q "^counter striped.l050.s4.goodput_bpkt = " "$tdir/striped.1"; then
        echo "FAIL: striped_xfer grid is missing the 5%-loss 4-stripe cell:" >&2
        cat "$tdir/striped.1" >&2
        exit 1
    fi
    echo "ok: $(head -1 "$tdir/striped.1") (byte-identical across two runs)"
}

# Reduced-scale run of the crypto-real login storm (the bench bin
# defaults to 5x10^5 principals; bench-results/after/BENCH_crypto_storm.json
# records the full-scale run — the >=2x mill-batched-poll and storm-scale
# claims themselves are gated by perf_guard). Every principal performs a
# real handshake, so every metric except wall time must be a pure
# function of the seed across two fresh processes, and no trusted
# credential may be refused.
stage_crypto_storm() {
    for run in 1 2; do
        GRIDSEC_STORM_PRINCIPALS="${GRIDSEC_CRYPTO_STORM_PRINCIPALS:-1500}" \
        GRIDSEC_BENCH_DIR="$tdir" \
            cargo run -q --offline --release -p gridsec-bench --bin crypto_storm -- \
            --metrics-out "$tdir/cstorm.$run" > /dev/null
    done
    if ! cmp -s "$tdir/cstorm.1" "$tdir/cstorm.2"; then
        echo "FAIL: crypto_storm metrics differ across two runs of the same seed" >&2
        diff "$tdir/cstorm.1" "$tdir/cstorm.2" | head -20 >&2 || true
        exit 1
    fi
    if grep -q "^counter cstorm.flows.rejected_credential = " "$tdir/cstorm.1"; then
        echo "FAIL: crypto_storm refused a trusted credential:" >&2
        head -4 "$tdir/cstorm.1" >&2
        exit 1
    fi
    if ! grep -q "^counter cstorm.flows.established = " "$tdir/cstorm.1" || \
       grep -q "^counter cstorm.gw.waves = 0$" "$tdir/cstorm.1"; then
        echo "FAIL: crypto_storm established nothing or never batched a wave:" >&2
        cat "$tdir/cstorm.1" >&2
        exit 1
    fi
    echo "ok: $(head -1 "$tdir/cstorm.1") (byte-identical across two runs)"
}

# Replay the chaos flows from the pinned seed, regenerate the
# flow-metrics tables, and require the committed EXPERIMENTS.md to
# already match — deterministic metrics mean any diff is real drift.
stage_drift() {
    rm -rf target/bench-smoke
    GRIDSEC_REGEN_SKIP_BENCH=1 GRIDSEC_BENCH_DIR=target/bench-smoke \
        scripts/regen_experiments.sh > /dev/null
    if ! git diff --exit-code -- EXPERIMENTS.md; then
        echo "FAIL: EXPERIMENTS.md flow metrics drifted from the pinned seed;" >&2
        echo "      run scripts/regen_experiments.sh and commit the result" >&2
        exit 1
    fi
    echo "ok: EXPERIMENTS.md matches regenerated flow metrics"
}

# ---------------------------------------------------------------------------
# Stage runner
# ---------------------------------------------------------------------------

ALL_STAGES="grep_guard fmt build clippy test examples chaos crash_chaos \
striped_chaos cred_chaos perf_guard vo_storm handshake_storm striped_xfer \
crypto_storm drift"
if [ "${GRIDSEC_VERIFY_DEEP:-0}" = "1" ]; then
    ALL_STAGES="$ALL_STAGES deep_matrix"
fi

selected=()
while [ "$#" -gt 0 ]; do
    case "$1" in
        --stage)
            [ "$#" -ge 2 ] || { echo "--stage needs a name" >&2; exit 2; }
            selected+=("$2")
            shift 2
            ;;
        --list)
            for s in $ALL_STAGES; do echo "$s"; done
            exit 0
            ;;
        *)
            echo "unknown argument: $1 (try --list)" >&2
            exit 2
            ;;
    esac
done
if [ "${#selected[@]}" -eq 0 ]; then
    read -ra selected <<< "$ALL_STAGES"
fi
for s in "${selected[@]}"; do
    case " $ALL_STAGES " in
        *" $s "*) ;;
        *) echo "unknown stage: $s (try --list)" >&2; exit 2 ;;
    esac
done

{
    echo "### verify.sh stage timings"
    echo ""
    echo "| stage | wall (s) |"
    echo "|---|---|"
} > "$timings"

for s in "${selected[@]}"; do
    echo "== stage: $s =="
    t0=$(date +%s)
    "stage_$s"
    t1=$(date +%s)
    echo "| $s | $((t1 - t0)) |" >> "$timings"
    echo "-- stage $s done in $((t1 - t0))s"
done

echo ""
cat "$timings"
echo ""
echo "verify.sh: all selected stages passed ($timings)"
