#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build and test entirely
# offline, no manifest may declare a registry (crates.io) dependency,
# formatting and clippy must be clean, every example must run, the seeded
# chaos suite must be deterministic (same seed -> byte-identical event
# transcript AND trace dump across two fresh processes) — both the
# network-faults-only profile and the combined crash/restart profile
# (seeded process kills + write-ahead-journal recovery) — and the
# committed EXPERIMENTS.md flow-metrics tables must match what the
# pinned seed regenerates (drift gate).
#
# Knobs:
#   GRIDSEC_CHAOS_SEED   seed for the chaos stages (default pinned below)
#   GRIDSEC_VERIFY_DEEP=1  elevate property-test case counts
#                          (GRIDSEC_PT_CASES) and sweep a crash-schedule
#                          seed matrix
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${GRIDSEC_VERIFY_DEEP:-0}" = "1" ]; then
    # Deep mode: drive every `check` property through far more cases.
    export GRIDSEC_PT_CASES="${GRIDSEC_PT_CASES:-2000}"
    echo "== deep mode: GRIDSEC_PT_CASES=$GRIDSEC_PT_CASES =="
fi

echo "== grep guard: no registry dependencies =="
# The seven dependencies removed in the hermetic-build change must not return.
if grep -rE '^(parking_lot|crossbeam|rand|bytes|serde|proptest|criterion)\b' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: banned registry dependency declared above" >&2
    exit 1
fi
# More generally: every dependency entry must be a path or workspace dep.
# Scan [dependencies]/[dev-dependencies]/[build-dependencies] sections for
# entries that reference neither `path =` nor `workspace = true`.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    while IFS= read -r line; do
        echo "FAIL: non-path dependency in $manifest: $line" >&2
        bad=1
    done < <(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
        in_deps && /^[A-Za-z0-9_-]+ *=/ && !/path *=/ && !/workspace *= *true/ { print }
    ' "$manifest")
done
[ "$bad" -eq 0 ] || exit 1
echo "ok"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --offline -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== examples smoke: every example must run clean =="
for example in quickstart credential_bridging gram_job vo_collaboration; do
    echo "-- example $example"
    cargo run -q --offline --release -p gridsec-gsi --example "$example" > /dev/null
done
echo "ok"

echo "== chaos determinism: same seed, byte-identical transcripts + traces =="
chaos_seed="${GRIDSEC_CHAOS_SEED:-0xC4A05EED}"
tdir="$(mktemp -d)"
trap 'rm -rf "$tdir"' EXIT
for run in 1 2; do
    GRIDSEC_CHAOS_SEED="$chaos_seed" \
    GRIDSEC_CHAOS_TRANSCRIPT="$tdir/transcript.$run" \
    GRIDSEC_CHAOS_TRACE="$tdir/trace.$run" \
        cargo test -q --offline -p gridsec-integration --test chaos -- \
        same_seed_reproduces_byte_identical > /dev/null
done
if ! cmp -s "$tdir/transcript.1" "$tdir/transcript.2"; then
    echo "FAIL: chaos transcripts differ across runs with seed $chaos_seed" >&2
    diff "$tdir/transcript.1" "$tdir/transcript.2" | head -20 >&2 || true
    exit 1
fi
if ! cmp -s "$tdir/trace.1" "$tdir/trace.2"; then
    echo "FAIL: chaos trace dumps differ across runs with seed $chaos_seed" >&2
    diff "$tdir/trace.1" "$tdir/trace.2" | head -20 >&2 || true
    exit 1
fi
lines=$(wc -l < "$tdir/transcript.1")
tlines=$(wc -l < "$tdir/trace.1")
echo "ok: $lines transcript + $tlines trace lines identical across two runs (seed $chaos_seed)"

echo "== crash-chaos determinism: seeded kills, byte-identical across two processes =="
# Same two-process gate, with every service additionally running under a
# seeded CrashPlan (kills at injection points mid-request + journal
# recovery). The transcript now carries crash/restart events; both it
# and the trace dump must still be pure functions of the seed.
for run in 1 2; do
    GRIDSEC_CHAOS_SEED="$chaos_seed" \
    GRIDSEC_CRASH_TRANSCRIPT="$tdir/crash-transcript.$run" \
    GRIDSEC_CRASH_TRACE="$tdir/crash-trace.$run" \
        cargo test -q --offline -p gridsec-integration --test chaos -- \
        crash_chaos_same_seed_is_byte_identical > /dev/null
done
if ! cmp -s "$tdir/crash-transcript.1" "$tdir/crash-transcript.2"; then
    echo "FAIL: crash-chaos transcripts differ across runs with seed $chaos_seed" >&2
    diff "$tdir/crash-transcript.1" "$tdir/crash-transcript.2" | head -20 >&2 || true
    exit 1
fi
if ! cmp -s "$tdir/crash-trace.1" "$tdir/crash-trace.2"; then
    echo "FAIL: crash-chaos trace dumps differ across runs with seed $chaos_seed" >&2
    diff "$tdir/crash-trace.1" "$tdir/crash-trace.2" | head -20 >&2 || true
    exit 1
fi
if ! grep -q "crash svc=" "$tdir/crash-transcript.1"; then
    echo "FAIL: crash stage drew no crashes — the gate is vacuous" >&2
    exit 1
fi
clines=$(wc -l < "$tdir/crash-transcript.1")
echo "ok: $clines crash-transcript lines identical across two runs (seed $chaos_seed)"

if [ "${GRIDSEC_VERIFY_DEEP:-0}" = "1" ]; then
    echo "== deep: crash-schedule seed matrix =="
    # Sweep a fixed matrix of crash seeds: each must complete every flow
    # (recovery works wherever the kills land) and replay byte-identically
    # within the process (asserted by the test itself, twice per seed).
    for s in 0xC4A05EED 0x1 0xDEADBEEF 0xA5A5A5A5 0x7777777777777777; do
        echo "-- crash seed $s"
        GRIDSEC_CHAOS_SEED="$s" \
            cargo test -q --offline -p gridsec-integration --test chaos -- \
            all_flows_complete_under_combined_crash_and_loss \
            crash_chaos_same_seed_is_byte_identical > /dev/null
    done
    echo "ok: crash seed matrix complete"
fi

echo "== bench smoke: perf guard (resumed < full, montgomery < classic, batched >= 2x) =="
# Offline micro-gate on the three amortization claims: the Montgomery
# modexp kernel must beat the classic window reference on 512-bit
# sign-shaped operands, the abbreviated (resumed) handshake must beat
# the full asymmetric handshake, and a HandshakeMill batched wave must
# accept at >=2x the per-session, cleared-registry baseline rate
# (DESIGN.md §13.4). Median-of-N timings; genuine wins are
# several-fold, so this does not flake on scheduler noise.
cargo run -q --offline --release -p gridsec-bench --bin perf_guard

echo "== vo_storm smoke: 2000-principal storm, two-run byte-identical metrics =="
# Reduced-scale run of the discrete-event VO storm (the bench bin
# defaults to 10^5 principals; see bench-results/after/BENCH_vo_storm.json
# for the full-scale record). Every metric except wall time must be a
# pure function of the seed across two fresh processes, and every flow
# must reach a verdict.
for run in 1 2; do
    GRIDSEC_STORM_PRINCIPALS="${GRIDSEC_STORM_PRINCIPALS:-2000}" \
    GRIDSEC_BENCH_DIR="$tdir" \
        cargo run -q --offline --release -p gridsec-bench --bin vo_storm -- \
        --metrics-out "$tdir/storm.$run" > /dev/null
done
if ! cmp -s "$tdir/storm.1" "$tdir/storm.2"; then
    echo "FAIL: vo_storm metrics differ across two runs of the same seed" >&2
    diff "$tdir/storm.1" "$tdir/storm.2" | head -20 >&2 || true
    exit 1
fi
if ! head -1 "$tdir/storm.1" | grep -q " failed=0 "; then
    echo "FAIL: vo_storm flows exhausted their retry budget:" >&2
    head -1 "$tdir/storm.1" >&2
    exit 1
fi
echo "ok: $(head -1 "$tdir/storm.1") (byte-identical across two runs)"

echo "== handshake_storm smoke: 400-session wave, two-run byte-identical metrics =="
# Reduced-scale run of the batched-handshake storm (the bench bin
# defaults to 10^4 sessions; bench-results/after/BENCH_handshake_storm.json
# records the full-scale run and its ~2x speedup — the timing claim
# itself is gated by perf_guard above). Every metric except wall time
# must be a pure function of the seed across two fresh processes.
for run in 1 2; do
    GRIDSEC_BENCH_DIR="$tdir" \
        cargo run -q --offline --release -p gridsec-bench --bin handshake_storm -- \
        --sessions "${GRIDSEC_STORM_SESSIONS:-400}" --clients 16 --wave 64 \
        --baseline-sessions 100 --metrics-out "$tdir/hstorm.$run" > /dev/null
done
if ! cmp -s "$tdir/hstorm.1" "$tdir/hstorm.2"; then
    echo "FAIL: handshake_storm metrics differ across two runs of the same seed" >&2
    diff "$tdir/hstorm.1" "$tdir/hstorm.2" | head -20 >&2 || true
    exit 1
fi
if ! grep -q "^counter storm.completed = " "$tdir/hstorm.1" || \
   grep -q "^counter storm.completed = 0$" "$tdir/hstorm.1"; then
    echo "FAIL: handshake_storm completed no end-to-end sessions:" >&2
    cat "$tdir/hstorm.1" >&2
    exit 1
fi
echo "ok: $(head -1 "$tdir/hstorm.1") (byte-identical across two runs)"

echo "== bench smoke: flow metrics drift gate on EXPERIMENTS.md =="
# Replay the chaos flows from the pinned seed, regenerate the
# flow-metrics tables, and require the committed EXPERIMENTS.md to
# already match — deterministic metrics mean any diff is real drift.
rm -rf target/bench-smoke
GRIDSEC_REGEN_SKIP_BENCH=1 GRIDSEC_BENCH_DIR=target/bench-smoke \
    scripts/regen_experiments.sh > /dev/null
if ! git diff --exit-code -- EXPERIMENTS.md; then
    echo "FAIL: EXPERIMENTS.md flow metrics drifted from the pinned seed;" >&2
    echo "      run scripts/regen_experiments.sh and commit the result" >&2
    exit 1
fi
echo "ok: EXPERIMENTS.md matches regenerated flow metrics"

echo "verify.sh: all checks passed"
