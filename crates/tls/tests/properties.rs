//! Property tests for the secure channel: any message sequence
//! roundtrips; any single corruption is caught.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_tls::channel::SecureChannel;
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// Build a fresh channel pair per test case (channels are stateful).
fn channel_pair(seed: u64) -> (SecureChannel, SecureChannel) {
    // Cache the expensive world (CA + creds) once; handshakes are cheap.
    struct World {
        client_cfg: TlsConfig,
        server_cfg: TlsConfig,
    }
    static W: OnceLock<World> = OnceLock::new();
    let w = W.get_or_init(|| {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls proptest world");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=T/CN=CA").unwrap(),
            512,
            0,
            1_000_000,
        );
        let a = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=T/CN=A").unwrap(),
            512,
            0,
            1_000_000,
        );
        let b = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=T/CN=B").unwrap(),
            512,
            0,
            1_000_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            client_cfg: TlsConfig::new(a, trust.clone(), 10),
            server_cfg: TlsConfig::new(b, trust, 10),
        }
    });
    static RNG: OnceLock<Mutex<ChaChaRng>> = OnceLock::new();
    let rng = RNG.get_or_init(|| Mutex::new(ChaChaRng::from_seed_bytes(b"tls proptest rng")));
    let mut rng = rng.lock().unwrap();
    let _ = seed;
    handshake_in_memory(w.client_cfg.clone(), w.server_cfg.clone(), &mut *rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_message_sequence_roundtrips(
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..8),
        seed in any::<u64>(),
    ) {
        let (mut c, mut s) = channel_pair(seed);
        for (i, m) in messages.iter().enumerate() {
            if i % 2 == 0 {
                let sealed = c.seal(m);
                prop_assert_eq!(&s.open(&sealed).unwrap(), m);
            } else {
                let sealed = s.seal(m);
                prop_assert_eq!(&c.open(&sealed).unwrap(), m);
            }
        }
    }

    #[test]
    fn any_bitflip_is_detected(
        msg in prop::collection::vec(any::<u8>(), 1..128),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        let (mut c, mut s) = channel_pair(seed);
        let mut sealed = c.seal(&msg);
        let idx = ((sealed.len() as f64) * byte_frac) as usize % sealed.len();
        sealed[idx] ^= 1 << bit;
        prop_assert!(s.open(&sealed).is_err());
    }

    #[test]
    fn mic_agrees_for_any_message(msg in prop::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        let (mut c, mut s) = channel_pair(seed);
        let mic = c.get_mic(&msg);
        prop_assert!(s.verify_mic(&msg, &mic).is_ok());
        // A different message never verifies against the same MIC.
        let mut other = msg.clone();
        other.push(0);
        let mic2 = c.get_mic(&other);
        prop_assert!(s.verify_mic(&msg, &mic2).is_err());
    }
}
