//! Property tests for the secure channel: any message sequence
//! roundtrips; any single corruption is caught.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_tls::channel::SecureChannel;
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use gridsec_util::check::check;
use std::sync::{Mutex, OnceLock};

const CASES: u64 = 16;

/// Build a fresh channel pair per test case (channels are stateful).
fn channel_pair() -> (SecureChannel, SecureChannel) {
    // Cache the expensive world (CA + creds) once; handshakes are cheap.
    struct World {
        client_cfg: TlsConfig,
        server_cfg: TlsConfig,
    }
    static W: OnceLock<World> = OnceLock::new();
    let w = W.get_or_init(|| {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls proptest world");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=T/CN=CA").unwrap(),
            512,
            0,
            1_000_000,
        );
        let a = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=T/CN=A").unwrap(),
            512,
            0,
            1_000_000,
        );
        let b = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=T/CN=B").unwrap(),
            512,
            0,
            1_000_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            client_cfg: TlsConfig::new(a, trust.clone(), 10),
            server_cfg: TlsConfig::new(b, trust, 10),
        }
    });
    static RNG: OnceLock<Mutex<ChaChaRng>> = OnceLock::new();
    let rng = RNG.get_or_init(|| Mutex::new(ChaChaRng::from_seed_bytes(b"tls proptest rng")));
    let mut rng = rng.lock().unwrap();
    handshake_in_memory(w.client_cfg.clone(), w.server_cfg.clone(), &mut *rng).unwrap()
}

#[test]
fn any_message_sequence_roundtrips() {
    check("any_message_sequence_roundtrips", CASES, |g| {
        let messages = g.vec(1..8, |g| g.bytes(0..256));
        let (mut c, mut s) = channel_pair();
        for (i, m) in messages.iter().enumerate() {
            if i % 2 == 0 {
                let sealed = c.seal(m);
                assert_eq!(&s.open(&sealed).unwrap(), m);
            } else {
                let sealed = s.seal(m);
                assert_eq!(&c.open(&sealed).unwrap(), m);
            }
        }
    });
}

#[test]
fn any_bitflip_is_detected() {
    check("any_bitflip_is_detected", CASES, |g| {
        let msg = g.bytes(1..128);
        let byte_frac = g.f64_unit();
        let bit = g.u8_in(0..8);
        let (mut c, mut s) = channel_pair();
        let mut sealed = c.seal(&msg);
        let idx = ((sealed.len() as f64) * byte_frac) as usize % sealed.len();
        sealed[idx] ^= 1 << bit;
        assert!(s.open(&sealed).is_err());
    });
}

#[test]
fn mic_agrees_for_any_message() {
    check("mic_agrees_for_any_message", CASES, |g| {
        let msg = g.bytes(0..256);
        let (mut c, mut s) = channel_pair();
        let mic = c.get_mic(&msg);
        assert!(s.verify_mic(&msg, &mic).is_ok());
        // A different message never verifies against the same MIC.
        let mut other = msg.clone();
        other.push(0);
        let mic2 = c.get_mic(&other);
        assert!(s.verify_mic(&msg, &mic2).is_err());
    });
}
