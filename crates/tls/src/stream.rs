//! GT2 mode: the handshake tokens and sealed records pumped over a
//! blocking byte stream with `u32` length-prefix framing.
//!
//! This is the *compatibility shim* over the sans-io state machines in
//! [`crate::records`]: the protocol logic lives there; this module only
//! moves bytes — [`read_frame`] blocks for one frame, feeds it to the
//! machine, and [`write_frame`] transmits whatever the machine
//! returned. Wire bytes are identical to the pre-sans-io implementation
//! (same frames, same write pattern: one length write + one payload
//! write per frame, which the seeded loss layer's per-write draws
//! depend on).

use std::io::{Read, Write};

use gridsec_bignum::prime::EntropySource;

use crate::channel::SecureChannel;
use crate::handshake::TlsConfig;
use crate::records::{frame, Accepted, ClientConnector, RecordSession, ServerAcceptor};
use crate::TlsError;

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), TlsError> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, TlsError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > crate::records::MAX_FRAME {
        return Err(TlsError::Protocol("frame too large"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// A secured message stream: a [`RecordSession`] bound to a transport.
pub struct SecureStream<S> {
    stream: S,
    session: RecordSession,
}

impl<S: Read + Write> SecureStream<S> {
    /// The authenticated peer identity.
    pub fn peer(&self) -> &gridsec_pki::validate::ValidatedIdentity {
        self.session.peer()
    }

    /// Seal and send one message.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), TlsError> {
        let sealed = self.session.send(plaintext);
        write_frame(&mut self.stream, &sealed)
    }

    /// Receive and open one message.
    pub fn recv(&mut self) -> Result<Vec<u8>, TlsError> {
        let sealed = read_frame(&mut self.stream)?;
        self.session.open(&sealed)
    }

    /// Split back into transport + channel (used by delegation, which
    /// needs raw channel access).
    pub fn into_parts(self) -> (S, SecureChannel) {
        (self.stream, self.session.into_channel())
    }
}

/// Client side: run the handshake over `stream` and return the secured
/// stream.
pub fn client_connect<S: Read + Write, E: EntropySource>(
    mut stream: S,
    config: TlsConfig,
    rng: &mut E,
) -> Result<SecureStream<S>, TlsError> {
    let (mut conn, hello) = ClientConnector::new(config, rng);
    write_frame(&mut stream, &hello)?;
    let server_hello = read_frame(&mut stream)?;
    conn.feed(&frame(&server_hello));
    let (finished, session) = conn
        .advance()?
        .expect("a complete frame was fed; the machine must advance");
    write_frame(&mut stream, &finished)?;
    Ok(SecureStream { stream, session })
}

/// Server side: accept a handshake over `stream`.
pub fn server_accept<S: Read + Write, E: EntropySource>(
    mut stream: S,
    config: TlsConfig,
    rng: &mut E,
) -> Result<SecureStream<S>, TlsError> {
    let mut acceptor = ServerAcceptor::new(config);
    let hello = read_frame(&mut stream)?;
    acceptor.feed(&frame(&hello));
    let server_hello = match acceptor.advance(rng)? {
        Accepted::Respond(token) => token,
        _ => return Err(TlsError::Protocol("acceptor did not respond to hello")),
    };
    write_frame(&mut stream, &server_hello)?;
    let finished = read_frame(&mut stream)?;
    acceptor.feed(&frame(&finished));
    let session = match acceptor.advance(rng)? {
        Accepted::Established(session) => *session,
        _ => return Err(TlsError::Protocol("acceptor did not establish")),
    };
    Ok(SecureStream { stream, session })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::net::{with_stream_pump, Network, SimStream, StreamPair};
    use gridsec_testbed::sched::{Scheduler, Step, TaskCx};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn configs() -> (TlsConfig, TlsConfig) {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls stream tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_identity(&mut rng, dn("/O=G/CN=Srv"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        (
            TlsConfig::new(alice, trust.clone(), 100),
            TlsConfig::new(server, trust, 100),
        )
    }

    /// A one-request echo server as a scheduler task: sans-io TLS over
    /// a [`SimStream`], no thread, no blocking read.
    fn spawn_echo_server(
        sched: &mut Scheduler,
        net: &Network,
        mailbox: &'static str,
        mut stream: SimStream,
        config: TlsConfig,
        seen_peer: Rc<RefCell<Option<String>>>,
    ) {
        stream.wake_on_readable(net, mailbox);
        let mut rng = ChaChaRng::from_seed_bytes(b"server rng");
        let mut acceptor = Some(ServerAcceptor::new(config));
        let mut session: Option<RecordSession> = None;
        sched.spawn_mailbox(mailbox, move |_cx: &TaskCx| {
            let mut tmp = [0u8; 4096];
            loop {
                match stream.try_read(&mut tmp) {
                    Ok(Some(0)) | Err(_) => return Step::Done,
                    Ok(Some(n)) => match (&mut session, &mut acceptor) {
                        (Some(s), _) => s.feed(&tmp[..n]),
                        (None, Some(a)) => a.feed(&tmp[..n]),
                        (None, None) => unreachable!("acceptor lives until establishment"),
                    },
                    Ok(None) => break,
                }
            }
            if session.is_none() {
                loop {
                    match acceptor.as_mut().unwrap().advance(&mut rng).unwrap() {
                        Accepted::Pending => break,
                        Accepted::Respond(token) => write_frame(&mut stream, &token).unwrap(),
                        Accepted::Established(s) => {
                            session = Some(*s);
                            acceptor = None;
                            break;
                        }
                    }
                }
            }
            if let Some(s) = session.as_mut() {
                if let Some(req) = s.next_message().unwrap() {
                    assert_eq!(req, b"submit job");
                    *seen_peer.borrow_mut() = Some(s.peer().base_identity.to_string());
                    let sealed = s.send(b"job accepted");
                    write_frame(&mut stream, &sealed).unwrap();
                    return Step::Done;
                }
            }
            Step::WaitMail { deadline: None }
        });
    }

    #[test]
    fn full_duplex_over_sim_stream() {
        let (client_cfg, server_cfg) = configs();
        let net = Network::new();
        let (a, b, stats) = StreamPair::new();
        let seen = Rc::new(RefCell::new(None));
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        spawn_echo_server(
            &mut sched.borrow_mut(),
            &net,
            "tls-server",
            b,
            server_cfg,
            seen.clone(),
        );
        let pump_sched = sched.clone();
        let (reply, peer) = with_stream_pump(
            move || pump_sched.borrow_mut().pump(),
            move || {
                let mut rng = ChaChaRng::from_seed_bytes(b"client rng");
                let mut cs = client_connect(a, client_cfg, &mut rng).unwrap();
                cs.send(b"submit job").unwrap();
                let reply = cs.recv().unwrap();
                (reply, cs.peer().base_identity.to_string())
            },
        );
        assert_eq!(reply, b"job accepted");
        assert_eq!(peer, "/O=G/CN=Srv");
        assert_eq!(
            seen.borrow().as_deref(),
            Some("/O=G/CN=Alice"),
            "server task authenticated the client"
        );
        // Handshake + 2 app messages crossed the wire.
        assert!(stats.snapshot().bytes > 0);
    }

    #[test]
    fn frame_roundtrip() {
        let (mut a, mut b, _) = StreamPair::new();
        write_frame(&mut a, b"frame one").unwrap();
        write_frame(&mut a, b"").unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), b"frame one");
        assert_eq!(read_frame(&mut b).unwrap(), b"");
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, mut b, _) = StreamPair::new();
        use std::io::Write;
        a.write_all(&u32::MAX.to_be_bytes()).unwrap();
        assert!(matches!(
            read_frame(&mut b),
            Err(TlsError::Protocol("frame too large"))
        ));
    }

    #[test]
    fn truncated_stream_errors() {
        let (mut a, mut b, _) = StreamPair::new();
        use std::io::Write;
        a.write_all(&8u32.to_be_bytes()).unwrap();
        a.write_all(b"ab").unwrap();
        drop(a);
        assert!(matches!(read_frame(&mut b), Err(TlsError::Io(_))));
    }
}
