//! GT2 mode: the handshake tokens and sealed records pumped over a
//! blocking byte stream with `u32` length-prefix framing.

use std::io::{Read, Write};

use gridsec_bignum::prime::EntropySource;

use crate::channel::SecureChannel;
use crate::handshake::{ClientHandshake, ServerHandshake, TlsConfig};
use crate::TlsError;

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), TlsError> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, TlsError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    const MAX_FRAME: usize = 64 * 1024 * 1024;
    if len > MAX_FRAME {
        return Err(TlsError::Protocol("frame too large"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// A secured message stream: a [`SecureChannel`] bound to a transport.
pub struct SecureStream<S> {
    stream: S,
    channel: SecureChannel,
}

impl<S: Read + Write> SecureStream<S> {
    /// The authenticated peer identity.
    pub fn peer(&self) -> &gridsec_pki::validate::ValidatedIdentity {
        &self.channel.peer
    }

    /// Seal and send one message.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), TlsError> {
        let sealed = self.channel.seal(plaintext);
        write_frame(&mut self.stream, &sealed)
    }

    /// Receive and open one message.
    pub fn recv(&mut self) -> Result<Vec<u8>, TlsError> {
        let sealed = read_frame(&mut self.stream)?;
        self.channel.open(&sealed)
    }

    /// Split back into transport + channel (used by delegation, which
    /// needs raw channel access).
    pub fn into_parts(self) -> (S, SecureChannel) {
        (self.stream, self.channel)
    }
}

/// Client side: run the handshake over `stream` and return the secured
/// stream.
pub fn client_connect<S: Read + Write, E: EntropySource>(
    mut stream: S,
    config: TlsConfig,
    rng: &mut E,
) -> Result<SecureStream<S>, TlsError> {
    let (hs, hello) = ClientHandshake::new(config, rng);
    write_frame(&mut stream, &hello)?;
    let server_hello = read_frame(&mut stream)?;
    let (finished, channel) = hs.step(&server_hello)?;
    write_frame(&mut stream, &finished)?;
    Ok(SecureStream { stream, channel })
}

/// Server side: accept a handshake over `stream`.
pub fn server_accept<S: Read + Write, E: EntropySource>(
    mut stream: S,
    config: TlsConfig,
    rng: &mut E,
) -> Result<SecureStream<S>, TlsError> {
    let hello = read_frame(&mut stream)?;
    let hs = ServerHandshake::new(config);
    let (server_hello, await_finished) = hs.step(rng, &hello)?;
    write_frame(&mut stream, &server_hello)?;
    let finished = read_frame(&mut stream)?;
    let channel = await_finished.step(&finished)?;
    Ok(SecureStream { stream, channel })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::net::StreamPair;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn configs() -> (TlsConfig, TlsConfig) {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls stream tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_identity(&mut rng, dn("/O=G/CN=Srv"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        (
            TlsConfig::new(alice, trust.clone(), 100),
            TlsConfig::new(server, trust, 100),
        )
    }

    #[test]
    fn full_duplex_over_sim_stream() {
        let (client_cfg, server_cfg) = configs();
        let (a, b, stats) = StreamPair::new();

        let server_thread = std::thread::spawn(move || {
            let mut rng = ChaChaRng::from_seed_bytes(b"server rng");
            let mut ss = server_accept(b, server_cfg, &mut rng).unwrap();
            let req = ss.recv().unwrap();
            assert_eq!(req, b"submit job");
            ss.send(b"job accepted").unwrap();
            ss.peer().base_identity.to_string()
        });

        let mut rng = ChaChaRng::from_seed_bytes(b"client rng");
        let mut cs = client_connect(a, client_cfg, &mut rng).unwrap();
        cs.send(b"submit job").unwrap();
        assert_eq!(cs.recv().unwrap(), b"job accepted");
        assert_eq!(cs.peer().base_identity, dn("/O=G/CN=Srv"));

        let client_seen_by_server = server_thread.join().unwrap();
        assert_eq!(client_seen_by_server, "/O=G/CN=Alice");
        // Handshake + 2 app messages crossed the wire.
        assert!(stats.snapshot().bytes > 0);
    }

    #[test]
    fn frame_roundtrip() {
        let (mut a, mut b, _) = StreamPair::new();
        write_frame(&mut a, b"frame one").unwrap();
        write_frame(&mut a, b"").unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), b"frame one");
        assert_eq!(read_frame(&mut b).unwrap(), b"");
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, mut b, _) = StreamPair::new();
        use std::io::Write;
        a.write_all(&u32::MAX.to_be_bytes()).unwrap();
        assert!(matches!(
            read_frame(&mut b),
            Err(TlsError::Protocol("frame too large"))
        ));
    }

    #[test]
    fn truncated_stream_errors() {
        let (mut a, mut b, _) = StreamPair::new();
        use std::io::Write;
        a.write_all(&8u32.to_be_bytes()).unwrap();
        a.write_all(b"ab").unwrap();
        drop(a);
        assert!(matches!(read_frame(&mut b), Err(TlsError::Io(_))));
    }
}
