//! Token-driven mutual-authentication handshake (DHE-RSA shape).
//!
//! Three tokens establish a context:
//!
//! 1. **ClientHello** — client random, ephemeral DH share, certificate
//!    chain, and a signature by the client's certificate key binding the
//!    share (proves the share was minted by the credential holder).
//! 2. **ServerHello** — server random, ephemeral DH share, chain, a
//!    signature binding *both* randoms and *both* shares (prevents
//!    replay), and the server Finished MAC under the derived master
//!    secret.
//! 3. **ClientFinished** — the client Finished MAC; its verification
//!    completes *mutual* authentication (only the genuine client could
//!    derive the master secret for the share it signed).
//!
//! Tokens carry no transport framing: `stream` pumps them over byte
//! streams (GT2 / TCP) and `gridsec-wsse` carries the very same bytes in
//! WS-Trust SOAP envelopes (GT3) — the token-compatibility property the
//! paper states in §5.1 and experiment C1 checks byte-for-byte.

use std::sync::{Arc, Mutex};

use gridsec_bignum::prime::EntropySource;
use gridsec_bignum::BigUint;
use gridsec_crypto::ct::ct_eq;
use gridsec_crypto::dh::{DhGroup, DhKeyPair};
use gridsec_crypto::hmac::{hkdf_expand, hkdf_extract, PrimedHmac};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::sha256::sha256;
use gridsec_pki::cert::Certificate;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::{validate_chain_with_crls, ValidatedIdentity};
use gridsec_pki::PkiError;

use crate::channel::SecureChannel;
use crate::pool::CryptoPool;
use crate::session::ResumptionData;
use crate::TlsError;

/// Handshake configuration shared by both sides.
#[derive(Clone)]
pub struct TlsConfig {
    /// Local credential used to authenticate.
    pub credential: Credential,
    /// Trust anchors for validating the peer.
    pub trust: TrustStore,
    /// Revocation state (empty by default).
    pub crls: CrlStore,
    /// Current time for validity checking.
    pub now: u64,
    /// Diffie–Hellman group (defaults to the fast 256-bit test group; use
    /// [`DhGroup::modp2048`] for realistically-sized handshakes).
    pub group: DhGroup,
    /// How long a completed handshake stays resumable (see
    /// [`crate::session`]). Measured in the same units as `now`.
    pub session_lifetime: u64,
    /// Optional shared crypto state (see [`crate::pool`]). When set,
    /// chain validation and binding-signature verification route
    /// through the pool's cached validator and shared verify contexts;
    /// verdicts are identical to the pool-less path.
    pub pool: Option<Arc<Mutex<CryptoPool>>>,
}

impl TlsConfig {
    /// Config with the fast test DH group and no CRLs.
    pub fn new(credential: Credential, trust: TrustStore, now: u64) -> Self {
        TlsConfig {
            credential,
            trust,
            crls: CrlStore::new(),
            now,
            group: DhGroup::test_group_256(),
            session_lifetime: crate::session::DEFAULT_SESSION_LIFETIME,
            pool: None,
        }
    }

    /// Builder: share crypto state across handshakes (see
    /// [`crate::pool`]). Clones of the config share the same pool.
    pub fn with_pool(mut self, pool: Arc<Mutex<CryptoPool>>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Validate a peer chain — through the pool when one is attached.
    fn validate_peer(&self, chain: &[Certificate]) -> Result<ValidatedIdentity, TlsError> {
        let identity = match &self.pool {
            Some(pool) => pool.lock().expect("crypto pool lock").validate(
                chain,
                &self.trust,
                &self.crls,
                self.now,
            )?,
            None => validate_chain_with_crls(chain, &self.trust, &self.crls, self.now)?,
        };
        Ok(identity)
    }

    /// Verify a hello-binding signature — through the pool's shared
    /// contexts when one is attached.
    fn verify_binding(
        &self,
        key: &gridsec_crypto::rsa::RsaPublicKey,
        msg: &[u8],
        sig: &[u8],
    ) -> bool {
        match &self.pool {
            Some(pool) => pool
                .lock()
                .expect("crypto pool lock")
                .verify_binding(key, msg, sig),
            None => key.verify_pkcs1_sha256(msg, sig),
        }
    }

    /// Builder: select a DH group.
    pub fn with_group(mut self, group: DhGroup) -> Self {
        self.group = group;
        self
    }

    /// Builder: supply revocation state.
    pub fn with_crls(mut self, crls: CrlStore) -> Self {
        self.crls = crls;
        self
    }

    /// Builder: override the session resumption lifetime.
    pub fn with_session_lifetime(mut self, lifetime: u64) -> Self {
        self.session_lifetime = lifetime;
        self
    }
}

// ----------------------------------------------------------------------
// Wire messages
// ----------------------------------------------------------------------

struct ClientHello {
    client_random: [u8; 32],
    dh_public: BigUint,
    chain: Vec<Certificate>,
    signature: Vec<u8>,
}

struct ServerHello {
    server_random: [u8; 32],
    dh_public: BigUint,
    chain: Vec<Certificate>,
    signature: Vec<u8>,
    finished_mac: [u8; 32],
}

struct ClientFinished {
    mac: [u8; 32],
}

pub(crate) fn get_array32(dec: &mut Decoder<'_>) -> Result<[u8; 32], PkiError> {
    dec.get_bytes()?
        .try_into()
        .map_err(|_| PkiError::Decode("expected 32 bytes"))
}

impl Codec for ClientHello {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(1); // token type tag
        enc.put_bytes(&self.client_random);
        enc.put_biguint(&self.dh_public);
        enc.put_seq(&self.chain, |e, c| c.encode(e));
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        if dec.get_u8()? != 1 {
            return Err(PkiError::Decode("not a ClientHello token"));
        }
        Ok(ClientHello {
            client_random: get_array32(dec)?,
            dh_public: dec.get_biguint()?,
            chain: dec.get_seq(Certificate::decode)?,
            signature: dec.get_bytes()?,
        })
    }
}

impl Codec for ServerHello {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(2);
        enc.put_bytes(&self.server_random);
        enc.put_biguint(&self.dh_public);
        enc.put_seq(&self.chain, |e, c| c.encode(e));
        enc.put_bytes(&self.signature);
        enc.put_bytes(&self.finished_mac);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        if dec.get_u8()? != 2 {
            return Err(PkiError::Decode("not a ServerHello token"));
        }
        Ok(ServerHello {
            server_random: get_array32(dec)?,
            dh_public: dec.get_biguint()?,
            chain: dec.get_seq(Certificate::decode)?,
            signature: dec.get_bytes()?,
            finished_mac: get_array32(dec)?,
        })
    }
}

impl Codec for ClientFinished {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(3);
        enc.put_bytes(&self.mac);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        if dec.get_u8()? != 3 {
            return Err(PkiError::Decode("not a ClientFinished token"));
        }
        Ok(ClientFinished {
            mac: get_array32(dec)?,
        })
    }
}

// ----------------------------------------------------------------------
// Key schedule
// ----------------------------------------------------------------------

pub(crate) struct KeySchedule {
    pub(crate) master: [u8; 32],
    pub(crate) key_block: Vec<u8>,
    /// Master-keyed HMAC schedule, primed once: the Finished MACs and
    /// the resumption ticket are all keyed by the master secret, so the
    /// padded-key absorption is paid once per handshake instead of once
    /// per MAC (the symmetric analogue of the fixed-base DH precomp).
    primed: PrimedHmac,
    transcript: [u8; 32],
    server_random: [u8; 32],
}

impl KeySchedule {
    pub(crate) fn derive(
        shared_secret: &[u8],
        client_random: &[u8; 32],
        server_random: &[u8; 32],
        client_hello_bytes: &[u8],
    ) -> Self {
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(client_random);
        salt.extend_from_slice(server_random);
        let master = hkdf_extract(&salt, shared_secret);
        let transcript = sha256(client_hello_bytes);
        let mut info = b"gsi tls key expansion".to_vec();
        info.extend_from_slice(&transcript);
        let key_block = hkdf_expand(&master, &info, crate::channel::KEY_BLOCK_LEN);
        let primed = PrimedHmac::new(&master);
        KeySchedule {
            master,
            key_block,
            primed,
            transcript,
            server_random: *server_random,
        }
    }

    pub(crate) fn finished_mac(&self, label: &str) -> [u8; 32] {
        let mut mac = self.primed.begin();
        mac.update(label.as_bytes());
        mac.update(&self.transcript);
        mac.update(&self.server_random);
        mac.finalize()
    }

    /// Mint the resumption state for this key schedule, deriving the
    /// ticket through the primed master-keyed HMAC.
    pub(crate) fn resumption(&self, expires_at: u64, cred_not_after: u64) -> ResumptionData {
        ResumptionData::from_master_primed(&self.primed, self.master, expires_at, cred_not_after)
    }
}

fn client_signature_payload(client_random: &[u8; 32], dh_public: &BigUint) -> Vec<u8> {
    let mut data = b"gsi-tls client binding".to_vec();
    data.extend_from_slice(client_random);
    data.extend_from_slice(&dh_public.to_bytes_be());
    data
}

fn server_signature_payload(
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    client_dh: &BigUint,
    server_dh: &BigUint,
) -> Vec<u8> {
    let mut data = b"gsi-tls server binding".to_vec();
    data.extend_from_slice(client_random);
    data.extend_from_slice(server_random);
    data.extend_from_slice(&client_dh.to_bytes_be());
    data.extend_from_slice(&server_dh.to_bytes_be());
    data
}

// ----------------------------------------------------------------------
// Client state machine
// ----------------------------------------------------------------------

/// Client side of the handshake: emits ClientHello, consumes ServerHello,
/// emits ClientFinished.
pub struct ClientHandshake {
    config: TlsConfig,
    dh: DhKeyPair,
    client_random: [u8; 32],
    hello_bytes: Vec<u8>,
}

impl ClientHandshake {
    /// Start a handshake; returns the state machine and the first token.
    pub fn new<E: EntropySource>(config: TlsConfig, rng: &mut E) -> (Self, Vec<u8>) {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut local_rng = ChaChaRng::from_seed_bytes(&seed);

        let mut client_random = [0u8; 32];
        EntropySource::fill_bytes(&mut local_rng, &mut client_random);
        let dh = DhKeyPair::generate(&mut local_rng, &config.group);
        let payload = client_signature_payload(&client_random, &dh.public);
        let signature = config.credential.sign(&payload);
        let hello = ClientHello {
            client_random,
            dh_public: dh.public.clone(),
            chain: config.credential.chain().to_vec(),
            signature,
        };
        let hello_bytes = hello.to_bytes();
        (
            ClientHandshake {
                config,
                dh,
                client_random,
                hello_bytes: hello_bytes.clone(),
            },
            hello_bytes,
        )
    }

    /// Consume the ServerHello token; returns the final ClientFinished
    /// token plus the established channel.
    pub fn step(self, server_hello_token: &[u8]) -> Result<(Vec<u8>, SecureChannel), TlsError> {
        let sh = ServerHello::from_bytes(server_hello_token)
            .map_err(|_| TlsError::Protocol("malformed ServerHello"))?;

        // Authenticate the server.
        let peer = self.config.validate_peer(&sh.chain)?;
        let payload = server_signature_payload(
            &self.client_random,
            &sh.server_random,
            &self.dh.public,
            &sh.dh_public,
        );
        if !self
            .config
            .verify_binding(&peer.public_key, &payload, &sh.signature)
        {
            return Err(TlsError::BadPeerSignature);
        }

        // Key agreement and schedule.
        let shared = self.dh.agree(&sh.dh_public).ok_or(TlsError::BadDhShare)?;
        let ks = KeySchedule::derive(
            &shared,
            &self.client_random,
            &sh.server_random,
            &self.hello_bytes,
        );
        if !ct_eq(&ks.finished_mac("server finished"), &sh.finished_mac) {
            return Err(TlsError::BadFinished);
        }

        let finished = ClientFinished {
            mac: ks.finished_mac("client finished"),
        };
        // Both chains bound the ticket: resumption skips revalidation,
        // so the ticket must die with whichever credential dies first.
        let cred_not_after = crate::session::chain_not_after(self.config.credential.chain())
            .min(crate::session::chain_not_after(&sh.chain));
        let resumption = ks.resumption(
            self.config.now.saturating_add(self.config.session_lifetime),
            cred_not_after,
        );
        let channel =
            SecureChannel::from_key_block(peer, &ks.key_block, true).with_resumption(resumption);
        Ok((finished.to_bytes(), channel))
    }
}

// ----------------------------------------------------------------------
// Server state machine
// ----------------------------------------------------------------------

/// Server side: consumes ClientHello, emits ServerHello, then awaits the
/// ClientFinished token.
pub struct ServerHandshake {
    config: TlsConfig,
}

/// Intermediate server state: ServerHello sent, awaiting ClientFinished.
pub struct ServerAwaitFinished {
    expected_mac: [u8; 32],
    peer: ValidatedIdentity,
    key_block: Vec<u8>,
    resumption: ResumptionData,
}

impl ServerHandshake {
    /// Create the server side.
    pub fn new(config: TlsConfig) -> Self {
        ServerHandshake { config }
    }

    /// Consume the ClientHello; emit the ServerHello token and the
    /// await-finished state.
    pub fn step<E: EntropySource>(
        self,
        rng: &mut E,
        client_hello_token: &[u8],
    ) -> Result<(Vec<u8>, ServerAwaitFinished), TlsError> {
        let ch = ClientHello::from_bytes(client_hello_token)
            .map_err(|_| TlsError::Protocol("malformed ClientHello"))?;

        // Authenticate the client (GSI is always mutual).
        let peer = self.config.validate_peer(&ch.chain)?;
        let payload = client_signature_payload(&ch.client_random, &ch.dh_public);
        if !self
            .config
            .verify_binding(&peer.public_key, &payload, &ch.signature)
        {
            return Err(TlsError::BadPeerSignature);
        }

        server_respond(&self.config, rng, &ch, client_hello_token, peer)
    }
}

/// The server's second half: mint the DH share, derive the schedule,
/// sign the binding, and build the ServerHello. Shared by
/// [`ServerHandshake::step`] and [`server_accept_batch`].
fn server_respond<E: EntropySource>(
    config: &TlsConfig,
    rng: &mut E,
    ch: &ClientHello,
    client_hello_token: &[u8],
    peer: ValidatedIdentity,
) -> Result<(Vec<u8>, ServerAwaitFinished), TlsError> {
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    let mut local_rng = ChaChaRng::from_seed_bytes(&seed);
    let mut server_random = [0u8; 32];
    EntropySource::fill_bytes(&mut local_rng, &mut server_random);
    let dh = DhKeyPair::generate(&mut local_rng, &config.group);
    let shared = dh.agree(&ch.dh_public).ok_or(TlsError::BadDhShare)?;
    let ks = KeySchedule::derive(
        &shared,
        &ch.client_random,
        &server_random,
        client_hello_token,
    );

    let payload =
        server_signature_payload(&ch.client_random, &server_random, &ch.dh_public, &dh.public);
    let sh = ServerHello {
        server_random,
        dh_public: dh.public.clone(),
        chain: config.credential.chain().to_vec(),
        signature: config.credential.sign(&payload),
        finished_mac: ks.finished_mac("server finished"),
    };
    // Same symmetric bound the client computes in `ClientHandshake::step`,
    // so both sides mint identically-stamped resumption state.
    let cred_not_after = crate::session::chain_not_after(config.credential.chain())
        .min(crate::session::chain_not_after(&ch.chain));
    let resumption = ks.resumption(
        config.now.saturating_add(config.session_lifetime),
        cred_not_after,
    );
    Ok((
        sh.to_bytes(),
        ServerAwaitFinished {
            expected_mac: ks.finished_mac("client finished"),
            peer,
            key_block: ks.key_block,
            resumption,
        },
    ))
}

/// Accept a wave of ClientHello tokens at once.
///
/// With a pool attached to `config`, every parsed chain in the wave
/// goes through [`CachedValidator::validate_batch`], which groups the
/// certificate signature checks by issuer key and verifies each group
/// under one shared Montgomery context ([`RsaVerifyCtx::verify_batch`])
/// — the portal-login-wave shape where thousands of chains hang off one
/// CA. Without a pool it degrades to per-token validation.
///
/// Results are positionally aligned with `hellos`, and each entry is
/// exactly what [`ServerHandshake::step`] would have produced for that
/// token alone (same verdicts, same rng consumption order for the
/// successful responses).
///
/// [`CachedValidator::validate_batch`]: gridsec_pki::validate::CachedValidator::validate_batch
/// [`RsaVerifyCtx::verify_batch`]: gridsec_crypto::rsa::RsaVerifyCtx::verify_batch
pub fn server_accept_batch<E: EntropySource>(
    config: &TlsConfig,
    rng: &mut E,
    hellos: &[&[u8]],
) -> Vec<Result<(Vec<u8>, ServerAwaitFinished), TlsError>> {
    // Parse phase.
    let parsed: Vec<Result<ClientHello, TlsError>> = hellos
        .iter()
        .map(|token| {
            ClientHello::from_bytes(token).map_err(|_| TlsError::Protocol("malformed ClientHello"))
        })
        .collect();

    // Chain validation: batched through the pool when present.
    let mut identities: Vec<Option<Result<ValidatedIdentity, TlsError>>> =
        (0..hellos.len()).map(|_| None).collect();
    if let Some(pool) = &config.pool {
        let mut idx = Vec::new();
        let mut chains: Vec<&[Certificate]> = Vec::new();
        for (i, p) in parsed.iter().enumerate() {
            if let Ok(ch) = p {
                idx.push(i);
                chains.push(&ch.chain);
            }
        }
        let verdicts = pool.lock().expect("crypto pool lock").validate_batch(
            &chains,
            &config.trust,
            &config.crls,
            config.now,
        );
        for (i, verdict) in idx.into_iter().zip(verdicts) {
            identities[i] = Some(verdict.map_err(TlsError::from));
        }
    } else {
        for (i, p) in parsed.iter().enumerate() {
            if let Ok(ch) = p {
                identities[i] = Some(
                    validate_chain_with_crls(&ch.chain, &config.trust, &config.crls, config.now)
                        .map_err(TlsError::from),
                );
            }
        }
    }

    // Binding verification + response, in wave order.
    parsed
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let ch = p?;
            let peer = identities[i]
                .take()
                .expect("parsed hello has a validation verdict")?;
            let payload = client_signature_payload(&ch.client_random, &ch.dh_public);
            if !config.verify_binding(&peer.public_key, &payload, &ch.signature) {
                return Err(TlsError::BadPeerSignature);
            }
            server_respond(config, rng, &ch, hellos[i], peer)
        })
        .collect()
}

impl ServerAwaitFinished {
    /// Consume the ClientFinished token; on success the context is
    /// mutually authenticated.
    pub fn step(self, client_finished_token: &[u8]) -> Result<SecureChannel, TlsError> {
        let cf = ClientFinished::from_bytes(client_finished_token)
            .map_err(|_| TlsError::Protocol("malformed ClientFinished"))?;
        if !ct_eq(&cf.mac, &self.expected_mac) {
            return Err(TlsError::BadFinished);
        }
        Ok(
            SecureChannel::from_key_block(self.peer, &self.key_block, false)
                .with_resumption(self.resumption),
        )
    }
}

/// Drive a full in-memory handshake (helper for tests and single-process
/// benchmarks). Returns `(client_channel, server_channel)`.
pub fn handshake_in_memory<E: EntropySource>(
    client_config: TlsConfig,
    server_config: TlsConfig,
    rng: &mut E,
) -> Result<(SecureChannel, SecureChannel), TlsError> {
    let (client, hello) = ClientHandshake::new(client_config, rng);
    let server = ServerHandshake::new(server_config);
    let (server_hello, await_finished) = server.step(rng, &hello)?;
    let (finished, client_channel) = client.step(&server_hello)?;
    let server_channel = await_finished.step(&finished)?;
    Ok((client_channel, server_channel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::proxy::{issue_proxy, ProxyType};
    use gridsec_pki::validate::EffectiveRights;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        ca: CertificateAuthority,
        trust: TrustStore,
        alice: Credential,
        server: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls handshake tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host fs1"),
            vec!["fs1".into()],
            512,
            0,
            100_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            ca,
            trust,
            alice,
            server,
        }
    }

    fn cfg(w: &World, cred: &Credential) -> TlsConfig {
        TlsConfig::new(cred.clone(), w.trust.clone(), 100)
    }

    #[test]
    fn mutual_handshake_succeeds() {
        let mut w = world();
        let (mut cch, mut sch) =
            handshake_in_memory(cfg(&w, &w.alice), cfg(&w, &w.server), &mut w.rng).unwrap();
        // Peer identities are as expected.
        assert_eq!(cch.peer.base_identity, dn("/O=G/CN=host fs1"));
        assert_eq!(sch.peer.base_identity, dn("/O=G/CN=Alice"));
        // Channel works both ways.
        let m = cch.seal(b"GET /jobs");
        assert_eq!(sch.open(&m).unwrap(), b"GET /jobs");
        let r = sch.seal(b"200 OK");
        assert_eq!(cch.open(&r).unwrap(), b"200 OK");
    }

    #[test]
    fn proxy_credential_authenticates_as_base_identity() {
        let mut w = world();
        let proxy = issue_proxy(
            &mut w.rng,
            &w.alice,
            ProxyType::Impersonation,
            512,
            50,
            10_000,
        )
        .unwrap();
        let (_c, s) = handshake_in_memory(cfg(&w, &proxy), cfg(&w, &w.server), &mut w.rng).unwrap();
        assert_eq!(s.peer.base_identity, dn("/O=G/CN=Alice"));
        assert_eq!(s.peer.proxy_depth, 1);
        assert_eq!(s.peer.rights, EffectiveRights::Full);
    }

    #[test]
    fn untrusted_client_rejected() {
        let mut w = world();
        let rogue_ca =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
        let mallory = rogue_ca.issue_identity(&mut w.rng, dn("/O=Evil/CN=M"), 512, 0, 100_000);
        let err =
            handshake_in_memory(cfg(&w, &mallory), cfg(&w, &w.server), &mut w.rng).unwrap_err();
        assert!(matches!(err, TlsError::Pki(PkiError::UntrustedRoot)));
    }

    #[test]
    fn untrusted_server_rejected_by_client() {
        let mut w = world();
        let rogue_ca =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
        let fake_server =
            rogue_ca.issue_identity(&mut w.rng, dn("/O=G/CN=host fs1"), 512, 0, 100_000);
        // Server trusts the real CA (so the client passes), but the client
        // must reject the rogue server chain.
        let err =
            handshake_in_memory(cfg(&w, &w.alice), cfg(&w, &fake_server), &mut w.rng).unwrap_err();
        assert!(matches!(err, TlsError::Pki(PkiError::UntrustedRoot)));
    }

    #[test]
    fn expired_credential_rejected() {
        let mut w = world();
        let short =
            w.ca.issue_identity(&mut w.rng, dn("/O=G/CN=Short"), 512, 0, 50);
        // now=100 > 50.
        let err = handshake_in_memory(cfg(&w, &short), cfg(&w, &w.server), &mut w.rng).unwrap_err();
        assert!(matches!(err, TlsError::Pki(PkiError::Expired { .. })));
    }

    #[test]
    fn tampered_server_hello_rejected() {
        let mut w = world();
        let (client, hello) = ClientHandshake::new(cfg(&w, &w.alice), &mut w.rng);
        let server = ServerHandshake::new(cfg(&w, &w.server));
        let (mut server_hello, _await) = server.step(&mut w.rng, &hello).unwrap();
        // Flip a byte somewhere in the middle (dh share / chain region).
        let mid = server_hello.len() / 2;
        server_hello[mid] ^= 0x40;
        let err = client.step(&server_hello).unwrap_err();
        assert!(
            matches!(
                err,
                TlsError::BadPeerSignature
                    | TlsError::BadFinished
                    | TlsError::Protocol(_)
                    | TlsError::Pki(_)
            ),
            "unexpected: {err:?}"
        );
    }

    #[test]
    fn wrong_finished_rejected() {
        let mut w = world();
        let (client, hello) = ClientHandshake::new(cfg(&w, &w.alice), &mut w.rng);
        let server = ServerHandshake::new(cfg(&w, &w.server));
        let (server_hello, await_finished) = server.step(&mut w.rng, &hello).unwrap();
        let (mut finished, _cch) = client.step(&server_hello).unwrap();
        let n = finished.len();
        finished[n - 1] ^= 1;
        assert_eq!(
            await_finished.step(&finished).unwrap_err(),
            TlsError::BadFinished
        );
    }

    #[test]
    fn replayed_client_hello_cannot_finish() {
        let mut w = world();
        // Legitimate exchange, capturing the ClientHello.
        let (client, hello) = ClientHandshake::new(cfg(&w, &w.alice), &mut w.rng);
        let server = ServerHandshake::new(cfg(&w, &w.server));
        let (server_hello, _await1) = server.step(&mut w.rng, &hello).unwrap();
        let _ = client.step(&server_hello).unwrap();

        // Attacker replays the captured hello to a fresh server instance.
        let server2 = ServerHandshake::new(cfg(&w, &w.server));
        let (_sh2, await2) = server2.step(&mut w.rng, &hello).unwrap();
        // Without Alice's DH private key the attacker cannot produce the
        // matching Finished MAC; any guess fails.
        assert_eq!(
            await2
                .step(&ClientFinished { mac: [0u8; 32] }.to_bytes())
                .unwrap_err(),
            TlsError::BadFinished
        );
    }

    #[test]
    fn tokens_are_transport_neutral() {
        // The experiment-C1 property: tokens produced here are plain bytes
        // with a self-describing type tag, so any transport can carry them.
        let mut w = world();
        let (_client, hello) = ClientHandshake::new(cfg(&w, &w.alice), &mut w.rng);
        assert_eq!(hello[0], 1); // ClientHello tag
        let ch = ClientHello::from_bytes(&hello).unwrap();
        assert_eq!(ch.chain.len(), w.alice.chain().len());
    }

    #[test]
    fn garbage_tokens_rejected() {
        let mut w = world();
        let server = ServerHandshake::new(cfg(&w, &w.server));
        assert!(matches!(
            server.step(&mut w.rng, b"not a token"),
            Err(TlsError::Protocol(_))
        ));
        let (client, _hello) = ClientHandshake::new(cfg(&w, &w.alice), &mut w.rng);
        assert!(matches!(
            client.step(&[0u8; 64]),
            Err(TlsError::Protocol(_))
        ));
    }
}
