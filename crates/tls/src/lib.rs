//! # gridsec-tls
//!
//! A TLS-like secure channel protocol — the transport layer of GT2's Grid
//! Security Infrastructure in the `gridsec` reproduction of *Security for
//! Grid Services* (Welch et al., HPDC 2003).
//!
//! The paper (§3, §5.1): "GT2 uses the TLS transport protocol for both
//! security context establishment and message protection", and crucially
//! for GT3: "The GT3 messages carry the same context establishment tokens
//! used by GT2 but transports them over SOAP instead of TCP."
//!
//! That sentence dictates the architecture here:
//!
//! * [`handshake`] — *token-driven* client/server handshake state
//!   machines (DHE-RSA-shaped: ephemeral Diffie–Hellman signed by each
//!   party's certificate key, mutual authentication against a trust
//!   store, HKDF key derivation, Finished MACs). Tokens are opaque byte
//!   strings with no transport assumptions.
//! * [`channel`] — the record protection layer: a [`channel::SecureChannel`]
//!   seals/opens individual messages with ChaCha20-Poly1305 under
//!   direction-specific keys and sequence-number nonces.
//! * [`records`] — the sans-io record layer: feed-bytes-in/events-out
//!   state machines ([`records::ClientConnector`],
//!   [`records::ServerAcceptor`], [`records::RecordSession`]) with no
//!   transport assumptions, so a TLS endpoint can live inside a
//!   discrete-event scheduler task.
//! * [`stream`] — GT2 mode: the blocking compatibility shim over
//!   [`records`], pumping the same tokens over a byte stream with
//!   length-prefixed framing ([`stream::client_connect`] /
//!   [`stream::server_accept`]), yielding a [`stream::SecureStream`].
//! * [`session`] — session resumption: a completed handshake mints a
//!   ticket both sides derive from the master secret; a later context
//!   between the same pair runs an abbreviated handshake that skips
//!   certificate validation, RSA, and Diffie–Hellman entirely.
//!
//! `gridsec-gssapi` wraps the token state machines in GSS-API shapes, and
//! `gridsec-wsse` carries the *identical* tokens inside WS-Trust SOAP
//! envelopes — which is what experiment C1 verifies and measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod handshake;
pub mod pool;
pub mod records;
pub mod retry;
pub mod session;
pub mod stream;

use gridsec_pki::PkiError;

/// Errors from handshake or record processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// Peer certificate chain failed validation.
    Pki(PkiError),
    /// A record failed authentication or decryption.
    RecordIntegrity,
    /// Handshake message out of order or malformed.
    Protocol(&'static str),
    /// The peer's signature over the handshake transcript was invalid.
    BadPeerSignature,
    /// The Finished MAC did not verify (keys disagree).
    BadFinished,
    /// Degenerate or invalid Diffie–Hellman share.
    BadDhShare,
    /// I/O error while pumping tokens over a stream.
    Io(String),
}

impl From<PkiError> for TlsError {
    fn from(e: PkiError) -> Self {
        TlsError::Pki(e)
    }
}

impl From<std::io::Error> for TlsError {
    fn from(e: std::io::Error) -> Self {
        TlsError::Io(e.to_string())
    }
}

impl core::fmt::Display for TlsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlsError::Pki(e) => write!(f, "peer credential rejected: {e}"),
            TlsError::RecordIntegrity => write!(f, "record integrity failure"),
            TlsError::Protocol(m) => write!(f, "protocol error: {m}"),
            TlsError::BadPeerSignature => write!(f, "bad peer handshake signature"),
            TlsError::BadFinished => write!(f, "finished MAC mismatch"),
            TlsError::BadDhShare => write!(f, "invalid Diffie-Hellman share"),
            TlsError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for TlsError {}
