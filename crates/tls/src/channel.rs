//! Record protection: per-message AEAD under direction-specific keys.
//!
//! A [`SecureChannel`] is produced by a completed handshake. It has no
//! transport: callers seal a message, move the bytes however they like
//! (TCP-sim stream, SOAP envelope, carrier pigeon), and the peer opens
//! it. Sequence numbers are bound into the nonce, so reordering, replay,
//! and truncation within a direction are all detected.

use gridsec_crypto::aead;
use gridsec_pki::validate::ValidatedIdentity;

use crate::session::ResumptionData;
use crate::TlsError;

/// Direction-specific keys and sequence state for an established session.
///
/// The `Debug` impl deliberately omits key material.
pub struct SecureChannel {
    /// The authenticated peer identity (from chain validation).
    pub peer: ValidatedIdentity,
    write_key: [u8; 32],
    read_key: [u8; 32],
    write_nonce_base: [u8; 12],
    read_nonce_base: [u8; 12],
    write_mic_key: [u8; 32],
    read_mic_key: [u8; 32],
    write_seq: u64,
    read_seq: u64,
    mic_write_seq: u64,
    mic_read_seq: u64,
    resumption: Option<ResumptionData>,
}

/// Size of the key block the channel constructor expects:
/// two AEAD keys, two nonce bases, two MIC keys.
pub const KEY_BLOCK_LEN: usize = 32 + 32 + 12 + 12 + 32 + 32;

impl core::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("peer", &self.peer.subject.to_string())
            .field("write_seq", &self.write_seq)
            .field("read_seq", &self.read_seq)
            .finish_non_exhaustive()
    }
}

impl SecureChannel {
    /// Assemble a channel from derived key material. `is_client` selects
    /// which half of the key block is "write" vs. "read".
    pub(crate) fn from_key_block(
        peer: ValidatedIdentity,
        key_block: &[u8],
        is_client: bool,
    ) -> Self {
        assert_eq!(
            key_block.len(),
            KEY_BLOCK_LEN,
            "key block must be {KEY_BLOCK_LEN} bytes"
        );
        let client_key: [u8; 32] = key_block[0..32].try_into().unwrap();
        let server_key: [u8; 32] = key_block[32..64].try_into().unwrap();
        let client_nonce: [u8; 12] = key_block[64..76].try_into().unwrap();
        let server_nonce: [u8; 12] = key_block[76..88].try_into().unwrap();
        let client_mic: [u8; 32] = key_block[88..120].try_into().unwrap();
        let server_mic: [u8; 32] = key_block[120..152].try_into().unwrap();
        if is_client {
            SecureChannel {
                peer,
                write_key: client_key,
                read_key: server_key,
                write_nonce_base: client_nonce,
                read_nonce_base: server_nonce,
                write_mic_key: client_mic,
                read_mic_key: server_mic,
                write_seq: 0,
                read_seq: 0,
                mic_write_seq: 0,
                mic_read_seq: 0,
                resumption: None,
            }
        } else {
            SecureChannel {
                peer,
                write_key: server_key,
                read_key: client_key,
                write_nonce_base: server_nonce,
                read_nonce_base: client_nonce,
                write_mic_key: server_mic,
                read_mic_key: client_mic,
                write_seq: 0,
                read_seq: 0,
                mic_write_seq: 0,
                mic_read_seq: 0,
                resumption: None,
            }
        }
    }

    /// Attach resumption state (called by the handshake layers).
    pub(crate) fn with_resumption(mut self, resumption: ResumptionData) -> Self {
        self.resumption = Some(resumption);
        self
    }

    /// Resumption state minted by the handshake that produced this
    /// channel, if any — feed it to a session cache to make later
    /// contexts with the same peer skip the asymmetric handshake.
    pub fn resumption(&self) -> Option<&ResumptionData> {
        self.resumption.as_ref()
    }

    fn nonce_for(base: &[u8; 12], seq: u64) -> [u8; 12] {
        let mut n = *base;
        for (i, b) in seq.to_be_bytes().iter().enumerate() {
            n[4 + i] ^= b;
        }
        n
    }

    /// Seal a message for the peer; consumes the next send sequence
    /// number. Sequence numbers are also bound as associated data.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.write_seq;
        self.write_seq += 1;
        let nonce = Self::nonce_for(&self.write_nonce_base, seq);
        aead::seal(&self.write_key, &nonce, &seq.to_be_bytes(), plaintext)
    }

    /// Open the next message from the peer (messages must arrive in
    /// order; replay/reorder yields `RecordIntegrity`).
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, TlsError> {
        let seq = self.read_seq;
        let nonce = Self::nonce_for(&self.read_nonce_base, seq);
        let plain = aead::open(&self.read_key, &nonce, &seq.to_be_bytes(), sealed)
            .map_err(|_| TlsError::RecordIntegrity)?;
        self.read_seq += 1;
        Ok(plain)
    }

    /// Compute a detached integrity check (GSS `GetMIC`) over `msg`.
    /// MIC sequence numbers are independent of the sealed-message stream.
    pub fn get_mic(&mut self, msg: &[u8]) -> Vec<u8> {
        let seq = self.mic_write_seq;
        self.mic_write_seq += 1;
        let mut data = seq.to_be_bytes().to_vec();
        data.extend_from_slice(msg);
        let mut out = seq.to_be_bytes().to_vec();
        out.extend_from_slice(&gridsec_crypto::hmac::hmac_sha256(
            &self.write_mic_key,
            &data,
        ));
        out
    }

    /// Verify a detached MIC (GSS `VerifyMIC`). MICs may be verified out
    /// of order (the sequence number travels inside the token) but each
    /// sequence number is accepted at most once per direction via a
    /// monotonic low-water mark: a MIC older than the highest seen is
    /// rejected as a replay, which suffices for our in-order transports.
    pub fn verify_mic(&mut self, msg: &[u8], mic: &[u8]) -> Result<(), TlsError> {
        if mic.len() != 8 + 32 {
            return Err(TlsError::RecordIntegrity);
        }
        let seq = u64::from_be_bytes(mic[..8].try_into().unwrap());
        if seq < self.mic_read_seq {
            return Err(TlsError::RecordIntegrity); // replay
        }
        let mut data = mic[..8].to_vec();
        data.extend_from_slice(msg);
        let expect = gridsec_crypto::hmac::hmac_sha256(&self.read_mic_key, &data);
        if !gridsec_crypto::ct::ct_eq(&expect, &mic[8..]) {
            return Err(TlsError::RecordIntegrity);
        }
        self.mic_read_seq = seq + 1;
        Ok(())
    }

    /// Messages sealed so far.
    pub fn messages_sent(&self) -> u64 {
        self.write_seq
    }

    /// Messages opened so far.
    pub fn messages_received(&self) -> u64 {
        self.read_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    fn peer_identity() -> ValidatedIdentity {
        let mut rng = ChaChaRng::from_seed_bytes(b"channel peer");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=CA").unwrap(),
            512,
            0,
            1000,
        );
        let cred = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=X").unwrap(),
            512,
            0,
            1000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        validate_chain(cred.chain(), &trust, 10).unwrap()
    }

    fn channel_pair() -> (SecureChannel, SecureChannel) {
        let kb: Vec<u8> = (0..KEY_BLOCK_LEN as u8).collect();
        (
            SecureChannel::from_key_block(peer_identity(), &kb, true),
            SecureChannel::from_key_block(peer_identity(), &kb, false),
        )
    }

    #[test]
    fn mic_roundtrip_and_replay() {
        let (mut c, mut s) = channel_pair();
        let mic1 = c.get_mic(b"message one");
        let mic2 = c.get_mic(b"message two");
        assert!(s.verify_mic(b"message one", &mic1).is_ok());
        // Replay of mic1 rejected.
        assert!(s.verify_mic(b"message one", &mic1).is_err());
        // Later MIC still fine.
        assert!(s.verify_mic(b"message two", &mic2).is_ok());
    }

    #[test]
    fn mic_detects_tampering() {
        let (mut c, mut s) = channel_pair();
        let mic = c.get_mic(b"authentic");
        assert!(s.verify_mic(b"tampered", &mic).is_err());
        let mut bad_mic = c.get_mic(b"authentic");
        let n = bad_mic.len();
        bad_mic[n - 1] ^= 1;
        assert!(s.verify_mic(b"authentic", &bad_mic).is_err());
        assert!(s.verify_mic(b"authentic", b"short").is_err());
    }

    #[test]
    fn mic_and_seal_sequences_independent() {
        let (mut c, mut s) = channel_pair();
        let sealed = c.seal(b"sealed");
        let mic = c.get_mic(b"mic'd");
        assert!(s.verify_mic(b"mic'd", &mic).is_ok());
        assert_eq!(s.open(&sealed).unwrap(), b"sealed");
    }

    #[test]
    fn roundtrip_both_directions() {
        let (mut c, mut s) = channel_pair();
        let m1 = c.seal(b"hello from client");
        assert_eq!(s.open(&m1).unwrap(), b"hello from client");
        let m2 = s.seal(b"hello from server");
        assert_eq!(c.open(&m2).unwrap(), b"hello from server");
    }

    #[test]
    fn replay_detected() {
        let (mut c, mut s) = channel_pair();
        let m = c.seal(b"once");
        assert!(s.open(&m).is_ok());
        assert_eq!(s.open(&m).unwrap_err(), TlsError::RecordIntegrity);
    }

    #[test]
    fn reorder_detected() {
        let (mut c, mut s) = channel_pair();
        let m1 = c.seal(b"first");
        let m2 = c.seal(b"second");
        assert_eq!(s.open(&m2).unwrap_err(), TlsError::RecordIntegrity);
        // In-order delivery still works after the failed attempt.
        assert_eq!(s.open(&m1).unwrap(), b"first");
        assert_eq!(s.open(&m2).unwrap(), b"second");
    }

    #[test]
    fn tamper_detected() {
        let (mut c, mut s) = channel_pair();
        let mut m = c.seal(b"payload");
        m[0] ^= 1;
        assert_eq!(s.open(&m).unwrap_err(), TlsError::RecordIntegrity);
    }

    #[test]
    fn directions_use_distinct_keys() {
        let (mut c, mut s) = channel_pair();
        let from_client = c.seal(b"msg");
        let from_server = s.seal(b"msg");
        assert_ne!(from_client, from_server);
    }

    #[test]
    fn counters_track() {
        let (mut c, mut s) = channel_pair();
        for i in 0..5 {
            let m = c.seal(format!("m{i}").as_bytes());
            s.open(&m).unwrap();
        }
        assert_eq!(c.messages_sent(), 5);
        assert_eq!(s.messages_received(), 5);
    }
}
