//! Handshake-with-retry driver for the GT2 stream channel.
//!
//! The stream substrate (`gridsec_testbed::net::StreamPair::lossy`)
//! models TCP over a flaky WAN: a lost segment tears the connection and
//! every subsequent read/write fails with `ConnectionReset`, which the
//! record layer surfaces as [`TlsError::Io`]. A TLS handshake cannot
//! resume across a torn transport — the only correct recovery is to
//! dial a fresh connection and restart the handshake from ClientHello.
//! [`connect_with_retry`] encodes exactly that: dial, handshake, and on
//! a *transport* error (never a security error) back off and redial per
//! the [`RetryPolicy`].
//!
//! This crate stays transport-agnostic: `dial` is any closure producing
//! a fresh `Read + Write` connection, and `on_backoff` lets the caller
//! account the wait (the testbed advances its `SimClock`; production
//! would sleep).

use crate::handshake::TlsConfig;
use crate::stream::{client_connect, SecureStream};
use crate::TlsError;
use gridsec_bignum::prime::EntropySource;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace;
use std::io::{Read, Write};

/// Outcome statistics for a retried connect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectStats {
    /// Handshake attempts made (≥ 1).
    pub attempts: u32,
    /// Attempts that failed on a transport (`Io`) error.
    pub transport_failures: u32,
}

/// `true` for errors worth retrying: transport failures. Security
/// failures (bad signature, bad finished, PKI rejection, protocol
/// violation) are deterministic verdicts about the peer — retrying
/// them would just repeat the refusal, so they abort immediately.
pub fn is_transient(e: &TlsError) -> bool {
    matches!(e, TlsError::Io(_))
}

/// Establish a client-side [`SecureStream`], redialing and restarting
/// the handshake on transport errors until `policy` is exhausted.
///
/// `dial` produces a fresh connection per attempt (attempt index
/// passed so seeded testbed dials can vary deterministically);
/// `on_backoff(attempt, wait_secs)` is invoked before each redial.
/// Returns the stream plus attempt statistics, or the last error once
/// the policy is exhausted / a non-transient error occurs.
pub fn connect_with_retry<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    mut dial: D,
    mut on_backoff: impl FnMut(u32, u64),
) -> Result<(SecureStream<S>, ConnectStats), TlsError>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(u32) -> Result<S, TlsError>,
{
    let mut sp = trace::span("tls.connect");
    let mut stats = ConnectStats::default();
    let mut last = TlsError::Io("no attempts made".into());
    for (attempt, wait) in policy.schedule() {
        if attempt > 0 {
            trace::add("tls.redials", 1);
            trace::event("tls.redial", &format!("attempt={attempt} wait={wait}"));
            on_backoff(attempt, wait);
        }
        stats.attempts += 1;
        let result = dial(attempt).and_then(|stream| client_connect(stream, config.clone(), rng));
        match result {
            Ok(stream) => {
                trace::event("tls.handshake.ok", &format!("attempts={}", stats.attempts));
                trace::add("tls.handshakes", 1);
                return Ok((stream, stats));
            }
            Err(e) if is_transient(&e) => {
                stats.transport_failures += 1;
                trace::event("tls.transport.torn", &format!("attempt={attempt}"));
                last = e;
            }
            Err(e) => {
                // Security verdicts abort without retry; record why.
                sp.fail(&e.to_string());
                trace::event("tls.security.abort", &e.to_string());
                return Err(e);
            }
        }
    }
    sp.fail("retry budget exhausted");
    trace::flight_dump("tls redial budget exhausted");
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::server_accept;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::net::StreamPair;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        client_cfg: TlsConfig,
        server_cfg: TlsConfig,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls retry tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_identity(&mut rng, dn("/O=G/CN=Gatekeeper"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            client_cfg: TlsConfig::new(alice, trust.clone(), 100),
            server_cfg: TlsConfig::new(server, trust, 100),
        }
    }

    /// Dial a lossy pair and run the server side on a thread; each
    /// attempt gets a fresh connection with a seed derived from the
    /// attempt index, so the whole retry sequence is deterministic.
    fn lossy_dialer(
        server_cfg: TlsConfig,
        base_seed: u64,
        drop_rate: f64,
    ) -> impl FnMut(u32) -> Result<gridsec_testbed::net::SimStream, TlsError> {
        move |attempt| {
            let (client_side, server_side, _) =
                StreamPair::lossy(base_seed.wrapping_add(u64::from(attempt)), drop_rate);
            let cfg = server_cfg.clone();
            std::thread::spawn(move || {
                let mut rng = ChaChaRng::from_seed_bytes(b"server side");
                // A torn handshake just kills this connection's server;
                // the client redials with a new pair and a new thread.
                if let Ok(mut s) = server_accept(server_side, cfg, &mut rng) {
                    if let Ok(msg) = s.recv() {
                        let _ = s.send(&msg.to_ascii_uppercase());
                    }
                }
            });
            Ok(client_side)
        }
    }

    #[test]
    fn clean_transport_connects_first_try() {
        let mut w = world();
        let dialer = lossy_dialer(w.server_cfg.clone(), 1, 0.0);
        let policy = RetryPolicy::default();
        let (mut stream, stats) =
            connect_with_retry(&w.client_cfg.clone(), &mut w.rng, policy, dialer, |_, _| {})
                .unwrap();
        assert_eq!(stats.attempts, 1);
        stream.send(b"gt2 job").unwrap();
        assert_eq!(stream.recv().unwrap(), b"GT2 JOB");
    }

    #[test]
    fn retries_through_torn_connections_deterministically() {
        let run = || {
            let mut w = world();
            let dialer = lossy_dialer(w.server_cfg.clone(), 0xD1A1, 0.05);
            let policy = RetryPolicy {
                max_attempts: 10,
                base_timeout: 1,
                multiplier: 2,
                max_timeout: 8,
            };
            let mut waited = 0u64;
            let (mut stream, stats) = connect_with_retry(
                &w.client_cfg.clone(),
                &mut w.rng,
                policy,
                dialer,
                |_, wait| waited += wait,
            )
            .unwrap();
            // The stream stays lossy after the handshake, so the app
            // exchange may still tear; only a non-transport error is a
            // test failure here (the retry driver's contract covers
            // establishment, not the application conversation).
            match stream.send(b"payload").and_then(|()| stream.recv()) {
                Ok(msg) => assert_eq!(msg, b"PAYLOAD"),
                Err(e) => assert!(is_transient(&e), "{e:?}"),
            }
            (stats, waited)
        };
        let (s1, w1) = run();
        let (s2, w2) = run();
        assert_eq!(s1, s2, "same seeds, same attempt count");
        assert_eq!(w1, w2);
        // Backoff accounting matches the failure count.
        assert_eq!(s1.attempts, s1.transport_failures + 1);
    }

    #[test]
    fn exhausted_policy_returns_last_io_error() {
        let mut w = world();
        // drop rate 1.0: the very first client write dies, every attempt.
        let dialer = lossy_dialer(w.server_cfg.clone(), 3, 1.0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_timeout: 1,
            multiplier: 2,
            max_timeout: 4,
        };
        let err = connect_with_retry(&w.client_cfg.clone(), &mut w.rng, policy, dialer, |_, _| {})
            .map(|_| ())
            .unwrap_err();
        assert!(is_transient(&err), "{err:?}");
    }

    #[test]
    fn security_errors_do_not_retry() {
        let mut w = world();
        // A server whose credential chains to a CA the client does not
        // trust: every attempt would fail identically, so the driver
        // must abort on attempt 1. The rogue server itself trusts both
        // roots, so it accepts Alice and the client gets far enough to
        // judge the rogue certificate (rather than seeing a hangup).
        let mut rng = ChaChaRng::from_seed_bytes(b"rogue");
        let rogue_ca =
            CertificateAuthority::create_root(&mut rng, dn("/O=Rogue/CN=CA"), 512, 0, 1_000_000);
        let rogue = rogue_ca.issue_identity(&mut rng, dn("/O=Rogue/CN=Srv"), 512, 0, 100_000);
        let mut rogue_trust = w.client_cfg.trust.clone();
        rogue_trust.add_root(rogue_ca.certificate().clone());
        let rogue_cfg = TlsConfig::new(rogue, rogue_trust, 100);
        let mut attempts = 0u32;
        let dialer = |_attempt: u32| {
            attempts += 1;
            let (client_side, server_side, _) = StreamPair::new();
            let cfg = rogue_cfg.clone();
            std::thread::spawn(move || {
                let mut rng = ChaChaRng::from_seed_bytes(b"server side");
                let _ = server_accept(server_side, cfg, &mut rng);
            });
            Ok(client_side)
        };
        let result = connect_with_retry(
            &w.client_cfg.clone(),
            &mut w.rng,
            RetryPolicy::default(),
            dialer,
            |_, _| {},
        )
        .map(|_| ());
        assert!(result.is_err());
        assert_eq!(attempts, 1, "security failures must not be retried");
    }
}
