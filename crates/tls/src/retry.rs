//! Handshake-with-retry driver for the GT2 stream channel.
//!
//! The stream substrate (`gridsec_testbed::net::StreamPair::lossy`)
//! models TCP over a flaky WAN: a lost segment tears the connection and
//! every subsequent read/write fails with `ConnectionReset`, which the
//! record layer surfaces as [`TlsError::Io`]. A TLS handshake cannot
//! resume across a torn transport — the only correct recovery is to
//! dial a fresh connection and restart the handshake from ClientHello.
//! [`connect_with_retry`] encodes exactly that: dial, handshake, and on
//! a *transport* error (never a security error) back off and redial per
//! the [`RetryPolicy`].
//!
//! This crate stays transport-agnostic: `dial` is any closure producing
//! a fresh `Read + Write` connection, and `on_backoff` lets the caller
//! account the wait (the testbed advances its `SimClock`; production
//! would sleep).

use crate::handshake::TlsConfig;
use crate::stream::{client_connect, SecureStream};
use crate::TlsError;
use gridsec_bignum::prime::EntropySource;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace;
use std::io::{Read, Write};

/// Outcome statistics for a retried connect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectStats {
    /// Handshake attempts made (≥ 1).
    pub attempts: u32,
    /// Attempts that failed on a transport (`Io`) error.
    pub transport_failures: u32,
}

/// `true` for errors worth retrying: transport failures. Security
/// failures (bad signature, bad finished, PKI rejection, protocol
/// violation) are deterministic verdicts about the peer — retrying
/// them would just repeat the refusal, so they abort immediately.
pub fn is_transient(e: &TlsError) -> bool {
    matches!(e, TlsError::Io(_))
}

/// Establish a client-side [`SecureStream`], redialing and restarting
/// the handshake on transport errors until `policy` is exhausted.
///
/// `dial` produces a fresh connection per attempt (attempt index
/// passed so seeded testbed dials can vary deterministically);
/// `on_backoff(attempt, wait_secs)` is invoked before each redial.
/// Returns the stream plus attempt statistics, or the last error once
/// the policy is exhausted / a non-transient error occurs.
pub fn connect_with_retry<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    mut dial: D,
    mut on_backoff: impl FnMut(u32, u64),
) -> Result<(SecureStream<S>, ConnectStats), TlsError>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(u32) -> Result<S, TlsError>,
{
    let mut sp = trace::span("tls.connect");
    let mut stats = ConnectStats::default();
    let mut last = TlsError::Io("no attempts made".into());
    for (attempt, wait) in policy.schedule() {
        if attempt > 0 {
            trace::add("tls.redials", 1);
            trace::event("tls.redial", &format!("attempt={attempt} wait={wait}"));
            on_backoff(attempt, wait);
        }
        stats.attempts += 1;
        let result = dial(attempt).and_then(|stream| client_connect(stream, config.clone(), rng));
        match result {
            Ok(stream) => {
                trace::event("tls.handshake.ok", &format!("attempts={}", stats.attempts));
                trace::add("tls.handshakes", 1);
                return Ok((stream, stats));
            }
            Err(e) if is_transient(&e) => {
                stats.transport_failures += 1;
                trace::event("tls.transport.torn", &format!("attempt={attempt}"));
                last = e;
            }
            Err(e) => {
                // Security verdicts abort without retry; record why.
                sp.fail(&e.to_string());
                trace::event("tls.security.abort", &e.to_string());
                return Err(e);
            }
        }
    }
    sp.fail("retry budget exhausted");
    trace::flight_dump("tls redial budget exhausted");
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Accepted, RecordSession, ServerAcceptor};
    use crate::stream::write_frame;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::net::{with_stream_pump, Network, SimStream, StreamPair};
    use gridsec_testbed::sched::{Scheduler, Step, TaskCx};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        client_cfg: TlsConfig,
        server_cfg: TlsConfig,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls retry tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_identity(&mut rng, dn("/O=G/CN=Gatekeeper"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            client_cfg: TlsConfig::new(alice, trust.clone(), 100),
            server_cfg: TlsConfig::new(server, trust, 100),
        }
    }

    /// Spawn an uppercase-echo TLS server as a scheduler task over
    /// `stream`: sans-io accept, one request/reply, then done — the
    /// scheduled replacement for the old per-dial server thread. Any
    /// tear or protocol error just ends this connection's task; the
    /// client redials with a fresh pair and a fresh task.
    fn spawn_upper_server(
        sched: &Rc<RefCell<Scheduler>>,
        net: &Network,
        mailbox: &str,
        mut stream: SimStream,
        config: TlsConfig,
    ) {
        stream.wake_on_readable(net, mailbox);
        let mut rng = ChaChaRng::from_seed_bytes(b"server side");
        let mut acceptor = Some(ServerAcceptor::new(config));
        let mut session: Option<RecordSession> = None;
        sched
            .borrow_mut()
            .spawn_mailbox(mailbox, move |_cx: &TaskCx| {
                let mut tmp = [0u8; 4096];
                loop {
                    match stream.try_read(&mut tmp) {
                        Ok(Some(0)) | Err(_) => return Step::Done,
                        Ok(Some(n)) => match (&mut session, &mut acceptor) {
                            (Some(s), _) => s.feed(&tmp[..n]),
                            (None, Some(a)) => a.feed(&tmp[..n]),
                            (None, None) => unreachable!("acceptor lives until establishment"),
                        },
                        Ok(None) => break,
                    }
                }
                if session.is_none() {
                    loop {
                        match acceptor.as_mut().unwrap().advance(&mut rng) {
                            Err(_) => return Step::Done,
                            Ok(Accepted::Pending) => break,
                            Ok(Accepted::Respond(token)) => {
                                if write_frame(&mut stream, &token).is_err() {
                                    return Step::Done;
                                }
                            }
                            Ok(Accepted::Established(s)) => {
                                session = Some(*s);
                                acceptor = None;
                                break;
                            }
                        }
                    }
                }
                if let Some(s) = session.as_mut() {
                    match s.next_message() {
                        Err(_) => return Step::Done,
                        Ok(Some(msg)) => {
                            let sealed = s.send(&msg.to_ascii_uppercase());
                            let _ = write_frame(&mut stream, &sealed);
                            return Step::Done;
                        }
                        Ok(None) => {}
                    }
                }
                Step::WaitMail { deadline: None }
            });
    }

    /// Dial a lossy pair and run the server side as a scheduler task;
    /// each attempt gets a fresh connection with a seed derived from
    /// the attempt index, so the whole retry sequence is deterministic.
    fn lossy_dialer(
        sched: Rc<RefCell<Scheduler>>,
        net: Network,
        server_cfg: TlsConfig,
        base_seed: u64,
        drop_rate: f64,
    ) -> impl FnMut(u32) -> Result<SimStream, TlsError> {
        move |attempt| {
            let (client_side, server_side, _) =
                StreamPair::lossy(base_seed.wrapping_add(u64::from(attempt)), drop_rate);
            spawn_upper_server(
                &sched,
                &net,
                &format!("retry-server-{base_seed:x}-{attempt}"),
                server_side,
                server_cfg.clone(),
            );
            Ok(client_side)
        }
    }

    #[test]
    fn clean_transport_connects_first_try() {
        let mut w = world();
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let dialer = lossy_dialer(sched.clone(), net, w.server_cfg.clone(), 1, 0.0);
        let policy = RetryPolicy::default();
        let pump = sched.clone();
        with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                let (mut stream, stats) = connect_with_retry(
                    &w.client_cfg.clone(),
                    &mut w.rng,
                    policy,
                    dialer,
                    |_, _| {},
                )
                .unwrap();
                assert_eq!(stats.attempts, 1);
                stream.send(b"gt2 job").unwrap();
                assert_eq!(stream.recv().unwrap(), b"GT2 JOB");
            },
        );
    }

    #[test]
    fn retries_through_torn_connections_deterministically() {
        let run = || {
            let mut w = world();
            let net = Network::new();
            let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
            let dialer = lossy_dialer(sched.clone(), net, w.server_cfg.clone(), 0xD1A1, 0.05);
            let policy = RetryPolicy {
                max_attempts: 10,
                base_timeout: 1,
                multiplier: 2,
                max_timeout: 8,
            };
            let pump = sched.clone();
            with_stream_pump(
                move || pump.borrow_mut().pump(),
                move || {
                    let mut waited = 0u64;
                    let (mut stream, stats) = connect_with_retry(
                        &w.client_cfg.clone(),
                        &mut w.rng,
                        policy,
                        dialer,
                        |_, wait| waited += wait,
                    )
                    .unwrap();
                    // The stream stays lossy after the handshake, so the
                    // app exchange may still tear; only a non-transport
                    // error is a test failure here (the retry driver's
                    // contract covers establishment, not the application
                    // conversation).
                    match stream.send(b"payload").and_then(|()| stream.recv()) {
                        Ok(msg) => assert_eq!(msg, b"PAYLOAD"),
                        Err(e) => assert!(is_transient(&e), "{e:?}"),
                    }
                    (stats, waited)
                },
            )
        };
        let (s1, w1) = run();
        let (s2, w2) = run();
        assert_eq!(s1, s2, "same seeds, same attempt count");
        assert_eq!(w1, w2);
        // Backoff accounting matches the failure count.
        assert_eq!(s1.attempts, s1.transport_failures + 1);
    }

    #[test]
    fn exhausted_policy_returns_last_io_error() {
        let mut w = world();
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        // drop rate 1.0: the very first client write dies, every attempt.
        let dialer = lossy_dialer(sched.clone(), net, w.server_cfg.clone(), 3, 1.0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_timeout: 1,
            multiplier: 2,
            max_timeout: 4,
        };
        let pump = sched.clone();
        let err = with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                connect_with_retry(&w.client_cfg.clone(), &mut w.rng, policy, dialer, |_, _| {})
                    .map(|_| ())
                    .unwrap_err()
            },
        );
        assert!(is_transient(&err), "{err:?}");
    }

    #[test]
    fn security_errors_do_not_retry() {
        let mut w = world();
        // A server whose credential chains to a CA the client does not
        // trust: every attempt would fail identically, so the driver
        // must abort on attempt 1. The rogue server itself trusts both
        // roots, so it accepts Alice and the client gets far enough to
        // judge the rogue certificate (rather than seeing a hangup).
        let mut rng = ChaChaRng::from_seed_bytes(b"rogue");
        let rogue_ca =
            CertificateAuthority::create_root(&mut rng, dn("/O=Rogue/CN=CA"), 512, 0, 1_000_000);
        let rogue = rogue_ca.issue_identity(&mut rng, dn("/O=Rogue/CN=Srv"), 512, 0, 100_000);
        let mut rogue_trust = w.client_cfg.trust.clone();
        rogue_trust.add_root(rogue_ca.certificate().clone());
        let rogue_cfg = TlsConfig::new(rogue, rogue_trust, 100);
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let attempts = Rc::new(RefCell::new(0u32));
        let dialer = {
            let sched = sched.clone();
            let net = net.clone();
            let attempts = attempts.clone();
            move |attempt: u32| {
                *attempts.borrow_mut() += 1;
                let (client_side, server_side, _) = StreamPair::new();
                spawn_upper_server(
                    &sched,
                    &net,
                    &format!("rogue-server-{attempt}"),
                    server_side,
                    rogue_cfg.clone(),
                );
                Ok(client_side)
            }
        };
        let pump = sched.clone();
        let result = with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                connect_with_retry(
                    &w.client_cfg.clone(),
                    &mut w.rng,
                    RetryPolicy::default(),
                    dialer,
                    |_, _| {},
                )
                .map(|_| ())
            },
        );
        assert!(result.is_err());
        assert_eq!(
            *attempts.borrow(),
            1,
            "security failures must not be retried"
        );
    }
}
