//! Shared crypto state for high-fan-in handshake endpoints.
//!
//! A service accepting thousands of contexts repeats the same expensive
//! asymmetric steps with the same parameters: every chain it validates
//! hangs off a handful of CA keys, every DH share lives in one group,
//! and every outgoing signature uses its own credential. [`CryptoPool`]
//! ties the per-parameter amortizations built lower in the stack into
//! one handle a handshake endpoint threads through [`TlsConfig`]:
//!
//! * a [`CachedValidator`] memoizing chain walks and sharing per-issuer
//!   [`RsaVerifyCtx`]s (Montgomery state built once per CA key);
//! * thread-local [`gridsec_bignum::precomp`] registrations — a
//!   fixed-base table for the DH generator (squaring-free share
//!   generation), a Montgomery context for the group modulus
//!   (accelerated agreement), and contexts for the credential's CRT
//!   primes (accelerated signing);
//! * shared verify contexts for the hello-binding signatures keyed on
//!   the peer's leaf key.
//!
//! The pool itself is plain data (shared through `Arc<Mutex<_>>` in
//! [`TlsConfig`]), but the precomp registrations are *thread-local*:
//! they accelerate `mod_pow` on the thread that called the register
//! methods — exactly the shape of the single-threaded deterministic
//! simulation harness. Dropping the pool (or calling
//! [`CryptoPool::release`]) unregisters everything it registered, on
//! the dropping thread.
//!
//! [`TlsConfig`]: crate::handshake::TlsConfig

use std::collections::HashMap;
use std::sync::Arc;

use gridsec_crypto::dh::DhGroup;
use gridsec_crypto::rsa::{RsaPublicKey, RsaVerifyCtx};
use gridsec_crypto::sha256::sha256;
use gridsec_pki::cert::Certificate;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::{CachedValidator, ValidatedIdentity};
use gridsec_pki::PkiError;

/// Default capacity of the pooled chain-validation cache.
pub const DEFAULT_VALIDATOR_CAPACITY: usize = 256;

/// Bound on retained binding-verify contexts; reaching it clears the
/// map (deterministic, mirroring the validator's context policy).
const MAX_BINDING_CTXS: usize = 64;

/// Shared, reusable crypto state for many handshakes on one thread.
pub struct CryptoPool {
    validator: CachedValidator,
    binding_ctxs: HashMap<[u8; 32], Arc<RsaVerifyCtx>>,
    groups: Vec<DhGroup>,
    signers: Vec<Credential>,
    binding_hits: u64,
    binding_misses: u64,
}

impl CryptoPool {
    /// Pool with the default validation-cache capacity.
    pub fn new() -> Self {
        Self::with_validator_capacity(DEFAULT_VALIDATOR_CAPACITY)
    }

    /// Pool memoizing at most `capacity` validated chains.
    pub fn with_validator_capacity(capacity: usize) -> Self {
        CryptoPool {
            validator: CachedValidator::new(capacity),
            binding_ctxs: HashMap::new(),
            groups: Vec::new(),
            signers: Vec::new(),
            binding_hits: 0,
            binding_misses: 0,
        }
    }

    /// Register `group` in the thread's precomp registry (fixed-base
    /// table for the generator, shared context for the modulus), and
    /// remember it for release. Idempotent per group.
    pub fn register_group(&mut self, group: &DhGroup) -> bool {
        let ok = group.register_precomp();
        if !self.groups.contains(group) {
            self.groups.push(group.clone());
        }
        ok
    }

    /// Register `credential`'s signing key (CRT prime contexts) in the
    /// thread's precomp registry and remember it for release.
    pub fn register_signer(&mut self, credential: &Credential) -> bool {
        let ok = credential.key().register_signing_precomp();
        if !self
            .signers
            .iter()
            .any(|c| c.certificate().fingerprint() == credential.certificate().fingerprint())
        {
            self.signers.push(credential.clone());
        }
        ok
    }

    /// Validate a peer chain through the pooled [`CachedValidator`].
    /// Semantically identical to
    /// [`gridsec_pki::validate::validate_chain_with_crls`].
    pub fn validate(
        &mut self,
        chain: &[Certificate],
        trust: &TrustStore,
        crls: &CrlStore,
        now: u64,
    ) -> Result<ValidatedIdentity, PkiError> {
        self.validator.validate(chain, trust, crls, now)
    }

    /// Validate many peer chains at once through the pooled validator,
    /// grouping signature checks by issuer key (see
    /// [`CachedValidator::validate_batch`]).
    pub fn validate_batch(
        &mut self,
        chains: &[&[Certificate]],
        trust: &TrustStore,
        crls: &CrlStore,
        now: u64,
    ) -> Vec<Result<ValidatedIdentity, PkiError>> {
        self.validator.validate_batch(chains, trust, crls, now)
    }

    /// Verify a hello-binding signature through a shared per-key
    /// context. Identical verdict to
    /// [`RsaPublicKey::verify_pkcs1_sha256`].
    pub fn verify_binding(&mut self, key: &RsaPublicKey, msg: &[u8], sig: &[u8]) -> bool {
        let n = key.modulus().to_bytes_be();
        let e = key.exponent().to_bytes_be();
        let mut data = Vec::with_capacity(n.len() + e.len() + 8);
        data.extend_from_slice(&(n.len() as u32).to_be_bytes());
        data.extend_from_slice(&n);
        data.extend_from_slice(&(e.len() as u32).to_be_bytes());
        data.extend_from_slice(&e);
        let digest = sha256(&data);

        let ctx = if let Some(ctx) = self.binding_ctxs.get(&digest) {
            self.binding_hits += 1;
            Arc::clone(ctx)
        } else {
            self.binding_misses += 1;
            if self.binding_ctxs.len() >= MAX_BINDING_CTXS {
                self.binding_ctxs.clear();
            }
            let ctx = Arc::new(key.verify_ctx());
            self.binding_ctxs.insert(digest, Arc::clone(&ctx));
            ctx
        };
        ctx.verify_pkcs1_sha256(msg, sig)
    }

    /// The pooled validator (hit/miss counters, precomputed-key count).
    pub fn validator(&self) -> &CachedValidator {
        &self.validator
    }

    /// Binding-signature context reuses so far.
    pub fn binding_hits(&self) -> u64 {
        self.binding_hits
    }

    /// Binding-signature contexts built so far.
    pub fn binding_misses(&self) -> u64 {
        self.binding_misses
    }

    /// Unregister every precomp registration this pool made and drop
    /// the shared contexts. Called automatically on drop.
    pub fn release(&mut self) {
        for group in self.groups.drain(..) {
            group.unregister_precomp();
        }
        for signer in self.signers.drain(..) {
            signer.key().unregister_signing_precomp();
        }
        self.binding_ctxs.clear();
    }
}

impl Default for CryptoPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CryptoPool {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_bignum::precomp;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn pool_registers_and_releases_precomp() {
        precomp::clear();
        let mut rng = ChaChaRng::from_seed_bytes(b"pool test");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, 100_000);
        let group = DhGroup::test_group_256();

        {
            let mut pool = CryptoPool::new();
            assert!(pool.register_group(&group));
            assert!(pool.register_signer(&user));
            let stats = precomp::stats();
            assert_eq!(stats.tables, 1, "one fixed-base table for g");
            assert_eq!(stats.contexts, 3, "group modulus plus two CRT primes");
            // Re-registration is idempotent.
            assert!(pool.register_group(&group));
            assert_eq!(precomp::stats().tables, 1);
        }
        // Drop released everything.
        let stats = precomp::stats();
        assert_eq!((stats.tables, stats.contexts), (0, 0));
    }

    #[test]
    fn binding_verification_shares_contexts() {
        let mut rng = ChaChaRng::from_seed_bytes(b"pool binding");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, 100_000);
        let key = user.certificate().public_key().clone();

        let mut pool = CryptoPool::new();
        let sig = user.sign(b"binding payload");
        assert!(pool.verify_binding(&key, b"binding payload", &sig));
        assert!(pool.verify_binding(&key, b"binding payload", &sig));
        assert!(!pool.verify_binding(&key, b"other payload", &sig));
        assert_eq!(pool.binding_misses(), 1, "one context built");
        assert_eq!(pool.binding_hits(), 2, "then shared");
    }
}
