//! Session resumption: amortizing the asymmetric-crypto handshake cost.
//!
//! A completed full handshake leaves both sides holding the master
//! secret. [`ResumptionData`] derives a *ticket* (an HMAC of the master
//! secret under a fixed label) that both sides compute independently —
//! no extra bytes ride on the full-handshake tokens, so GT2/GT3 token
//! compatibility is untouched. A later context between the same pair can
//! then run the abbreviated handshake (token tags 4/5/6):
//!
//! 1. **ResumeHello** — ticket + fresh client random.
//! 2. **ResumeServerHello** — fresh server random + server Finished MAC.
//! 3. **ResumeFinished** — client Finished MAC.
//!
//! The cached master secret plays the role of the Diffie–Hellman shared
//! secret in the key schedule, so the abbreviated handshake re-derives
//! fresh direction keys while skipping certificate-chain validation, RSA
//! sign/verify, and DH key agreement entirely — only symmetric HKDF/HMAC
//! work remains. Each resumption also *rotates* the session: the resumed
//! channel carries new [`ResumptionData`] under the new master secret.
//!
//! Determinism: both caches are capacity-bounded with FIFO eviction and
//! expiry driven by the caller-supplied clock (`SimClock` in the
//! simulation harness), so two runs with the same seed evict and expire
//! identically. An unknown or expired ticket is an error the caller
//! turns into a fall back to the full handshake.

use std::collections::{HashMap, VecDeque};

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::ct::ct_eq;
use gridsec_crypto::hmac::{hmac_sha256, PrimedHmac};
use gridsec_pki::cert::Certificate;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::validate::ValidatedIdentity;
use gridsec_pki::PkiError;

use crate::channel::SecureChannel;
use crate::handshake::{get_array32, KeySchedule};
use crate::TlsError;

/// Default lifetime of a resumable session, in the same units as
/// [`crate::handshake::TlsConfig::now`].
pub const DEFAULT_SESSION_LIFETIME: u64 = 3_600;

/// Default capacity for both session caches.
pub const DEFAULT_SESSION_CAPACITY: usize = 64;

const TICKET_LABEL: &[u8] = b"gsi-tls resumption ticket v1";

/// Resumption state minted by a completed handshake (full or
/// abbreviated) and carried on the resulting [`SecureChannel`].
#[derive(Clone)]
pub struct ResumptionData {
    ticket: [u8; 32],
    master: [u8; 32],
    expires_at: u64,
    cred_not_after: u64,
}

impl core::fmt::Debug for ResumptionData {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Deliberately omits the master secret.
        f.debug_struct("ResumptionData")
            .field("expires_at", &self.expires_at)
            .field("cred_not_after", &self.cred_not_after)
            .finish_non_exhaustive()
    }
}

impl ResumptionData {
    /// Derive the ticket from the master secret. Both handshake sides
    /// call this with identical inputs, so the ticket never needs to be
    /// negotiated on the wire during the full handshake.
    ///
    /// `cred_not_after` is the earliest `not_after` across both sides'
    /// certificate chains; the ticket lifetime is clamped to it so a
    /// session can never be resumed after the credentials that
    /// authenticated it have expired. Rotation on resumption carries
    /// the bound forward, so no chain of abbreviated handshakes can
    /// outlive the original proxy either.
    // In non-test builds every caller goes through the primed path;
    // this stays as the one-shot reference the byte-identity test
    // compares against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_master(master: [u8; 32], expires_at: u64, cred_not_after: u64) -> Self {
        let ticket = hmac_sha256(&master, TICKET_LABEL);
        ResumptionData {
            ticket,
            master,
            expires_at: expires_at.min(cred_not_after),
            cred_not_after,
        }
    }

    /// Like [`ResumptionData::from_master`], but deriving the ticket
    /// through an already-primed master-keyed HMAC schedule —
    /// byte-identical output (pinned by `primed_ticket_matches_one_shot`
    /// below), minus the per-call key-schedule rework. `primed` MUST be
    /// keyed by `master`.
    pub(crate) fn from_master_primed(
        primed: &PrimedHmac,
        master: [u8; 32],
        expires_at: u64,
        cred_not_after: u64,
    ) -> Self {
        let ticket = primed.mac(TICKET_LABEL);
        debug_assert_eq!(ticket, hmac_sha256(&master, TICKET_LABEL));
        ResumptionData {
            ticket,
            master,
            expires_at: expires_at.min(cred_not_after),
            cred_not_after,
        }
    }

    /// Expiry of the credentials that authenticated this session — the
    /// hard upper bound no rotation can extend past.
    pub fn cred_not_after(&self) -> u64 {
        self.cred_not_after
    }

    /// The opaque lookup key the client presents in ResumeHello.
    pub fn ticket(&self) -> &[u8; 32] {
        &self.ticket
    }

    /// Expiry instant (inclusive lower bound of rejection).
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// `true` once `now` has reached the expiry instant.
    pub fn is_expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }
}

/// Earliest `not_after` across a certificate chain — the instant the
/// chain as a whole stops validating. Empty chains are unbounded.
pub(crate) fn chain_not_after(chain: &[Certificate]) -> u64 {
    chain
        .iter()
        .map(|c| c.tbs.validity.not_after)
        .min()
        .unwrap_or(u64::MAX)
}

// ----------------------------------------------------------------------
// Wire messages (token tags 4/5/6; full handshake uses 1/2/3)
// ----------------------------------------------------------------------

struct ResumeHello {
    ticket: [u8; 32],
    client_random: [u8; 32],
}

struct ResumeServerHello {
    server_random: [u8; 32],
    finished_mac: [u8; 32],
}

struct ResumeFinished {
    mac: [u8; 32],
}

impl Codec for ResumeHello {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(4);
        enc.put_bytes(&self.ticket);
        enc.put_bytes(&self.client_random);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        if dec.get_u8()? != 4 {
            return Err(PkiError::Decode("not a ResumeHello token"));
        }
        Ok(ResumeHello {
            ticket: get_array32(dec)?,
            client_random: get_array32(dec)?,
        })
    }
}

impl Codec for ResumeServerHello {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(5);
        enc.put_bytes(&self.server_random);
        enc.put_bytes(&self.finished_mac);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        if dec.get_u8()? != 5 {
            return Err(PkiError::Decode("not a ResumeServerHello token"));
        }
        Ok(ResumeServerHello {
            server_random: get_array32(dec)?,
            finished_mac: get_array32(dec)?,
        })
    }
}

impl Codec for ResumeFinished {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(6);
        enc.put_bytes(&self.mac);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        if dec.get_u8()? != 6 {
            return Err(PkiError::Decode("not a ResumeFinished token"));
        }
        Ok(ResumeFinished {
            mac: get_array32(dec)?,
        })
    }
}

/// `true` iff `token` looks like a ResumeHello (tag 4), letting a
/// transport dispatch between full and abbreviated handshakes without
/// parsing the whole token.
pub fn is_resume_hello(token: &[u8]) -> bool {
    token.first() == Some(&4)
}

// ----------------------------------------------------------------------
// Client side
// ----------------------------------------------------------------------

/// A client-side cached session: resumption state plus the server
/// identity authenticated by the original full handshake.
#[derive(Clone, Debug)]
pub struct ClientSession {
    data: ResumptionData,
    /// The server identity from the full handshake's chain validation.
    /// A resumed channel reuses it — that is sound because only the
    /// authenticated server holds the master secret the resumption MACs
    /// are keyed on.
    pub peer: ValidatedIdentity,
}

impl ClientSession {
    /// Extract a cacheable session from an established channel, if it
    /// carries resumption state.
    pub fn from_channel(channel: &SecureChannel) -> Option<ClientSession> {
        channel.resumption().map(|data| ClientSession {
            data: data.clone(),
            peer: channel.peer.clone(),
        })
    }

    /// Expiry instant of the underlying resumption state.
    pub fn expires_at(&self) -> u64 {
        self.data.expires_at
    }

    /// The resumption ticket this session would present.
    pub fn ticket(&self) -> &[u8; 32] {
        self.data.ticket()
    }
}

/// Client-side session cache keyed by server name, capacity-bounded
/// with deterministic FIFO eviction.
pub struct ClientSessionCache {
    capacity: usize,
    map: HashMap<String, ClientSession>,
    order: VecDeque<String>,
}

impl ClientSessionCache {
    /// Cache holding at most `capacity` sessions (`capacity > 0`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "session cache capacity must be positive");
        ClientSessionCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Remember the session carried by `channel` under `server`.
    /// Returns `false` when the channel has no resumption state.
    pub fn store(&mut self, server: &str, channel: &SecureChannel) -> bool {
        match ClientSession::from_channel(channel) {
            Some(session) => {
                if self.map.insert(server.to_string(), session).is_some() {
                    self.order.retain(|k| k != server);
                } else if self.map.len() > self.capacity {
                    if let Some(oldest) = self.order.pop_front() {
                        self.map.remove(&oldest);
                    }
                }
                self.order.push_back(server.to_string());
                true
            }
            None => false,
        }
    }

    /// Look up an unexpired session for `server`.
    pub fn lookup(&self, server: &str, now: u64) -> Option<ClientSession> {
        self.map
            .get(server)
            .filter(|s| !s.data.is_expired(now))
            .cloned()
    }

    /// Drop the session for `server` (e.g. after a failed resumption).
    pub fn invalidate(&mut self, server: &str) {
        if self.map.remove(server).is_some() {
            self.order.retain(|k| k != server);
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Client side of the abbreviated handshake: ResumeHello sent, awaiting
/// ResumeServerHello.
pub struct ClientResume {
    session: ClientSession,
    client_random: [u8; 32],
    hello_bytes: Vec<u8>,
    new_expires_at: u64,
}

/// Start an abbreviated handshake from a cached session. Returns the
/// state machine and the ResumeHello token. `now`/`lifetime` stamp the
/// rotated session the resumed channel will carry.
pub fn resume_client<E: EntropySource>(
    session: ClientSession,
    now: u64,
    lifetime: u64,
    rng: &mut E,
) -> (ClientResume, Vec<u8>) {
    let mut client_random = [0u8; 32];
    rng.fill_bytes(&mut client_random);
    let hello = ResumeHello {
        ticket: session.data.ticket,
        client_random,
    };
    let hello_bytes = hello.to_bytes();
    (
        ClientResume {
            session,
            client_random,
            hello_bytes: hello_bytes.clone(),
            new_expires_at: now.saturating_add(lifetime),
        },
        hello_bytes,
    )
}

impl ClientResume {
    /// Consume the ResumeServerHello token; returns the ResumeFinished
    /// token plus the resumed channel.
    pub fn step(self, token: &[u8]) -> Result<(Vec<u8>, SecureChannel), TlsError> {
        let sh = ResumeServerHello::from_bytes(token)
            .map_err(|_| TlsError::Protocol("malformed ResumeServerHello"))?;
        // The cached master secret stands in for the DH shared secret;
        // fresh randoms give the resumed context fresh direction keys.
        let ks = KeySchedule::derive(
            &self.session.data.master,
            &self.client_random,
            &sh.server_random,
            &self.hello_bytes,
        );
        if !ct_eq(&ks.finished_mac("resume server finished"), &sh.finished_mac) {
            return Err(TlsError::BadFinished);
        }
        let finished = ResumeFinished {
            mac: ks.finished_mac("resume client finished"),
        };
        let cred_not_after = self.session.data.cred_not_after;
        let channel = SecureChannel::from_key_block(self.session.peer, &ks.key_block, true)
            .with_resumption(ks.resumption(self.new_expires_at, cred_not_after));
        Ok((finished.to_bytes(), channel))
    }
}

// ----------------------------------------------------------------------
// Server side
// ----------------------------------------------------------------------

#[derive(Clone)]
struct ServerSession {
    master: [u8; 32],
    peer: ValidatedIdentity,
    expires_at: u64,
    cred_not_after: u64,
}

/// Server-side session cache keyed by ticket, capacity-bounded with
/// deterministic FIFO eviction.
pub struct ServerSessionCache {
    capacity: usize,
    lifetime: u64,
    map: HashMap<[u8; 32], ServerSession>,
    order: VecDeque<[u8; 32]>,
    hits: u64,
    misses: u64,
}

impl ServerSessionCache {
    /// Cache holding at most `capacity` sessions; resumed sessions are
    /// stamped with `now + lifetime`.
    pub fn new(capacity: usize, lifetime: u64) -> Self {
        assert!(capacity > 0, "session cache capacity must be positive");
        ServerSessionCache {
            capacity,
            lifetime,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Remember the session carried by `channel`. Returns `false` when
    /// the channel has no resumption state.
    pub fn store(&mut self, channel: &SecureChannel) -> bool {
        let Some(data) = channel.resumption() else {
            return false;
        };
        let ticket = data.ticket;
        let session = ServerSession {
            master: data.master,
            peer: channel.peer.clone(),
            expires_at: data.expires_at,
            cred_not_after: data.cred_not_after,
        };
        if self.map.insert(ticket, session).is_some() {
            self.order.retain(|k| k != &ticket);
        } else if self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(ticket);
        true
    }

    /// Consume a ResumeHello token. On a hit, returns the
    /// ResumeServerHello token and the await-finished state. An unknown
    /// or expired ticket is an error — the caller signals the client,
    /// which falls back to a full handshake. Expired entries are
    /// dropped on lookup so the cache cannot fill with dead sessions.
    pub fn accept<E: EntropySource>(
        &mut self,
        token: &[u8],
        now: u64,
        rng: &mut E,
    ) -> Result<(Vec<u8>, ServerResumeAwait), TlsError> {
        let hello = ResumeHello::from_bytes(token)
            .map_err(|_| TlsError::Protocol("malformed ResumeHello"))?;
        let session = match self.map.get(&hello.ticket) {
            Some(s) if now < s.expires_at => s.clone(),
            Some(_) => {
                self.map.remove(&hello.ticket);
                self.order.retain(|k| k != &hello.ticket);
                self.misses += 1;
                return Err(TlsError::Protocol("expired session ticket"));
            }
            None => {
                self.misses += 1;
                return Err(TlsError::Protocol("unknown session ticket"));
            }
        };
        self.hits += 1;

        let mut server_random = [0u8; 32];
        rng.fill_bytes(&mut server_random);
        let ks = KeySchedule::derive(&session.master, &hello.client_random, &server_random, token);
        let sh = ResumeServerHello {
            server_random,
            finished_mac: ks.finished_mac("resume server finished"),
        };
        let resumption = ks.resumption(now.saturating_add(self.lifetime), session.cred_not_after);
        Ok((
            sh.to_bytes(),
            ServerResumeAwait {
                expected_mac: ks.finished_mac("resume client finished"),
                peer: session.peer,
                key_block: ks.key_block,
                resumption,
            },
        ))
    }

    /// Successful ticket lookups so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Unknown/expired ticket lookups so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Server-side intermediate state: ResumeServerHello sent, awaiting
/// ResumeFinished.
pub struct ServerResumeAwait {
    expected_mac: [u8; 32],
    peer: ValidatedIdentity,
    key_block: Vec<u8>,
    resumption: ResumptionData,
}

impl ServerResumeAwait {
    /// Consume the ResumeFinished token; on success the resumed context
    /// is live and carries rotated resumption state.
    pub fn step(self, token: &[u8]) -> Result<SecureChannel, TlsError> {
        let cf = ResumeFinished::from_bytes(token)
            .map_err(|_| TlsError::Protocol("malformed ResumeFinished"))?;
        if !ct_eq(&cf.mac, &self.expected_mac) {
            return Err(TlsError::BadFinished);
        }
        Ok(
            SecureChannel::from_key_block(self.peer, &self.key_block, false)
                .with_resumption(self.resumption),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{handshake_in_memory, TlsConfig};
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        alice: Credential,
        server: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"tls session tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_identity(&mut rng, dn("/O=G/CN=host fs1"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            alice,
            server,
        }
    }

    fn cfg(w: &World, cred: &Credential) -> TlsConfig {
        TlsConfig::new(cred.clone(), w.trust.clone(), 100)
    }

    /// Full handshake, then populate both caches from the channels.
    fn establish_and_cache(
        w: &mut World,
    ) -> (ClientSessionCache, ServerSessionCache, ClientSession) {
        let cfg_c = cfg(w, &w.alice);
        let cfg_s = cfg(w, &w.server);
        let (cch, sch) = handshake_in_memory(cfg_c, cfg_s, &mut w.rng).unwrap();
        let mut client_cache = ClientSessionCache::new(4);
        let mut server_cache = ServerSessionCache::new(4, DEFAULT_SESSION_LIFETIME);
        assert!(client_cache.store("fs1", &cch));
        assert!(server_cache.store(&sch));
        let session = client_cache.lookup("fs1", 100).unwrap();
        (client_cache, server_cache, session)
    }

    #[test]
    fn resumed_handshake_round_trips() {
        let mut w = world();
        let (_cc, mut sc, session) = establish_and_cache(&mut w);
        let peer_before = session.peer.base_identity.clone();

        let (cr, hello) = resume_client(session, 200, 3_600, &mut w.rng);
        assert!(is_resume_hello(&hello));
        let (sh, await_finished) = sc.accept(&hello, 200, &mut w.rng).unwrap();
        let (finished, mut cch) = cr.step(&sh).unwrap();
        let mut sch = await_finished.step(&finished).unwrap();
        assert_eq!(sc.hits(), 1);

        // Identities survive resumption.
        assert_eq!(cch.peer.base_identity, peer_before);
        assert_eq!(sch.peer.base_identity, dn("/O=G/CN=Alice"));

        // The resumed channel protects traffic both ways.
        let m = cch.seal(b"GET /jobs");
        assert_eq!(sch.open(&m).unwrap(), b"GET /jobs");
        let r = sch.seal(b"200 OK");
        assert_eq!(cch.open(&r).unwrap(), b"200 OK");
    }

    #[test]
    fn primed_ticket_matches_one_shot() {
        // The primed-HMAC derivation path (KeySchedule::resumption →
        // from_master_primed) must be byte-identical to the one-shot
        // reference, full and abbreviated handshakes alike.
        let mut w = world();
        let (_cc, mut sc, session) = establish_and_cache(&mut w);
        let check = |data: &ResumptionData| {
            assert_eq!(*data.ticket(), hmac_sha256(&data.master, TICKET_LABEL));
            let reference =
                ResumptionData::from_master(data.master, data.expires_at, data.cred_not_after);
            assert_eq!(data.ticket(), reference.ticket());
            assert_eq!(data.expires_at(), reference.expires_at());
        };
        check(&session.data);

        let (cr, hello) = resume_client(session, 200, 3_600, &mut w.rng);
        let (sh, await_finished) = sc.accept(&hello, 200, &mut w.rng).unwrap();
        let (finished, cch) = cr.step(&sh).unwrap();
        let sch = await_finished.step(&finished).unwrap();
        check(cch.resumption().unwrap());
        check(sch.resumption().unwrap());
        assert_eq!(
            cch.resumption().unwrap().ticket(),
            sch.resumption().unwrap().ticket(),
            "both sides mint the same rotated ticket"
        );
    }

    #[test]
    fn resumption_rotates_the_ticket() {
        let mut w = world();
        let (_cc, mut sc, session) = establish_and_cache(&mut w);
        let old_ticket = *session.data.ticket();

        let (cr, hello) = resume_client(session, 200, 3_600, &mut w.rng);
        let (sh, await_finished) = sc.accept(&hello, 200, &mut w.rng).unwrap();
        let (finished, cch) = cr.step(&sh).unwrap();
        let sch = await_finished.step(&finished).unwrap();

        let new_ticket = *cch.resumption().unwrap().ticket();
        assert_ne!(new_ticket, old_ticket);
        // Both sides rotate to the same new session.
        assert_eq!(new_ticket, *sch.resumption().unwrap().ticket());
    }

    #[test]
    fn unknown_ticket_is_a_miss() {
        let mut w = world();
        let (_cc, sc, session) = establish_and_cache(&mut w);
        let mut fresh = ServerSessionCache::new(4, 3_600);
        let (_cr, hello) = resume_client(session, 200, 3_600, &mut w.rng);
        assert!(matches!(
            fresh.accept(&hello, 200, &mut w.rng),
            Err(TlsError::Protocol("unknown session ticket"))
        ));
        assert_eq!(fresh.misses(), 1);
        assert_eq!(sc.hits(), 0);
    }

    #[test]
    fn expired_ticket_rejected_and_dropped() {
        let mut w = world();
        let (_cc, mut sc, session) = establish_and_cache(&mut w);
        let expiry = session.expires_at();
        assert_eq!(sc.len(), 1);
        let (_cr, hello) = resume_client(session, expiry, 3_600, &mut w.rng);
        assert!(matches!(
            sc.accept(&hello, expiry, &mut w.rng),
            Err(TlsError::Protocol("expired session ticket"))
        ));
        // The dead entry was dropped on lookup.
        assert!(sc.is_empty());
    }

    #[test]
    fn client_cache_expiry_and_invalidate() {
        let mut w = world();
        let (cc, _sc, session) = establish_and_cache(&mut w);
        assert!(cc.lookup("fs1", session.expires_at() - 1).is_some());
        assert!(cc.lookup("fs1", session.expires_at()).is_none());
        let mut cc = cc;
        cc.invalidate("fs1");
        assert!(cc.is_empty());
    }

    #[test]
    fn caches_evict_oldest_first() {
        let mut cache = ClientSessionCache::new(2);
        let mut w = world();
        for name in ["s1", "s2", "s3"] {
            let (cch, _sch) =
                handshake_in_memory(cfg(&w, &w.alice), cfg(&w, &w.server), &mut w.rng).unwrap();
            assert!(cache.store(name, &cch));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("s1", 100).is_none()); // evicted
        assert!(cache.lookup("s2", 100).is_some());
        assert!(cache.lookup("s3", 100).is_some());
    }

    #[test]
    fn ticket_lifetime_bounded_by_credential_expiry() {
        use gridsec_pki::proxy::{issue_proxy, ProxyType};
        use gridsec_pki::validate::validate_chain;
        use gridsec_testbed::clock::SimClock;

        let mut w = world();
        let clock = SimClock::starting_at(100);

        // A short-lived proxy: expires long before the default session
        // lifetime would.
        let proxy = issue_proxy(
            &mut w.rng,
            &w.alice,
            ProxyType::Impersonation,
            512,
            clock.now(),
            500,
        )
        .unwrap();
        let proxy_expiry = proxy.certificate().tbs.validity.not_after;
        assert_eq!(proxy_expiry, 600);

        let cfg_c = TlsConfig::new(proxy.clone(), w.trust.clone(), clock.now());
        let cfg_s = TlsConfig::new(w.server.clone(), w.trust.clone(), clock.now());
        let (cch, sch) = handshake_in_memory(cfg_c, cfg_s, &mut w.rng).unwrap();

        // Both sides clamp the ticket to the proxy's not_after, not
        // now + DEFAULT_SESSION_LIFETIME.
        assert_eq!(cch.resumption().unwrap().expires_at(), proxy_expiry);
        assert_eq!(sch.resumption().unwrap().expires_at(), proxy_expiry);
        assert_eq!(cch.resumption().unwrap().cred_not_after(), proxy_expiry);

        let mut client_cache = ClientSessionCache::new(4);
        let mut server_cache = ServerSessionCache::new(4, DEFAULT_SESSION_LIFETIME);
        assert!(client_cache.store("fs1", &cch));
        assert!(server_cache.store(&sch));
        let session = client_cache.lookup("fs1", clock.now()).unwrap();

        // The proxy expires between the full handshake and the attempted
        // abbreviated one.
        clock.advance(600);
        let now = clock.now();
        assert!(now > proxy_expiry);

        // Client-side cache already refuses to offer the session ...
        assert!(client_cache.lookup("fs1", now).is_none());

        // ... and a stale client that held on to it is refused by the
        // server, which drops the dead entry.
        let (_cr, hello) = resume_client(session, now, DEFAULT_SESSION_LIFETIME, &mut w.rng);
        assert!(matches!(
            server_cache.accept(&hello, now, &mut w.rng),
            Err(TlsError::Protocol("expired session ticket"))
        ));
        assert!(server_cache.is_empty());

        // The fall-back full handshake then fails chain validation: the
        // expired proxy cannot re-authenticate.
        assert!(validate_chain(proxy.chain(), &w.trust, now).is_err());
        let cfg_c = TlsConfig::new(proxy, w.trust.clone(), now);
        let cfg_s = TlsConfig::new(w.server.clone(), w.trust.clone(), now);
        assert!(matches!(
            handshake_in_memory(cfg_c, cfg_s, &mut w.rng),
            Err(TlsError::Pki(_))
        ));
    }

    #[test]
    fn rotation_cannot_outlive_the_credential() {
        use gridsec_pki::proxy::{issue_proxy, ProxyType};

        let mut w = world();
        let proxy = issue_proxy(
            &mut w.rng,
            &w.alice,
            ProxyType::Impersonation,
            512,
            100,
            900,
        )
        .unwrap();
        let proxy_expiry = proxy.certificate().tbs.validity.not_after;

        let cfg_c = TlsConfig::new(proxy, w.trust.clone(), 100);
        let cfg_s = TlsConfig::new(w.server.clone(), w.trust.clone(), 100);
        let (cch, sch) = handshake_in_memory(cfg_c, cfg_s, &mut w.rng).unwrap();
        let mut client_cache = ClientSessionCache::new(4);
        let mut server_cache = ServerSessionCache::new(4, DEFAULT_SESSION_LIFETIME);
        client_cache.store("fs1", &cch);
        server_cache.store(&sch);

        // Resume repeatedly, advancing time; every rotated ticket stays
        // clamped to the original credential expiry, so the chain of
        // abbreviated handshakes dies exactly when the proxy does.
        let mut now = 300;
        for _ in 0..3 {
            let session = client_cache.lookup("fs1", now).unwrap();
            let (cr, hello) = resume_client(session, now, DEFAULT_SESSION_LIFETIME, &mut w.rng);
            let (sh, await_finished) = server_cache.accept(&hello, now, &mut w.rng).unwrap();
            let (finished, cch) = cr.step(&sh).unwrap();
            let sch = await_finished.step(&finished).unwrap();
            assert_eq!(cch.resumption().unwrap().expires_at(), proxy_expiry);
            assert_eq!(sch.resumption().unwrap().expires_at(), proxy_expiry);
            client_cache.store("fs1", &cch);
            server_cache.store(&sch);
            now += 200;
        }

        // Past the proxy's not_after, the last rotated ticket is dead too.
        assert!(client_cache.lookup("fs1", proxy_expiry).is_none());
    }

    #[test]
    fn tampered_resume_tokens_rejected() {
        let mut w = world();
        let (_cc, mut sc, session) = establish_and_cache(&mut w);
        let (cr, hello) = resume_client(session, 200, 3_600, &mut w.rng);
        let (mut sh, await_finished) = sc.accept(&hello, 200, &mut w.rng).unwrap();
        let n = sh.len();
        sh[n - 1] ^= 1;
        assert_eq!(cr.step(&sh).unwrap_err(), TlsError::BadFinished);
        assert_eq!(
            await_finished
                .step(&ResumeFinished { mac: [0u8; 32] }.to_bytes())
                .unwrap_err(),
            TlsError::BadFinished
        );
    }
}
