//! Sans-io TLS record layer: feed bytes in, get events out.
//!
//! The blocking drivers in [`crate::stream`] own their transport — they
//! call `read_exact` and park the thread, which is why every GT2-style
//! server used to burn an OS thread per connection (DESIGN.md §12.4).
//! This module factors the protocol out of the I/O: a [`FrameBuf`]
//! turns an arbitrary byte arrival schedule into complete
//! length-prefixed frames, and the [`ClientConnector`] /
//! [`ServerAcceptor`] / [`RecordSession`] state machines consume frames
//! and *return* the bytes they want transmitted instead of writing them
//! anywhere. The caller — a blocking loop, a scheduler task, a test
//! feeding one byte at a time — decides how bytes move.
//!
//! Wire format is unchanged from [`crate::stream`]: the same `u32`
//! big-endian length prefix, the same handshake tokens, the same sealed
//! records, so a sans-io endpoint interoperates byte-for-byte with the
//! blocking shim (pinned by the parity tests below). All outputs are
//! *unframed* tokens/records; transports add the length prefix via
//! [`crate::stream::write_frame`], which keeps the two-write-per-frame
//! pattern the seeded loss layer's draw schedule depends on.

use gridsec_bignum::prime::EntropySource;
use gridsec_pki::validate::ValidatedIdentity;

use crate::channel::SecureChannel;
use crate::handshake::{ClientHandshake, ServerAwaitFinished, ServerHandshake, TlsConfig};
use crate::TlsError;

/// Maximum accepted frame payload, matching [`crate::stream::read_frame`].
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Incremental length-prefixed frame parser. Bytes go in via
/// [`FrameBuf::feed`] in whatever chunks the transport produces;
/// complete frames come out of [`FrameBuf::next_frame`]. Parsing is a
/// pure function of the concatenated input — feeding one byte at a
/// time yields exactly the frames of feeding everything at once (the
/// equivalence property pinned in the tests).
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Append transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so long sessions
        // stay O(in-flight bytes).
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extract the next complete frame payload, `Ok(None)` if more
    /// bytes are needed, or [`TlsError::Protocol`] on an oversized
    /// length prefix (the same "frame too large" the blocking reader
    /// reports).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, TlsError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(TlsError::Protocol("frame too large"));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encode one frame (length prefix + payload) — the byte sequence
/// [`crate::stream::write_frame`] puts on the wire.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// An established record session: a [`SecureChannel`] plus the frame
/// reassembly for its inbound bytes. Outbound, [`RecordSession::send`]
/// seals a message and returns the record to transmit; inbound,
/// [`RecordSession::feed`] accepts raw transport bytes and
/// [`RecordSession::next_message`] yields opened plaintexts in order.
pub struct RecordSession {
    channel: SecureChannel,
    buf: FrameBuf,
}

impl RecordSession {
    /// Wrap an already-established channel (no buffered bytes).
    pub fn new(channel: SecureChannel) -> Self {
        RecordSession {
            channel,
            buf: FrameBuf::new(),
        }
    }

    /// The authenticated peer identity.
    pub fn peer(&self) -> &ValidatedIdentity {
        &self.channel.peer
    }

    /// Seal one message, returning the record to transmit (unframed).
    pub fn send(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.channel.seal(plaintext)
    }

    /// Append inbound transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.feed(bytes);
    }

    /// Open the next complete inbound record, `Ok(None)` if more bytes
    /// are needed.
    pub fn next_message(&mut self) -> Result<Option<Vec<u8>>, TlsError> {
        match self.buf.next_frame()? {
            Some(sealed) => Ok(Some(self.channel.open(&sealed)?)),
            None => Ok(None),
        }
    }

    /// Open one already-deframed record (the blocking shim's path,
    /// where [`crate::stream::read_frame`] did the reassembly).
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, TlsError> {
        self.channel.open(sealed)
    }

    /// Unwrap into the raw channel (delegation needs direct access).
    /// Any unconsumed inbound bytes are discarded; callers that care
    /// drain [`RecordSession::next_message`] first.
    pub fn into_channel(self) -> SecureChannel {
        self.channel
    }
}

/// Client side of the handshake as a sans-io machine.
///
/// ```text
/// new()      -> hello token        (transmit framed)
/// feed()     <- transport bytes
/// advance()  -> finished token + RecordSession once the server hello
///               is complete
/// ```
pub struct ClientConnector {
    buf: FrameBuf,
    hs: Option<ClientHandshake>,
}

impl ClientConnector {
    /// Start a handshake: returns the connector and the client hello
    /// token to transmit.
    pub fn new<E: EntropySource>(config: TlsConfig, rng: &mut E) -> (Self, Vec<u8>) {
        let (hs, hello) = ClientHandshake::new(config, rng);
        (
            ClientConnector {
                buf: FrameBuf::new(),
                hs: Some(hs),
            },
            hello,
        )
    }

    /// Append inbound transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.feed(bytes);
    }

    /// Try to complete the handshake. `Ok(None)` means the server hello
    /// is still incomplete. On completion, returns the finished token
    /// to transmit and the established session (which inherits any
    /// bytes that arrived after the server hello).
    pub fn advance(&mut self) -> Result<Option<(Vec<u8>, RecordSession)>, TlsError> {
        if self.hs.is_none() {
            return Err(TlsError::Protocol("handshake already completed"));
        }
        let Some(server_hello) = self.buf.next_frame()? else {
            return Ok(None);
        };
        let hs = self.hs.take().expect("checked above");
        let (finished, channel) = hs.step(&server_hello)?;
        let session = RecordSession {
            channel,
            buf: std::mem::take(&mut self.buf),
        };
        Ok(Some((finished, session)))
    }
}

enum AcceptorState {
    AwaitHello(TlsConfig),
    AwaitFinished(ServerAwaitFinished),
    Done,
}

/// One step of server-side progress from [`ServerAcceptor::advance`].
pub enum Accepted {
    /// More bytes needed.
    Pending,
    /// Transmit this server-hello token; the handshake continues.
    Respond(Vec<u8>),
    /// Handshake complete: the established session (which inherits any
    /// bytes that arrived after the finished token).
    Established(Box<RecordSession>),
}

/// Server side of the handshake as a sans-io machine. Each call to
/// [`ServerAcceptor::advance`] consumes at most one inbound frame and
/// reports what happened; callers loop until `Pending`.
///
/// For mill-batched acceptance (many concurrent handshakes validated
/// through one [`crate::pool::CryptoPool`] wave), use
/// [`ServerAcceptor::take_hello`] /
/// [`ServerAcceptor::resume_with_response`] instead of `advance`: the
/// gateway collects hello tokens across acceptors, runs
/// [`crate::handshake::server_accept_batch`]-style processing, and
/// hands each acceptor its outcome.
pub struct ServerAcceptor {
    buf: FrameBuf,
    state: AcceptorState,
}

impl ServerAcceptor {
    /// Await a client hello for `config`.
    pub fn new(config: TlsConfig) -> Self {
        ServerAcceptor {
            buf: FrameBuf::new(),
            state: AcceptorState::AwaitHello(config),
        }
    }

    /// Append inbound transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.feed(bytes);
    }

    /// Consume at most one inbound frame and advance the handshake.
    pub fn advance<E: EntropySource>(&mut self, rng: &mut E) -> Result<Accepted, TlsError> {
        match std::mem::replace(&mut self.state, AcceptorState::Done) {
            AcceptorState::AwaitHello(config) => {
                let Some(hello) = self.buf.next_frame()? else {
                    self.state = AcceptorState::AwaitHello(config);
                    return Ok(Accepted::Pending);
                };
                let (server_hello, await_finished) =
                    ServerHandshake::new(config).step(rng, &hello)?;
                self.state = AcceptorState::AwaitFinished(await_finished);
                Ok(Accepted::Respond(server_hello))
            }
            AcceptorState::AwaitFinished(await_finished) => {
                let Some(finished) = self.buf.next_frame()? else {
                    self.state = AcceptorState::AwaitFinished(await_finished);
                    return Ok(Accepted::Pending);
                };
                let channel = await_finished.step(&finished)?;
                Ok(Accepted::Established(Box::new(RecordSession {
                    channel,
                    buf: std::mem::take(&mut self.buf),
                })))
            }
            AcceptorState::Done => Err(TlsError::Protocol("handshake already completed")),
        }
    }

    /// Mill-batching entry point: extract the buffered client hello, if
    /// complete, leaving the acceptor parked until
    /// [`ServerAcceptor::resume_with_response`]. Errors on a hello that
    /// arrives after the handshake already advanced.
    pub fn take_hello(&mut self) -> Result<Option<Vec<u8>>, TlsError> {
        match &self.state {
            AcceptorState::AwaitHello(_) => self.buf.next_frame(),
            _ => Err(TlsError::Protocol("hello already consumed")),
        }
    }

    /// Mill-batching completion: install the outcome of externally
    /// processing the hello taken by [`ServerAcceptor::take_hello`].
    /// The acceptor moves to awaiting the client finished token; the
    /// caller transmits `server_hello` itself.
    pub fn resume_with_response(&mut self, await_finished: ServerAwaitFinished) {
        self.state = AcceptorState::AwaitFinished(await_finished);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn configs() -> (TlsConfig, TlsConfig) {
        let mut rng = ChaChaRng::from_seed_bytes(b"records tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let server = ca.issue_identity(&mut rng, dn("/O=G/CN=Srv"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        (
            TlsConfig::new(alice, trust.clone(), 100),
            TlsConfig::new(server, trust, 100),
        )
    }

    /// Run a full sans-io handshake, feeding each peer's output to the
    /// other in `chunk`-byte slices, and exchange one message each way.
    fn sans_io_roundtrip(chunk: usize) -> (Vec<u8>, Vec<u8>, String, String) {
        let (client_cfg, server_cfg) = configs();
        let mut crng = ChaChaRng::from_seed_bytes(b"client rng");
        let mut srng = ChaChaRng::from_seed_bytes(b"server rng");

        let (mut client, hello) = ClientConnector::new(client_cfg, &mut crng);
        let mut server = ServerAcceptor::new(server_cfg);

        let feed = |dst: &mut dyn FnMut(&[u8]), bytes: &[u8]| {
            for piece in bytes.chunks(chunk.max(1)) {
                dst(piece);
            }
        };

        feed(&mut |b| server.feed(b), &frame(&hello));
        let server_hello = match server.advance(&mut srng).unwrap() {
            Accepted::Respond(t) => t,
            _ => panic!("expected server hello"),
        };
        feed(&mut |b| client.feed(b), &frame(&server_hello));
        let (finished, mut csess) = client.advance().unwrap().expect("client established");
        feed(&mut |b| server.feed(b), &frame(&finished));
        let mut ssess = match server.advance(&mut srng).unwrap() {
            Accepted::Established(s) => *s,
            _ => panic!("expected establishment"),
        };

        let c2s = csess.send(b"submit job");
        feed(&mut |b| ssess.feed(b), &frame(&c2s));
        let got = ssess.next_message().unwrap().expect("complete record");
        let s2c = ssess.send(b"job accepted");
        feed(&mut |b| csess.feed(b), &frame(&s2c));
        let reply = csess.next_message().unwrap().expect("complete record");
        (
            got,
            reply,
            csess.peer().base_identity.to_string(),
            ssess.peer().base_identity.to_string(),
        )
    }

    #[test]
    fn handshake_and_records_feed_incrementally() {
        let whole = sans_io_roundtrip(usize::MAX);
        assert_eq!(whole.0, b"submit job");
        assert_eq!(whole.1, b"job accepted");
        assert_eq!(whole.2, "/O=G/CN=Srv");
        assert_eq!(whole.3, "/O=G/CN=Alice");
        // Incremental feed (1 byte, 3 bytes) is equivalent to feeding
        // whole buffers: same plaintexts, same authenticated peers.
        assert_eq!(sans_io_roundtrip(1), whole);
        assert_eq!(sans_io_roundtrip(3), whole);
    }

    #[test]
    fn frame_buf_matches_blocking_reader() {
        // frame() produces exactly what write_frame puts on the wire,
        // and FrameBuf parses it back.
        let mut fb = FrameBuf::new();
        fb.feed(&frame(b"frame one"));
        fb.feed(&frame(b""));
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"frame one");
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"");
        assert_eq!(fb.next_frame().unwrap(), None);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut fb = FrameBuf::new();
        fb.feed(&u32::MAX.to_be_bytes());
        assert!(matches!(
            fb.next_frame(),
            Err(TlsError::Protocol("frame too large"))
        ));
    }

    #[test]
    fn leftover_bytes_carry_into_the_session() {
        // A peer that pipelines app data right behind its finished
        // token must not lose it: the acceptor's buffered surplus moves
        // into the RecordSession.
        let (client_cfg, server_cfg) = configs();
        let mut crng = ChaChaRng::from_seed_bytes(b"client rng");
        let mut srng = ChaChaRng::from_seed_bytes(b"server rng");
        let (mut client, hello) = ClientConnector::new(client_cfg, &mut crng);
        let mut server = ServerAcceptor::new(server_cfg);
        server.feed(&frame(&hello));
        let server_hello = match server.advance(&mut srng).unwrap() {
            Accepted::Respond(t) => t,
            _ => panic!("expected server hello"),
        };
        client.feed(&frame(&server_hello));
        let (finished, mut csess) = client.advance().unwrap().expect("client established");
        // Pipeline: finished + first record in one burst.
        let record = csess.send(b"eager");
        let mut burst = frame(&finished);
        burst.extend_from_slice(&frame(&record));
        server.feed(&burst);
        let mut ssess = match server.advance(&mut srng).unwrap() {
            Accepted::Established(s) => *s,
            _ => panic!("expected establishment"),
        };
        assert_eq!(ssess.next_message().unwrap().unwrap(), b"eager");
    }

    #[test]
    fn mill_batching_hooks_round_trip() {
        use crate::handshake::server_accept_batch;
        let (client_cfg, server_cfg) = configs();
        let mut crng = ChaChaRng::from_seed_bytes(b"client rng");
        let mut srng = ChaChaRng::from_seed_bytes(b"server rng");
        let (mut client, hello) = ClientConnector::new(client_cfg, &mut crng);
        let mut server = ServerAcceptor::new(server_cfg.clone());
        server.feed(&frame(&hello));
        let taken = server.take_hello().unwrap().expect("hello buffered");
        let mut results = server_accept_batch(&server_cfg, &mut srng, &[&taken]);
        let (server_hello, await_finished) = results.remove(0).unwrap();
        server.resume_with_response(await_finished);
        client.feed(&frame(&server_hello));
        let (finished, mut csess) = client.advance().unwrap().expect("client established");
        server.feed(&frame(&finished));
        let mut ssess = match server.advance(&mut srng).unwrap() {
            Accepted::Established(s) => *s,
            _ => panic!("expected establishment"),
        };
        let rec = csess.send(b"via mill");
        ssess.feed(&frame(&rec));
        assert_eq!(ssess.next_message().unwrap().unwrap(), b"via mill");
    }
}
