//! Property tests for write-ahead journal replay (`testbed::faults`).
//!
//! The recovery contract the crash layer relies on, stated as
//! properties over random journals:
//!
//! * **Roundtrip** — every appended `(tag, body)` record comes back
//!   verbatim, in order, through any handle on the same file.
//! * **Idempotent recovery** — folding the journal into a state is a
//!   pure function of the records: recovering twice (or from a fresh
//!   handle, as a restarted process does) yields the identical state.
//! * **Prefix consistency** — a crash can leave any prefix of the
//!   journal as the durable truth. Replaying a prefix and then the
//!   remaining suffix must land in exactly the state the full journal
//!   yields, and nothing a prefix asserts (an rpc reply record, a
//!   key's presence at that point) is contradicted by the full log.

use std::collections::HashMap;

use gridsec_testbed::faults::Journal;
use gridsec_testbed::os::{SimOs, ROOT_UID};
use gridsec_util::check::{check, Gen};

fn fresh_journal() -> (SimOs, Journal) {
    let os = SimOs::new();
    os.add_host("h");
    let j = Journal::open(os.clone(), "h", "/var/journal/props.wal", ROOT_UID);
    (os, j)
}

/// Random record stream: `set` and `del` ops over a small key space
/// (small so overwrites and deletes actually collide), plus opaque
/// `blob` records the fold ignores.
fn random_records(g: &mut Gen) -> Vec<(String, Vec<u8>)> {
    g.vec(0..40, |g| match g.pick(3) {
        0 => {
            let key = format!("k{}", g.u8_in(0..8));
            let val = g.bytes(0..12);
            let mut body = vec![key.len() as u8];
            body.extend_from_slice(key.as_bytes());
            body.extend_from_slice(&val);
            ("set".to_string(), body)
        }
        1 => {
            let key = format!("k{}", g.u8_in(0..8));
            let mut body = vec![key.len() as u8];
            body.extend_from_slice(key.as_bytes());
            ("del".to_string(), body)
        }
        _ => ("blob".to_string(), g.bytes(0..20)),
    })
}

/// The recovery fold: a key-value state, applied record by record.
fn fold(
    mut state: HashMap<String, Vec<u8>>,
    records: &[(String, Vec<u8>)],
) -> HashMap<String, Vec<u8>> {
    for (tag, body) in records {
        let Some(&klen) = body.first() else { continue };
        let klen = klen as usize;
        if body.len() < 1 + klen {
            continue;
        }
        let key = String::from_utf8_lossy(&body[1..1 + klen]).into_owned();
        match tag.as_str() {
            "set" => {
                state.insert(key, body[1 + klen..].to_vec());
            }
            "del" => {
                state.remove(&key);
            }
            _ => {}
        }
    }
    state
}

#[test]
fn journal_roundtrips_random_records() {
    check("journal_roundtrips_random_records", 100, |g| {
        let (_os, j) = fresh_journal();
        let records: Vec<(String, Vec<u8>)> =
            g.vec(0..25, |g| (g.string("abcdefgh", 1..6), g.bytes(0..30)));
        for (tag, body) in &records {
            j.append(tag, body).unwrap();
        }
        assert_eq!(j.records(), records);
        assert_eq!(j.len(), records.len());
    });
}

#[test]
fn recovery_is_idempotent_and_handle_independent() {
    check("recovery_is_idempotent_and_handle_independent", 100, |g| {
        let (os, j) = fresh_journal();
        for (tag, body) in random_records(g) {
            j.append(&tag, &body).unwrap();
        }
        let once = fold(HashMap::new(), &j.records());
        let twice = fold(HashMap::new(), &j.records());
        assert_eq!(once, twice, "recovery must be a pure fold");
        // A restarted process opens its own handle on the same file.
        let j2 = Journal::open(os, "h", "/var/journal/props.wal", ROOT_UID);
        assert_eq!(fold(HashMap::new(), &j2.records()), once);
        // Replaying on top of an already-recovered state (a recovery
        // interrupted and rerun) converges to the same state: every
        // record's effect is either absolute (set/del) or ignored.
        assert_eq!(fold(once.clone(), &j.records()), once);
    });
}

#[test]
fn prefix_plus_suffix_equals_full_journal() {
    check("prefix_plus_suffix_equals_full_journal", 100, |g| {
        let (_os, j) = fresh_journal();
        for (tag, body) in random_records(g) {
            j.append(&tag, &body).unwrap();
        }
        let records = j.records();
        let full = fold(HashMap::new(), &records);
        let cut = g.usize_in(0..records.len() + 1);
        let prefix_state = fold(HashMap::new(), &records[..cut]);
        // Crash after `cut` records, recover, then the remaining
        // appends arrive: exactly the full-journal state.
        assert_eq!(fold(prefix_state, &records[cut..]), full);
    });
}

#[test]
fn prefix_never_contradicts_full_journal_for_append_only_records() {
    // Reply-cache semantics: rpc reply records are append-only and
    // keyed by (caller, id); once a prefix contains one, the full
    // journal must contain the identical record. Model: unique keys,
    // random payloads, no overwrites (as `CrashableServer` writes them).
    check(
        "prefix_never_contradicts_full_journal_for_append_only_records",
        100,
        |g| {
            let (_os, j) = fresh_journal();
            let n = g.usize_in(0..30);
            for id in 0..n as u64 {
                let mut body = id.to_be_bytes().to_vec();
                body.extend_from_slice(&g.bytes(0..16));
                j.append("rpc", &body).unwrap();
            }
            let records = j.records();
            let cache = |recs: &[(String, Vec<u8>)]| -> HashMap<u64, Vec<u8>> {
                recs.iter()
                    .filter(|(t, _)| t == "rpc")
                    .map(|(_, b)| {
                        let id = u64::from_be_bytes(b[..8].try_into().unwrap());
                        (id, b[8..].to_vec())
                    })
                    .collect()
            };
            let full = cache(&records);
            let cut = g.usize_in(0..records.len() + 1);
            for (id, reply) in cache(&records[..cut]) {
                assert_eq!(
                    full.get(&id),
                    Some(&reply),
                    "a reply visible in a prefix must survive, unchanged, in the full journal"
                );
            }
        },
    );
}
