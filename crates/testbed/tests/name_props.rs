//! Property tests for the interned-name table (`testbed::names`).
//!
//! The storm schedulers route every wake and delivery through
//! [`NameId`]s, so the whole event loop rests on two properties:
//!
//! * **Round-trip** — `resolve(intern(name)) == name` for every name,
//!   through both the raw [`NameTable`] and the [`Network`] wrapper,
//!   and `intern` is idempotent (same string, same id, any order, any
//!   interleaving with other names).
//! * **No collisions** — distinct names never share an id, ids are
//!   allocated densely from 0, and the table stays collision-free at
//!   storm scale (10⁵ names in one table).
//!
//! Case counts scale with `GRIDSEC_PT_CASES` like every other property
//! suite (see `scripts/verify.sh` deep mode).

use std::collections::HashMap;

use gridsec_testbed::names::NameTable;
use gridsec_testbed::net::Network;
use gridsec_util::check::{check, Gen};

/// Name shapes the repo actually interns: storm principals (`p123`,
/// `c123`), gateways (`vo-gw-3`, `cstorm-gw-1`), service mailboxes,
/// and arbitrary ascii junk (names are not validated anywhere, so the
/// table must take whatever arrives).
fn random_name(g: &mut Gen) -> String {
    match g.pick(4) {
        0 => format!("p{}", g.u64_in(0..200_000)),
        1 => format!("cstorm-gw-{}", g.u64_in(0..64)),
        2 => format!("svc-{}", g.string("abcdefghijklmnopqrstuvwxyz-._", 0..12)),
        _ => g.string(" !\"#$%&'()*+,-./0123456789:;<=>?@ABCxyz{|}~", 0..20),
    }
}

#[test]
fn intern_round_trips_and_is_idempotent() {
    check("names.round_trip", 200, |g| {
        let mut table = NameTable::new();
        let names = g.vec(0..120, random_name);
        let ids: Vec<_> = names.iter().map(|n| table.intern(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            assert_eq!(
                table.resolve(*id),
                name,
                "resolve returns the name verbatim"
            );
            assert_eq!(table.get(name), Some(*id), "get finds the same id");
            // Re-interning — in any later position — returns the id the
            // first intern allocated.
            assert_eq!(table.intern(name), *id, "intern is idempotent");
        }
        // Table size counts distinct names, not intern calls.
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(table.len(), distinct.len());
    });
}

#[test]
fn distinct_names_never_collide() {
    check("names.no_collisions", 200, |g| {
        let mut table = NameTable::new();
        let names = g.vec(0..120, random_name);
        let mut by_id: HashMap<usize, String> = HashMap::new();
        for name in &names {
            let id = table.intern(name).index();
            match by_id.get(&id) {
                Some(prev) => {
                    assert_eq!(prev, name, "two distinct names resolved to the same NameId")
                }
                None => {
                    // Dense allocation: a fresh name gets the next index.
                    assert_eq!(id, by_id.len(), "ids are allocated densely from 0");
                    by_id.insert(id, name.clone());
                }
            }
        }
    });
}

/// Storm-scale: 10⁵ distinct names in one table — the population the
/// vo_storm/crypto_storm generators actually intern — round-trip with
/// zero collisions, through the thread-safe [`Network`] wrapper the
/// schedulers use.
#[test]
fn hundred_thousand_names_round_trip_without_collisions() {
    let net = Network::new();
    let mut table = NameTable::new();
    let total = 100_000u64;
    let mut ids = Vec::with_capacity(total as usize);
    for i in 0..total {
        // The generators' real shapes, plus a tail designed to tempt a
        // weak hash into colliding (shared prefixes, numeric suffixes).
        let name = match i % 4 {
            0 => format!("p{}", i / 4),
            1 => format!("c{}", i / 4),
            2 => format!("vo-gw-{}", i),
            _ => format!("cstorm-gw-{}-session-{}", i % 97, i),
        };
        let id = net.intern(&name);
        assert_eq!(table.intern(&name), id, "table and network agree on ids");
        assert_eq!(net.resolve(id), name, "round-trip at index {i}");
        ids.push(id);
    }
    // Dense, duplicate-free id space: sorted indexes are exactly 0..n.
    let mut indexes: Vec<usize> = ids.iter().map(|id| id.index()).collect();
    indexes.sort_unstable();
    for (expect, got) in indexes.iter().enumerate() {
        assert_eq!(expect, *got, "id space has a hole or a collision");
    }
    assert_eq!(table.len(), total as usize);
    // Idempotency survives scale: a second pass allocates nothing new.
    for (i, id) in (0..total).zip(&ids) {
        let name = match i % 4 {
            0 => format!("p{}", i / 4),
            1 => format!("c{}", i / 4),
            2 => format!("vo-gw-{}", i),
            _ => format!("cstorm-gw-{}-session-{}", i % 97, i),
        };
        assert_eq!(net.intern(&name), *id);
    }
    assert_eq!(table.len(), total as usize);
}
