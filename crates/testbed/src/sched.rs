//! Deterministic discrete-event scheduler.
//!
//! Thread-per-endpoint capped the simulated world at a few hundred
//! principals: every GSS acceptor, GRAM service, and client retry loop
//! burned an OS thread, and cross-thread interleavings made transcripts
//! seed-dependent only by luck. This module replaces that model with a
//! single-threaded run queue of resumable tasks over the simulated
//! [`Network`] and [`SimClock`] — one process hosts 10⁵–10⁶ endpoints,
//! and every interleaving is a pure function of the seed.
//!
//! # Execution model
//!
//! A [`Task`] is a poll-style state machine: the scheduler calls
//! [`Task::step`], the task does whatever synchronous work it can
//! (drain its mailbox, send messages, advance its protocol state), and
//! returns a [`Step`] saying when it next wants to run:
//!
//! * [`Step::Yield`] — runnable again this same tick (after the other
//!   ready tasks).
//! * [`Step::Sleep`] — wake at an absolute sim time.
//! * [`Step::WaitMail`] — wake when the task's registered mailbox
//!   receives a delivery, or at an optional deadline, whichever is
//!   first. This is the scheduled generalization of
//!   [`Endpoint::recv_timeout`]'s pump → try_recv → advance loop: what
//!   that loop does for one blocking receiver, the scheduler does for
//!   all tasks at once.
//! * [`Step::Done`] — the task is finished and is dropped.
//!
//! The main loop ([`Scheduler::run`]) runs ready tasks in FIFO order,
//! pumps the network's pending-delivery queue, routes delivery
//! notifications (the [`Network`] wake log) to waiting tasks, and only
//! when nothing is runnable advances the shared clock to the earliest
//! of the next timer and the next scheduled network delivery. Time
//! never moves while any task is runnable, and each wake source is
//! totally ordered (FIFO ready queue, `(time, seq)` timer heap,
//! delivery-order wake log), so a run is deterministic per seed.
//!
//! Blocking client code (e.g. [`crate::rpc::RpcClient`]) can drive a
//! scheduler from its pump hook via [`Scheduler::poll`], which runs
//! ready tasks and releases due timers without advancing the clock.
//!
//! [`Endpoint::recv_timeout`]: crate::net::Endpoint::recv_timeout

use crate::clock::SimClock;
use crate::names::NameId;
use crate::net::Network;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// What a task wants next, returned from [`Task::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The task is finished; the scheduler drops it.
    Done,
    /// Run again in this same tick, after the other ready tasks.
    Yield,
    /// Wake at the given absolute sim time. A time at or before *now*
    /// reschedules the task immediately (a deadline already in the past
    /// must fire, not hang).
    Sleep(u64),
    /// Wake when the task's registered mailbox receives a delivery, or
    /// at `deadline`, whichever comes first. A deadline at or before
    /// *now* reschedules immediately, mirroring
    /// [`recv_timeout(0)`](crate::net::Endpoint::recv_timeout): the
    /// task gets exactly one more chance to drain mail that is already
    /// due before it treats the wait as timed out. Tasks spawned
    /// without a mailbox may still use this as a pure timer.
    WaitMail {
        /// Absolute sim time at which to wake even without mail.
        deadline: Option<u64>,
    },
}

/// Identifies a spawned task within its scheduler.
pub type TaskId = usize;

/// Per-step context handed to [`Task::step`].
pub struct TaskCx {
    now: u64,
    id: TaskId,
}

impl TaskCx {
    /// Current sim time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The stepped task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }
}

/// A resumable unit of work driven by the [`Scheduler`].
pub trait Task {
    /// Perform available synchronous work and say when to run next.
    fn step(&mut self, cx: &TaskCx) -> Step;
}

impl<F: FnMut(&TaskCx) -> Step> Task for F {
    fn step(&mut self, cx: &TaskCx) -> Step {
        self(cx)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Ready,
    Sleeping,
    WaitingMail,
}

struct Slot {
    task: Box<dyn Task>,
    state: State,
    mailbox: Option<NameId>,
}

/// Counters describing one scheduler run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks spawned over the scheduler's lifetime.
    pub spawned: u64,
    /// Tasks that returned [`Step::Done`].
    pub completed: u64,
    /// Total [`Task::step`] invocations.
    pub steps: u64,
    /// Times the clock was advanced because nothing was runnable.
    pub clock_advances: u64,
    /// Wakes caused by a mailbox delivery.
    pub mail_wakes: u64,
    /// Wakes caused by a timer (sleep or wait deadline).
    pub timer_wakes: u64,
    /// Peak number of simultaneously live tasks — the storm benches'
    /// bounded-memory proxy: completed task slots are recycled, so this
    /// tracks arena size, not total tasks spawned.
    pub live_high_water: u64,
}

/// A deterministic run queue of [`Task`]s over one [`Network`].
///
/// Task slots form a free-list arena: a slot vacated by [`Step::Done`]
/// is reused by the next spawn (LIFO), so a storm that spawns 10⁶
/// short-lived tasks holds memory proportional to the *live*
/// high-water mark, not the spawn count. Per-slot wake epochs survive
/// reuse — they are bumped on every step *and* on every respawn — so a
/// stale timer registered by a slot's previous occupant can never wake
/// its current one.
pub struct Scheduler {
    net: Network,
    clock: SimClock,
    slots: Vec<Option<Slot>>,
    /// Vacated slot indexes available for reuse (LIFO).
    free: Vec<TaskId>,
    /// Per-slot wake epoch; lives outside [`Slot`] so it persists
    /// across vacancy and reuse.
    epochs: Vec<u64>,
    ready: VecDeque<TaskId>,
    /// Min-heap of `(wake_at, seq, task, epoch)`; `seq` makes the order
    /// total, `epoch` invalidates entries for waits that already ended.
    timers: BinaryHeap<Reverse<(u64, u64, TaskId, u64)>>,
    timer_seq: u64,
    mailboxes: HashMap<NameId, TaskId>,
    live: usize,
    stats: SchedStats,
}

impl Scheduler {
    /// Create a scheduler over `net`. Uses the network's fault clock if
    /// the fault layer is armed (so sends, timers, and traces share one
    /// timeline), a fresh [`SimClock`] otherwise. Enables the network's
    /// delivery wake log.
    pub fn new(net: &Network) -> Self {
        net.enable_wake_log();
        let clock = net.fault_clock().unwrap_or_default();
        Scheduler {
            net: net.clone(),
            clock,
            slots: Vec::new(),
            free: Vec::new(),
            epochs: Vec::new(),
            ready: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            mailboxes: HashMap::new(),
            live: 0,
            stats: SchedStats::default(),
        }
    }

    /// The scheduler's clock (shared with the fault layer when armed).
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Current sim time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Number of live (not yet `Done`) tasks.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Counters so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Spawn a task with no mailbox. It starts ready.
    pub fn spawn(&mut self, task: impl Task + 'static) -> TaskId {
        self.spawn_slot(None, Box::new(task))
    }

    /// Spawn a task that waits on deliveries to `mailbox` (the name of
    /// the [`Endpoint`](crate::net::Endpoint) the task receives on).
    /// One task per mailbox; spawning a second waiter for the same name
    /// replaces the first as the wake target (mirroring
    /// [`Network::register`]'s replace semantics). It starts ready.
    pub fn spawn_mailbox(&mut self, mailbox: &str, task: impl Task + 'static) -> TaskId {
        let id = self.net.intern(mailbox);
        self.spawn_slot(Some(id), Box::new(task))
    }

    /// Like [`Scheduler::spawn_mailbox`] but with the mailbox name
    /// already interned ([`Network::intern`]) — the storm generators'
    /// hot path, which avoids re-hashing the name string per spawn.
    pub fn spawn_mailbox_id(&mut self, mailbox: NameId, task: impl Task + 'static) -> TaskId {
        self.spawn_slot(Some(mailbox), Box::new(task))
    }

    fn spawn_slot(&mut self, mailbox: Option<NameId>, task: Box<dyn Task>) -> TaskId {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                self.epochs.push(0);
                self.slots.len() - 1
            }
        };
        // Invalidate any timer still in the heap from the slot's
        // previous occupant.
        self.epochs[id] += 1;
        if let Some(mb) = mailbox {
            self.mailboxes.insert(mb, id);
        }
        self.slots[id] = Some(Slot {
            task,
            state: State::Ready,
            mailbox,
        });
        self.live += 1;
        self.stats.spawned += 1;
        self.stats.live_high_water = self.stats.live_high_water.max(self.live as u64);
        self.ready.push_back(id);
        id
    }

    /// Route pending deliveries and due timers to their tasks: pump the
    /// network, wake mailbox waiters in delivery order, then release
    /// every timer at or before *now* in `(time, seq)` order.
    fn absorb_wakes(&mut self) {
        self.net.pump();
        for name in self.net.take_wakes() {
            if let Some(&id) = self.mailboxes.get(&name) {
                if let Some(slot) = self.slots[id].as_mut() {
                    if slot.state == State::WaitingMail {
                        slot.state = State::Ready;
                        self.stats.mail_wakes += 1;
                        self.ready.push_back(id);
                    }
                }
            }
        }
        let now = self.clock.now();
        while let Some(Reverse((at, _, id, epoch))) = self.timers.peek().copied() {
            if at > now {
                break;
            }
            self.timers.pop();
            if let Some(slot) = self.slots[id].as_mut() {
                if self.epochs[id] == epoch && slot.state != State::Ready {
                    slot.state = State::Ready;
                    self.stats.timer_wakes += 1;
                    self.ready.push_back(id);
                }
            }
        }
    }

    fn step_task(&mut self, id: TaskId) {
        let Some(mut slot) = self.slots[id].take() else {
            return;
        };
        let cx = TaskCx {
            now: self.clock.now(),
            id,
        };
        let step = slot.task.step(&cx);
        self.stats.steps += 1;
        self.epochs[id] += 1;
        match step {
            Step::Done => {
                self.live -= 1;
                self.stats.completed += 1;
                if let Some(mb) = &slot.mailbox {
                    if self.mailboxes.get(mb) == Some(&id) {
                        self.mailboxes.remove(mb);
                    }
                }
                // The slot stays vacated (the task is dropped here) and
                // its index goes back to the arena for reuse.
                self.free.push(id);
                return;
            }
            Step::Yield => {
                slot.state = State::Ready;
                self.ready.push_back(id);
            }
            Step::Sleep(at) => {
                if at <= cx.now {
                    slot.state = State::Ready;
                    self.ready.push_back(id);
                } else {
                    slot.state = State::Sleeping;
                    self.timer_seq += 1;
                    self.timers
                        .push(Reverse((at, self.timer_seq, id, self.epochs[id])));
                }
            }
            Step::WaitMail { deadline } => match deadline {
                Some(d) if d <= cx.now => {
                    slot.state = State::Ready;
                    self.ready.push_back(id);
                }
                other => {
                    slot.state = State::WaitingMail;
                    if let Some(d) = other {
                        self.timer_seq += 1;
                        self.timers
                            .push(Reverse((d, self.timer_seq, id, self.epochs[id])));
                    }
                }
            },
        }
        self.slots[id] = Some(slot);
    }

    /// Run every currently-runnable task to quiescence *without*
    /// advancing the clock. Due timers and pending deliveries at or
    /// before *now* are honored. Returns the number of task steps
    /// executed — a pump hook can use it as a progress signal (e.g.
    /// [`RpcClient::set_pump`](crate::rpc::RpcClient::set_pump)), which
    /// lets legacy blocking client code drive scheduled services while
    /// the blocking side owns the clock.
    pub fn poll(&mut self) -> usize {
        let mut steps = 0;
        loop {
            self.absorb_wakes();
            let Some(id) = self.ready.pop_front() else {
                return steps;
            };
            self.step_task(id);
            steps += 1;
        }
    }

    /// One pump round for blocking client code waiting on scheduled
    /// peers (the [`with_stream_pump`](crate::net::with_stream_pump)
    /// hook): poll ready tasks; if none ran, advance the clock to the
    /// next event and poll again. Returns the number of task steps
    /// executed — `0` means the world is quiescent and whatever the
    /// caller is waiting for will never happen.
    pub fn pump(&mut self) -> usize {
        loop {
            let steps = self.poll();
            if steps > 0 {
                return steps;
            }
            if !self.advance() {
                return 0;
            }
        }
    }

    /// Advance the clock to the next event (earliest timer or scheduled
    /// network delivery). Returns `false` if there is none — the world
    /// is quiescent.
    fn advance(&mut self) -> bool {
        // Discard stale timer heads so they cannot force a pointless
        // clock stop.
        while let Some(Reverse((_, _, id, epoch))) = self.timers.peek().copied() {
            let stale = match &self.slots[id] {
                Some(slot) => self.epochs[id] != epoch || slot.state == State::Ready,
                None => true,
            };
            if !stale {
                break;
            }
            self.timers.pop();
        }
        let next_timer = self.timers.peek().map(|Reverse((at, ..))| *at);
        let next_net = self.net.next_event_at();
        let target = match (next_timer, next_net) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        let now = self.clock.now();
        if target > now {
            self.clock.set(target);
        }
        self.stats.clock_advances += 1;
        true
    }

    /// Run to quiescence: no task runnable, no timer pending, no
    /// delivery scheduled. Returns the final counters. Tasks that are
    /// still blocked at quiescence (e.g. a server in `WaitMail` with no
    /// deadline and no traffic left) remain live and simply never run
    /// again; [`Scheduler::live`] reports them.
    pub fn run(&mut self) -> SchedStats {
        loop {
            self.poll();
            if !self.advance() {
                return self.stats;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FaultProfile, Network};

    #[test]
    fn sleep_ordering_is_deterministic() {
        let net = Network::new();
        let mut sched = Scheduler::new(&net);
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for (tag, at) in [
            ("late", 30u64),
            ("early", 10),
            ("mid", 20),
            ("also-early", 10),
        ] {
            let log = log.clone();
            let mut slept = false;
            sched.spawn(move |cx: &TaskCx| {
                if !slept {
                    slept = true;
                    return Step::Sleep(at);
                }
                log.borrow_mut().push(format!("{tag}@{}", cx.now()));
                Step::Done
            });
        }
        let stats = sched.run();
        assert_eq!(
            *log.borrow(),
            vec!["early@10", "also-early@10", "mid@20", "late@30"],
            "timer heap is (time, registration seq) ordered"
        );
        assert_eq!(stats.completed, 4);
        assert_eq!(sched.live(), 0);
        assert_eq!(sched.now(), 30);
    }

    #[test]
    fn sleep_in_the_past_fires_immediately() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock.clone(), 1, FaultProfile::default());
        clock.set(100);
        let mut sched = Scheduler::new(&net);
        let mut asked = false;
        sched.spawn(move |cx: &TaskCx| {
            if !asked {
                asked = true;
                Step::Sleep(5) // long past
            } else {
                assert_eq!(cx.now(), 100, "no time travel, no hang");
                Step::Done
            }
        });
        let stats = sched.run();
        assert_eq!(stats.completed, 1);
        assert_eq!(clock.now(), 100, "clock untouched by a past deadline");
    }

    #[test]
    fn mail_wakes_waiting_task() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            1,
            FaultProfile {
                min_latency: 4,
                max_latency: 4,
                ..FaultProfile::default()
            },
        );
        let mut sched = Scheduler::new(&net);
        let rx = net.register("rx");
        let tx = net.register("tx");
        let got = std::rc::Rc::new(std::cell::RefCell::new(None));
        let got2 = got.clone();
        sched.spawn_mailbox("rx", move |cx: &TaskCx| {
            if let Some(m) = rx.try_recv() {
                *got2.borrow_mut() = Some((cx.now(), m.payload));
                return Step::Done;
            }
            Step::WaitMail { deadline: None }
        });
        let mut sent = false;
        sched.spawn(move |_cx: &TaskCx| {
            if !sent {
                sent = true;
                tx.send("rx", b"ping".to_vec()).unwrap();
            }
            Step::Done
        });
        sched.run();
        assert_eq!(*got.borrow(), Some((4, b"ping".to_vec())));
    }

    #[test]
    fn wait_deadline_fires_without_mail() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock.clone(), 1, FaultProfile::default());
        let mut sched = Scheduler::new(&net);
        let ep = net.register("lonely");
        let outcome = std::rc::Rc::new(std::cell::RefCell::new(None));
        let o2 = outcome.clone();
        sched.spawn_mailbox("lonely", move |cx: &TaskCx| {
            if ep.try_recv().is_some() {
                *o2.borrow_mut() = Some("mail");
                return Step::Done;
            }
            if cx.now() >= 25 {
                *o2.borrow_mut() = Some("timeout");
                return Step::Done;
            }
            Step::WaitMail { deadline: Some(25) }
        });
        let stats = sched.run();
        assert_eq!(*outcome.borrow(), Some("timeout"));
        assert_eq!(clock.now(), 25, "clock advanced exactly to the deadline");
        assert_eq!(stats.timer_wakes, 1);
    }

    #[test]
    fn yield_runs_again_same_tick() {
        let net = Network::new();
        let mut sched = Scheduler::new(&net);
        let mut spins = 0;
        sched.spawn(move |cx: &TaskCx| {
            assert_eq!(cx.now(), 0);
            spins += 1;
            if spins < 3 {
                Step::Yield
            } else {
                Step::Done
            }
        });
        let stats = sched.run();
        assert_eq!(stats.steps, 3);
        assert_eq!(stats.clock_advances, 0);
    }

    #[test]
    fn stale_timer_does_not_wake_later_wait() {
        // Task waits with a deadline, gets mail *before* it, then waits
        // again with a much later deadline. The first (now stale) timer
        // must not wake the second wait early.
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            1,
            FaultProfile {
                min_latency: 2,
                max_latency: 2,
                ..FaultProfile::default()
            },
        );
        let mut sched = Scheduler::new(&net);
        let rx = net.register("rx");
        let tx = net.register("tx");
        let wakes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let w2 = wakes.clone();
        let mut got_mail = false;
        sched.spawn_mailbox("rx", move |cx: &TaskCx| {
            if !got_mail {
                if rx.try_recv().is_some() {
                    got_mail = true;
                    w2.borrow_mut().push(("mail", cx.now()));
                    return Step::WaitMail { deadline: Some(50) };
                }
                return Step::WaitMail { deadline: Some(10) };
            }
            w2.borrow_mut().push(("wake", cx.now()));
            Step::Done
        });
        let mut sent = false;
        sched.spawn(move |_cx: &TaskCx| {
            if !sent {
                sent = true;
                tx.send("rx", b"m".to_vec()).unwrap();
            }
            Step::Done
        });
        sched.run();
        assert_eq!(*wakes.borrow(), vec![("mail", 2), ("wake", 50)]);
    }
}
