//! # gridsec-testbed
//!
//! The simulated execution environment for the `gridsec` reproduction of
//! *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! The paper's claims were demonstrated on real hosts with Unix accounts,
//! setuid binaries, and TCP. This crate substitutes (per `DESIGN.md` §2):
//!
//! * [`clock::SimClock`] — shared logical time, so certificate validity,
//!   ticket lifetimes, and CRL freshness are deterministic.
//! * [`net`] — an in-memory message network with per-link byte/message
//!   accounting (the "bytes on the wire" series in experiment C1) and a
//!   blocking byte-stream abstraction for the TLS record layer.
//! * [`os`] — a simulated operating system: hosts, accounts, files with
//!   owners and modes, and a process table that tracks *which code runs
//!   with which privilege* — the measurement substrate for the paper's
//!   §5.2 least-privilege claims (experiment C4).
//! * [`faults`] — compromise injection: mark a process compromised and
//!   compute the blast radius (accounts, files, credentials reachable),
//!   which is how we quantify "no privileged network services".
//! * [`rpc`] — an at-most-once request/reply layer over [`net`] with
//!   retransmission and exponential backoff, so the protocol crates'
//!   client paths survive the seeded drop/duplicate/reorder faults of
//!   [`net::Network::enable_faults`].
//! * [`sched`] — a deterministic discrete-event scheduler: a run queue
//!   of resumable tasks over [`net`] and [`clock::SimClock`], replacing
//!   thread-per-endpoint so one process hosts 10⁵–10⁶ endpoints with
//!   seed-replayable interleavings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod faults;
pub mod names;
pub mod net;
pub mod os;
pub mod rpc;
pub mod sched;

/// Errors from testbed operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestbedError {
    /// Referenced host does not exist.
    NoSuchHost(String),
    /// Referenced account does not exist.
    NoSuchAccount(String),
    /// Referenced process does not exist.
    NoSuchProcess(u64),
    /// Referenced file does not exist.
    NoSuchFile(String),
    /// The operation requires privileges the caller lacks.
    PermissionDenied(&'static str),
    /// Network endpoint not registered.
    NoSuchEndpoint(String),
    /// Endpoint name already registered (from [`net::Network::try_register`]).
    EndpointInUse(String),
    /// The peer endpoint hung up.
    Disconnected,
    /// A receive or RPC call exceeded its deadline (SimClock seconds).
    Timeout,
}

impl core::fmt::Display for TestbedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestbedError::NoSuchHost(h) => write!(f, "no such host: {h}"),
            TestbedError::NoSuchAccount(a) => write!(f, "no such account: {a}"),
            TestbedError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            TestbedError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            TestbedError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            TestbedError::NoSuchEndpoint(e) => write!(f, "no such endpoint: {e}"),
            TestbedError::EndpointInUse(e) => write!(f, "endpoint already registered: {e}"),
            TestbedError::Disconnected => write!(f, "peer disconnected"),
            TestbedError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for TestbedError {}
