//! Interned endpoint names.
//!
//! Storm-scale scheduler runs (10⁵–10⁶ principals) route every wake and
//! every pending delivery by endpoint name. Keying those hot maps by
//! `String` means one allocation plus a full string hash/compare per
//! lookup, and a wake log that clones names on every delivery. This
//! module interns each distinct name once in a [`NameTable`] and hands
//! out a dense [`NameId`] — a `u32` index — so the scheduler's
//! mailboxes, the network's endpoint map, the wake log, and the
//! pending-delivery queue all work with `Copy` keys.
//!
//! Interning is append-only: names are never evicted, so a `NameId`
//! stays valid for the lifetime of its table, and the same string
//! always interns to the same id (the round-trip and no-collision
//! properties pinned in `tests/name_props.rs`).

use std::collections::HashMap;
use std::sync::Arc;

/// A dense handle for an interned endpoint name. Ids are allocated
/// sequentially from 0 by a [`NameTable`]; comparing ids from different
/// tables is meaningless.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The raw dense index (0-based allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table mapping names to dense [`NameId`]s.
#[derive(Default)]
pub struct NameTable {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl NameTable {
    /// Create an empty table.
    pub fn new() -> Self {
        NameTable::default()
    }

    /// Intern `name`, returning its id. The same string always returns
    /// the same id; a new string gets the next dense index.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return NameId(id);
        }
        let id = u32::try_from(self.names.len()).expect("name table overflow");
        let shared: Arc<str> = Arc::from(name);
        self.names.push(shared.clone());
        self.index.insert(shared, id);
        NameId(id)
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied().map(NameId)
    }

    /// Resolve an id back to its name. Panics on an id from a different
    /// (larger) table — ids cannot be forged from thin air.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = NameTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.intern("beta"), b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = NameTable::new();
        let names = ["portal-0", "portal-1", "gateway", ""];
        let ids: Vec<NameId> = names.iter().map(|n| t.intern(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            assert_eq!(t.resolve(*id), *name);
            assert_eq!(t.get(name), Some(*id));
        }
        assert_eq!(t.get("never-interned"), None);
    }
}
