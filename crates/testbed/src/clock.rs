//! Shared logical time.
//!
//! Every component in a scenario holds a clone of one [`SimClock`];
//! advancing it moves certificate validity, ticket lifetimes, and CRL
//! freshness forward deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotonic logical clock (seconds).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    seconds: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at `t = 0`.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `start` seconds.
    pub fn starting_at(start: u64) -> Self {
        let c = SimClock::new();
        c.seconds.store(start, Ordering::SeqCst);
        c
    }

    /// Current time in seconds.
    pub fn now(&self) -> u64 {
        self.seconds.load(Ordering::SeqCst)
    }

    /// Advance by `secs` and return the new time.
    pub fn advance(&self, secs: u64) -> u64 {
        self.seconds.fetch_add(secs, Ordering::SeqCst) + secs
    }

    /// Set the time to `t`, which must not move backwards.
    pub fn set(&self, t: u64) {
        let prev = self.seconds.swap(t, Ordering::SeqCst);
        assert!(t >= prev, "SimClock must not move backwards");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
        assert_eq!(SimClock::starting_at(100).now(), 100);
    }

    #[test]
    fn advances() {
        let c = SimClock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn no_time_travel() {
        let c = SimClock::starting_at(100);
        c.set(50);
    }
}
