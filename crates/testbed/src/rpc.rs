//! At-most-once request/reply over the simulated [`crate::net`] layer.
//!
//! The fault layer ([`crate::net::Network::enable_faults`]) drops,
//! duplicates, and reorders datagrams, so the bare
//! [`Endpoint::call`][crate::net::Endpoint::call] idiom (send, block for
//! the next message) is no longer safe. This module supplies what every
//! protocol crate's client path needs instead:
//!
//! * **Framing** — requests and replies carry a magic tag and a 64-bit
//!   call id, so duplicated or reordered datagrams can be matched to the
//!   call that sent them (and stale ones discarded).
//! * **[`RpcClient`]** — retransmits with exponential backoff per a
//!   [`RetryPolicy`], driving the shared `SimClock` forward through the
//!   network's pending-delivery queue while it waits. An optional *pump
//!   hook* lets single-threaded scenarios interleave server polling with
//!   the client's wait loop (no threads, fully deterministic).
//! * **[`RpcServer`]** — executes each distinct `(caller, id)` request
//!   exactly once and caches the reply, so retransmissions and network
//!   duplicates of non-idempotent operations (GSS token steps, job
//!   submission) are answered from the cache instead of re-executed.
//!   This is the classic at-most-once RPC discipline.

use crate::net::{Endpoint, Network};
use crate::TestbedError;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace;
use std::collections::HashMap;

const REQ_MAGIC: &[u8; 4] = b"GRQ1";
const REP_MAGIC: &[u8; 4] = b"GRP1";

/// Frame a request payload with its call id.
pub fn encode_request(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(REQ_MAGIC);
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse a request frame into `(id, payload)`; `None` if not a request.
pub fn decode_request(bytes: &[u8]) -> Option<(u64, &[u8])> {
    decode(REQ_MAGIC, bytes)
}

/// Frame a reply payload with the call id it answers.
pub fn encode_reply(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(REP_MAGIC);
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse a reply frame into `(id, payload)`; `None` if not a reply.
pub fn decode_reply(bytes: &[u8]) -> Option<(u64, &[u8])> {
    decode(REP_MAGIC, bytes)
}

/// `true` iff `bytes` looks like an RPC request frame (used by servers
/// that speak both raw and RPC-framed traffic on one endpoint).
pub fn is_request(bytes: &[u8]) -> bool {
    bytes.len() >= 12 && &bytes[..4] == REQ_MAGIC
}

fn decode<'a>(magic: &[u8; 4], bytes: &'a [u8]) -> Option<(u64, &'a [u8])> {
    if bytes.len() < 12 || &bytes[..4] != magic {
        return None;
    }
    let mut id = [0u8; 8];
    id.copy_from_slice(&bytes[4..12]);
    Some((u64::from_be_bytes(id), &bytes[12..]))
}

/// Counters describing what a client's calls cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RpcCallStats {
    /// Completed `call` invocations (success or failure).
    pub calls: u64,
    /// Retransmissions beyond each call's first attempt.
    pub retransmissions: u64,
    /// Attempts that timed out waiting for a reply.
    pub timeouts: u64,
}

/// A retrying RPC client bound to one server endpoint name.
pub struct RpcClient {
    endpoint: Endpoint,
    server: String,
    policy: RetryPolicy,
    next_id: u64,
    pump: Option<Box<dyn FnMut() -> usize>>,
    stats: RpcCallStats,
}

impl RpcClient {
    /// Bind `endpoint` as a client of the server named `server`.
    pub fn new(endpoint: Endpoint, server: &str, policy: RetryPolicy) -> Self {
        RpcClient {
            endpoint,
            server: server.to_string(),
            policy,
            next_id: 1,
            pump: None,
            stats: RpcCallStats::default(),
        }
    }

    /// Install a pump hook: a closure invoked inside the wait loop that
    /// should perform any synchronous server-side work now possible
    /// (e.g. [`RpcServer::poll`] for every service in the scenario) and
    /// return how much work it did. The client pumps the network and
    /// this hook to a fixed point before advancing the clock, which is
    /// what makes single-threaded chaos scenarios deterministic.
    pub fn set_pump(&mut self, hook: impl FnMut() -> usize + 'static) {
        self.pump = Some(Box::new(hook));
    }

    /// The client's own endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The server endpoint name this client calls.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Cumulative call statistics.
    pub fn stats(&self) -> RpcCallStats {
        self.stats
    }

    /// Issue `request` and return the server's reply, retransmitting
    /// with exponential backoff until the policy is exhausted
    /// ([`TestbedError::Timeout`]). Safe under message duplication: the
    /// call id matches replies to this call, and the server's reply
    /// cache keeps the handler at-most-once.
    pub fn call(&mut self, request: &[u8]) -> Result<Vec<u8>, TestbedError> {
        self.stats.calls += 1;
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(id, request);
        let mut sp = trace::span_with("rpc.call", &format!("server={} id={id}", self.server));
        trace::add("rpc.calls", 1);
        trace::add("rpc.bytes_sent", frame.len() as u64);
        let mut last_err = TestbedError::Timeout;
        let schedule: Vec<(u32, u64)> = self.policy.schedule().collect();
        for (attempt, timeout) in schedule {
            if attempt > 0 {
                self.stats.retransmissions += 1;
                trace::add("rpc.retransmissions", 1);
                trace::add("rpc.bytes_sent", frame.len() as u64);
                trace::event(
                    "rpc.retransmit",
                    &format!("id={id} attempt={attempt} timeout={timeout}"),
                );
            }
            self.endpoint.send(&self.server, frame.clone())?;
            match self.wait_reply(id, timeout) {
                Ok(reply) => {
                    trace::add("rpc.bytes_received", 12 + reply.len() as u64);
                    return Ok(reply);
                }
                Err(TestbedError::Timeout) => {
                    self.stats.timeouts += 1;
                    trace::add("rpc.timeouts", 1);
                    last_err = TestbedError::Timeout;
                }
                Err(e) => {
                    sp.fail("send");
                    return Err(e);
                }
            }
        }
        // Retry budget exhausted: ship the recent trace ring so the
        // failure is diagnosable without rerunning the scenario.
        sp.fail("retry budget exhausted");
        trace::event("rpc.exhausted", &format!("id={id} server={}", self.server));
        trace::flight_dump(&format!(
            "rpc retry budget exhausted (server={} id={id})",
            self.server
        ));
        Err(last_err)
    }

    /// Pump the network and the service hook until neither makes
    /// progress.
    fn drain(&mut self) {
        loop {
            let mut n = self.endpoint.network().pump();
            if let Some(hook) = self.pump.as_mut() {
                n += hook();
            }
            if n == 0 {
                return;
            }
        }
    }

    fn wait_reply(&mut self, id: u64, timeout: u64) -> Result<Vec<u8>, TestbedError> {
        let network: Network = self.endpoint.network().clone();
        let clock = network.fault_clock();
        let deadline = clock.as_ref().map(|c| c.now().saturating_add(timeout));
        loop {
            self.drain();
            while let Some(m) = self.endpoint.try_recv() {
                if let Some((rid, body)) = decode_reply(&m.payload) {
                    if rid == id {
                        return Ok(body.to_vec());
                    }
                    // Stale reply from an earlier call (or a duplicate
                    // of one): discard.
                }
            }
            match (&clock, deadline) {
                (Some(c), Some(deadline)) => {
                    let now = c.now();
                    if now >= deadline {
                        return Err(TestbedError::Timeout);
                    }
                    let next = network
                        .next_event_at()
                        .map(|t| t.clamp(now + 1, deadline))
                        .unwrap_or(deadline);
                    c.set(next);
                }
                _ => {
                    if self.pump.is_some() {
                        // No clock and the hook is quiescent: nothing can
                        // produce the reply anymore.
                        return Err(TestbedError::Timeout);
                    }
                    // Perfect network, threaded server: block.
                    let m = self.endpoint.recv()?;
                    if let Some((rid, body)) = decode_reply(&m.payload) {
                        if rid == id {
                            return Ok(body.to_vec());
                        }
                    }
                }
            }
        }
    }
}

/// Result of polling a [`PollingCall`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallPoll {
    /// The matching reply arrived; the call is complete.
    Ready(Vec<u8>),
    /// Every attempt in the retry schedule timed out (or the server
    /// endpoint vanished). The call failed.
    Exhausted,
    /// Still waiting on the in-flight attempt. The caller should wake
    /// when its mailbox receives mail or at `deadline` (the attempt's
    /// timeout), whichever is first — i.e. return
    /// [`Step::WaitMail`](crate::sched::Step::WaitMail) with this
    /// deadline from a scheduled task.
    Wait {
        /// Absolute sim time at which the current attempt times out.
        deadline: u64,
    },
}

/// A non-blocking, resumable RPC call: [`RpcClient::call`]'s
/// retransmit-with-backoff loop re-expressed as a poll-style state
/// machine, so it can run *inside* a [`crate::sched::Scheduler`] task
/// instead of owning the clock. Semantics mirror `RpcClient` exactly —
/// same [`RetryPolicy`] schedule, same per-attempt deadlines, same
/// stale-reply discarding — the only difference is who advances time:
/// the blocking client drives the clock itself, a `PollingCall` asks
/// the scheduler to wake it.
///
/// The embedding task owns the [`Endpoint`] and passes it to each
/// [`PollingCall::poll`]; calls on one endpoint must be sequential
/// (matching `RpcClient`), with unique ids per `(caller, id)` pair.
pub struct PollingCall {
    server: String,
    id: u64,
    frame: Vec<u8>,
    schedule: Vec<(u32, u64)>,
    next_attempt: usize,
    attempt_deadline: Option<u64>,
    retransmissions: u64,
}

impl PollingCall {
    /// Prepare a call of `payload` to `server` under `policy`. Nothing
    /// is sent until the first [`PollingCall::poll`].
    pub fn new(server: &str, id: u64, payload: &[u8], policy: RetryPolicy) -> Self {
        PollingCall {
            server: server.to_string(),
            id,
            frame: encode_request(id, payload),
            schedule: policy.schedule().collect(),
            next_attempt: 0,
            attempt_deadline: None,
            retransmissions: 0,
        }
    }

    /// Retransmissions beyond the first attempt, so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Advance the call: drain `ep`'s mailbox for the matching reply,
    /// and (re)transmit when the current attempt's deadline has passed.
    /// Non-matching frames (stale or duplicate replies of earlier
    /// calls) are discarded, as in [`RpcClient`]. A deadline already in
    /// the past triggers the next attempt on this very poll — it never
    /// silently extends the wait.
    pub fn poll(&mut self, ep: &Endpoint, now: u64) -> CallPoll {
        while let Some(m) = ep.try_recv() {
            if let Some((rid, body)) = decode_reply(&m.payload) {
                if rid == self.id {
                    return CallPoll::Ready(body.to_vec());
                }
            }
        }
        loop {
            if let Some(d) = self.attempt_deadline {
                if now < d {
                    return CallPoll::Wait { deadline: d };
                }
            }
            // First transmission, or the in-flight attempt timed out.
            let Some(&(attempt, timeout)) = self.schedule.get(self.next_attempt) else {
                return CallPoll::Exhausted;
            };
            self.next_attempt += 1;
            if attempt > 0 {
                self.retransmissions += 1;
            }
            if ep.send(&self.server, self.frame.clone()).is_err() {
                return CallPoll::Exhausted;
            }
            self.attempt_deadline = Some(now.saturating_add(timeout));
        }
    }
}

/// An at-most-once RPC server: executes each distinct `(caller, id)`
/// once and replays the cached reply for retransmissions.
pub struct RpcServer {
    endpoint: Endpoint,
    seen: HashMap<(String, u64), Vec<u8>>,
}

impl RpcServer {
    /// Wrap a registered endpoint as an RPC server.
    pub fn new(endpoint: Endpoint) -> Self {
        RpcServer {
            endpoint,
            seen: HashMap::new(),
        }
    }

    /// The server's endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Drain the mailbox, answering every request frame: fresh
    /// `(caller, id)` pairs go through `handler`, repeats are answered
    /// from the reply cache. Non-RPC frames are ignored. Returns the
    /// number of frames answered (cache hits included, so callers can
    /// use the count as a progress signal).
    pub fn poll(&mut self, handler: &mut dyn FnMut(&str, &[u8]) -> Vec<u8>) -> usize {
        let mut handled = 0;
        while let Some(m) = self.endpoint.try_recv() {
            let Some((id, body)) = decode_request(&m.payload) else {
                continue;
            };
            let key = (m.from.clone(), id);
            let reply = match self.seen.get(&key) {
                Some(cached) => cached.clone(),
                None => {
                    let r = handler(&m.from, body);
                    self.seen.insert(key, r.clone());
                    r
                }
            };
            // The caller may have unregistered; a lost reply is the
            // retransmission layer's problem, not ours.
            let _ = self.endpoint.send(&m.from, encode_reply(id, &reply));
            handled += 1;
        }
        handled
    }

    /// Number of distinct requests executed (reply-cache size).
    pub fn executed(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::net::{FaultProfile, Network};
    use crate::sched::{Scheduler, Step};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn echo_upper() -> impl FnMut(&str, &[u8]) -> Vec<u8> {
        |_from: &str, body: &[u8]| body.to_ascii_uppercase()
    }

    /// Build a client/server pair where the client's pump hook polls the
    /// server inline (single-threaded scenario shape).
    fn pumped_pair(net: &Network, policy: RetryPolicy) -> (RpcClient, Rc<RefCell<RpcServer>>) {
        let server = Rc::new(RefCell::new(RpcServer::new(net.register("server"))));
        let mut client = RpcClient::new(net.register("client"), "server", policy);
        let hook_server = server.clone();
        let mut handler = echo_upper();
        client.set_pump(move || hook_server.borrow_mut().poll(&mut handler));
        (client, server)
    }

    #[test]
    fn frame_roundtrip_and_rejection() {
        let f = encode_request(42, b"body");
        assert!(is_request(&f));
        assert_eq!(decode_request(&f), Some((42, &b"body"[..])));
        assert_eq!(decode_reply(&f), None);
        let r = encode_reply(42, b"resp");
        assert!(!is_request(&r));
        assert_eq!(decode_reply(&r), Some((42, &b"resp"[..])));
        assert_eq!(decode_request(b"short"), None);
        assert_eq!(decode_request(b"<xml>not rpc at all</xml>"), None);
    }

    #[test]
    fn call_over_perfect_network() {
        let net = Network::new();
        let (mut client, _server) = pumped_pair(&net, RetryPolicy::default());
        assert_eq!(client.call(b"hello").unwrap(), b"HELLO");
        assert_eq!(client.stats().retransmissions, 0);
    }

    #[test]
    fn retransmits_through_heavy_loss() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            0xBEEF,
            FaultProfile {
                drop: 0.25,
                min_latency: 1,
                max_latency: 3,
                ..FaultProfile::lossy_wan()
            },
        );
        // Timeout windows larger than the worst-case round trip, so an
        // attempt only fails when a copy was actually lost.
        let policy = RetryPolicy {
            max_attempts: 8,
            base_timeout: 16,
            multiplier: 2,
            max_timeout: 64,
        };
        let (mut client, server) = pumped_pair(&net, policy);
        for i in 0..20u32 {
            let req = format!("msg-{i}");
            assert_eq!(
                client.call(req.as_bytes()).unwrap(),
                req.to_ascii_uppercase().as_bytes()
            );
        }
        // 25% drop over 20 calls forces at least one retransmission,
        // and at-most-once holds regardless.
        assert!(client.stats().retransmissions > 0);
        assert_eq!(server.borrow().executed(), 20);
    }

    #[test]
    fn duplicated_requests_execute_once() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            7,
            FaultProfile {
                duplicate: 1.0,
                max_extra_copies: 2,
                ..FaultProfile::default()
            },
        );
        let server = Rc::new(RefCell::new(RpcServer::new(net.register("server"))));
        let mut client = RpcClient::new(net.register("client"), "server", RetryPolicy::default());
        let hook_server = server.clone();
        let executions = Rc::new(RefCell::new(0u32));
        let exec_count = executions.clone();
        let mut handler = move |_from: &str, body: &[u8]| {
            *exec_count.borrow_mut() += 1;
            body.to_vec()
        };
        client.set_pump(move || hook_server.borrow_mut().poll(&mut handler));
        assert_eq!(client.call(b"once").unwrap(), b"once");
        // Every duplicate reached the server, but the handler ran once.
        assert_eq!(*executions.borrow(), 1);
        assert_eq!(server.borrow().executed(), 1);
    }

    #[test]
    fn exhausted_policy_times_out_deterministically() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock.clone(), 1, FaultProfile::default());
        let (mut client, _server) = pumped_pair(&net, RetryPolicy::default());
        net.partition("client", "server");
        let t0 = clock.now();
        assert_eq!(client.call(b"void"), Err(TestbedError::Timeout));
        // The clock advanced by exactly the policy's worst case.
        assert_eq!(clock.now() - t0, RetryPolicy::default().worst_case_total());
        assert_eq!(
            client.stats().timeouts,
            u64::from(RetryPolicy::default().max_attempts)
        );
        // Healing lets the same client complete its next call.
        net.heal_all();
        assert_eq!(client.call(b"back").unwrap(), b"BACK");
    }

    #[test]
    fn scheduled_server_without_faults_still_works() {
        // Formerly a thread::spawn server racing yield_now: the server
        // now runs as a scheduler task, driven from the client's pump
        // hook — same observable behavior, zero threads, deterministic.
        let net = Network::new();
        let server_ep = net.register("server");
        let mut client = RpcClient::new(net.register("client"), "server", RetryPolicy::default());
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let mut server = RpcServer::new(server_ep);
        let mut handler = |_from: &str, body: &[u8]| body.to_ascii_uppercase();
        sched.borrow_mut().spawn_mailbox("server", move |_cx: &_| {
            server.poll(&mut handler);
            Step::WaitMail { deadline: None }
        });
        let hook = sched.clone();
        client.set_pump(move || hook.borrow_mut().poll());
        for msg in ["a", "b", "c"] {
            assert_eq!(
                client.call(msg.as_bytes()).unwrap(),
                msg.to_ascii_uppercase().as_bytes()
            );
        }
        assert_eq!(client.stats().retransmissions, 0);
        assert_eq!(sched.borrow().live(), 1, "server task still waiting");
    }

    #[test]
    fn polling_call_matches_blocking_client_through_loss() {
        // The same lossy-WAN call sequence, once through the blocking
        // RpcClient (which owns the clock) and once as PollingCall state
        // machines inside scheduler tasks: both must complete all calls
        // with identical retransmission counts and identical fault
        // transcripts — the state machine is the loop, re-expressed.
        let policy = RetryPolicy {
            max_attempts: 8,
            base_timeout: 16,
            multiplier: 2,
            max_timeout: 64,
        };
        let profile = FaultProfile {
            drop: 0.25,
            min_latency: 1,
            max_latency: 3,
            ..FaultProfile::lossy_wan()
        };
        let calls = 12u64;

        let blocking = {
            let net = Network::new();
            let clock = SimClock::new();
            net.enable_faults(clock.clone(), 0xBEEF, profile);
            let (mut client, _server) = pumped_pair(&net, policy);
            for i in 0..calls {
                let req = format!("msg-{i}");
                assert_eq!(
                    client.call(req.as_bytes()).unwrap(),
                    req.to_ascii_uppercase().as_bytes()
                );
            }
            (client.stats().retransmissions, net.transcript())
        };

        let scheduled = {
            let net = Network::new();
            let clock = SimClock::new();
            net.enable_faults(clock.clone(), 0xBEEF, profile);
            let mut sched = Scheduler::new(&net);
            let mut server = RpcServer::new(net.register("server"));
            let mut handler = echo_upper();
            sched.spawn_mailbox("server", move |_cx: &_| {
                server.poll(&mut handler);
                Step::WaitMail { deadline: None }
            });
            let ep = net.register("client");
            let done = Rc::new(RefCell::new((0u64, 0u64))); // (completed, retransmissions)
            let done2 = done.clone();
            let mut call: Option<PollingCall> = None;
            let mut next = 0u64;
            sched.spawn_mailbox("client", move |cx: &crate::sched::TaskCx| loop {
                if call.is_none() {
                    if next == calls {
                        return Step::Done;
                    }
                    next += 1;
                    let req = format!("msg-{}", next - 1);
                    call = Some(PollingCall::new("server", next, req.as_bytes(), policy));
                }
                let c = call.as_mut().unwrap();
                match c.poll(&ep, cx.now()) {
                    CallPoll::Ready(reply) => {
                        assert_eq!(
                            reply,
                            format!("MSG-{}", next - 1).as_bytes(),
                            "reply matches the call"
                        );
                        let mut d = done2.borrow_mut();
                        d.0 += 1;
                        d.1 += c.retransmissions();
                        call = None;
                    }
                    CallPoll::Wait { deadline } => {
                        return Step::WaitMail {
                            deadline: Some(deadline),
                        };
                    }
                    CallPoll::Exhausted => panic!("retry budget exhausted"),
                }
            });
            sched.run();
            let (completed, retx) = *done.borrow();
            assert_eq!(completed, calls);
            (retx, net.transcript())
        };

        assert_eq!(
            blocking.0, scheduled.0,
            "same retransmission count either way"
        );
        assert_eq!(blocking.1, scheduled.1, "byte-identical fault transcript");
        assert!(blocking.0 > 0, "25% drop over 12 calls retransmits");
    }
}
