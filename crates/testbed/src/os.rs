//! A simulated operating system: hosts, accounts, files, processes, and
//! privilege.
//!
//! This is the measurement substrate for the paper's §5.2 least-privilege
//! claims. Every process records its uid/euid, whether it accepts network
//! connections, whether it was started through a setuid binary, and which
//! credentials it holds — so experiment C4 can count privileged
//! network-facing components and compute compromise blast radii for the
//! GT2 gatekeeper vs. GT3 GRAM architectures.

use crate::TestbedError;
use gridsec_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A numeric user id. `0` is root.
pub type Uid = u32;
/// Root's uid.
pub const ROOT_UID: Uid = 0;
/// A process id, unique across all hosts.
pub type Pid = u64;

/// File permission bits (subset): owner read/write, world read/write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileMode(pub u8);

impl FileMode {
    /// Owner read permission.
    pub const OWNER_READ: u8 = 0b1000;
    /// Owner write permission.
    pub const OWNER_WRITE: u8 = 0b0100;
    /// World read permission.
    pub const WORLD_READ: u8 = 0b0010;
    /// World write permission.
    pub const WORLD_WRITE: u8 = 0b0001;

    /// `0600`-style: owner read/write only (host keys, proxy files).
    pub fn private() -> Self {
        FileMode(Self::OWNER_READ | Self::OWNER_WRITE)
    }

    /// `0644`-style: world readable (grid-mapfile, CA certificates).
    pub fn world_readable() -> Self {
        FileMode(Self::OWNER_READ | Self::OWNER_WRITE | Self::WORLD_READ)
    }

    fn readable_by(&self, euid: Uid, owner: Uid) -> bool {
        if euid == ROOT_UID || euid == owner {
            self.0 & Self::OWNER_READ != 0 || euid == ROOT_UID
        } else {
            self.0 & Self::WORLD_READ != 0
        }
    }

    pub(crate) fn writable_by(&self, euid: Uid, owner: Uid) -> bool {
        if euid == ROOT_UID {
            true
        } else if euid == owner {
            self.0 & Self::OWNER_WRITE != 0
        } else {
            self.0 & Self::WORLD_WRITE != 0
        }
    }
}

/// A file with owner and permissions.
#[derive(Clone, Debug)]
pub struct SimFile {
    /// Owning uid.
    pub owner: Uid,
    /// Permission bits.
    pub mode: FileMode,
    /// Contents.
    pub data: Vec<u8>,
}

/// A process table entry.
#[derive(Clone, Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Human-readable component name (e.g. `"MMJFS"`, `"gatekeeper"`).
    pub name: String,
    /// Real uid.
    pub uid: Uid,
    /// Effective uid (0 = privileged).
    pub euid: Uid,
    /// `true` iff the process accepts connections from the network.
    pub network_facing: bool,
    /// `true` iff started via an installed setuid binary.
    pub via_setuid_binary: bool,
    /// Labels of credentials the process holds in memory.
    pub credentials: Vec<String>,
    /// `false` after `kill`.
    pub alive: bool,
}

impl Process {
    /// A process is "privileged" when its effective uid is root.
    pub fn is_privileged(&self) -> bool {
        self.euid == ROOT_UID
    }
}

#[derive(Default)]
struct Host {
    accounts: HashMap<String, Uid>,
    next_uid: Uid,
    files: HashMap<String, SimFile>,
    setuid_binaries: HashMap<String, ()>,
    processes: HashMap<Pid, Process>,
}

/// The simulated OS: a set of hosts sharing a pid namespace.
#[derive(Clone, Default)]
pub struct SimOs {
    inner: Arc<SimOsInner>,
}

#[derive(Default)]
struct SimOsInner {
    hosts: Mutex<HashMap<String, Host>>,
    next_pid: AtomicU64,
}

impl SimOs {
    /// Empty OS with no hosts.
    pub fn new() -> Self {
        SimOs::default()
    }

    /// Create a host; the `root` account (uid 0) is preinstalled.
    pub fn add_host(&self, name: &str) {
        let mut hosts = self.inner.hosts.lock();
        let host = hosts.entry(name.to_string()).or_default();
        host.accounts.insert("root".to_string(), ROOT_UID);
        host.next_uid = host.next_uid.max(1000);
    }

    fn with_host<T>(
        &self,
        host: &str,
        f: impl FnOnce(&mut Host) -> Result<T, TestbedError>,
    ) -> Result<T, TestbedError> {
        let mut hosts = self.inner.hosts.lock();
        let h = hosts
            .get_mut(host)
            .ok_or_else(|| TestbedError::NoSuchHost(host.to_string()))?;
        f(h)
    }

    /// Create an unprivileged account, returning its uid.
    pub fn add_account(&self, host: &str, account: &str) -> Result<Uid, TestbedError> {
        self.with_host(host, |h| {
            if let Some(&uid) = h.accounts.get(account) {
                return Ok(uid);
            }
            let uid = h.next_uid;
            h.next_uid += 1;
            h.accounts.insert(account.to_string(), uid);
            Ok(uid)
        })
    }

    /// Look up an account's uid.
    pub fn uid_of(&self, host: &str, account: &str) -> Result<Uid, TestbedError> {
        self.with_host(host, |h| {
            h.accounts
                .get(account)
                .copied()
                .ok_or_else(|| TestbedError::NoSuchAccount(account.to_string()))
        })
    }

    /// All account names on a host.
    pub fn accounts(&self, host: &str) -> Result<Vec<String>, TestbedError> {
        self.with_host(host, |h| {
            let mut v: Vec<String> = h.accounts.keys().cloned().collect();
            v.sort();
            Ok(v)
        })
    }

    /// Write (create or replace) a file.
    pub fn write_file(
        &self,
        host: &str,
        path: &str,
        owner: Uid,
        mode: FileMode,
        data: Vec<u8>,
    ) -> Result<(), TestbedError> {
        self.with_host(host, |h| {
            h.files
                .insert(path.to_string(), SimFile { owner, mode, data });
            Ok(())
        })
    }

    /// Append to a file as effective uid `euid`. Creates the file (owned
    /// by `euid`, with `mode`) if it does not exist; otherwise enforces
    /// write permission and extends the existing contents. This is the
    /// durability primitive write-ahead journals build on: appends
    /// survive process crashes because the file lives in the OS, not in
    /// any service's memory.
    pub fn append_file(
        &self,
        host: &str,
        path: &str,
        euid: Uid,
        mode: FileMode,
        data: &[u8],
    ) -> Result<(), TestbedError> {
        self.with_host(host, |h| match h.files.get_mut(path) {
            Some(f) => {
                if !f.mode.writable_by(euid, f.owner) {
                    return Err(TestbedError::PermissionDenied("file not writable"));
                }
                f.data.extend_from_slice(data);
                Ok(())
            }
            None => {
                h.files.insert(
                    path.to_string(),
                    SimFile {
                        owner: euid,
                        mode,
                        data: data.to_vec(),
                    },
                );
                Ok(())
            }
        })
    }

    /// Remove a file as effective uid `euid` (write permission required).
    pub fn remove_file(&self, host: &str, path: &str, euid: Uid) -> Result<(), TestbedError> {
        self.with_host(host, |h| {
            let f = h
                .files
                .get(path)
                .ok_or_else(|| TestbedError::NoSuchFile(path.to_string()))?;
            if !f.mode.writable_by(euid, f.owner) {
                return Err(TestbedError::PermissionDenied("file not writable"));
            }
            h.files.remove(path);
            Ok(())
        })
    }

    /// Length of a file, or `None` if it does not exist (a `stat`-style
    /// probe; no permission check, matching real directory semantics).
    pub fn file_len(&self, host: &str, path: &str) -> Result<Option<usize>, TestbedError> {
        self.with_host(host, |h| Ok(h.files.get(path).map(|f| f.data.len())))
    }

    /// Read a file as effective uid `euid`, enforcing permissions.
    pub fn read_file(&self, host: &str, path: &str, euid: Uid) -> Result<Vec<u8>, TestbedError> {
        self.with_host(host, |h| {
            let f = h
                .files
                .get(path)
                .ok_or_else(|| TestbedError::NoSuchFile(path.to_string()))?;
            if !f.mode.readable_by(euid, f.owner) {
                return Err(TestbedError::PermissionDenied("file not readable"));
            }
            Ok(f.data.clone())
        })
    }

    /// Spawn an ordinary process under `account`.
    pub fn spawn(&self, host: &str, name: &str, account: &str) -> Result<Pid, TestbedError> {
        let uid = self.uid_of(host, account)?;
        let pid = self.inner.next_pid.fetch_add(1, Ordering::Relaxed) + 1;
        self.with_host(host, |h| {
            h.processes.insert(
                pid,
                Process {
                    pid,
                    name: name.to_string(),
                    uid,
                    euid: uid,
                    network_facing: false,
                    via_setuid_binary: false,
                    credentials: vec![],
                    alive: true,
                },
            );
            Ok(pid)
        })
    }

    /// Spawn a process that runs with root privileges from the start
    /// (models GT2's gatekeeper, started by init as root).
    pub fn spawn_privileged(&self, host: &str, name: &str) -> Result<Pid, TestbedError> {
        let pid = self.inner.next_pid.fetch_add(1, Ordering::Relaxed) + 1;
        self.with_host(host, |h| {
            h.processes.insert(
                pid,
                Process {
                    pid,
                    name: name.to_string(),
                    uid: ROOT_UID,
                    euid: ROOT_UID,
                    network_facing: false,
                    via_setuid_binary: false,
                    credentials: vec![],
                    alive: true,
                },
            );
            Ok(pid)
        })
    }

    /// Install a setuid-root binary (e.g. GT3's Setuid Starter or GRIM).
    pub fn install_setuid_binary(&self, host: &str, binary: &str) -> Result<(), TestbedError> {
        self.with_host(host, |h| {
            h.setuid_binaries.insert(binary.to_string(), ());
            Ok(())
        })
    }

    /// Execute an installed setuid binary from `caller_pid`. The new
    /// process runs with euid 0 regardless of the caller's uid — that is
    /// the whole point of setuid — and is flagged `via_setuid_binary` so
    /// the privilege audit can distinguish "small audited setuid program"
    /// from "long-running privileged service".
    pub fn exec_setuid_binary(
        &self,
        host: &str,
        caller_pid: Pid,
        binary: &str,
    ) -> Result<Pid, TestbedError> {
        let pid = self.inner.next_pid.fetch_add(1, Ordering::Relaxed) + 1;
        self.with_host(host, |h| {
            let caller = h
                .processes
                .get(&caller_pid)
                .ok_or(TestbedError::NoSuchProcess(caller_pid))?;
            if !caller.alive {
                return Err(TestbedError::NoSuchProcess(caller_pid));
            }
            let caller_uid = caller.uid;
            if !h.setuid_binaries.contains_key(binary) {
                return Err(TestbedError::PermissionDenied("binary is not setuid"));
            }
            h.processes.insert(
                pid,
                Process {
                    pid,
                    name: binary.to_string(),
                    uid: caller_uid,
                    euid: ROOT_UID,
                    network_facing: false,
                    via_setuid_binary: true,
                    credentials: vec![],
                    alive: true,
                },
            );
            Ok(pid)
        })
    }

    /// From a privileged process, spawn a new process under `account`
    /// with privileges fully dropped (the Setuid Starter launching a
    /// user's LMJFS; the gatekeeper forking a jobmanager).
    pub fn setuid_spawn(
        &self,
        host: &str,
        caller_pid: Pid,
        name: &str,
        account: &str,
    ) -> Result<Pid, TestbedError> {
        let target_uid = self.uid_of(host, account)?;
        let pid = self.inner.next_pid.fetch_add(1, Ordering::Relaxed) + 1;
        self.with_host(host, |h| {
            let caller = h
                .processes
                .get(&caller_pid)
                .ok_or(TestbedError::NoSuchProcess(caller_pid))?;
            if caller.euid != ROOT_UID {
                return Err(TestbedError::PermissionDenied(
                    "setuid_spawn requires euid 0",
                ));
            }
            h.processes.insert(
                pid,
                Process {
                    pid,
                    name: name.to_string(),
                    uid: target_uid,
                    euid: target_uid,
                    network_facing: false,
                    via_setuid_binary: false,
                    credentials: vec![],
                    alive: true,
                },
            );
            Ok(pid)
        })
    }

    /// Mark a process as accepting network connections.
    pub fn mark_network_facing(&self, host: &str, pid: Pid) -> Result<(), TestbedError> {
        self.modify_process(host, pid, |p| p.network_facing = true)
    }

    /// Record that a process holds a credential (for blast-radius
    /// reporting), identified by a human-readable label.
    pub fn grant_credential(&self, host: &str, pid: Pid, label: &str) -> Result<(), TestbedError> {
        let label = label.to_string();
        self.modify_process(host, pid, move |p| p.credentials.push(label))
    }

    /// Terminate a process (it stays in the table, marked dead).
    pub fn kill(&self, host: &str, pid: Pid) -> Result<(), TestbedError> {
        self.modify_process(host, pid, |p| p.alive = false)
    }

    fn modify_process(
        &self,
        host: &str,
        pid: Pid,
        f: impl FnOnce(&mut Process),
    ) -> Result<(), TestbedError> {
        self.with_host(host, |h| {
            let p = h
                .processes
                .get_mut(&pid)
                .ok_or(TestbedError::NoSuchProcess(pid))?;
            f(p);
            Ok(())
        })
    }

    /// Snapshot of one process.
    pub fn process(&self, host: &str, pid: Pid) -> Result<Process, TestbedError> {
        self.with_host(host, |h| {
            h.processes
                .get(&pid)
                .cloned()
                .ok_or(TestbedError::NoSuchProcess(pid))
        })
    }

    /// Snapshot of all live processes on a host.
    pub fn processes(&self, host: &str) -> Result<Vec<Process>, TestbedError> {
        self.with_host(host, |h| {
            let mut v: Vec<Process> = h.processes.values().filter(|p| p.alive).cloned().collect();
            v.sort_by_key(|p| p.pid);
            Ok(v)
        })
    }

    /// Live processes with euid 0.
    pub fn privileged_processes(&self, host: &str) -> Result<Vec<Process>, TestbedError> {
        Ok(self
            .processes(host)?
            .into_iter()
            .filter(|p| p.is_privileged())
            .collect())
    }

    /// Live processes that are both privileged and network-facing — the
    /// quantity GT3 drives to zero (paper §5.2).
    pub fn privileged_network_facing(&self, host: &str) -> Result<Vec<Process>, TestbedError> {
        Ok(self
            .privileged_processes(host)?
            .into_iter()
            .filter(|p| p.network_facing)
            .collect())
    }

    /// All files on a host (path, file) — used by fault injection.
    pub fn files(&self, host: &str) -> Result<Vec<(String, SimFile)>, TestbedError> {
        self.with_host(host, |h| {
            let mut v: Vec<(String, SimFile)> = h
                .files
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(v)
        })
    }

    /// Account name for a uid, if any.
    pub fn account_of_uid(&self, host: &str, uid: Uid) -> Result<Option<String>, TestbedError> {
        self.with_host(host, |h| {
            Ok(h.accounts
                .iter()
                .find(|(_, &u)| u == uid)
                .map(|(n, _)| n.clone()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os_with_host() -> SimOs {
        let os = SimOs::new();
        os.add_host("compute1");
        os
    }

    #[test]
    fn accounts_and_uids() {
        let os = os_with_host();
        let alice = os.add_account("compute1", "alice").unwrap();
        let bob = os.add_account("compute1", "bob").unwrap();
        assert_ne!(alice, bob);
        assert_ne!(alice, ROOT_UID);
        assert_eq!(os.uid_of("compute1", "alice").unwrap(), alice);
        assert_eq!(os.uid_of("compute1", "root").unwrap(), ROOT_UID);
        // Idempotent account creation.
        assert_eq!(os.add_account("compute1", "alice").unwrap(), alice);
    }

    #[test]
    fn missing_host_and_account_errors() {
        let os = os_with_host();
        assert!(matches!(
            os.uid_of("nohost", "alice"),
            Err(TestbedError::NoSuchHost(_))
        ));
        assert!(matches!(
            os.uid_of("compute1", "ghost"),
            Err(TestbedError::NoSuchAccount(_))
        ));
    }

    #[test]
    fn file_permissions() {
        let os = os_with_host();
        let alice = os.add_account("compute1", "alice").unwrap();
        let bob = os.add_account("compute1", "bob").unwrap();
        os.write_file(
            "compute1",
            "/home/alice/.proxy",
            alice,
            FileMode::private(),
            b"proxy key".to_vec(),
        )
        .unwrap();
        // Owner reads.
        assert!(os
            .read_file("compute1", "/home/alice/.proxy", alice)
            .is_ok());
        // Other user denied.
        assert!(matches!(
            os.read_file("compute1", "/home/alice/.proxy", bob),
            Err(TestbedError::PermissionDenied(_))
        ));
        // Root reads anything.
        assert!(os
            .read_file("compute1", "/home/alice/.proxy", ROOT_UID)
            .is_ok());
        // World-readable file readable by anyone.
        os.write_file(
            "compute1",
            "/etc/grid-security/grid-mapfile",
            ROOT_UID,
            FileMode::world_readable(),
            b"map".to_vec(),
        )
        .unwrap();
        assert!(os
            .read_file("compute1", "/etc/grid-security/grid-mapfile", bob)
            .is_ok());
    }

    #[test]
    fn spawn_and_privilege() {
        let os = os_with_host();
        os.add_account("compute1", "alice").unwrap();
        let p = os.spawn("compute1", "hosting-env", "alice").unwrap();
        let proc = os.process("compute1", p).unwrap();
        assert!(!proc.is_privileged());
        let g = os.spawn_privileged("compute1", "gatekeeper").unwrap();
        assert!(os.process("compute1", g).unwrap().is_privileged());
    }

    #[test]
    fn setuid_binary_flow() {
        let os = os_with_host();
        os.add_account("compute1", "factory").unwrap();
        os.add_account("compute1", "alice").unwrap();
        os.install_setuid_binary("compute1", "setuid-starter")
            .unwrap();
        // Unprivileged MMJFS invokes the setuid starter...
        let mmjfs = os.spawn("compute1", "MMJFS", "factory").unwrap();
        let starter = os
            .exec_setuid_binary("compute1", mmjfs, "setuid-starter")
            .unwrap();
        let sp = os.process("compute1", starter).unwrap();
        assert!(sp.is_privileged());
        assert!(sp.via_setuid_binary);
        // ...which starts the user's LMJFS with privileges dropped.
        let lmjfs = os
            .setuid_spawn("compute1", starter, "LMJFS", "alice")
            .unwrap();
        let lp = os.process("compute1", lmjfs).unwrap();
        assert!(!lp.is_privileged());
        assert_eq!(lp.uid, os.uid_of("compute1", "alice").unwrap());
    }

    #[test]
    fn non_setuid_binary_rejected() {
        let os = os_with_host();
        os.add_account("compute1", "alice").unwrap();
        let p = os.spawn("compute1", "app", "alice").unwrap();
        assert!(matches!(
            os.exec_setuid_binary("compute1", p, "not-installed"),
            Err(TestbedError::PermissionDenied(_))
        ));
    }

    #[test]
    fn setuid_spawn_requires_privilege() {
        let os = os_with_host();
        os.add_account("compute1", "alice").unwrap();
        os.add_account("compute1", "bob").unwrap();
        let p = os.spawn("compute1", "app", "alice").unwrap();
        assert!(matches!(
            os.setuid_spawn("compute1", p, "evil", "bob"),
            Err(TestbedError::PermissionDenied(_))
        ));
    }

    #[test]
    fn privileged_network_facing_accounting() {
        let os = os_with_host();
        os.add_account("compute1", "factory").unwrap();
        // GT2 shape: privileged gatekeeper listening on the network.
        let gk = os.spawn_privileged("compute1", "gatekeeper").unwrap();
        os.mark_network_facing("compute1", gk).unwrap();
        assert_eq!(os.privileged_network_facing("compute1").unwrap().len(), 1);
        // GT3 shape: unprivileged MMJFS on the network.
        let mmjfs = os.spawn("compute1", "MMJFS", "factory").unwrap();
        os.mark_network_facing("compute1", mmjfs).unwrap();
        os.kill("compute1", gk).unwrap();
        assert_eq!(os.privileged_network_facing("compute1").unwrap().len(), 0);
        assert_eq!(os.processes("compute1").unwrap().len(), 1);
    }

    #[test]
    fn credentials_tracked() {
        let os = os_with_host();
        os.add_account("compute1", "alice").unwrap();
        let p = os.spawn("compute1", "LMJFS", "alice").unwrap();
        os.grant_credential("compute1", p, "GRIM proxy for alice")
            .unwrap();
        assert_eq!(
            os.process("compute1", p).unwrap().credentials,
            vec!["GRIM proxy for alice".to_string()]
        );
    }

    #[test]
    fn dead_process_cannot_exec() {
        let os = os_with_host();
        os.add_account("compute1", "alice").unwrap();
        os.install_setuid_binary("compute1", "grim").unwrap();
        let p = os.spawn("compute1", "app", "alice").unwrap();
        os.kill("compute1", p).unwrap();
        assert!(os.exec_setuid_binary("compute1", p, "grim").is_err());
    }
}
