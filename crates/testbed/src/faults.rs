//! Process fault injection: compromise analysis and crash/restart.
//!
//! Two fault families live here:
//!
//! * **Compromise** — the paper argues (§5.2) that GT3 improves security
//!   because network services hold no privilege: "GT3 removes all
//!   privileges from these services, significantly reducing the impact
//!   of compromises". [`compromise`] makes that claim measurable by
//!   marking a process attacker-controlled and computing everything the
//!   attacker now reaches under the simulated OS's access rules.
//!
//! * **Crash/restart** — the GT3 decomposition argument cuts the other
//!   way too: because security state is either *stateless* (signed
//!   messages, re-establishable GSS contexts) or *durable* (policy
//!   databases, job tables), any individual service process can die
//!   mid-request and come back without taking down the trust fabric.
//!   [`CrashPlan`] is a seeded schedule of kill points; [`Journal`] is a
//!   write-ahead log persisted in [`SimOs`]; [`CrashableServer`] hosts
//!   an RPC service that can be killed at any [`CrashPlan::fires`]
//!   point and restarted, rebuilding its at-most-once reply cache from
//!   the journal so retransmitted requests stay idempotent across the
//!   restart.
//!
//! The crash contract, in one paragraph: a service calls
//! `plan.fires("point")` at each injection point and **returns
//! immediately** (any reply value) when it fires — code after a fired
//! point models instructions the dead process never executed. The
//! supervisor ([`CrashableServer::poll`]) then discards the reply,
//! drops the in-memory state via [`CrashRecover::crash`], and marks the
//! process down until `restart_delay` sim-seconds pass. Durable effects
//! a handler wants to survive must be appended to the journal *before*
//! the next crash point (write-ahead); on restart,
//! [`CrashRecover::recover`] folds the journal back into fresh state.
//! The window where an application record is durable but the reply
//! record is not is closed by application-level dedup: re-execution
//! finds its own `(caller, call-id)` record and returns the journaled
//! outcome instead of re-applying the side effect.

use crate::net::Endpoint;
use crate::os::{FileMode, Pid, SimOs, Uid, ROOT_UID};
use crate::rpc::{decode_request, encode_reply};
use crate::TestbedError;
use gridsec_util::rng::{DetRng, RngCore};
use gridsec_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What an attacker controls after compromising one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompromiseReport {
    /// Host of the compromised process.
    pub host: String,
    /// Compromised process id.
    pub pid: Pid,
    /// Component name (e.g. `"gatekeeper"`, `"MMJFS"`).
    pub process_name: String,
    /// Effective uid at compromise time.
    pub euid: u32,
    /// `true` iff the attacker gains root (full host compromise).
    pub full_host_compromise: bool,
    /// Account names whose resources the attacker can act as.
    pub accounts_reachable: Vec<String>,
    /// File paths the attacker can read.
    pub files_readable: Vec<String>,
    /// File paths the attacker can write.
    pub files_writable: Vec<String>,
    /// Credential labels now exposed (from every reachable process).
    pub credentials_exposed: Vec<String>,
}

impl CompromiseReport {
    /// A scalar "blast radius" for easy comparison across architectures:
    /// reachable accounts + exposed credentials + writable files.
    pub fn blast_radius(&self) -> usize {
        self.accounts_reachable.len() + self.credentials_exposed.len() + self.files_writable.len()
    }
}

/// Compromise `pid` on `host` and compute the blast radius.
///
/// Rules of the model:
/// * euid 0 → attacker owns the host: every account, file, and in-memory
///   credential of every process.
/// * otherwise → the attacker acts as that euid: files readable/writable
///   under the permission bits, credentials held by processes of the same
///   euid, and the single account that euid maps to.
pub fn compromise(os: &SimOs, host: &str, pid: Pid) -> Result<CompromiseReport, TestbedError> {
    let proc = os.process(host, pid)?;
    let euid = proc.euid;
    let all_files = os.files(host)?;
    let all_procs = os.processes(host)?;

    if euid == ROOT_UID {
        let accounts = os.accounts(host)?;
        let files: Vec<String> = all_files.iter().map(|(p, _)| p.clone()).collect();
        let mut creds: Vec<String> = all_procs
            .iter()
            .flat_map(|p| p.credentials.iter().cloned())
            .collect();
        creds.sort();
        return Ok(CompromiseReport {
            host: host.to_string(),
            pid,
            process_name: proc.name,
            euid,
            full_host_compromise: true,
            accounts_reachable: accounts,
            files_readable: files.clone(),
            files_writable: files,
            credentials_exposed: creds,
        });
    }

    let mut files_readable = Vec::new();
    let mut files_writable = Vec::new();
    for (path, f) in &all_files {
        // Re-check via the OS so the permission logic lives in one place.
        if os.read_file(host, path, euid).is_ok() {
            files_readable.push(path.clone());
        }
        if f.mode.writable_by(euid, f.owner) {
            files_writable.push(path.clone());
        }
    }

    let mut creds: Vec<String> = all_procs
        .iter()
        .filter(|p| p.euid == euid)
        .flat_map(|p| p.credentials.iter().cloned())
        .collect();
    creds.sort();

    let accounts_reachable = os
        .account_of_uid(host, euid)?
        .into_iter()
        .collect::<Vec<_>>();

    Ok(CompromiseReport {
        host: host.to_string(),
        pid,
        process_name: proc.name,
        euid,
        full_host_compromise: false,
        accounts_reachable,
        files_readable,
        files_writable,
        credentials_exposed: creds,
    })
}

// ---------------------------------------------------------------------------
// Crash/restart fault layer
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PlanState {
    rng: Option<DetRng>,
    probability: f64,
    /// Explicitly armed kills: point → 1-based hit counts that fire.
    armed: HashMap<String, Vec<u64>>,
    /// Times each point has been reached.
    hits: HashMap<String, u64>,
    /// Latched by `fires`; consumed by the supervisor.
    pending: Option<String>,
    /// Crashes still allowed (budget).
    remaining: u64,
    restart_delay: u64,
    crashes: u64,
    restarts: u64,
    transcript: Vec<String>,
}

/// A seeded, deterministic schedule of process kills.
///
/// Services consult the plan at named injection points; the plan decides
/// — from explicit arming or a seeded probability draw — whether the
/// process dies *at that instruction*. The decision sequence is a pure
/// function of the seed and the (deterministic) order of `fires` calls,
/// so combined network + crash chaos replays byte-identically.
///
/// Cloning shares the schedule (it is one process's fate, possibly
/// consulted from several code paths).
#[derive(Clone)]
pub struct CrashPlan {
    state: Arc<Mutex<PlanState>>,
}

impl CrashPlan {
    /// A plan that never fires (the no-chaos configuration).
    pub fn disabled() -> Self {
        CrashPlan {
            state: Arc::new(Mutex::new(PlanState::default())),
        }
    }

    /// A seeded plan: every unarmed hit of any point draws from the
    /// seeded RNG and fires with `probability`, up to `max_crashes`
    /// total kills. `restart_delay` is how long (sim-seconds) the
    /// process stays down after each kill.
    pub fn seeded(seed: u64, probability: f64, max_crashes: u64, restart_delay: u64) -> Self {
        CrashPlan {
            state: Arc::new(Mutex::new(PlanState {
                rng: Some(DetRng::seed_from_u64(seed)),
                probability,
                remaining: max_crashes,
                restart_delay,
                ..PlanState::default()
            })),
        }
    }

    /// A plan that fires only at explicitly [`arm`](Self::arm)ed points.
    pub fn manual(restart_delay: u64) -> Self {
        CrashPlan {
            state: Arc::new(Mutex::new(PlanState {
                remaining: u64::MAX,
                restart_delay,
                ..PlanState::default()
            })),
        }
    }

    /// Arm a kill at the `nth` (1-based) hit of `point`.
    pub fn arm(&self, point: &str, nth: u64) {
        self.state
            .lock()
            .armed
            .entry(point.to_string())
            .or_default()
            .push(nth);
    }

    /// Consult the plan at an injection point. Returns `true` if the
    /// process dies here — the caller must return immediately (with any
    /// dummy reply); everything after a fired point is code the dead
    /// process never ran. Once latched, every further point in the same
    /// request also reports `true`.
    pub fn fires(&self, point: &str) -> bool {
        let mut s = self.state.lock();
        if s.pending.is_some() {
            return true;
        }
        let hit = {
            let h = s.hits.entry(point.to_string()).or_insert(0);
            *h += 1;
            *h
        };
        if s.remaining == 0 {
            return false;
        }
        let armed = s.armed.get(point).is_some_and(|v| v.contains(&hit));
        let p = s.probability;
        let random = !armed
            && p > 0.0
            && s.rng.as_mut().is_some_and(|rng| {
                let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                draw < p
            });
        if armed || random {
            s.remaining -= 1;
            s.pending = Some(point.to_string());
            true
        } else {
            false
        }
    }

    /// Consume the latched kill, if any: returns the point that fired.
    /// Called by the supervisor after the handler returns.
    pub fn take_pending(&self) -> Option<String> {
        self.state.lock().pending.take()
    }

    /// Downtime after each kill, in sim-seconds.
    pub fn restart_delay(&self) -> u64 {
        self.state.lock().restart_delay
    }

    /// Total kills delivered so far.
    pub fn crashes(&self) -> u64 {
        self.state.lock().crashes
    }

    /// Total restarts completed so far.
    pub fn restarts(&self) -> u64 {
        self.state.lock().restarts
    }

    /// Deterministic event log (`crash …` / `restart …` lines).
    pub fn transcript(&self) -> Vec<String> {
        self.state.lock().transcript.clone()
    }

    fn note_crash(&self, service: &str, point: &str, t: u64) {
        let mut s = self.state.lock();
        s.crashes += 1;
        s.transcript
            .push(format!("[t={t}] crash svc={service} point={point}"));
    }

    /// Record a kill taken *inline* by a service with no
    /// [`CrashableServer`] supervisor (a streaming GridFTP session dies
    /// with its connection rather than with a mailbox process):
    /// consumes the latched point, appends the transcript line, and
    /// returns the point that fired. `None` if nothing was latched.
    pub fn confirm_kill(&self, service: &str, t: u64) -> Option<String> {
        let point = self.take_pending()?;
        self.note_crash(service, &point, t);
        Some(point)
    }

    /// Record the restart that follows an inline kill: for a service
    /// with no [`CrashableServer`] supervisor, the next session that
    /// serves from durable state *is* the restarted process. No-op
    /// (returns `false`) unless a kill is still unacknowledged, so
    /// callers can invoke it unconditionally at session start.
    pub fn confirm_restart(&self, service: &str, t: u64, replayed: usize) -> bool {
        {
            let s = self.state.lock();
            if s.restarts >= s.crashes {
                return false;
            }
        }
        self.note_restart(service, t, replayed);
        true
    }

    fn note_restart(&self, service: &str, t: u64, replayed: usize) {
        let mut s = self.state.lock();
        s.restarts += 1;
        s.transcript
            .push(format!("[t={t}] restart svc={service} replayed={replayed}"));
    }
}

/// A write-ahead journal persisted as a [`SimOs`] file.
///
/// The handle is cheap to clone and represents the *file*, not any
/// process: it survives crashes, and a fresh handle opened on the same
/// path sees the same records. Record framing is
/// `[u8 tag-len][tag][u32 body-len BE][body]`, repeated; a torn tail
/// (crash mid-append, not possible in this simulation but defended
/// against anyway) is ignored by the parser.
#[derive(Clone)]
pub struct Journal {
    os: SimOs,
    host: String,
    path: String,
    euid: Uid,
}

impl Journal {
    /// Open (or lazily create) the journal at `path` on `host`, owned
    /// by `euid`. The file is private to that uid.
    pub fn open(os: SimOs, host: &str, path: &str, euid: Uid) -> Self {
        Journal {
            os,
            host: host.to_string(),
            path: path.to_string(),
            euid,
        }
    }

    /// Append one record durably. Must be called *before* the side
    /// effect's reply leaves the process (write-ahead discipline).
    pub fn append(&self, tag: &str, body: &[u8]) -> Result<(), TestbedError> {
        assert!(tag.len() <= u8::MAX as usize, "journal tag too long");
        let mut rec = Vec::with_capacity(5 + tag.len() + body.len());
        rec.push(tag.len() as u8);
        rec.extend_from_slice(tag.as_bytes());
        rec.extend_from_slice(&(body.len() as u32).to_be_bytes());
        rec.extend_from_slice(body);
        self.os
            .append_file(&self.host, &self.path, self.euid, FileMode::private(), &rec)
    }

    /// All records, in append order. A missing file is an empty journal.
    pub fn records(&self) -> Vec<(String, Vec<u8>)> {
        let bytes = match self.os.read_file(&self.host, &self.path, self.euid) {
            Ok(b) => b,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let Some(&tag_len) = bytes.get(i) else { break };
            let tag_end = i + 1 + tag_len as usize;
            if bytes.len() < tag_end + 4 {
                break;
            }
            let tag = String::from_utf8_lossy(&bytes[i + 1..tag_end]).into_owned();
            let body_len =
                u32::from_be_bytes(bytes[tag_end..tag_end + 4].try_into().unwrap()) as usize;
            let body_end = tag_end + 4 + body_len;
            if bytes.len() < body_end {
                break;
            }
            out.push((tag, bytes[tag_end + 4..body_end].to_vec()));
            i = body_end;
        }
        out
    }

    /// Number of complete records.
    pub fn len(&self) -> usize {
        self.records().len()
    }

    /// `true` if no record has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a crash-hostable application must provide: request handling
/// plus the two lifecycle edges of a process death.
pub trait CrashRecover {
    /// Handle one *fresh* request (retransmissions of already-answered
    /// requests never reach this). `id` is the RPC call id — combined
    /// with `from` it keys application-level dedup records.
    fn handle(&mut self, from: &str, id: u64, body: &[u8]) -> Vec<u8>;
    /// The process died: drop all volatile (in-memory) state.
    fn crash(&mut self) {}
    /// The process restarted: rebuild state from the journal.
    fn recover(&mut self) {}
}

const RPC_REPLY_TAG: &str = "rpc";

fn encode_rpc_record(from: &str, id: u64, reply: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + from.len() + reply.len());
    out.extend_from_slice(&(from.len() as u32).to_be_bytes());
    out.extend_from_slice(from.as_bytes());
    out.extend_from_slice(&id.to_be_bytes());
    out.extend_from_slice(reply);
    out
}

fn decode_rpc_record(body: &[u8]) -> Option<(String, u64, Vec<u8>)> {
    if body.len() < 4 {
        return None;
    }
    let from_len = u32::from_be_bytes(body[..4].try_into().unwrap()) as usize;
    if body.len() < 4 + from_len + 8 {
        return None;
    }
    let from = String::from_utf8_lossy(&body[4..4 + from_len]).into_owned();
    let id = u64::from_be_bytes(body[4 + from_len..4 + from_len + 8].try_into().unwrap());
    Some((from, id, body[4 + from_len + 8..].to_vec()))
}

/// An at-most-once RPC server that can be killed and restarted.
///
/// Like [`crate::rpc::RpcServer`], but the process behind it is mortal:
/// when the application latches a [`CrashPlan`] kill mid-request, the
/// supervisor discards the in-flight reply, drops volatile state
/// ([`CrashRecover::crash`]), and marks the process down for
/// `restart_delay` sim-seconds. While down, the endpoint stays
/// registered (the host is up; the port is just dead) and arriving mail
/// evaporates — clients see silence and retransmit. On restart the
/// reply cache is rebuilt from the journal's `rpc` records (when
/// `persist_replies` is on) and [`CrashRecover::recover`] rebuilds the
/// application state, so a retransmission of an already-executed
/// request is answered from the journal, never re-executed.
pub struct CrashableServer {
    name: String,
    endpoint: Endpoint,
    plan: CrashPlan,
    journal: Journal,
    persist_replies: bool,
    seen: HashMap<(String, u64), Vec<u8>>,
    down_until: Option<u64>,
    restarts: u64,
}

impl CrashableServer {
    /// Host a service on `endpoint` under `plan`, journaling into
    /// `journal`. `persist_replies: false` skips reply journaling for
    /// services whose replies are worthless after a restart (e.g. GSS
    /// handshake tokens — the context they belong to died with the
    /// process; re-execution of a fresh token 1 is the *better*
    /// recovery).
    pub fn new(
        endpoint: Endpoint,
        name: &str,
        plan: CrashPlan,
        journal: Journal,
        persist_replies: bool,
    ) -> Self {
        CrashableServer {
            name: name.to_string(),
            endpoint,
            plan,
            journal,
            persist_replies,
            seen: HashMap::new(),
            down_until: None,
            restarts: 0,
        }
    }

    fn now(&self) -> u64 {
        self.endpoint.network().fault_clock().map_or(0, |c| c.now())
    }

    /// `true` while the process is dead and mail is evaporating.
    pub fn is_down(&self) -> bool {
        self.down_until.is_some()
    }

    /// Restarts completed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Distinct requests currently answerable from the reply cache.
    pub fn executed(&self) -> usize {
        self.seen.len()
    }

    /// The shared crash schedule.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// Drain the mailbox once, driving `app`. Returns the number of
    /// frames answered (cache hits included). While down, arriving mail
    /// is discarded and 0 is returned; once sim time passes the restart
    /// deadline, the process comes back up first.
    pub fn poll(&mut self, app: &mut dyn CrashRecover) -> usize {
        if let Some(until) = self.down_until {
            if self.now() < until {
                while self.endpoint.try_recv().is_some() {}
                return 0;
            }
            // Restart: reply cache from the journal, app state via the
            // application's own replay.
            self.seen.clear();
            if self.persist_replies {
                for (tag, body) in self.journal.records() {
                    if tag == RPC_REPLY_TAG {
                        if let Some((from, id, reply)) = decode_rpc_record(&body) {
                            self.seen.insert((from, id), reply);
                        }
                    }
                }
            }
            app.recover();
            self.restarts += 1;
            self.plan
                .note_restart(&self.name, self.now(), self.seen.len());
            self.down_until = None;
        }
        let mut handled = 0;
        while let Some(m) = self.endpoint.try_recv() {
            let Some((id, body)) = decode_request(&m.payload) else {
                continue;
            };
            let key = (m.from.clone(), id);
            if let Some(cached) = self.seen.get(&key) {
                let _ = self.endpoint.send(&m.from, encode_reply(id, cached));
                handled += 1;
                continue;
            }
            let reply = app.handle(&m.from, id, body);
            if let Some(point) = self.plan.take_pending() {
                // The process died mid-request: no reply, nothing
                // cached; volatile state is gone and unread mail
                // evaporates with the mailbox.
                let t = self.now();
                self.plan.note_crash(&self.name, &point, t);
                app.crash();
                self.down_until = Some(t + self.plan.restart_delay());
                while self.endpoint.try_recv().is_some() {}
                return handled;
            }
            if self.persist_replies {
                // Write-ahead: the reply is durable before it is sent.
                let _ = self
                    .journal
                    .append(RPC_REPLY_TAG, &encode_rpc_record(&m.from, id, &reply));
            }
            self.seen.insert(key, reply.clone());
            let _ = self.endpoint.send(&m.from, encode_reply(id, &reply));
            handled += 1;
        }
        handled
    }
}

// ---------------------------------------------------------------------------
// Credential-lifetime fault layer
// ---------------------------------------------------------------------------

/// A seeded source of credential-lifetime faults: clock-skewed issuers,
/// near-zero proxy lifetimes, and staggered renewal-storm scheduling —
/// all drawn from one [`DetRng`] so a scenario's entire lifetime-fault
/// surface replays byte-identically per seed.
///
/// The knobs model the three ways real grids corrupt credential
/// lifetime: an issuer whose wall clock is wrong (proxies born in the
/// future or already stale), an operator or tool that requests an
/// absurdly short lifetime, and a portal population whose sign-on
/// times (and therefore renewal deadlines) pile up into waves.
pub struct LifetimeFaults {
    rng: DetRng,
    /// Maximum issuer clock skew in either direction, sim-seconds.
    skew_max: u64,
    /// Per-mille of draws that yield a near-zero lifetime.
    short_permille: u64,
    /// The "near-zero" lifetime range upper bound, sim-seconds.
    short_max: u64,
    skewed: u64,
    shortened: u64,
}

impl LifetimeFaults {
    /// A seeded injector with the default fault mix: issuer skew up to
    /// ±`skew_max`, and `short_permille`‰ of lifetimes collapsed into
    /// `1..=short_max` sim-seconds.
    pub fn seeded(seed: u64, skew_max: u64, short_permille: u64, short_max: u64) -> Self {
        LifetimeFaults {
            rng: DetRng::seed_from_u64(seed ^ 0x4C49_4645_5449_4D45), // "LIFETIME"
            skew_max,
            short_permille,
            short_max: short_max.max(1),
            skewed: 0,
            shortened: 0,
        }
    }

    /// An injector that never perturbs anything (still burns rng draws
    /// identically, so a scenario can flip faults on without shifting
    /// every later draw).
    pub fn disabled(seed: u64) -> Self {
        Self::seeded(seed, 0, 0, 1)
    }

    /// An issuer's view of `now`: true time plus a seeded skew in
    /// `[-skew_max, +skew_max]`. Zero-skew configs return `now`.
    pub fn issuer_now(&mut self, now: u64) -> u64 {
        let draw = self.rng.next_u64();
        if self.skew_max == 0 {
            return now;
        }
        let magnitude = draw % (self.skew_max + 1);
        let backwards = draw & (1 << 63) != 0;
        if magnitude > 0 {
            self.skewed += 1;
        }
        if backwards {
            now.saturating_sub(magnitude)
        } else {
            now.saturating_add(magnitude)
        }
    }

    /// A possibly-faulted lifetime: usually `nominal`, but
    /// `short_permille`‰ of draws collapse to `1..=short_max` — the
    /// near-zero lifetimes that force immediate renewal churn.
    pub fn lifetime(&mut self, nominal: u64) -> u64 {
        let draw = self.rng.next_u64();
        if self.short_permille > 0 && draw % 1000 < self.short_permille {
            self.shortened += 1;
            1 + (draw >> 10) % self.short_max
        } else {
            nominal
        }
    }

    /// A renewal-storm offset in `[0, spread)`: where in the storm
    /// window this principal signs on (and therefore when its renewals
    /// come due). `spread == 0` returns 0.
    pub fn storm_offset(&mut self, spread: u64) -> u64 {
        let draw = self.rng.next_u64();
        if spread == 0 {
            0
        } else {
            draw % spread
        }
    }

    /// Draws that actually applied issuer skew.
    pub fn skewed(&self) -> u64 {
        self.skewed
    }

    /// Draws that collapsed a lifetime to near-zero.
    pub fn shortened(&self) -> u64 {
        self.shortened
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::FileMode;

    /// Build a host with the GT2 shape: a privileged, network-facing
    /// gatekeeper; and user processes with credentials.
    fn gt2_host() -> (SimOs, Pid, Pid) {
        let os = SimOs::new();
        os.add_host("h");
        let alice = os.add_account("h", "alice").unwrap();
        let bob = os.add_account("h", "bob").unwrap();
        os.write_file(
            "h",
            "/home/alice/proxy",
            alice,
            FileMode::private(),
            vec![1],
        )
        .unwrap();
        os.write_file("h", "/home/bob/proxy", bob, FileMode::private(), vec![2])
            .unwrap();
        os.write_file(
            "h",
            "/etc/hostkey",
            crate::os::ROOT_UID,
            FileMode::private(),
            vec![3],
        )
        .unwrap();
        let gk = os.spawn_privileged("h", "gatekeeper").unwrap();
        os.mark_network_facing("h", gk).unwrap();
        os.grant_credential("h", gk, "host credential").unwrap();
        let ajob = os.spawn("h", "jobmanager-alice", "alice").unwrap();
        os.grant_credential("h", ajob, "alice delegated proxy")
            .unwrap();
        (os, gk, ajob)
    }

    #[test]
    fn root_compromise_owns_everything() {
        let (os, gk, _) = gt2_host();
        let report = compromise(&os, "h", gk).unwrap();
        assert!(report.full_host_compromise);
        assert_eq!(report.accounts_reachable.len(), 3); // root, alice, bob
        assert_eq!(report.files_readable.len(), 3);
        assert!(report
            .credentials_exposed
            .contains(&"alice delegated proxy".to_string()));
        assert!(report
            .credentials_exposed
            .contains(&"host credential".to_string()));
    }

    #[test]
    fn unprivileged_compromise_is_contained() {
        let (os, _, ajob) = gt2_host();
        let report = compromise(&os, "h", ajob).unwrap();
        assert!(!report.full_host_compromise);
        assert_eq!(report.accounts_reachable, vec!["alice".to_string()]);
        // Can read own proxy, not bob's, not the host key.
        assert!(report
            .files_readable
            .contains(&"/home/alice/proxy".to_string()));
        assert!(!report
            .files_readable
            .contains(&"/home/bob/proxy".to_string()));
        assert!(!report.files_readable.contains(&"/etc/hostkey".to_string()));
        assert_eq!(
            report.credentials_exposed,
            vec!["alice delegated proxy".to_string()]
        );
    }

    #[test]
    fn blast_radius_orders_architectures() {
        let (os, gk, ajob) = gt2_host();
        let privileged = compromise(&os, "h", gk).unwrap();
        let contained = compromise(&os, "h", ajob).unwrap();
        assert!(privileged.blast_radius() > contained.blast_radius());
    }

    #[test]
    fn world_writable_files_count_for_everyone() {
        let (os, _, ajob) = gt2_host();
        os.write_file(
            "h",
            "/tmp/scratch",
            crate::os::ROOT_UID,
            FileMode(
                FileMode::WORLD_READ
                    | FileMode::WORLD_WRITE
                    | FileMode::OWNER_READ
                    | FileMode::OWNER_WRITE,
            ),
            vec![],
        )
        .unwrap();
        let report = compromise(&os, "h", ajob).unwrap();
        assert!(report.files_writable.contains(&"/tmp/scratch".to_string()));
    }

    #[test]
    fn unknown_pid_errors() {
        let (os, _, _) = gt2_host();
        assert!(compromise(&os, "h", 999_999).is_err());
    }

    // -- crash/restart layer ------------------------------------------------

    use crate::clock::SimClock;
    use crate::net::{FaultProfile, Network};
    use crate::rpc::RpcClient;
    use gridsec_util::retry::RetryPolicy;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn journal_on(os: &SimOs) -> Journal {
        os.add_host("jh");
        Journal::open(os.clone(), "jh", "/var/journal/test.wal", ROOT_UID)
    }

    #[test]
    fn journal_survives_handle_loss_and_ignores_torn_tail() {
        let os = SimOs::new();
        let j = journal_on(&os);
        j.append("a", b"one").unwrap();
        j.append("bb", b"two").unwrap();
        drop(j);
        // A fresh handle on the same path sees the same records: the
        // journal is the file, not the process.
        let j2 = Journal::open(os.clone(), "jh", "/var/journal/test.wal", ROOT_UID);
        assert_eq!(
            j2.records(),
            vec![
                ("a".to_string(), b"one".to_vec()),
                ("bb".to_string(), b"two".to_vec())
            ]
        );
        // A torn tail (half an append) parses as if absent.
        os.append_file(
            "jh",
            "/var/journal/test.wal",
            ROOT_UID,
            FileMode::private(),
            &[3, b'c'],
        )
        .unwrap();
        assert_eq!(j2.len(), 2);
    }

    #[test]
    fn crash_plan_is_deterministic_per_seed() {
        let decisions = |seed: u64| -> Vec<bool> {
            let plan = CrashPlan::seeded(seed, 0.3, 1_000, 2);
            (0..64)
                .map(|_| {
                    let fired = plan.fires("p");
                    plan.take_pending();
                    fired
                })
                .collect()
        };
        assert_eq!(decisions(7), decisions(7));
        assert_ne!(decisions(7), decisions(8));
        assert!(decisions(7).iter().any(|&b| b), "0.3 over 64 draws fires");
    }

    #[test]
    fn crash_plan_latches_until_taken_and_respects_budget() {
        let plan = CrashPlan::manual(2);
        plan.arm("a", 2);
        assert!(!plan.fires("a"), "first hit not armed");
        assert!(plan.fires("a"), "second hit armed");
        // Latched: every further point reports the process dying.
        assert!(plan.fires("b"));
        assert_eq!(plan.take_pending().as_deref(), Some("a"));
        assert!(!plan.fires("a"), "hit 3 not armed");

        let capped = CrashPlan::seeded(1, 1.0, 1, 2);
        assert!(capped.fires("x"));
        capped.take_pending();
        assert!(!capped.fires("x"), "budget of one crash is spent");
    }

    /// A durable counter service: `incr` is the side effect; the journal
    /// carries a dedup record per (caller, id) written *before* the
    /// reply, so a crash in any window leaves at most one increment.
    struct CountingApp {
        plan: CrashPlan,
        journal: Journal,
        count: u64,
    }

    impl CrashRecover for CountingApp {
        fn handle(&mut self, from: &str, id: u64, _body: &[u8]) -> Vec<u8> {
            if self.plan.fires("app.exec") {
                return Vec::new();
            }
            let key = format!("{from}:{id}");
            if self
                .journal
                .records()
                .iter()
                .any(|(t, b)| t == "incr" && b == key.as_bytes())
            {
                // Re-execution after a crash that lost the reply record:
                // the side effect already happened.
                return b"ok".to_vec();
            }
            self.count += 1;
            self.journal.append("incr", key.as_bytes()).unwrap();
            if self.plan.fires("app.journaled") {
                return Vec::new();
            }
            b"ok".to_vec()
        }
        fn crash(&mut self) {
            self.count = 0;
        }
        fn recover(&mut self) {
            self.count = self
                .journal
                .records()
                .iter()
                .filter(|(t, _)| t == "incr")
                .count() as u64;
        }
    }

    fn crash_rig(
        plan: CrashPlan,
    ) -> (
        RpcClient,
        Rc<RefCell<CrashableServer>>,
        Rc<RefCell<CountingApp>>,
        SimOs,
    ) {
        let os = SimOs::new();
        os.add_host("svc-host");
        let journal = Journal::open(os.clone(), "svc-host", "/var/journal/count.wal", ROOT_UID);
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock, 0xC0DE, FaultProfile::default());
        let server = Rc::new(RefCell::new(CrashableServer::new(
            net.register("svc"),
            "svc",
            plan.clone(),
            journal.clone(),
            true,
        )));
        let app = Rc::new(RefCell::new(CountingApp {
            plan,
            journal,
            count: 0,
        }));
        let mut client = RpcClient::new(
            net.register("client"),
            "svc",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = server.clone();
        let hook_app = app.clone();
        client.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));
        (client, server, app, os)
    }

    #[test]
    fn crash_before_side_effect_retries_to_exactly_one() {
        let plan = CrashPlan::manual(2);
        plan.arm("app.exec", 1);
        let (mut client, server, app, _os) = crash_rig(plan.clone());
        assert_eq!(client.call(b"incr").unwrap(), b"ok");
        assert_eq!(app.borrow().count, 1, "one increment despite the kill");
        assert_eq!(server.borrow().restarts(), 1);
        assert_eq!(plan.crashes(), 1);
        assert!(plan.transcript()[0].contains("crash svc=svc point=app.exec"));
    }

    #[test]
    fn crash_after_journal_before_reply_does_not_duplicate() {
        let plan = CrashPlan::manual(2);
        plan.arm("app.journaled", 1);
        let (mut client, _server, app, _os) = crash_rig(plan);
        assert_eq!(client.call(b"incr").unwrap(), b"ok");
        // The side effect was journaled, the reply was lost; the
        // retransmission re-executed the handler, which found its own
        // dedup record. Exactly one increment.
        assert_eq!(app.borrow().count, 1);
        assert_eq!(
            app.borrow()
                .journal
                .records()
                .iter()
                .filter(|(t, _)| t == "incr")
                .count(),
            1
        );
    }

    #[test]
    fn reply_cache_rebuilds_from_journal_across_restart() {
        let plan = CrashPlan::manual(2);
        let (mut client, server, app, _os) = crash_rig(plan.clone());
        assert_eq!(client.call(b"incr").unwrap(), b"ok");
        assert_eq!(client.call(b"incr").unwrap(), b"ok");
        assert_eq!(app.borrow().count, 2);
        // Kill on the *third* call, then observe the restart rebuilt
        // the two completed replies from the journal.
        plan.arm("app.exec", 3);
        assert_eq!(client.call(b"incr").unwrap(), b"ok");
        assert_eq!(app.borrow().count, 3);
        assert_eq!(server.borrow().restarts(), 1);
        assert!(
            server.borrow().executed() >= 3,
            "rebuilt replies + new one, got {}",
            server.borrow().executed()
        );
    }

    #[test]
    fn mail_evaporates_while_down_and_client_survives() {
        let plan = CrashPlan::manual(40);
        plan.arm("app.exec", 1);
        let (mut client, server, app, _os) = crash_rig(plan);
        // Long downtime: several retransmissions evaporate before the
        // restart, then the call still completes within the budget.
        assert_eq!(client.call(b"incr").unwrap(), b"ok");
        assert_eq!(app.borrow().count, 1);
        assert_eq!(server.borrow().restarts(), 1);
        assert!(client.stats().retransmissions >= 1);
    }

    #[test]
    fn lifetime_faults_replay_per_seed() {
        let run = |seed: u64| {
            let mut lf = LifetimeFaults::seeded(seed, 600, 300, 50);
            let draws: Vec<(u64, u64, u64)> = (0..64)
                .map(|_| {
                    (
                        lf.issuer_now(10_000),
                        lf.lifetime(3_600),
                        lf.storm_offset(900),
                    )
                })
                .collect();
            (draws, lf.skewed(), lf.shortened())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds diverge");
        let (draws, skewed, shortened) = run(7);
        assert!(skewed > 0, "skew mix actually bit");
        assert!(shortened > 0, "short-lifetime mix actually bit");
        assert!(draws.iter().all(|&(_, l, o)| l >= 1 && o < 900));
        assert!(
            draws.iter().any(|&(n, _, _)| n != 10_000),
            "some issuer clock was skewed"
        );
        assert!(
            draws.iter().any(|&(_, l, _)| l <= 50),
            "some lifetime collapsed to near-zero"
        );
    }

    #[test]
    fn disabled_lifetime_faults_perturb_nothing_but_burn_draws() {
        let mut lf = LifetimeFaults::disabled(7);
        for _ in 0..32 {
            assert_eq!(lf.issuer_now(5_000), 5_000);
            assert_eq!(lf.lifetime(1_234), 1_234);
        }
        assert_eq!(lf.skewed(), 0);
        assert_eq!(lf.shortened(), 0);
    }
}
