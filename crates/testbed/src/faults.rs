//! Compromise injection and blast-radius analysis.
//!
//! The paper argues (§5.2) that GT3 improves security because network
//! services hold no privilege: "GT3 removes all privileges from these
//! services, significantly reducing the impact of compromises". This
//! module makes that claim measurable: [`compromise`] marks a process as
//! attacker-controlled and computes everything the attacker now reaches
//! under the simulated OS's access rules.

use crate::os::{Pid, SimOs, ROOT_UID};
use crate::TestbedError;

/// What an attacker controls after compromising one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompromiseReport {
    /// Host of the compromised process.
    pub host: String,
    /// Compromised process id.
    pub pid: Pid,
    /// Component name (e.g. `"gatekeeper"`, `"MMJFS"`).
    pub process_name: String,
    /// Effective uid at compromise time.
    pub euid: u32,
    /// `true` iff the attacker gains root (full host compromise).
    pub full_host_compromise: bool,
    /// Account names whose resources the attacker can act as.
    pub accounts_reachable: Vec<String>,
    /// File paths the attacker can read.
    pub files_readable: Vec<String>,
    /// File paths the attacker can write.
    pub files_writable: Vec<String>,
    /// Credential labels now exposed (from every reachable process).
    pub credentials_exposed: Vec<String>,
}

impl CompromiseReport {
    /// A scalar "blast radius" for easy comparison across architectures:
    /// reachable accounts + exposed credentials + writable files.
    pub fn blast_radius(&self) -> usize {
        self.accounts_reachable.len() + self.credentials_exposed.len() + self.files_writable.len()
    }
}

/// Compromise `pid` on `host` and compute the blast radius.
///
/// Rules of the model:
/// * euid 0 → attacker owns the host: every account, file, and in-memory
///   credential of every process.
/// * otherwise → the attacker acts as that euid: files readable/writable
///   under the permission bits, credentials held by processes of the same
///   euid, and the single account that euid maps to.
pub fn compromise(os: &SimOs, host: &str, pid: Pid) -> Result<CompromiseReport, TestbedError> {
    let proc = os.process(host, pid)?;
    let euid = proc.euid;
    let all_files = os.files(host)?;
    let all_procs = os.processes(host)?;

    if euid == ROOT_UID {
        let accounts = os.accounts(host)?;
        let files: Vec<String> = all_files.iter().map(|(p, _)| p.clone()).collect();
        let mut creds: Vec<String> = all_procs
            .iter()
            .flat_map(|p| p.credentials.iter().cloned())
            .collect();
        creds.sort();
        return Ok(CompromiseReport {
            host: host.to_string(),
            pid,
            process_name: proc.name,
            euid,
            full_host_compromise: true,
            accounts_reachable: accounts,
            files_readable: files.clone(),
            files_writable: files,
            credentials_exposed: creds,
        });
    }

    let mut files_readable = Vec::new();
    let mut files_writable = Vec::new();
    for (path, f) in &all_files {
        // Re-check via the OS so the permission logic lives in one place.
        if os.read_file(host, path, euid).is_ok() {
            files_readable.push(path.clone());
        }
        if f.mode.writable_by(euid, f.owner) {
            files_writable.push(path.clone());
        }
    }

    let mut creds: Vec<String> = all_procs
        .iter()
        .filter(|p| p.euid == euid)
        .flat_map(|p| p.credentials.iter().cloned())
        .collect();
    creds.sort();

    let accounts_reachable = os
        .account_of_uid(host, euid)?
        .into_iter()
        .collect::<Vec<_>>();

    Ok(CompromiseReport {
        host: host.to_string(),
        pid,
        process_name: proc.name,
        euid,
        full_host_compromise: false,
        accounts_reachable,
        files_readable,
        files_writable,
        credentials_exposed: creds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::FileMode;

    /// Build a host with the GT2 shape: a privileged, network-facing
    /// gatekeeper; and user processes with credentials.
    fn gt2_host() -> (SimOs, Pid, Pid) {
        let os = SimOs::new();
        os.add_host("h");
        let alice = os.add_account("h", "alice").unwrap();
        let bob = os.add_account("h", "bob").unwrap();
        os.write_file(
            "h",
            "/home/alice/proxy",
            alice,
            FileMode::private(),
            vec![1],
        )
        .unwrap();
        os.write_file("h", "/home/bob/proxy", bob, FileMode::private(), vec![2])
            .unwrap();
        os.write_file(
            "h",
            "/etc/hostkey",
            crate::os::ROOT_UID,
            FileMode::private(),
            vec![3],
        )
        .unwrap();
        let gk = os.spawn_privileged("h", "gatekeeper").unwrap();
        os.mark_network_facing("h", gk).unwrap();
        os.grant_credential("h", gk, "host credential").unwrap();
        let ajob = os.spawn("h", "jobmanager-alice", "alice").unwrap();
        os.grant_credential("h", ajob, "alice delegated proxy")
            .unwrap();
        (os, gk, ajob)
    }

    #[test]
    fn root_compromise_owns_everything() {
        let (os, gk, _) = gt2_host();
        let report = compromise(&os, "h", gk).unwrap();
        assert!(report.full_host_compromise);
        assert_eq!(report.accounts_reachable.len(), 3); // root, alice, bob
        assert_eq!(report.files_readable.len(), 3);
        assert!(report
            .credentials_exposed
            .contains(&"alice delegated proxy".to_string()));
        assert!(report
            .credentials_exposed
            .contains(&"host credential".to_string()));
    }

    #[test]
    fn unprivileged_compromise_is_contained() {
        let (os, _, ajob) = gt2_host();
        let report = compromise(&os, "h", ajob).unwrap();
        assert!(!report.full_host_compromise);
        assert_eq!(report.accounts_reachable, vec!["alice".to_string()]);
        // Can read own proxy, not bob's, not the host key.
        assert!(report
            .files_readable
            .contains(&"/home/alice/proxy".to_string()));
        assert!(!report
            .files_readable
            .contains(&"/home/bob/proxy".to_string()));
        assert!(!report.files_readable.contains(&"/etc/hostkey".to_string()));
        assert_eq!(
            report.credentials_exposed,
            vec!["alice delegated proxy".to_string()]
        );
    }

    #[test]
    fn blast_radius_orders_architectures() {
        let (os, gk, ajob) = gt2_host();
        let privileged = compromise(&os, "h", gk).unwrap();
        let contained = compromise(&os, "h", ajob).unwrap();
        assert!(privileged.blast_radius() > contained.blast_radius());
    }

    #[test]
    fn world_writable_files_count_for_everyone() {
        let (os, _, ajob) = gt2_host();
        os.write_file(
            "h",
            "/tmp/scratch",
            crate::os::ROOT_UID,
            FileMode(
                FileMode::WORLD_READ
                    | FileMode::WORLD_WRITE
                    | FileMode::OWNER_READ
                    | FileMode::OWNER_WRITE,
            ),
            vec![],
        )
        .unwrap();
        let report = compromise(&os, "h", ajob).unwrap();
        assert!(report.files_writable.contains(&"/tmp/scratch".to_string()));
    }

    #[test]
    fn unknown_pid_errors() {
        let (os, _, _) = gt2_host();
        assert!(compromise(&os, "h", 999_999).is_err());
    }
}
