//! In-memory network simulation.
//!
//! Two abstractions:
//!
//! * [`Network`] / [`Endpoint`] — datagram-style message passing between
//!   named endpoints, with global byte/message accounting. GT3's
//!   SOAP-based exchanges run over this.
//! * [`StreamPair`] — a pair of connected, blocking byte streams
//!   implementing [`std::io::Read`]/[`std::io::Write`]. GT2's TLS channel
//!   runs over this.
//!
//! The accounting counters feed experiment C1 (bytes on the wire for
//! GT2-TLS vs. GT3-WS-SecureConversation context establishment).
//!
//! # Deterministic fault injection
//!
//! [`Network::enable_faults`] arms a seed-driven fault layer: every
//! message is subject to per-link latency, drop, duplication, and
//! reorder decisions drawn from one [`DetRng`] under a single lock, in
//! send order, so a given `(seed, profile, send sequence)` always
//! produces the same [`Network::transcript`]. Latencies are measured on
//! the shared [`SimClock`]; delayed messages sit in a pending queue
//! until [`Network::pump`] is called with the clock at or past their
//! delivery time. [`Endpoint::recv_timeout`] drives the clock forward
//! itself (pump → try_recv → advance-to-next-event), which is how
//! client retry loops experience timeouts without wall-clock sleeps.
//! [`Network::partition`] severs a host pair bidirectionally until
//! healed. None of this affects a network whose faults were never
//! enabled: the legacy zero-latency direct-delivery path is unchanged.

use crate::clock::SimClock;
use crate::names::{NameId, NameTable};
use crate::TestbedError;
use gridsec_util::channel::{unbounded, Receiver, Sender, TryRecvError};
use gridsec_util::rng::{DetRng, RngCore};
use gridsec_util::sync::Mutex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A network-wide traffic accounting snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Total messages (or stream writes) delivered.
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

#[derive(Default)]
struct Counters {
    messages: AtomicU64,
    bytes: AtomicU64,
    write_attempts: AtomicU64,
    torn_writes: AtomicU64,
    resets_seen: AtomicU64,
}

impl Counters {
    fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
    fn loss(&self) -> LossStats {
        LossStats {
            write_attempts: self.write_attempts.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            resets_seen: self.resets_seen.load(Ordering::Relaxed),
        }
    }
}

/// Per-pair loss accounting across both directions of a stream,
/// observable while the streams are live (the congestion controller in
/// `gridsec-gridftp` reads this per stripe to weigh its decisions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct LossStats {
    /// Writes attempted on either side, including the ones the loss
    /// layer tore (a perfect pair counts these too, with zero tears).
    pub write_attempts: u64,
    /// Writes the seeded loss layer dropped, tearing the connection.
    pub torn_writes: u64,
    /// `Reset` markers observed by a reader (the peer-visible side of a
    /// torn write; at most one per direction per pair).
    pub resets_seen: u64,
}

impl LossStats {
    /// Observed loss rate in permille of attempted writes.
    pub fn loss_permille(&self) -> u64 {
        (self.torn_writes * 1000)
            .checked_div(self.write_attempts)
            .unwrap_or(0)
    }
}

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending endpoint name.
    pub from: String,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Per-link fault knobs. The [`Default`] profile injects nothing, so an
/// armed fault layer with default profile behaves like a perfect
/// network that merely goes through the pending queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a message is duplicated.
    pub duplicate: f64,
    /// Upper bound on extra copies when duplication fires (≥ 1 copy).
    pub max_extra_copies: u32,
    /// Minimum per-message latency in SimClock seconds.
    pub min_latency: u64,
    /// Maximum per-message latency in SimClock seconds (inclusive).
    pub max_latency: u64,
    /// Probability in `[0, 1]` that a message gets extra reorder jitter
    /// on top of its drawn latency.
    pub reorder: f64,
    /// Maximum extra seconds of reorder jitter (inclusive).
    pub reorder_jitter: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            drop: 0.0,
            duplicate: 0.0,
            max_extra_copies: 1,
            min_latency: 0,
            max_latency: 0,
            reorder: 0.0,
            reorder_jitter: 0,
        }
    }
}

impl FaultProfile {
    /// The acceptance-criteria regime from ISSUE 2: 10% drop, 10%
    /// duplication with up to 2 extra copies, 1–4s latency, and a 25%
    /// chance of up to 3s reorder jitter.
    pub fn lossy_wan() -> Self {
        FaultProfile {
            drop: 0.10,
            duplicate: 0.10,
            max_extra_copies: 2,
            min_latency: 1,
            max_latency: 4,
            reorder: 0.25,
            reorder_jitter: 3,
        }
    }
}

/// Counters for what the fault layer did to traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages offered to the fault layer.
    pub sent: u64,
    /// Copies actually delivered to a mailbox.
    pub delivered: u64,
    /// Messages dropped by the loss draw.
    pub dropped: u64,
    /// Extra copies created by the duplication draw.
    pub duplicated: u64,
    /// Messages blocked by an active partition.
    pub blocked: u64,
}

/// One scheduled delivery in the pending queue. Ordered by
/// `(deliver_at, seq)`; `seq` is unique per copy, so the heap order is
/// total and deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct PendingDelivery {
    deliver_at: u64,
    seq: u64,
    from: NameId,
    to: NameId,
    payload: Vec<u8>,
}

struct FaultState {
    clock: SimClock,
    rng: DetRng,
    profile: FaultProfile,
    link_profiles: HashMap<(NameId, NameId), FaultProfile>,
    partitions: HashSet<(NameId, NameId)>,
    pending: BinaryHeap<Reverse<PendingDelivery>>,
    seq: u64,
    transcript: Vec<String>,
    record_transcript: bool,
    stats: FaultStats,
}

impl FaultState {
    fn draw_unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn draw_in(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.rng.next_u64() % (hi - lo + 1)
    }

    fn profile_for(&self, from: NameId, to: NameId) -> FaultProfile {
        self.link_profiles
            .get(&(from, to))
            .copied()
            .unwrap_or(self.profile)
    }

    fn partitioned(&self, a: NameId, b: NameId) -> bool {
        self.partitions.contains(&normalize_pair(a, b))
    }

    /// One scheduled arrival time: latency draw plus optional reorder
    /// jitter. Draw order is fixed so transcripts replay exactly.
    fn draw_arrival(&mut self, now: u64, prof: &FaultProfile) -> u64 {
        let latency = self.draw_in(prof.min_latency, prof.max_latency);
        let jitter = if self.draw_unit() < prof.reorder {
            self.draw_in(0, prof.reorder_jitter)
        } else {
            0
        };
        now + latency + jitter
    }

    /// Decide the fate of one sent message and queue its copies. The
    /// caller supplies the endpoint names alongside their ids so
    /// transcript lines (when recording is on) need no table lookup.
    fn inject(&mut self, from: NameId, to: NameId, names: (&str, &str), payload: Vec<u8>) {
        self.stats.sent += 1;
        let now = self.clock.now();
        let id = self.stats.sent;
        let len = payload.len();
        let (from_name, to_name) = names;
        let prof = self.profile_for(from, to);

        if self.partitioned(from, to) {
            self.stats.blocked += 1;
            if self.record_transcript {
                self.transcript.push(format!(
                    "[t={now}] #{id} {from_name}->{to_name} {len}B partitioned"
                ));
            }
            return;
        }
        if self.draw_unit() < prof.drop {
            self.stats.dropped += 1;
            if self.record_transcript {
                self.transcript.push(format!(
                    "[t={now}] #{id} {from_name}->{to_name} {len}B drop"
                ));
            }
            return;
        }
        let mut arrivals = vec![self.draw_arrival(now, &prof)];
        if self.draw_unit() < prof.duplicate {
            let extra = self.draw_in(1, u64::from(prof.max_extra_copies.max(1))) as u32;
            self.stats.duplicated += u64::from(extra);
            for _ in 0..extra {
                let t = self.draw_arrival(now, &prof);
                arrivals.push(t);
            }
        }
        if self.record_transcript {
            let times: Vec<String> = arrivals.iter().map(|t| format!("@{t}")).collect();
            self.transcript.push(format!(
                "[t={now}] #{id} {from_name}->{to_name} {len}B deliver{}",
                times.join(",")
            ));
        }
        for deliver_at in arrivals {
            self.seq += 1;
            self.pending.push(Reverse(PendingDelivery {
                deliver_at,
                seq: self.seq,
                from,
                to,
                payload: payload.clone(),
            }));
        }
    }
}

fn normalize_pair(a: NameId, b: NameId) -> (NameId, NameId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A named message network.
#[derive(Clone, Default)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

#[derive(Default)]
struct NetworkInner {
    names: Mutex<NameTable>,
    endpoints: Mutex<HashMap<NameId, Sender<Message>>>,
    counters: Counters,
    faults: Mutex<Option<FaultState>>,
    wakes: Mutex<WakeLog>,
}

/// Delivery notifications for the discrete-event scheduler
/// ([`crate::sched`]): when enabled, every successful mailbox delivery
/// appends the recipient's interned id, in delivery order, so the
/// scheduler can wake the task waiting on that mailbox without polling
/// every endpoint. Disabled by default so non-scheduled networks pay
/// nothing and accumulate nothing.
#[derive(Default)]
struct WakeLog {
    enabled: bool,
    ids: Vec<NameId>,
}

impl Network {
    /// Create an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Intern `name` in the network's name table, returning its dense
    /// [`NameId`]. Idempotent; the id is valid for the network's
    /// lifetime.
    pub fn intern(&self, name: &str) -> NameId {
        self.inner.names.lock().intern(name)
    }

    /// Look up an already-interned name without interning it.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.inner.names.lock().get(name)
    }

    /// Resolve an interned id back to its name (owned, since the table
    /// lives behind a lock).
    pub fn resolve(&self, id: NameId) -> String {
        self.inner.names.lock().resolve(id).to_string()
    }

    /// Register an endpoint name, returning its handle. Re-registering a
    /// name replaces the previous endpoint: the old handle keeps any mail
    /// already in its mailbox but receives nothing further (its receiver
    /// reports `Disconnected` once drained). Use [`Network::try_register`]
    /// to refuse instead of replace.
    pub fn register(&self, name: &str) -> Endpoint {
        let id = self.intern(name);
        let (tx, rx) = unbounded();
        self.inner.endpoints.lock().insert(id, tx);
        Endpoint {
            name: name.to_string(),
            id,
            network: self.clone(),
            rx,
        }
    }

    /// Register an endpoint name, erroring with
    /// [`TestbedError::EndpointInUse`] if the name is already taken
    /// (instead of silently replacing it as [`Network::register`] does).
    pub fn try_register(&self, name: &str) -> Result<Endpoint, TestbedError> {
        let id = self.intern(name);
        let mut map = self.inner.endpoints.lock();
        if map.contains_key(&id) {
            return Err(TestbedError::EndpointInUse(name.to_string()));
        }
        let (tx, rx) = unbounded();
        map.insert(id, tx);
        drop(map);
        Ok(Endpoint {
            name: name.to_string(),
            id,
            network: self.clone(),
            rx,
        })
    }

    /// Remove an endpoint (its receiver starts reporting `Disconnected`).
    pub fn unregister(&self, name: &str) {
        if let Some(id) = self.lookup(name) {
            self.inner.endpoints.lock().remove(&id);
        }
    }

    /// `true` iff an endpoint with this name is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        match self.lookup(name) {
            Some(id) => self.inner.endpoints.lock().contains_key(&id),
            None => false,
        }
    }

    /// Arm the deterministic fault layer. All subsequent sends draw
    /// their fate (drop/duplicate/latency/reorder) from a [`DetRng`]
    /// seeded with `seed`; latencies are scheduled on `clock` and
    /// delivered by [`Network::pump`]. Calling this again resets the
    /// fault state (fresh RNG, empty queue, empty transcript).
    pub fn enable_faults(&self, clock: SimClock, seed: u64, profile: FaultProfile) {
        *self.inner.faults.lock() = Some(FaultState {
            clock,
            rng: DetRng::seed_from_u64(seed),
            profile,
            link_profiles: HashMap::new(),
            partitions: HashSet::new(),
            pending: BinaryHeap::new(),
            seq: 0,
            transcript: Vec::new(),
            record_transcript: true,
            stats: FaultStats::default(),
        });
    }

    /// Turn fault-transcript recording on or off. Storm-scale runs
    /// (hundreds of thousands of endpoints, millions of sends) disable
    /// it: one formatted line per send would dominate memory, and those
    /// runs assert determinism on the metrics snapshot instead. Fault
    /// *decisions* (RNG draws, stats) are unaffected, so a run is
    /// byte-identical per seed whether or not the transcript is kept.
    pub fn set_transcript_recording(&self, on: bool) {
        if let Some(fs) = self.inner.faults.lock().as_mut() {
            fs.record_transcript = on;
        }
    }

    /// Start recording delivery notifications for [`Network::take_wakes`].
    pub fn enable_wake_log(&self) {
        self.inner.wakes.lock().enabled = true;
    }

    /// Drain the delivery notification log: the interned ids of
    /// endpoints that received mail since the last call, in delivery
    /// order. Empty unless [`Network::enable_wake_log`] was called.
    pub fn take_wakes(&self) -> Vec<NameId> {
        std::mem::take(&mut self.inner.wakes.lock().ids)
    }

    /// Append a synthetic delivery notification for `id`, exactly as if
    /// a message had just been delivered to that mailbox. This is how
    /// non-datagram wake sources (e.g. a [`SimStream`] becoming
    /// readable, see [`SimStream::wake_on_readable`]) reach a scheduler
    /// task parked in `WaitMail`.
    pub fn notify_wake(&self, id: NameId) {
        self.record_delivery(id);
    }

    fn record_delivery(&self, to: NameId) {
        let mut log = self.inner.wakes.lock();
        if log.enabled {
            log.ids.push(to);
        }
    }

    /// `true` iff [`Network::enable_faults`] has armed the fault layer.
    pub fn faults_enabled(&self) -> bool {
        self.inner.faults.lock().is_some()
    }

    /// The clock the fault layer schedules on, if armed.
    pub fn fault_clock(&self) -> Option<SimClock> {
        self.inner.faults.lock().as_ref().map(|f| f.clock.clone())
    }

    /// Override the fault profile for one directed link `from -> to`.
    pub fn set_link_profile(&self, from: &str, to: &str, profile: FaultProfile) {
        let key = (self.intern(from), self.intern(to));
        if let Some(fs) = self.inner.faults.lock().as_mut() {
            fs.link_profiles.insert(key, profile);
        }
    }

    /// Sever the pair `(a, b)` in both directions. Messages sent across
    /// an active partition are blocked (counted in
    /// [`FaultStats::blocked`]); copies already in flight still arrive.
    pub fn partition(&self, a: &str, b: &str) {
        let key = normalize_pair(self.intern(a), self.intern(b));
        if let Some(fs) = self.inner.faults.lock().as_mut() {
            fs.partitions.insert(key);
        }
    }

    /// Heal the partition between `a` and `b`, if any.
    pub fn heal(&self, a: &str, b: &str) {
        let key = normalize_pair(self.intern(a), self.intern(b));
        if let Some(fs) = self.inner.faults.lock().as_mut() {
            fs.partitions.remove(&key);
        }
    }

    /// Heal all partitions.
    pub fn heal_all(&self) {
        if let Some(fs) = self.inner.faults.lock().as_mut() {
            fs.partitions.clear();
        }
    }

    /// Deliver every pending copy whose scheduled time is at or before
    /// the fault clock's now. Returns the number of copies delivered.
    /// A no-op (returning 0) when faults are not armed.
    pub fn pump(&self) -> usize {
        let mut delivered = 0;
        loop {
            // Pop one due entry under the fault lock, then deliver it
            // with only the endpoints lock held (fixed faults→endpoints
            // order; never both across a call boundary).
            let entry = {
                let mut guard = self.inner.faults.lock();
                let fs = match guard.as_mut() {
                    Some(fs) => fs,
                    None => return delivered,
                };
                let now = fs.clock.now();
                match fs.pending.peek() {
                    Some(Reverse(head)) if head.deliver_at <= now => {
                        let Reverse(e) = fs.pending.pop().expect("peeked");
                        e
                    }
                    _ => return delivered,
                }
            };
            let tx = self.inner.endpoints.lock().get(&entry.to).cloned();
            let ok = match tx {
                Some(tx) => {
                    self.inner.counters.record(entry.payload.len());
                    tx.send(Message {
                        from: self.resolve(entry.from),
                        payload: entry.payload,
                    })
                    .is_ok()
                }
                // Destination vanished between send and delivery: the
                // copy evaporates, like packets to a dead host.
                None => false,
            };
            if ok {
                self.record_delivery(entry.to);
            }
            let mut guard = self.inner.faults.lock();
            if let Some(fs) = guard.as_mut() {
                if ok {
                    fs.stats.delivered += 1;
                    delivered += 1;
                } else {
                    fs.stats.dropped += 1;
                }
            }
        }
    }

    /// Scheduled time of the earliest pending delivery, if any.
    pub fn next_event_at(&self) -> Option<u64> {
        self.inner
            .faults
            .lock()
            .as_ref()
            .and_then(|fs| fs.pending.peek().map(|Reverse(e)| e.deliver_at))
    }

    /// The fault event transcript so far: one line per send decision,
    /// in send order. Byte-identical across runs with the same seed,
    /// profile, and send sequence — the chaos suite's replay check.
    pub fn transcript(&self) -> Vec<String> {
        self.inner
            .faults
            .lock()
            .as_ref()
            .map(|fs| fs.transcript.clone())
            .unwrap_or_default()
    }

    /// Fault-layer counters, if armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.inner.faults.lock().as_ref().map(|fs| fs.stats)
    }

    fn send(
        &self,
        from: NameId,
        from_name: &str,
        to: &str,
        payload: Vec<u8>,
    ) -> Result<(), TestbedError> {
        let to_id = self
            .lookup(to)
            .ok_or_else(|| TestbedError::NoSuchEndpoint(to.to_string()))?;
        {
            let map = self.inner.endpoints.lock();
            if !map.contains_key(&to_id) {
                return Err(TestbedError::NoSuchEndpoint(to.to_string()));
            }
        }
        {
            let mut guard = self.inner.faults.lock();
            if let Some(fs) = guard.as_mut() {
                fs.inject(from, to_id, (from_name, to), payload);
                drop(guard);
                // Zero-latency copies may already be due.
                self.pump();
                return Ok(());
            }
        }
        let tx = {
            let map = self.inner.endpoints.lock();
            map.get(&to_id)
                .cloned()
                .ok_or_else(|| TestbedError::NoSuchEndpoint(to.to_string()))?
        };
        self.inner.counters.record(payload.len());
        tx.send(Message {
            from: from_name.to_string(),
            payload,
        })
        .map_err(|_| TestbedError::Disconnected)?;
        self.record_delivery(to_id);
        Ok(())
    }

    /// Traffic accounting since creation.
    pub fn stats(&self) -> TrafficStats {
        self.inner.counters.snapshot()
    }
}

/// A registered endpoint: can send to any name and receive its own mail.
pub struct Endpoint {
    name: String,
    id: NameId,
    network: Network,
    rx: Receiver<Message>,
}

impl Endpoint {
    /// This endpoint's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This endpoint's interned id in the network's name table.
    pub fn id(&self) -> NameId {
        self.id
    }

    /// The network this endpoint is registered on.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Send `payload` to endpoint `to`.
    pub fn send(&self, to: &str, payload: Vec<u8>) -> Result<(), TestbedError> {
        self.network.send(self.id, &self.name, to, payload)
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Message, TestbedError> {
        self.rx.recv().map_err(|_| TestbedError::Disconnected)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Receive with a timeout of `timeout` SimClock seconds.
    ///
    /// With the fault layer armed this is the single-threaded event
    /// loop: pump due deliveries, poll the mailbox, then advance the
    /// shared clock to the earlier of the next scheduled delivery and
    /// the deadline; at the deadline it returns
    /// [`TestbedError::Timeout`]. Without faults there is no simulated
    /// latency — anything sent is already in the mailbox — so this
    /// returns immediately (mail or `Timeout`).
    pub fn recv_timeout(&self, timeout: u64) -> Result<Message, TestbedError> {
        let clock = match self.network.fault_clock() {
            Some(c) => c,
            None => return self.try_recv().ok_or(TestbedError::Timeout),
        };
        let deadline = clock.now().saturating_add(timeout);
        loop {
            self.network.pump();
            if let Some(m) = self.try_recv() {
                return Ok(m);
            }
            let now = clock.now();
            if now >= deadline {
                return Err(TestbedError::Timeout);
            }
            let next = self
                .network
                .next_event_at()
                .map(|t| t.clamp(now + 1, deadline))
                .unwrap_or(deadline);
            clock.set(next);
        }
    }

    /// Send a request and block for the next message (simple RPC idiom for
    /// single-threaded scenarios where the callee answers synchronously).
    pub fn call(&self, to: &str, payload: Vec<u8>) -> Result<Message, TestbedError> {
        self.send(to, payload)?;
        self.recv()
    }
}

/// A chunk on one direction of a stream: payload bytes, or a simulated
/// connection reset injected by the loss layer.
enum Chunk {
    Data(Vec<u8>),
    Reset,
}

/// Seeded write-side loss for one stream direction.
struct StreamFault {
    rng: DetRng,
    drop: f64,
}

/// A readable-side wake registration, shared by both halves of one
/// stream direction: the reader installs `(network, mailbox id)` via
/// [`SimStream::wake_on_readable`]; the writer notifies it after every
/// chunk (and on drop) so a scheduler task parked in `WaitMail` wakes
/// when bytes — or EOF — become observable.
type WakeSlot = Arc<Mutex<Option<(Network, NameId)>>>;

/// One direction of a byte stream.
struct StreamHalf {
    tx: Sender<Chunk>,
    rx: Receiver<Chunk>,
    read_buf: Vec<u8>,
    read_pos: usize,
    counters: Arc<Counters>,
    fault: Option<StreamFault>,
    dead: bool,
    /// Wake slot for *this* half's read direction (we are the reader).
    read_wake: WakeSlot,
    /// Wake slot for the peer's read direction (we are the writer).
    write_wake: WakeSlot,
}

/// A connected, blocking, in-memory byte stream (one side of a pair).
///
/// Two read disciplines coexist:
///
/// * **Blocking** ([`Read::read`]) — parks on the channel until the
///   peer writes, as a real socket would. If a *stream pump* is
///   installed on the current thread ([`with_stream_pump`]), an empty
///   channel instead drives the pump (typically
///   [`Scheduler::pump`](crate::sched::Scheduler::pump)) until data
///   appears or the pump reports quiescence — which is how blocking
///   client code talks to a peer that is a scheduler task on the *same*
///   thread without deadlocking.
/// * **Non-blocking** ([`SimStream::try_read`]) — for scheduler tasks
///   themselves, which must never park; they return
///   [`Step::WaitMail`](crate::sched::Step::WaitMail) and rely on
///   [`SimStream::wake_on_readable`] notifications instead.
pub struct SimStream {
    half: StreamHalf,
}

std::thread_local! {
    /// Stack of installed stream pumps for this thread (innermost last).
    static STREAM_PUMPS: RefCell<Vec<Box<dyn FnMut() -> usize>>> = RefCell::new(Vec::new());
}

/// Install `pump` as the stream pump for the current thread while `f`
/// runs. A blocking [`SimStream`] read that finds its channel empty
/// calls the pump in a loop instead of parking; the pump returns the
/// number of task steps it executed, and a return of `0` with still no
/// data means the simulated world is quiescent — the read then fails
/// with `ConnectionReset` ("stalled") rather than deadlocking the
/// thread. Nests: the innermost pump wins.
pub fn with_stream_pump<R>(pump: impl FnMut() -> usize + 'static, f: impl FnOnce() -> R) -> R {
    STREAM_PUMPS.with(|s| s.borrow_mut().push(Box::new(pump)));
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            STREAM_PUMPS.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// Run the innermost installed pump once, returning `Some(steps)` or
/// `None` if no pump is installed. The pump is removed from the stack
/// while it runs, so stream reads *inside* pumped tasks fall back to
/// channel blocking (tasks must use [`SimStream::try_read`] anyway).
fn run_stream_pump() -> Option<usize> {
    let mut pump = STREAM_PUMPS.with(|s| s.borrow_mut().pop())?;
    let steps = pump();
    STREAM_PUMPS.with(|s| s.borrow_mut().push(pump));
    Some(steps)
}

/// Create a connected stream pair with shared byte accounting.
pub struct StreamPair;

impl StreamPair {
    /// Create two connected [`SimStream`]s. Bytes written to one can be
    /// read from the other. The returned [`Arc`]d stats reflect all bytes
    /// written on either side.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (SimStream, SimStream, StreamStats) {
        StreamPair::build(None)
    }

    /// Like [`StreamPair::new`], but each write has probability
    /// `drop_rate` of being lost. A TCP stream cannot paper over a lost
    /// segment here (there is no transport-level retransmission in the
    /// sim), so a loss tears the connection down: the writer sees
    /// `ConnectionReset` and the reader sees `ConnectionReset` once it
    /// reaches the tear point. Deterministic per `seed` (each direction
    /// gets an independent stream derived from it). Retry-capable
    /// callers dial a fresh pair per attempt.
    pub fn lossy(seed: u64, drop_rate: f64) -> (SimStream, SimStream, StreamStats) {
        StreamPair::build(Some((seed, drop_rate)))
    }

    fn build(fault: Option<(u64, f64)>) -> (SimStream, SimStream, StreamStats) {
        let (a2b_tx, a2b_rx) = unbounded();
        let (b2a_tx, b2a_rx) = unbounded();
        let counters = Arc::new(Counters::default());
        // One wake slot per direction, shared by its writer and reader.
        let a_reads: WakeSlot = Arc::new(Mutex::new(None));
        let b_reads: WakeSlot = Arc::new(Mutex::new(None));
        let mk_fault = |dir: u64| {
            fault.map(|(seed, drop)| StreamFault {
                rng: DetRng::seed_from_u64(seed ^ dir),
                drop,
            })
        };
        let a = SimStream {
            half: StreamHalf {
                tx: a2b_tx,
                rx: b2a_rx,
                read_buf: Vec::new(),
                read_pos: 0,
                counters: counters.clone(),
                fault: mk_fault(0x05ee_da2b_u64),
                dead: false,
                read_wake: a_reads.clone(),
                write_wake: b_reads.clone(),
            },
        };
        let b = SimStream {
            half: StreamHalf {
                tx: b2a_tx,
                rx: a2b_rx,
                read_buf: Vec::new(),
                read_pos: 0,
                counters: counters.clone(),
                fault: mk_fault(0x05ee_db2a_u64),
                dead: false,
                read_wake: b_reads,
                write_wake: a_reads,
            },
        };
        (a, b, StreamStats { counters })
    }
}

/// Shared traffic statistics for a stream pair.
#[derive(Clone)]
pub struct StreamStats {
    counters: Arc<Counters>,
}

impl StreamStats {
    /// Snapshot of writes/bytes across both directions.
    pub fn snapshot(&self) -> TrafficStats {
        self.counters.snapshot()
    }

    /// Snapshot of loss accounting across both directions: attempted
    /// writes, seeded tears, and observed resets.
    pub fn loss(&self) -> LossStats {
        self.counters.loss()
    }
}

fn reset_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "connection torn by simulated loss",
    )
}

impl SimStream {
    /// Register a wake target for this stream's read direction: every
    /// chunk the peer writes (and the peer's eventual drop) appends a
    /// delivery notification for `mailbox` to `net`'s wake log, exactly
    /// like datagram mail. A scheduler task owning this stream parks
    /// with [`Step::WaitMail`](crate::sched::Step::WaitMail) and is
    /// woken when bytes are observable via [`SimStream::try_read`].
    pub fn wake_on_readable(&self, net: &Network, mailbox: &str) {
        let id = net.intern(mailbox);
        *self.half.read_wake.lock() = Some((net.clone(), id));
    }

    fn notify_peer(&self) {
        if let Some((net, id)) = self.half.write_wake.lock().as_ref() {
            net.notify_wake(*id);
        }
    }

    /// Pull one buffered chunk into the read buffer. `Ok(true)` means
    /// bytes are now available; `Ok(false)` means EOF (peer dropped).
    fn accept_chunk(&mut self, chunk: Result<Chunk, TryRecvError>) -> io::Result<bool> {
        match chunk {
            Ok(Chunk::Data(data)) => {
                self.half.read_buf = data;
                self.half.read_pos = 0;
                Ok(true)
            }
            Ok(Chunk::Reset) => {
                self.half.dead = true;
                self.half
                    .counters
                    .resets_seen
                    .fetch_add(1, Ordering::Relaxed);
                Err(reset_err())
            }
            Err(_) => Ok(false), // EOF: peer dropped
        }
    }

    fn copy_out(&mut self, buf: &mut [u8]) -> usize {
        let available = &self.half.read_buf[self.half.read_pos..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.half.read_pos += n;
        n
    }

    /// Non-blocking read for scheduler tasks. Returns:
    ///
    /// * `Ok(Some(n))` with `n > 0` — bytes copied out.
    /// * `Ok(Some(0))` — EOF: the peer dropped its stream.
    /// * `Ok(None)` — no data *yet*; park in `WaitMail` (with
    ///   [`SimStream::wake_on_readable`] registered) and try again.
    /// * `Err` — the connection was torn by the seeded loss layer.
    pub fn try_read(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        if self.half.dead {
            return Err(reset_err());
        }
        if self.half.read_pos == self.half.read_buf.len() {
            match self.half.rx.try_recv() {
                Err(TryRecvError::Empty) => return Ok(None),
                other => {
                    if !self.accept_chunk(other)? {
                        return Ok(Some(0));
                    }
                }
            }
        }
        Ok(Some(self.copy_out(buf)))
    }
}

impl Drop for SimStream {
    fn drop(&mut self) {
        // The peer's next read sees EOF; wake it so a parked scheduler
        // task observes the close instead of waiting forever.
        self.notify_peer();
    }
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.half.dead {
            return Err(reset_err());
        }
        if self.half.read_pos == self.half.read_buf.len() {
            loop {
                match self.half.rx.try_recv() {
                    Err(TryRecvError::Empty) => match run_stream_pump() {
                        // Pump made progress: the peer task may have
                        // written; poll the channel again.
                        Some(steps) if steps > 0 => continue,
                        // Pump quiescent and still nothing: the peer
                        // will never write. Fail instead of parking a
                        // thread that is also the peer's executor.
                        Some(_) => {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionReset,
                                "stream stalled: scheduler quiescent with no data",
                            ))
                        }
                        // No pump installed: true blocking semantics.
                        None => match self.half.rx.recv() {
                            Ok(chunk) => {
                                if !self.accept_chunk(Ok(chunk))? {
                                    return Ok(0);
                                }
                                break;
                            }
                            Err(_) => return Ok(0), // EOF: peer dropped
                        },
                    },
                    other => {
                        if !self.accept_chunk(other)? {
                            return Ok(0);
                        }
                        break;
                    }
                }
            }
        }
        Ok(self.copy_out(buf))
    }
}

impl Write for SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.half.dead {
            return Err(reset_err());
        }
        self.half
            .counters
            .write_attempts
            .fetch_add(1, Ordering::Relaxed);
        if let Some(f) = &mut self.half.fault {
            let draw = (f.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if draw < f.drop {
                self.half.dead = true;
                self.half
                    .counters
                    .torn_writes
                    .fetch_add(1, Ordering::Relaxed);
                let _ = self.half.tx.send(Chunk::Reset);
                self.notify_peer();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "write lost; connection torn",
                ));
            }
        }
        self.half.counters.record(buf.len());
        self.half
            .tx
            .send(Chunk::Data(buf.to_vec()))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer disconnected"))?;
        self.notify_peer();
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn message_delivery() {
        let net = Network::new();
        let a = net.register("alice");
        let _b = net.register("bob");
        a.send("bob", b"hi".to_vec()).unwrap();
        let b = net.register("bob"); // re-register drops old mailbox
        a.send("bob", b"hi again".to_vec()).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, "alice");
        assert_eq!(m.payload, b"hi again");
    }

    #[test]
    fn reregister_keeps_old_mail_but_disconnects_handle() {
        // The documented replace semantics: the old handle drains what it
        // already had, then reports Disconnected; new mail goes to the
        // replacement only.
        let net = Network::new();
        let a = net.register("alice");
        let old = net.register("bob");
        a.send("bob", b"before".to_vec()).unwrap();
        let new = net.register("bob");
        a.send("bob", b"after".to_vec()).unwrap();
        assert_eq!(old.recv().unwrap().payload, b"before");
        assert_eq!(old.recv(), Err(TestbedError::Disconnected));
        assert_eq!(new.recv().unwrap().payload, b"after");
        assert!(new.try_recv().is_none());
    }

    #[test]
    fn try_register_refuses_duplicates() {
        let net = Network::new();
        let a = net.try_register("alice").unwrap();
        assert_eq!(
            net.try_register("alice").err(),
            Some(TestbedError::EndpointInUse("alice".into()))
        );
        // The original endpoint is untouched by the failed attempt.
        let b = net.register("bob");
        b.send("alice", b"still here".to_vec()).unwrap();
        assert_eq!(a.recv().unwrap().payload, b"still here");
        // After unregister the name is free again.
        net.unregister("alice");
        assert!(net.try_register("alice").is_ok());
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = Network::new();
        let a = net.register("alice");
        assert!(matches!(
            a.send("nobody", vec![]),
            Err(TestbedError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn unregister_disconnects() {
        let net = Network::new();
        let a = net.register("alice");
        net.register("bob");
        net.unregister("bob");
        assert!(!net.is_registered("bob"));
        assert!(a.send("bob", vec![]).is_err());
    }

    #[test]
    fn traffic_accounting() {
        let net = Network::new();
        let a = net.register("alice");
        let b = net.register("bob");
        a.send("bob", vec![0u8; 100]).unwrap();
        a.send("bob", vec![0u8; 50]).unwrap();
        let _ = b.try_recv();
        assert_eq!(
            net.stats(),
            TrafficStats {
                messages: 2,
                bytes: 150
            }
        );
    }

    #[test]
    fn try_recv_nonblocking() {
        let net = Network::new();
        let a = net.register("alice");
        assert!(a.try_recv().is_none());
        let b = net.register("bob");
        a.send("bob", b"x".to_vec()).unwrap();
        assert!(b.try_recv().is_some());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn fault_layer_latency_and_pump() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            1,
            FaultProfile {
                min_latency: 3,
                max_latency: 3,
                ..FaultProfile::default()
            },
        );
        let a = net.register("alice");
        let b = net.register("bob");
        a.send("bob", b"delayed".to_vec()).unwrap();
        assert!(b.try_recv().is_none(), "latency holds the message");
        assert_eq!(net.next_event_at(), Some(3));
        clock.set(3);
        assert_eq!(net.pump(), 1);
        assert_eq!(b.recv().unwrap().payload, b"delayed");
    }

    #[test]
    fn recv_timeout_advances_clock_to_delivery() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            1,
            FaultProfile {
                min_latency: 2,
                max_latency: 2,
                ..FaultProfile::default()
            },
        );
        let a = net.register("alice");
        let b = net.register("bob");
        a.send("bob", b"m".to_vec()).unwrap();
        let m = b.recv_timeout(10).unwrap();
        assert_eq!(m.payload, b"m");
        assert_eq!(clock.now(), 2, "clock advanced exactly to delivery");
        // Nothing further: timeout fires and the clock lands on the deadline.
        assert_eq!(b.recv_timeout(5), Err(TestbedError::Timeout));
        assert_eq!(clock.now(), 7);
    }

    /// Receive outcome plus the clock value observed at return.
    type RecvOutcome = (Result<Vec<u8>, TestbedError>, u64);

    /// Run one receive under the legacy direct path (`recv_timeout`)
    /// and the identical scenario as a scheduler task, returning
    /// `(outcome payload, clock at return)` for each. The scheduler
    /// must be behaviorally indistinguishable from the loop it
    /// generalizes.
    fn legacy_vs_scheduled(
        profile: FaultProfile,
        send: bool,
        timeout: u64,
        pre_advance: u64,
    ) -> (RecvOutcome, RecvOutcome) {
        use crate::sched::{Scheduler, Step, TaskCx};
        use std::cell::RefCell;
        use std::rc::Rc;

        let run_legacy = || {
            let net = Network::new();
            let clock = SimClock::new();
            net.enable_faults(clock.clone(), 11, profile);
            let a = net.register("alice");
            let b = net.register("bob");
            if send {
                a.send("bob", b"m".to_vec()).unwrap();
            }
            clock.advance(pre_advance);
            let deadline = clock.now().saturating_add(timeout);
            let r = match b.recv_timeout(timeout.saturating_sub(pre_advance.min(timeout))) {
                Ok(m) => Ok(m.payload),
                Err(e) => Err(e),
            };
            // recv_timeout takes a relative window; the scenario fixes
            // the absolute deadline so both paths race the same instant.
            let _ = deadline;
            (r, clock.now())
        };
        let run_scheduled = || {
            let net = Network::new();
            let clock = SimClock::new();
            net.enable_faults(clock.clone(), 11, profile);
            let a = net.register("alice");
            let b = net.register("bob");
            if send {
                a.send("bob", b"m".to_vec()).unwrap();
            }
            clock.advance(pre_advance);
            let deadline = clock
                .now()
                .saturating_add(timeout.saturating_sub(pre_advance));
            let mut sched = Scheduler::new(&net);
            type Slot = Rc<RefCell<Option<Result<Vec<u8>, TestbedError>>>>;
            let out: Slot = Rc::new(RefCell::new(None));
            let out2 = out.clone();
            sched.spawn_mailbox("bob", move |cx: &TaskCx| {
                if let Some(m) = b.try_recv() {
                    *out2.borrow_mut() = Some(Ok(m.payload));
                    return Step::Done;
                }
                if cx.now() >= deadline {
                    *out2.borrow_mut() = Some(Err(TestbedError::Timeout));
                    return Step::Done;
                }
                Step::WaitMail {
                    deadline: Some(deadline),
                }
            });
            sched.run();
            let r = out.borrow_mut().take().expect("task reached a verdict");
            (r, clock.now())
        };
        (run_legacy(), run_scheduled())
    }

    #[test]
    fn zero_timeout_identical_under_scheduler_and_legacy_path() {
        // recv_timeout(0): due mail (zero-latency profile) is still
        // returned — the deadline gets one final pump-and-poll — and an
        // empty mailbox times out without moving the clock. Both paths,
        // same verdicts, same clocks.
        let due = FaultProfile::default();
        let (legacy, scheduled) = legacy_vs_scheduled(due, true, 0, 0);
        assert_eq!(legacy.0.as_deref().unwrap(), b"m");
        assert_eq!(legacy, scheduled);
        assert_eq!(legacy.1, 0, "no clock movement for due mail");

        let (legacy, scheduled) = legacy_vs_scheduled(due, false, 0, 0);
        assert_eq!(legacy.0, Err(TestbedError::Timeout));
        assert_eq!(legacy, scheduled);
        assert_eq!(legacy.1, 0, "timeout at t=0 does not advance time");
    }

    #[test]
    fn past_deadline_identical_under_scheduler_and_legacy_path() {
        // The clock has already moved past the whole timeout window
        // before the receiver gets to wait (pre_advance > timeout). The
        // wait must resolve immediately — delivering mail that is
        // already due, or timing out — never hang or move time.
        let latency2 = FaultProfile {
            min_latency: 2,
            max_latency: 2,
            ..FaultProfile::default()
        };
        // Message became due at t=2; receiver shows up at t=7 with an
        // expired window: the final pump still hands over the mail.
        let (legacy, scheduled) = legacy_vs_scheduled(latency2, true, 5, 7);
        assert_eq!(legacy.0.as_deref().unwrap(), b"m");
        assert_eq!(legacy, scheduled);
        assert_eq!(legacy.1, 7, "no further clock movement");
        // No mail at all: immediate timeout at the current time.
        let (legacy, scheduled) = legacy_vs_scheduled(latency2, false, 5, 7);
        assert_eq!(legacy.0, Err(TestbedError::Timeout));
        assert_eq!(legacy, scheduled);
        assert_eq!(legacy.1, 7);
    }

    #[test]
    fn two_tasks_racing_one_delivery_tick_is_deterministic() {
        use crate::sched::{Scheduler, Step, TaskCx};
        use std::cell::RefCell;
        use std::rc::Rc;
        // Two messages to two different waiters, both scheduled for the
        // same delivery tick. Wake order must follow delivery order
        // (pending-queue (deliver_at, seq)), identical across runs, and
        // identical to what the legacy path observes (both messages due
        // at t=3).
        let run = || {
            let net = Network::new();
            let clock = SimClock::new();
            net.enable_faults(
                clock.clone(),
                5,
                FaultProfile {
                    min_latency: 3,
                    max_latency: 3,
                    ..FaultProfile::default()
                },
            );
            let tx = net.register("tx");
            let order: Rc<RefCell<Vec<(String, u64)>>> = Rc::new(RefCell::new(Vec::new()));
            let mut sched = Scheduler::new(&net);
            for name in ["racer-b", "racer-a"] {
                let ep = net.register(name);
                let order = order.clone();
                sched.spawn_mailbox(name, move |cx: &TaskCx| {
                    if let Some(m) = ep.try_recv() {
                        order
                            .borrow_mut()
                            .push((String::from_utf8(m.payload).unwrap(), cx.now()));
                        return Step::Done;
                    }
                    Step::WaitMail { deadline: None }
                });
            }
            // Send b-then-a: delivery order is send order (same tick,
            // ascending seq), regardless of spawn order.
            tx.send("racer-b", b"first-sent".to_vec()).unwrap();
            tx.send("racer-a", b"second-sent".to_vec()).unwrap();
            sched.run();
            let observed = order.borrow().clone();
            observed
        };
        let o1 = run();
        let o2 = run();
        assert_eq!(o1, o2, "same seed, same wake order");
        assert_eq!(
            o1,
            vec![
                ("first-sent".to_string(), 3),
                ("second-sent".to_string(), 3)
            ],
            "both woke on the same tick, in delivery (seq) order"
        );
    }

    #[test]
    fn partition_blocks_until_healed() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock.clone(), 1, FaultProfile::default());
        let a = net.register("alice");
        let b = net.register("bob");
        net.partition("alice", "bob");
        a.send("bob", b"lost".to_vec()).unwrap();
        assert_eq!(b.recv_timeout(5), Err(TestbedError::Timeout));
        net.heal("alice", "bob");
        a.send("bob", b"through".to_vec()).unwrap();
        assert_eq!(b.recv_timeout(5).unwrap().payload, b"through");
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.blocked, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn same_seed_same_transcript() {
        let run = |seed: u64| {
            let net = Network::new();
            let clock = SimClock::new();
            net.enable_faults(clock.clone(), seed, FaultProfile::lossy_wan());
            let a = net.register("alice");
            let b = net.register("bob");
            for i in 0..50u32 {
                a.send("bob", vec![0u8; i as usize % 7 + 1]).unwrap();
                let _ = b.recv_timeout(2);
            }
            (net.transcript(), net.fault_stats().unwrap())
        };
        let (t1, s1) = run(0xC11A05);
        let (t2, s2) = run(0xC11A05);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert!(s1.dropped > 0, "lossy_wan at 50 sends should drop some");
        let (t3, _) = run(0xC11A06);
        assert_ne!(t1, t3, "different seed, different transcript");
    }

    #[test]
    fn duplicates_are_delivered_as_extra_copies() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(
            clock.clone(),
            7,
            FaultProfile {
                duplicate: 1.0,
                max_extra_copies: 2,
                ..FaultProfile::default()
            },
        );
        let a = net.register("alice");
        let b = net.register("bob");
        a.send("bob", b"dup".to_vec()).unwrap();
        net.pump();
        let mut copies = 0;
        while b.try_recv().is_some() {
            copies += 1;
        }
        assert!(copies >= 2, "duplication at p=1.0 yields extra copies");
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.delivered, copies);
        assert_eq!(stats.duplicated, copies - 1);
    }

    #[test]
    fn stream_roundtrip() {
        let (mut a, mut b, stats) = StreamPair::new();
        a.write_all(b"hello stream").unwrap();
        let mut buf = [0u8; 12];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello stream");
        assert_eq!(stats.snapshot().bytes, 12);
    }

    #[test]
    fn stream_bidirectional() {
        let (mut a, mut b, _) = StreamPair::new();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn stream_partial_reads() {
        let (mut a, mut b, _) = StreamPair::new();
        a.write_all(&[1, 2, 3, 4, 5]).unwrap();
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2]);
        let mut rest = [0u8; 3];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(rest, [3, 4, 5]);
    }

    #[test]
    fn stream_eof_on_drop() {
        let (a, mut b, _) = StreamPair::new();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn stream_threads() {
        let (mut a, mut b, _) = StreamPair::new();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            b.write_all(&buf).unwrap();
        });
        a.write_all(b"echo!").unwrap();
        let mut buf = [0u8; 5];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"echo!");
        t.join().unwrap();
    }

    #[test]
    fn lossy_stream_eventually_tears_and_is_deterministic() {
        let run = |seed: u64| {
            let (mut a, mut b, _) = StreamPair::lossy(seed, 0.2);
            let mut survived = 0u32;
            for _ in 0..100 {
                match a.write_all(b"chunk") {
                    Ok(()) => survived += 1,
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                        break;
                    }
                }
            }
            // Reader drains what got through, then sees the reset.
            let mut drained = 0u32;
            let mut buf = [0u8; 5];
            loop {
                match b.read_exact(&mut buf) {
                    Ok(()) => drained += 1,
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                        break;
                    }
                }
            }
            assert_eq!(drained, survived);
            survived
        };
        let s1 = run(42);
        let s2 = run(42);
        assert_eq!(s1, s2, "same seed, same tear point");
        assert!(s1 < 100, "p=0.2 over 100 writes tears the stream");
    }

    #[test]
    fn lossy_stream_zero_rate_behaves_like_new() {
        let (mut a, mut b, stats) = StreamPair::lossy(9, 0.0);
        a.write_all(b"clean").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"clean");
        assert_eq!(stats.snapshot().bytes, 5);
    }

    #[test]
    fn loss_stats_count_attempts_tears_and_resets() {
        // Clean pair: attempts counted, no tears.
        let (mut a, mut b, stats) = StreamPair::new();
        a.write_all(b"x").unwrap();
        b.write_all(b"y").unwrap();
        let loss = stats.loss();
        assert_eq!(loss.write_attempts, 2);
        assert_eq!(loss.torn_writes, 0);
        assert_eq!(loss.loss_permille(), 0);

        // Lossy pair: drive writes until the seeded tear, then read to
        // the reset. The torn write is still an attempt.
        let (mut a, mut b, stats) = StreamPair::lossy(42, 0.2);
        let mut wrote = 0u64;
        loop {
            wrote += 1;
            if a.write_all(b"chunk").is_err() {
                break;
            }
        }
        let mut buf = [0u8; 5];
        while b.read_exact(&mut buf).is_ok() {}
        let loss = stats.loss();
        assert_eq!(loss.write_attempts, wrote);
        assert_eq!(loss.torn_writes, 1);
        assert_eq!(loss.resets_seen, 1);
        assert_eq!(loss.loss_permille(), 1000 / wrote);
    }
}
