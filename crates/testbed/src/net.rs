//! In-memory network simulation.
//!
//! Two abstractions:
//!
//! * [`Network`] / [`Endpoint`] — datagram-style message passing between
//!   named endpoints, with global byte/message accounting. GT3's
//!   SOAP-based exchanges run over this.
//! * [`StreamPair`] — a pair of connected, blocking byte streams
//!   implementing [`std::io::Read`]/[`std::io::Write`]. GT2's TLS channel
//!   runs over this.
//!
//! The accounting counters feed experiment C1 (bytes on the wire for
//! GT2-TLS vs. GT3-WS-SecureConversation context establishment).

use gridsec_util::channel::{unbounded, Receiver, Sender};
use gridsec_util::sync::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::TestbedError;

/// A network-wide traffic accounting snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Total messages (or stream writes) delivered.
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

#[derive(Default)]
struct Counters {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl Counters {
    fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending endpoint name.
    pub from: String,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A named message network.
#[derive(Clone, Default)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

#[derive(Default)]
struct NetworkInner {
    endpoints: Mutex<HashMap<String, Sender<Message>>>,
    counters: Counters,
}

impl Network {
    /// Create an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Register an endpoint name, returning its handle. Re-registering a
    /// name replaces the previous endpoint (the old receiver disconnects).
    pub fn register(&self, name: &str) -> Endpoint {
        let (tx, rx) = unbounded();
        self.inner
            .endpoints
            .lock()
            .insert(name.to_string(), tx);
        Endpoint {
            name: name.to_string(),
            network: self.clone(),
            rx,
        }
    }

    /// Remove an endpoint (its receiver starts reporting `Disconnected`).
    pub fn unregister(&self, name: &str) {
        self.inner.endpoints.lock().remove(name);
    }

    /// `true` iff an endpoint with this name is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.inner.endpoints.lock().contains_key(name)
    }

    fn send(&self, from: &str, to: &str, payload: Vec<u8>) -> Result<(), TestbedError> {
        let tx = {
            let map = self.inner.endpoints.lock();
            map.get(to)
                .cloned()
                .ok_or_else(|| TestbedError::NoSuchEndpoint(to.to_string()))?
        };
        self.inner.counters.record(payload.len());
        tx.send(Message {
            from: from.to_string(),
            payload,
        })
        .map_err(|_| TestbedError::Disconnected)
    }

    /// Traffic accounting since creation.
    pub fn stats(&self) -> TrafficStats {
        self.inner.counters.snapshot()
    }
}

/// A registered endpoint: can send to any name and receive its own mail.
pub struct Endpoint {
    name: String,
    network: Network,
    rx: Receiver<Message>,
}

impl Endpoint {
    /// This endpoint's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Send `payload` to endpoint `to`.
    pub fn send(&self, to: &str, payload: Vec<u8>) -> Result<(), TestbedError> {
        self.network.send(&self.name, to, payload)
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Message, TestbedError> {
        self.rx.recv().map_err(|_| TestbedError::Disconnected)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Send a request and block for the next message (simple RPC idiom for
    /// single-threaded scenarios where the callee answers synchronously).
    pub fn call(&self, to: &str, payload: Vec<u8>) -> Result<Message, TestbedError> {
        self.send(to, payload)?;
        self.recv()
    }
}

/// One direction of a byte stream.
struct StreamHalf {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    read_buf: Vec<u8>,
    read_pos: usize,
    counters: Arc<Counters>,
}

/// A connected, blocking, in-memory byte stream (one side of a pair).
pub struct SimStream {
    half: StreamHalf,
}

/// Create a connected stream pair with shared byte accounting.
pub struct StreamPair;

impl StreamPair {
    /// Create two connected [`SimStream`]s. Bytes written to one can be
    /// read from the other. The returned [`Arc`]d stats reflect all bytes
    /// written on either side.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (SimStream, SimStream, StreamStats) {
        let (a2b_tx, a2b_rx) = unbounded();
        let (b2a_tx, b2a_rx) = unbounded();
        let counters = Arc::new(Counters::default());
        let a = SimStream {
            half: StreamHalf {
                tx: a2b_tx,
                rx: b2a_rx,
                read_buf: Vec::new(),
                read_pos: 0,
                counters: counters.clone(),
            },
        };
        let b = SimStream {
            half: StreamHalf {
                tx: b2a_tx,
                rx: a2b_rx,
                read_buf: Vec::new(),
                read_pos: 0,
                counters: counters.clone(),
            },
        };
        (a, b, StreamStats { counters })
    }
}

/// Shared traffic statistics for a stream pair.
#[derive(Clone)]
pub struct StreamStats {
    counters: Arc<Counters>,
}

impl StreamStats {
    /// Snapshot of writes/bytes across both directions.
    pub fn snapshot(&self) -> TrafficStats {
        self.counters.snapshot()
    }
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.half.read_pos == self.half.read_buf.len() {
            match self.half.rx.recv() {
                Ok(chunk) => {
                    self.half.read_buf = chunk;
                    self.half.read_pos = 0;
                }
                Err(_) => return Ok(0), // EOF: peer dropped
            }
        }
        let available = &self.half.read_buf[self.half.read_pos..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.half.read_pos += n;
        Ok(n)
    }
}

impl Write for SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.half.counters.record(buf.len());
        self.half
            .tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer disconnected"))?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn message_delivery() {
        let net = Network::new();
        let a = net.register("alice");
        let _b = net.register("bob");
        a.send("bob", b"hi".to_vec()).unwrap();
        let b = net.register("bob"); // re-register drops old mailbox
        a.send("bob", b"hi again".to_vec()).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, "alice");
        assert_eq!(m.payload, b"hi again");
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = Network::new();
        let a = net.register("alice");
        assert!(matches!(
            a.send("nobody", vec![]),
            Err(TestbedError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn unregister_disconnects() {
        let net = Network::new();
        let a = net.register("alice");
        net.register("bob");
        net.unregister("bob");
        assert!(!net.is_registered("bob"));
        assert!(a.send("bob", vec![]).is_err());
    }

    #[test]
    fn traffic_accounting() {
        let net = Network::new();
        let a = net.register("alice");
        let b = net.register("bob");
        a.send("bob", vec![0u8; 100]).unwrap();
        a.send("bob", vec![0u8; 50]).unwrap();
        let _ = b.try_recv();
        assert_eq!(
            net.stats(),
            TrafficStats {
                messages: 2,
                bytes: 150
            }
        );
    }

    #[test]
    fn try_recv_nonblocking() {
        let net = Network::new();
        let a = net.register("alice");
        assert!(a.try_recv().is_none());
        let b = net.register("bob");
        a.send("bob", b"x".to_vec()).unwrap();
        assert!(b.try_recv().is_some());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn stream_roundtrip() {
        let (mut a, mut b, stats) = StreamPair::new();
        a.write_all(b"hello stream").unwrap();
        let mut buf = [0u8; 12];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello stream");
        assert_eq!(stats.snapshot().bytes, 12);
    }

    #[test]
    fn stream_bidirectional() {
        let (mut a, mut b, _) = StreamPair::new();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn stream_partial_reads() {
        let (mut a, mut b, _) = StreamPair::new();
        a.write_all(&[1, 2, 3, 4, 5]).unwrap();
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2]);
        let mut rest = [0u8; 3];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(rest, [3, 4, 5]);
    }

    #[test]
    fn stream_eof_on_drop() {
        let (a, mut b, _) = StreamPair::new();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn stream_threads() {
        let (mut a, mut b, _) = StreamPair::new();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            b.write_all(&buf).unwrap();
        });
        a.write_all(b"echo!").unwrap();
        let mut buf = [0u8; 5];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"echo!");
        t.join().unwrap();
    }
}
