//! # gridsec-kerberos
//!
//! A simulated Kerberos 5 realm for the `gridsec` reproduction of
//! *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! The paper's §3 requires GSI to *interoperate with* existing site
//! security: "the Kerberos Certificate Authority (KCA) and SSLK5/PKINIT
//! provide translation from Kerberos to GSI and vice versa". To exercise
//! those gateways (experiment C6 / Figure 3 step 2) we need a working
//! Kerberos substrate — this crate provides one:
//!
//! * [`Kdc`] — a key distribution center with a principal database, AS
//!   exchange (TGT issuance against the client's long-term key) and TGS
//!   exchange (service tickets against a presented TGT + authenticator).
//! * [`Ticket`] — tickets sealed under the target's key with our
//!   ChaCha20-Poly1305 AEAD (playing the role of DES/RC4 in 2003-era
//!   Kerberos).
//! * [`client`] — the client-side state machine: obtain TGT, obtain
//!   service tickets, build authenticators; and the service-side
//!   verification including clock-skew and replay checks.
//!
//! The deliberate contrast with `gridsec-pki` (measured in experiment F1):
//! inter-realm trust here requires *registering a shared key on both
//! KDCs* — the bilateral, administrator-mediated agreement the paper
//! cites as the reason Grid security chose PKI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod kdc;
pub mod messages;
mod pkinit_tests;

pub use kdc::Kdc;
pub use messages::{Authenticator, ServiceTicketReply, TgtReply, Ticket, TicketBody};

/// Errors from Kerberos operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KrbError {
    /// Principal is not registered with the KDC.
    UnknownPrincipal(String),
    /// Decryption or integrity check failed (wrong key or tampering).
    Integrity,
    /// The ticket or authenticator is outside its valid time window.
    Expired {
        /// Time of the check.
        now: u64,
        /// End of validity.
        end_time: u64,
    },
    /// The authenticator timestamp is outside the permitted clock skew.
    ClockSkew {
        /// Server time.
        now: u64,
        /// Authenticator timestamp.
        stamp: u64,
    },
    /// An authenticator was replayed.
    Replay,
    /// Ticket was issued for a different service.
    WrongService {
        /// Service named in the ticket.
        expected: String,
        /// Service that tried to use it.
        got: String,
    },
    /// Structural decode failure.
    Decode(&'static str),
    /// PKINIT: the presented certificate chain was rejected.
    PkiRejected,
    /// PKINIT: no principal mapping for the presented grid identity.
    NoMapping(String),
}

impl core::fmt::Display for KrbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KrbError::UnknownPrincipal(p) => write!(f, "unknown principal: {p}"),
            KrbError::Integrity => write!(f, "integrity check failed"),
            KrbError::Expired { now, end_time } => {
                write!(f, "expired: now={now}, end_time={end_time}")
            }
            KrbError::ClockSkew { now, stamp } => {
                write!(f, "clock skew too large: now={now}, stamp={stamp}")
            }
            KrbError::Replay => write!(f, "authenticator replay detected"),
            KrbError::WrongService { expected, got } => {
                write!(f, "ticket for {expected:?} presented to {got:?}")
            }
            KrbError::Decode(m) => write!(f, "decode error: {m}"),
            KrbError::PkiRejected => write!(f, "PKINIT certificate chain rejected"),
            KrbError::NoMapping(dn) => write!(f, "no principal mapping for {dn}"),
        }
    }
}

impl std::error::Error for KrbError {}

/// Derive a 32-byte long-term key from a password (the Kerberos
/// string-to-key function, simplified to salted SHA-256).
pub fn string_to_key(principal: &str, realm: &str, password: &str) -> [u8; 32] {
    let mut data = Vec::new();
    data.extend_from_slice(realm.as_bytes());
    data.extend_from_slice(b"|");
    data.extend_from_slice(principal.as_bytes());
    data.extend_from_slice(b"|");
    data.extend_from_slice(password.as_bytes());
    gridsec_crypto::sha256::sha256(&data)
}

#[cfg(test)]
mod tests {
    use super::string_to_key;

    #[test]
    fn string_to_key_is_salted() {
        let a = string_to_key("alice", "SITE.A", "pw");
        let b = string_to_key("alice", "SITE.B", "pw");
        let c = string_to_key("bob", "SITE.A", "pw");
        let d = string_to_key("alice", "SITE.A", "other");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, string_to_key("alice", "SITE.A", "pw"));
    }
}
