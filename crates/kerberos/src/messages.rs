//! Kerberos message structures: tickets, authenticators, KDC replies.
//!
//! Encodings reuse the deterministic TLV codec from `gridsec-pki`;
//! encryption is ChaCha20-Poly1305 with a per-message random nonce
//! prepended to the ciphertext.

use crate::KrbError;
use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::aead;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::PkiError;

/// A 32-byte symmetric key.
pub type Key = [u8; 32];

/// Seal a plaintext under `key` with a fresh random nonce; output is
/// `nonce || ciphertext || tag`.
pub fn seal<E: EntropySource>(rng: &mut E, key: &Key, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut nonce = [0u8; 12];
    rng.fill_bytes(&mut nonce);
    let mut out = nonce.to_vec();
    out.extend_from_slice(&aead::seal(key, &nonce, aad, plaintext));
    out
}

/// Open a blob produced by [`seal`].
pub fn open(key: &Key, aad: &[u8], blob: &[u8]) -> Result<Vec<u8>, KrbError> {
    if blob.len() < 12 {
        return Err(KrbError::Decode("sealed blob too short"));
    }
    let nonce: [u8; 12] = blob[..12].try_into().unwrap();
    aead::open(key, &nonce, aad, &blob[12..]).map_err(|_| KrbError::Integrity)
}

fn map_decode(_: PkiError) -> KrbError {
    KrbError::Decode("TLV decode failed")
}

/// The plaintext body of a ticket (encrypted under the target's key).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TicketBody {
    /// Client principal, e.g. `alice`.
    pub client: String,
    /// Client realm.
    pub client_realm: String,
    /// Service principal the ticket is for (e.g. `krbtgt` or `host/fs1`).
    pub service: String,
    /// Session key shared between client and service.
    pub session_key: Key,
    /// Issue time.
    pub auth_time: u64,
    /// Expiry time.
    pub end_time: u64,
}

impl Codec for TicketBody {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.client)
            .put_str(&self.client_realm)
            .put_str(&self.service)
            .put_bytes(&self.session_key)
            .put_u64(self.auth_time)
            .put_u64(self.end_time);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        let client = dec.get_str()?;
        let client_realm = dec.get_str()?;
        let service = dec.get_str()?;
        let key_bytes = dec.get_bytes()?;
        let session_key: Key = key_bytes
            .try_into()
            .map_err(|_| PkiError::Decode("bad session key length"))?;
        Ok(TicketBody {
            client,
            client_realm,
            service,
            session_key,
            auth_time: dec.get_u64()?,
            end_time: dec.get_u64()?,
        })
    }
}

/// A ticket: service name in the clear plus the body sealed under the
/// service's long-term key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ticket {
    /// Service principal (cleartext routing hint).
    pub service: String,
    /// Sealed [`TicketBody`].
    pub enc_body: Vec<u8>,
}

impl Ticket {
    /// Seal a body under the service key.
    pub fn seal_new<E: EntropySource>(rng: &mut E, service_key: &Key, body: &TicketBody) -> Self {
        Ticket {
            service: body.service.clone(),
            enc_body: seal(rng, service_key, b"krb-ticket", &body.to_bytes()),
        }
    }

    /// Decrypt and decode with the service's key.
    pub fn unseal(&self, service_key: &Key) -> Result<TicketBody, KrbError> {
        let plain = open(service_key, b"krb-ticket", &self.enc_body)?;
        TicketBody::from_bytes(&plain).map_err(map_decode)
    }
}

impl Codec for Ticket {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.service).put_bytes(&self.enc_body);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(Ticket {
            service: dec.get_str()?,
            enc_body: dec.get_bytes()?,
        })
    }
}

/// The authenticator a client sends alongside a ticket, sealed under the
/// ticket's session key: proves current possession of the session key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Authenticator {
    /// Client principal (must match the ticket body).
    pub client: String,
    /// Timestamp (checked against clock skew and replay caches).
    pub timestamp: u64,
    /// Random uniquifier for replay detection within one second.
    pub nonce: u64,
}

impl Codec for Authenticator {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.client)
            .put_u64(self.timestamp)
            .put_u64(self.nonce);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(Authenticator {
            client: dec.get_str()?,
            timestamp: dec.get_u64()?,
            nonce: dec.get_u64()?,
        })
    }
}

impl Authenticator {
    /// Seal under a session key.
    pub fn seal_new<E: EntropySource>(&self, rng: &mut E, session_key: &Key) -> Vec<u8> {
        seal(rng, session_key, b"krb-authenticator", &self.to_bytes())
    }

    /// Open with the session key.
    pub fn unseal(session_key: &Key, blob: &[u8]) -> Result<Authenticator, KrbError> {
        let plain = open(session_key, b"krb-authenticator", blob)?;
        Authenticator::from_bytes(&plain).map_err(map_decode)
    }
}

/// The part of a KDC reply the client decrypts: the session key matching
/// the accompanying ticket.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncKdcReplyPart {
    /// Session key for the issued ticket.
    pub session_key: Key,
    /// Service the ticket targets.
    pub service: String,
    /// Ticket expiry.
    pub end_time: u64,
}

impl Codec for EncKdcReplyPart {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.session_key)
            .put_str(&self.service)
            .put_u64(self.end_time);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        let key_bytes = dec.get_bytes()?;
        let session_key: Key = key_bytes
            .try_into()
            .map_err(|_| PkiError::Decode("bad session key length"))?;
        Ok(EncKdcReplyPart {
            session_key,
            service: dec.get_str()?,
            end_time: dec.get_u64()?,
        })
    }
}

/// Reply to an AS exchange: a TGT plus the reply part sealed under the
/// client's long-term key.
#[derive(Clone, Debug)]
pub struct TgtReply {
    /// The ticket-granting ticket (sealed under the KDC's TGS key).
    pub tgt: Ticket,
    /// [`EncKdcReplyPart`] sealed under the client's long-term key.
    pub enc_part: Vec<u8>,
}

/// Reply to a TGS exchange: a service ticket plus the reply part sealed
/// under the TGT session key.
#[derive(Clone, Debug)]
pub struct ServiceTicketReply {
    /// The service ticket (sealed under the service's long-term key).
    pub ticket: Ticket,
    /// [`EncKdcReplyPart`] sealed under the TGT session key.
    pub enc_part: Vec<u8>,
}

pub use EncKdcReplyPart as ReplyPart;

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;

    #[test]
    fn seal_open_roundtrip() {
        let mut rng = ChaChaRng::from_seed_bytes(b"krb seal");
        let key = [7u8; 32];
        let blob = seal(&mut rng, &key, b"ctx", b"payload");
        assert_eq!(open(&key, b"ctx", &blob).unwrap(), b"payload");
        assert!(open(&key, b"other", &blob).is_err());
        assert!(open(&[8u8; 32], b"ctx", &blob).is_err());
    }

    #[test]
    fn seal_uses_fresh_nonces() {
        let mut rng = ChaChaRng::from_seed_bytes(b"krb nonce");
        let key = [7u8; 32];
        let a = seal(&mut rng, &key, b"", b"x");
        let b = seal(&mut rng, &key, b"", b"x");
        assert_ne!(a, b);
    }

    #[test]
    fn ticket_roundtrip() {
        let mut rng = ChaChaRng::from_seed_bytes(b"krb ticket");
        let service_key = [1u8; 32];
        let body = TicketBody {
            client: "alice".into(),
            client_realm: "SITE.A".into(),
            service: "host/fs1".into(),
            session_key: [9u8; 32],
            auth_time: 100,
            end_time: 200,
        };
        let t = Ticket::seal_new(&mut rng, &service_key, &body);
        assert_eq!(t.service, "host/fs1");
        assert_eq!(t.unseal(&service_key).unwrap(), body);
        assert_eq!(t.unseal(&[2u8; 32]).unwrap_err(), KrbError::Integrity);
    }

    #[test]
    fn ticket_codec_roundtrip() {
        let mut rng = ChaChaRng::from_seed_bytes(b"krb codec");
        let body = TicketBody {
            client: "alice".into(),
            client_realm: "SITE.A".into(),
            service: "krbtgt".into(),
            session_key: [3u8; 32],
            auth_time: 1,
            end_time: 2,
        };
        let t = Ticket::seal_new(&mut rng, &[1u8; 32], &body);
        let decoded = Ticket::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn authenticator_roundtrip() {
        let mut rng = ChaChaRng::from_seed_bytes(b"krb auth");
        let key = [5u8; 32];
        let a = Authenticator {
            client: "alice".into(),
            timestamp: 1234,
            nonce: 42,
        };
        let blob = a.seal_new(&mut rng, &key);
        assert_eq!(Authenticator::unseal(&key, &blob).unwrap(), a);
        assert!(Authenticator::unseal(&[6u8; 32], &blob).is_err());
    }

    #[test]
    fn bad_session_key_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[1, 2, 3]).put_str("svc").put_u64(9);
        assert!(EncKdcReplyPart::from_bytes(&enc.finish()).is_err());
    }
}
