//! Client- and service-side Kerberos operations.
//!
//! [`KrbClient`] drives AS/TGS exchanges; [`ServiceVerifier`] is the
//! accepting side (a keytab-holding service) with clock-skew and replay
//! enforcement.

use crate::messages::{
    open, Authenticator, EncKdcReplyPart, Key, ServiceTicketReply, TgtReply, Ticket,
};
use crate::{string_to_key, KrbError};
use gridsec_bignum::prime::EntropySource;
use gridsec_pki::encoding::Codec;
use gridsec_util::sync::Mutex;
use std::collections::HashSet;

/// A Kerberos client: principal name plus the password-derived key.
pub struct KrbClient {
    /// Client principal.
    pub principal: String,
    /// Client realm.
    pub realm: String,
    key: Key,
}

impl KrbClient {
    /// Derive the long-term key from a password.
    pub fn from_password(principal: &str, realm: &str, password: &str) -> Self {
        KrbClient {
            principal: principal.to_string(),
            realm: realm.to_string(),
            key: string_to_key(principal, realm, password),
        }
    }

    /// Decrypt an AS reply; returns the TGT and the session-key part.
    /// Failure means the password was wrong (or the reply was forged).
    pub fn open_tgt_reply(&self, reply: &TgtReply) -> Result<(Ticket, EncKdcReplyPart), KrbError> {
        let plain = open(&self.key, b"krb-as-rep", &reply.enc_part)?;
        let part =
            EncKdcReplyPart::from_bytes(&plain).map_err(|_| KrbError::Decode("AS reply part"))?;
        Ok((reply.tgt.clone(), part))
    }

    /// Decrypt a TGS reply using the TGT session key.
    pub fn open_service_reply(
        &self,
        tgt_session_key: &Key,
        reply: &ServiceTicketReply,
    ) -> Result<EncKdcReplyPart, KrbError> {
        let plain = open(tgt_session_key, b"krb-tgs-rep", &reply.enc_part)?;
        EncKdcReplyPart::from_bytes(&plain).map_err(|_| KrbError::Decode("TGS reply part"))
    }

    /// Build a sealed authenticator for a given session key at `now`.
    pub fn make_authenticator<E: EntropySource>(
        &self,
        rng: &mut E,
        session_key: &Key,
        now: u64,
    ) -> Vec<u8> {
        let mut nonce_bytes = [0u8; 8];
        rng.fill_bytes(&mut nonce_bytes);
        Authenticator {
            client: self.principal.clone(),
            timestamp: now,
            nonce: u64::from_be_bytes(nonce_bytes),
        }
        .seal_new(rng, session_key)
    }
}

/// The accepting side of Kerberos AP exchange: a service with a keytab
/// key, enforcing skew and replay rules.
pub struct ServiceVerifier {
    /// The service principal this verifier accepts tickets for.
    pub service: String,
    key: Key,
    max_skew: u64,
    seen: Mutex<HashSet<(String, u64, u64)>>,
}

/// Result of accepting a client: the authenticated principal and the
/// session key for subsequent message protection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcceptedClient {
    /// Authenticated client principal.
    pub client: String,
    /// Client's home realm.
    pub client_realm: String,
    /// Session key shared with the client.
    pub session_key: Key,
    /// Ticket expiry.
    pub end_time: u64,
}

impl ServiceVerifier {
    /// Create a verifier holding the service's keytab key.
    pub fn new(service: &str, key: Key) -> Self {
        ServiceVerifier {
            service: service.to_string(),
            key,
            max_skew: 300,
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// Verify a ticket + authenticator pair (the AP-REQ).
    pub fn accept(
        &self,
        ticket: &Ticket,
        authenticator_blob: &[u8],
        now: u64,
    ) -> Result<AcceptedClient, KrbError> {
        let body = ticket.unseal(&self.key)?;
        if body.service != self.service {
            return Err(KrbError::WrongService {
                expected: body.service,
                got: self.service.clone(),
            });
        }
        if now > body.end_time {
            return Err(KrbError::Expired {
                now,
                end_time: body.end_time,
            });
        }
        let auth = Authenticator::unseal(&body.session_key, authenticator_blob)?;
        if auth.client != body.client {
            return Err(KrbError::Integrity);
        }
        if auth.timestamp.abs_diff(now) > self.max_skew {
            return Err(KrbError::ClockSkew {
                now,
                stamp: auth.timestamp,
            });
        }
        // Replay cache keyed on (client, timestamp, nonce).
        let replay_key = (auth.client.clone(), auth.timestamp, auth.nonce);
        if !self.seen.lock().insert(replay_key) {
            return Err(KrbError::Replay);
        }
        Ok(AcceptedClient {
            client: body.client,
            client_realm: body.client_realm,
            session_key: body.session_key,
            end_time: body.end_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdc::Kdc;
    use gridsec_crypto::rng::ChaChaRng;

    struct Flow {
        rng: ChaChaRng,
        kdc: Kdc,
        client: KrbClient,
        verifier: ServiceVerifier,
    }

    fn flow() -> Flow {
        let mut rng = ChaChaRng::from_seed_bytes(b"client tests");
        let kdc = Kdc::new(&mut rng, "SITE.A", 36_000);
        kdc.add_principal("alice", "pw");
        let svc_key = kdc.add_service(&mut rng, "host/fs1");
        Flow {
            rng,
            kdc,
            client: KrbClient::from_password("alice", "SITE.A", "pw"),
            verifier: ServiceVerifier::new("host/fs1", svc_key),
        }
    }

    fn get_service_ticket(f: &mut Flow, now: u64) -> (Ticket, Key) {
        let tgt_reply = f.kdc.as_exchange(&mut f.rng, "alice", now, 10_000).unwrap();
        let (tgt, tgt_part) = f.client.open_tgt_reply(&tgt_reply).unwrap();
        let auth = f
            .client
            .make_authenticator(&mut f.rng, &tgt_part.session_key, now);
        let st = f
            .kdc
            .tgs_exchange(&mut f.rng, &tgt, &auth, "host/fs1", now, 5000)
            .unwrap();
        let part = f
            .client
            .open_service_reply(&tgt_part.session_key, &st)
            .unwrap();
        (st.ticket, part.session_key)
    }

    #[test]
    fn ap_exchange_end_to_end() {
        let mut f = flow();
        let (ticket, session_key) = get_service_ticket(&mut f, 100);
        let auth = f.client.make_authenticator(&mut f.rng, &session_key, 110);
        let accepted = f.verifier.accept(&ticket, &auth, 120).unwrap();
        assert_eq!(accepted.client, "alice");
        assert_eq!(accepted.client_realm, "SITE.A");
        assert_eq!(accepted.session_key, session_key);
    }

    #[test]
    fn replayed_authenticator_rejected() {
        let mut f = flow();
        let (ticket, session_key) = get_service_ticket(&mut f, 100);
        let auth = f.client.make_authenticator(&mut f.rng, &session_key, 110);
        assert!(f.verifier.accept(&ticket, &auth, 120).is_ok());
        assert_eq!(
            f.verifier.accept(&ticket, &auth, 121).unwrap_err(),
            KrbError::Replay
        );
        // A fresh authenticator still works.
        let auth2 = f.client.make_authenticator(&mut f.rng, &session_key, 130);
        assert!(f.verifier.accept(&ticket, &auth2, 135).is_ok());
    }

    #[test]
    fn expired_ticket_rejected_by_service() {
        let mut f = flow();
        let (ticket, session_key) = get_service_ticket(&mut f, 100);
        let auth = f
            .client
            .make_authenticator(&mut f.rng, &session_key, 100_000);
        assert!(matches!(
            f.verifier.accept(&ticket, &auth, 100_000),
            Err(KrbError::Expired { .. })
        ));
    }

    #[test]
    fn ticket_for_other_service_rejected() {
        let mut f = flow();
        let other_key = f.kdc.add_service(&mut f.rng, "host/web1");
        let (ticket, session_key) = get_service_ticket(&mut f, 100);
        let other = ServiceVerifier::new("host/web1", other_key);
        let auth = f.client.make_authenticator(&mut f.rng, &session_key, 110);
        // Sealed under fs1's key; web1 can't even open it.
        assert_eq!(
            other.accept(&ticket, &auth, 110).unwrap_err(),
            KrbError::Integrity
        );
    }

    #[test]
    fn skewed_client_clock_rejected() {
        let mut f = flow();
        let (ticket, session_key) = get_service_ticket(&mut f, 100);
        let auth = f.client.make_authenticator(&mut f.rng, &session_key, 2000);
        assert!(matches!(
            f.verifier.accept(&ticket, &auth, 110),
            Err(KrbError::ClockSkew { .. })
        ));
    }

    #[test]
    fn stolen_ticket_without_session_key_useless() {
        let mut f = flow();
        let (ticket, _session_key) = get_service_ticket(&mut f, 100);
        // Attacker has the ticket but not the session key.
        let auth = f.client.make_authenticator(&mut f.rng, &[9u8; 32], 110);
        assert_eq!(
            f.verifier.accept(&ticket, &auth, 110).unwrap_err(),
            KrbError::Integrity
        );
    }
}
