//! The key distribution center: principal database, AS and TGS exchanges,
//! and bilateral cross-realm key registration.

use crate::messages::{
    seal, Authenticator, EncKdcReplyPart, Key, ServiceTicketReply, TgtReply, Ticket, TicketBody,
};
use crate::{string_to_key, KrbError};
use gridsec_bignum::prime::EntropySource;
use gridsec_util::sync::Mutex;
use std::collections::HashMap;

/// Principal name of the ticket-granting service.
pub const TGS_PRINCIPAL: &str = "krbtgt";

/// A simulated Kerberos KDC for one realm.
pub struct Kdc {
    realm: String,
    /// Long-term keys by principal name.
    principals: Mutex<HashMap<String, Key>>,
    /// The TGS key (under which TGTs are sealed).
    tgs_key: Key,
    /// Maximum ticket lifetime the KDC will grant.
    max_life: u64,
}

impl Kdc {
    /// Create a KDC for `realm` with a TGS key derived from `rng`.
    pub fn new<E: EntropySource>(rng: &mut E, realm: &str, max_life: u64) -> Self {
        let mut tgs_key = [0u8; 32];
        rng.fill_bytes(&mut tgs_key);
        let kdc = Kdc {
            realm: realm.to_string(),
            principals: Mutex::new(HashMap::new()),
            tgs_key,
            max_life,
        };
        kdc.principals
            .lock()
            .insert(TGS_PRINCIPAL.to_string(), tgs_key);
        kdc
    }

    /// The realm name.
    pub fn realm(&self) -> &str {
        &self.realm
    }

    /// Register a user principal with a password; returns the derived
    /// long-term key (the client keeps it).
    pub fn add_principal(&self, principal: &str, password: &str) -> Key {
        let key = string_to_key(principal, &self.realm, password);
        self.principals.lock().insert(principal.to_string(), key);
        key
    }

    /// Register a service principal with a random key (a "keytab" entry);
    /// returns the key for the service to hold.
    pub fn add_service<E: EntropySource>(&self, rng: &mut E, service: &str) -> Key {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        self.principals.lock().insert(service.to_string(), key);
        key
    }

    /// Bilateral cross-realm trust: both KDC administrators must install
    /// the same inter-realm key (`krbtgt/OTHER.REALM`). This is the
    /// administrator-mediated step the paper contrasts with unilateral CA
    /// trust; experiment F1 counts these pairwise agreements.
    pub fn register_cross_realm_key(&self, other_realm: &str, key: Key) {
        self.principals
            .lock()
            .insert(format!("{TGS_PRINCIPAL}/{other_realm}"), key);
    }

    fn lookup(&self, principal: &str) -> Result<Key, KrbError> {
        self.principals
            .lock()
            .get(principal)
            .copied()
            .ok_or_else(|| KrbError::UnknownPrincipal(principal.to_string()))
    }

    /// AS exchange: issue a TGT for `client`. In real Kerberos the reply
    /// is only decryptable with the client's password-derived key, which
    /// is how the client is authenticated; we model exactly that.
    pub fn as_exchange<E: EntropySource>(
        &self,
        rng: &mut E,
        client: &str,
        now: u64,
        requested_life: u64,
    ) -> Result<TgtReply, KrbError> {
        let client_key = self.lookup(client)?;
        let mut session_key = [0u8; 32];
        rng.fill_bytes(&mut session_key);
        let end_time = now + requested_life.min(self.max_life);

        let body = TicketBody {
            client: client.to_string(),
            client_realm: self.realm.clone(),
            service: TGS_PRINCIPAL.to_string(),
            session_key,
            auth_time: now,
            end_time,
        };
        let tgt = Ticket::seal_new(rng, &self.tgs_key, &body);
        let reply_part = EncKdcReplyPart {
            session_key,
            service: TGS_PRINCIPAL.to_string(),
            end_time,
        };
        use gridsec_pki::encoding::Codec;
        let enc_part = seal(rng, &client_key, b"krb-as-rep", &reply_part.to_bytes());
        Ok(TgtReply { tgt, enc_part })
    }

    /// PKINIT-style AS exchange (the SSLK5 direction of the paper's §3
    /// gateways): the client authenticates with a *GSI certificate chain*
    /// instead of a password. The chain is validated against `trust`, a
    /// proof-of-possession signature over `nonce` is checked against the
    /// leaf key, the base identity is mapped to a principal, and the
    /// reply key is RSA-encrypted to the client's certificate key.
    ///
    /// Returns `(wrapped_reply_key, TgtReply)`; the client RSA-decrypts
    /// the reply key and uses it to open `enc_part`.
    #[allow(clippy::too_many_arguments)]
    pub fn pkinit_as_exchange<E: EntropySource>(
        &self,
        rng: &mut E,
        chain: &[gridsec_pki::cert::Certificate],
        pop_signature: &[u8],
        nonce: &[u8],
        trust: &gridsec_pki::store::TrustStore,
        principal_map: impl Fn(&gridsec_pki::name::DistinguishedName) -> Option<String>,
        now: u64,
        requested_life: u64,
    ) -> Result<(Vec<u8>, TgtReply), KrbError> {
        use gridsec_pki::validate::validate_chain;
        let identity = validate_chain(chain, trust, now).map_err(|_| KrbError::PkiRejected)?;
        let mut pop_payload = b"pkinit-pop".to_vec();
        pop_payload.extend_from_slice(nonce);
        if !identity
            .public_key
            .verify_pkcs1_sha256(&pop_payload, pop_signature)
        {
            return Err(KrbError::PkiRejected);
        }
        let principal = principal_map(&identity.base_identity)
            .ok_or_else(|| KrbError::NoMapping(identity.base_identity.to_string()))?;
        // Principal must exist (or be implicitly registered as PKINIT-only).
        if !self.principals.lock().contains_key(&principal) {
            return Err(KrbError::UnknownPrincipal(principal));
        }

        let mut session_key = [0u8; 32];
        rng.fill_bytes(&mut session_key);
        let mut reply_key = [0u8; 32];
        rng.fill_bytes(&mut reply_key);
        let end_time = now + requested_life.min(self.max_life);

        let body = TicketBody {
            client: principal.clone(),
            client_realm: self.realm.clone(),
            service: TGS_PRINCIPAL.to_string(),
            session_key,
            auth_time: now,
            end_time,
        };
        let tgt = Ticket::seal_new(rng, &self.tgs_key, &body);
        let reply_part = EncKdcReplyPart {
            session_key,
            service: TGS_PRINCIPAL.to_string(),
            end_time,
        };
        use gridsec_pki::encoding::Codec;
        let enc_part = seal(rng, &reply_key, b"krb-as-rep", &reply_part.to_bytes());
        let wrapped_key = identity
            .public_key
            .encrypt_pkcs1(rng, &reply_key)
            .map_err(|_| KrbError::PkiRejected)?;
        Ok((wrapped_key, TgtReply { tgt, enc_part }))
    }

    /// TGS exchange: given a TGT and a fresh authenticator under its
    /// session key, issue a ticket for `service`.
    pub fn tgs_exchange<E: EntropySource>(
        &self,
        rng: &mut E,
        tgt: &Ticket,
        authenticator_blob: &[u8],
        service: &str,
        now: u64,
        requested_life: u64,
    ) -> Result<ServiceTicketReply, KrbError> {
        // Validate the TGT.
        let tgt_body = tgt.unseal(&self.tgs_key)?;
        if tgt_body.service != TGS_PRINCIPAL {
            return Err(KrbError::WrongService {
                expected: tgt_body.service,
                got: TGS_PRINCIPAL.to_string(),
            });
        }
        if now > tgt_body.end_time {
            return Err(KrbError::Expired {
                now,
                end_time: tgt_body.end_time,
            });
        }
        // Validate the authenticator under the TGT session key.
        let auth = Authenticator::unseal(&tgt_body.session_key, authenticator_blob)?;
        if auth.client != tgt_body.client {
            return Err(KrbError::Integrity);
        }
        const MAX_SKEW: u64 = 300;
        if auth.timestamp.abs_diff(now) > MAX_SKEW {
            return Err(KrbError::ClockSkew {
                now,
                stamp: auth.timestamp,
            });
        }

        // Issue the service ticket.
        let service_key = self.lookup(service)?;
        let mut session_key = [0u8; 32];
        rng.fill_bytes(&mut session_key);
        let end_time = (now + requested_life.min(self.max_life)).min(tgt_body.end_time);
        let body = TicketBody {
            client: tgt_body.client.clone(),
            client_realm: tgt_body.client_realm.clone(),
            service: service.to_string(),
            session_key,
            auth_time: now,
            end_time,
        };
        let ticket = Ticket::seal_new(rng, &service_key, &body);
        let reply_part = EncKdcReplyPart {
            session_key,
            service: service.to_string(),
            end_time,
        };
        use gridsec_pki::encoding::Codec;
        let enc_part = seal(
            rng,
            &tgt_body.session_key,
            b"krb-tgs-rep",
            &reply_part.to_bytes(),
        );
        Ok(ServiceTicketReply { ticket, enc_part })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::KrbClient;
    use gridsec_crypto::rng::ChaChaRng;

    fn setup() -> (ChaChaRng, Kdc) {
        let mut rng = ChaChaRng::from_seed_bytes(b"kdc tests");
        let kdc = Kdc::new(&mut rng, "SITE.A", 36_000);
        (rng, kdc)
    }

    #[test]
    fn as_exchange_requires_known_principal() {
        let (mut rng, kdc) = setup();
        assert!(matches!(
            kdc.as_exchange(&mut rng, "ghost", 0, 100),
            Err(KrbError::UnknownPrincipal(_))
        ));
    }

    #[test]
    fn as_reply_only_opens_with_password_key() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "correct horse");
        let reply = kdc.as_exchange(&mut rng, "alice", 0, 100).unwrap();
        // Correct password works.
        let ok = KrbClient::from_password("alice", "SITE.A", "correct horse");
        assert!(ok.open_tgt_reply(&reply).is_ok());
        // Wrong password cannot decrypt the session key.
        let bad = KrbClient::from_password("alice", "SITE.A", "wrong");
        assert_eq!(bad.open_tgt_reply(&reply).unwrap_err(), KrbError::Integrity);
    }

    #[test]
    fn lifetime_capped_by_kdc_policy() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        let reply = kdc.as_exchange(&mut rng, "alice", 100, u64::MAX).unwrap();
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let (_, part) = client.open_tgt_reply(&reply).unwrap();
        assert_eq!(part.end_time, 100 + 36_000);
    }

    #[test]
    fn full_tgs_flow() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        let fs_key = kdc.add_service(&mut rng, "host/fs1");

        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = kdc.as_exchange(&mut rng, "alice", 0, 1000).unwrap();
        let (tgt, tgt_part) = client.open_tgt_reply(&tgt_reply).unwrap();

        let auth = client.make_authenticator(&mut rng, &tgt_part.session_key, 10);
        let st_reply = kdc
            .tgs_exchange(&mut rng, &tgt, &auth, "host/fs1", 10, 500)
            .unwrap();
        let st_part = client
            .open_service_reply(&tgt_part.session_key, &st_reply)
            .unwrap();

        // The service can unseal the ticket with its keytab key and sees
        // the same session key the client got.
        let body = st_reply.ticket.unseal(&fs_key).unwrap();
        assert_eq!(body.client, "alice");
        assert_eq!(body.session_key, st_part.session_key);
        assert_eq!(body.service, "host/fs1");
    }

    #[test]
    fn tgs_rejects_expired_tgt() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        kdc.add_service(&mut rng, "host/fs1");
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = kdc.as_exchange(&mut rng, "alice", 0, 100).unwrap();
        let (tgt, part) = client.open_tgt_reply(&tgt_reply).unwrap();
        let auth = client.make_authenticator(&mut rng, &part.session_key, 200);
        assert!(matches!(
            kdc.tgs_exchange(&mut rng, &tgt, &auth, "host/fs1", 200, 100),
            Err(KrbError::Expired { .. })
        ));
    }

    #[test]
    fn tgs_rejects_skewed_authenticator() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        kdc.add_service(&mut rng, "host/fs1");
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = kdc.as_exchange(&mut rng, "alice", 0, 10_000).unwrap();
        let (tgt, part) = client.open_tgt_reply(&tgt_reply).unwrap();
        // Authenticator stamped far from KDC time.
        let auth = client.make_authenticator(&mut rng, &part.session_key, 10);
        assert!(matches!(
            kdc.tgs_exchange(&mut rng, &tgt, &auth, "host/fs1", 5000, 100),
            Err(KrbError::ClockSkew { .. })
        ));
    }

    #[test]
    fn tgs_rejects_forged_authenticator() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        kdc.add_service(&mut rng, "host/fs1");
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = kdc.as_exchange(&mut rng, "alice", 0, 10_000).unwrap();
        let (tgt, _) = client.open_tgt_reply(&tgt_reply).unwrap();
        // Authenticator sealed under the wrong key.
        let auth = client.make_authenticator(&mut rng, &[0u8; 32], 10);
        assert_eq!(
            kdc.tgs_exchange(&mut rng, &tgt, &auth, "host/fs1", 10, 100)
                .unwrap_err(),
            KrbError::Integrity
        );
    }

    #[test]
    fn service_ticket_for_unknown_service_fails() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = kdc.as_exchange(&mut rng, "alice", 0, 10_000).unwrap();
        let (tgt, part) = client.open_tgt_reply(&tgt_reply).unwrap();
        let auth = client.make_authenticator(&mut rng, &part.session_key, 10);
        assert!(matches!(
            kdc.tgs_exchange(&mut rng, &tgt, &auth, "host/ghost", 10, 100),
            Err(KrbError::UnknownPrincipal(_))
        ));
    }

    #[test]
    fn service_ticket_cannot_act_as_tgt() {
        let (mut rng, kdc) = setup();
        kdc.add_principal("alice", "pw");
        kdc.add_service(&mut rng, "host/fs1");
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = kdc.as_exchange(&mut rng, "alice", 0, 10_000).unwrap();
        let (tgt, part) = client.open_tgt_reply(&tgt_reply).unwrap();
        let auth = client.make_authenticator(&mut rng, &part.session_key, 10);
        let st = kdc
            .tgs_exchange(&mut rng, &tgt, &auth, "host/fs1", 10, 100)
            .unwrap();
        // Present the service ticket where a TGT is expected: it is sealed
        // under the service key, not the TGS key → integrity failure.
        let auth2 = client.make_authenticator(&mut rng, &part.session_key, 10);
        assert!(kdc
            .tgs_exchange(&mut rng, &st.ticket, &auth2, "host/fs1", 10, 100)
            .is_err());
    }

    #[test]
    fn cross_realm_key_registration() {
        let (mut rng, kdc_a) = setup();
        let kdc_b = Kdc::new(&mut rng, "SITE.B", 36_000);
        let mut xkey = [0u8; 32];
        EntropySource::fill_bytes(&mut rng, &mut xkey);
        // Both administrators must act — the bilateral agreement.
        kdc_a.register_cross_realm_key("SITE.B", xkey);
        kdc_b.register_cross_realm_key("SITE.A", xkey);
        assert_eq!(kdc_a.lookup("krbtgt/SITE.B").unwrap(), xkey);
        assert_eq!(kdc_b.lookup("krbtgt/SITE.A").unwrap(), xkey);
    }
}
