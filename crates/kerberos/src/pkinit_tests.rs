//! Direct unit tests for the PKINIT AS exchange (the SSLK5 substrate).
//! End-to-end coverage lives in `gridsec-services::sslk5`; these tests
//! pin the KDC-side behaviour in isolation.

#![cfg(test)]

use crate::messages::{open, ReplyPart};
use crate::{Kdc, KrbError};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::Codec;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct World {
    rng: ChaChaRng,
    kdc: Kdc,
    trust: TrustStore,
    user: Credential,
}

fn world() -> World {
    let mut rng = ChaChaRng::from_seed_bytes(b"pkinit unit tests");
    let kdc = Kdc::new(&mut rng, "REALM.X", 36_000);
    kdc.add_principal("mapped", "pw");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=P/CN=CA"), 512, 0, 1_000_000);
    let user = ca.issue_identity(&mut rng, dn("/O=P/CN=User"), 512, 0, 500_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    World {
        rng,
        kdc,
        trust,
        user,
    }
}

fn pop(w: &World, nonce: &[u8]) -> Vec<u8> {
    let mut payload = b"pkinit-pop".to_vec();
    payload.extend_from_slice(nonce);
    w.user.sign(&payload)
}

#[test]
fn pkinit_reply_key_is_rsa_bound() {
    let mut w = world();
    let nonce = [7u8; 16];
    let sig = pop(&w, &nonce);
    let (wrapped, reply) = w
        .kdc
        .pkinit_as_exchange(
            &mut w.rng,
            w.user.chain(),
            &sig,
            &nonce,
            &w.trust,
            |_| Some("mapped".to_string()),
            100,
            10_000,
        )
        .unwrap();
    // Only the certificate key can unwrap the reply key.
    let reply_key: [u8; 32] = w
        .user
        .key()
        .decrypt_pkcs1(&wrapped)
        .unwrap()
        .try_into()
        .unwrap();
    let plain = open(&reply_key, b"krb-as-rep", &reply.enc_part).unwrap();
    let part = ReplyPart::from_bytes(&plain).unwrap();
    assert_eq!(part.service, "krbtgt");
    assert_eq!(part.end_time, 10_100);
    // A random key cannot open the reply.
    assert!(open(&[9u8; 32], b"krb-as-rep", &reply.enc_part).is_err());
}

#[test]
fn pkinit_rejects_bad_pop_signature() {
    let mut w = world();
    let nonce = [7u8; 16];
    // Signature over a different nonce.
    let sig = pop(&w, &[8u8; 16]);
    let err = w
        .kdc
        .pkinit_as_exchange(
            &mut w.rng,
            w.user.chain(),
            &sig,
            &nonce,
            &w.trust,
            |_| Some("mapped".to_string()),
            100,
            10_000,
        )
        .unwrap_err();
    assert_eq!(err, KrbError::PkiRejected);
}

#[test]
fn pkinit_rejects_expired_chain() {
    let mut w = world();
    let nonce = [1u8; 16];
    let sig = pop(&w, &nonce);
    let err = w
        .kdc
        .pkinit_as_exchange(
            &mut w.rng,
            w.user.chain(),
            &sig,
            &nonce,
            &w.trust,
            |_| Some("mapped".to_string()),
            900_000, // past the user's not_after
            10_000,
        )
        .unwrap_err();
    assert_eq!(err, KrbError::PkiRejected);
}

#[test]
fn pkinit_lifetime_capped_by_kdc() {
    let mut w = world();
    let nonce = [2u8; 16];
    let sig = pop(&w, &nonce);
    let (wrapped, reply) = w
        .kdc
        .pkinit_as_exchange(
            &mut w.rng,
            w.user.chain(),
            &sig,
            &nonce,
            &w.trust,
            |_| Some("mapped".to_string()),
            100,
            u64::MAX,
        )
        .unwrap();
    let reply_key: [u8; 32] = w
        .user
        .key()
        .decrypt_pkcs1(&wrapped)
        .unwrap()
        .try_into()
        .unwrap();
    let part =
        ReplyPart::from_bytes(&open(&reply_key, b"krb-as-rep", &reply.enc_part).unwrap()).unwrap();
    assert_eq!(part.end_time, 100 + 36_000);
}
