//! Interaction tests for `CachedValidator::validate_batch`: the batch
//! path must agree chain-for-chain with the individual path, attribute
//! failures to the right positions, and drop its precomputed verify
//! contexts the moment a trust/CRL generation bump makes the old epoch
//! suspect.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::cert::Certificate;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::CachedValidator;
use gridsec_pki::PkiError;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct World {
    rng: ChaChaRng,
    ca: CertificateAuthority,
    trust: TrustStore,
    users: Vec<Credential>,
}

fn world(n_users: usize) -> World {
    let mut rng = ChaChaRng::from_seed_bytes(b"batch validate tests");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let users = (0..n_users)
        .map(|i| ca.issue_identity(&mut rng, dn(&format!("/O=G/CN=U{i}")), 512, 0, 100_000))
        .collect();
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    World {
        rng,
        ca,
        trust,
        users,
    }
}

#[test]
fn batch_matches_individual_on_mixed_chains() {
    let mut w = world(6);
    let crls = CrlStore::new();

    // Chain shapes: plain identities, a proxy chain, a tampered chain
    // (bad signature), and an expired chain.
    let proxy = issue_proxy(
        &mut w.rng,
        &w.users[1],
        ProxyType::Impersonation,
        512,
        10,
        1000,
    )
    .unwrap();
    let mut forged = w.users[2].chain().to_vec();
    forged[0].tbs.subject = dn("/O=G/CN=Mallory");
    let short_lived =
        w.ca.issue_identity(&mut w.rng, dn("/O=G/CN=Ephemeral"), 512, 0, 400);

    let chains: Vec<Vec<Certificate>> = vec![
        w.users[0].chain().to_vec(),
        proxy.chain().to_vec(),
        forged,
        short_lived.chain().to_vec(),
        w.users[3].chain().to_vec(),
    ];
    let refs: Vec<&[Certificate]> = chains.iter().map(|c| c.as_slice()).collect();

    let mut batch_v = CachedValidator::new(16);
    let batch = batch_v.validate_batch(&refs, &w.trust, &crls, 500);

    let mut indiv_v = CachedValidator::new(16);
    for (i, chain) in refs.iter().enumerate() {
        let individual = indiv_v.validate(chain, &w.trust, &crls, 500);
        match (&batch[i], &individual) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.subject, b.subject, "chain {i}");
                assert_eq!(a.base_identity, b.base_identity, "chain {i}");
                assert_eq!(a.proxy_depth, b.proxy_depth, "chain {i}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "chain {i}"),
            _ => panic!("chain {i}: batch/individual verdict diverged"),
        }
    }
    assert!(batch[0].is_ok());
    assert!(batch[1].is_ok());
    assert_eq!(batch[2].as_ref().unwrap_err(), &PkiError::BadSignature);
    assert!(matches!(batch[3], Err(PkiError::Expired { .. })));
    assert!(batch[4].is_ok());

    // Successful chains were cached by the batch: re-validating them
    // individually through the same validator is all hits.
    let misses = batch_v.misses();
    for &i in &[0usize, 1, 4] {
        assert!(batch_v.validate(refs[i], &w.trust, &crls, 600).is_ok());
    }
    assert_eq!(batch_v.misses(), misses);

    // All chains share one issuer (plus the user EEC for the proxy), so
    // the context map stays small.
    assert!(batch_v.precomputed_keys() >= 1);
}

#[test]
fn generation_bump_mid_batch_drops_precomputed_contexts() {
    let mut w = world(4);
    let mut crls = CrlStore::new();
    let mut v = CachedValidator::new(16);

    let chains: Vec<Vec<Certificate>> = w.users.iter().map(|u| u.chain().to_vec()).collect();
    let refs: Vec<&[Certificate]> = chains.iter().map(|c| c.as_slice()).collect();

    let first = v.validate_batch(&refs, &w.trust, &crls, 500);
    assert!(first.iter().all(|r| r.is_ok()));
    let built = v.precomputed_keys();
    assert!(built >= 1, "batch built verify contexts");
    assert_eq!(v.len(), 4);

    // Revoke one user between batches: the CRL generation bump must
    // clear both the result cache and every precomputed context before
    // the next batch touches them.
    let serial = w.users[2].certificate().tbs.serial;
    assert!(crls.add(
        w.ca.issue_crl(vec![serial], 100, 10_000),
        w.ca.certificate()
    ));

    let second = v.validate_batch(&refs, &w.trust, &crls, 500);
    assert!(second[0].is_ok());
    assert!(second[1].is_ok());
    assert_eq!(
        second[2].as_ref().unwrap_err(),
        &PkiError::Revoked { serial }
    );
    assert!(second[3].is_ok());

    // The old epoch's contexts were discarded, then rebuilt during the
    // second batch — never served across the bump.
    assert!(v.precomputed_keys() >= 1);
    assert_eq!(v.len(), 3, "revoked chain is not cached");

    // Direct observation of the drop: bump the trust generation and
    // probe before any validation runs contexts back in.
    w.trust.add_root(
        CertificateAuthority::create_root(&mut w.rng, dn("/O=Other/CN=CA2"), 512, 0, 1_000_000)
            .certificate()
            .clone(),
    );
    let _ = v.validate_batch(&refs[..1], &w.trust, &crls, 500);
    // After the bump the map was cleared; the single-chain batch
    // rebuilt exactly the contexts that chain needed.
    assert!(v.precomputed_keys() >= 1);
    assert!(v.precomputed_keys() <= built);
}

#[test]
fn revocation_respected_within_first_batch() {
    let w = world(3);
    let mut crls = CrlStore::new();
    let serial = w.users[1].certificate().tbs.serial;
    assert!(crls.add(
        w.ca.issue_crl(vec![serial], 100, 10_000),
        w.ca.certificate()
    ));

    let chains: Vec<Vec<Certificate>> = w.users.iter().map(|u| u.chain().to_vec()).collect();
    let refs: Vec<&[Certificate]> = chains.iter().map(|c| c.as_slice()).collect();

    let mut v = CachedValidator::new(16);
    let out = v.validate_batch(&refs, &w.trust, &crls, 500);
    assert!(out[0].is_ok());
    assert_eq!(out[1].as_ref().unwrap_err(), &PkiError::Revoked { serial });
    assert!(out[2].is_ok());
    // Negative results are never cached, batch or not.
    assert_eq!(v.len(), 2);
}

#[test]
fn empty_and_duplicate_batches() {
    let w = world(1);
    let crls = CrlStore::new();
    let mut v = CachedValidator::new(16);
    assert!(v.validate_batch(&[], &w.trust, &crls, 500).is_empty());

    // The same chain three times: first walk validates, the rest of the
    // behaviour (cache state, verdicts) matches three individual calls.
    let chain = w.users[0].chain();
    let out = v.validate_batch(&[chain, chain, chain], &w.trust, &crls, 500);
    assert!(out.iter().all(|r| r.is_ok()));
    assert_eq!(v.len(), 1);
    let hits = v.hits();
    assert!(v.validate(chain, &w.trust, &crls, 500).is_ok());
    assert_eq!(v.hits(), hits + 1);
}
