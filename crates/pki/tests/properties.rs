//! Property-based tests for PKI invariants.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::cert::Certificate;
use gridsec_pki::encoding::Codec;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::store::TrustStore;
use gridsec_pki::validate::{validate_chain, EffectiveRights};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    ca: CertificateAuthority,
    trust: TrustStore,
    user: gridsec_pki::credential::Credential,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let mut rng = ChaChaRng::from_seed_bytes(b"pki proptest fixture");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=CA").unwrap(),
            512,
            0,
            1_000_000,
        );
        let user = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=User").unwrap(),
            512,
            0,
            1_000_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        Fixture { ca, trust, user }
    })
}

/// DN component strategy: attribute from a small alphabet, value without
/// '/' or '='.
fn dn_strategy() -> impl Strategy<Value = DistinguishedName> {
    prop::collection::vec(
        (
            prop::sample::select(vec!["C", "O", "OU", "CN", "L", "DC"]),
            "[A-Za-z0-9 .-]{1,12}",
        ),
        1..6,
    )
    .prop_map(|parts| {
        let s: String = parts
            .iter()
            .map(|(a, v)| format!("/{a}={v}"))
            .collect();
        DistinguishedName::parse(&s).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dn_display_parse_roundtrip(dn in dn_strategy()) {
        prop_assert_eq!(DistinguishedName::parse(&dn.to_string()).unwrap(), dn);
    }

    #[test]
    fn dn_codec_roundtrip(dn in dn_strategy()) {
        prop_assert_eq!(DistinguishedName::from_bytes(&dn.to_bytes()).unwrap(), dn);
    }

    #[test]
    fn proxy_extension_always_validates_name_rule(dn in dn_strategy(), cn in "[0-9]{1,10}") {
        let ext = dn.with_extra_cn(&cn);
        prop_assert!(ext.is_proxy_extension_of(&dn));
    }

    #[test]
    fn certificate_decode_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        // Must return Err or Ok, never panic.
        let _ = Certificate::from_bytes(&data);
    }

    #[test]
    fn validation_time_respects_window(now in 0u64..2_000_000) {
        let f = fixture();
        let result = validate_chain(f.user.chain(), &f.trust, now);
        prop_assert_eq!(result.is_ok(), now <= 1_000_000);
    }

    #[test]
    fn proxy_chain_depth_matches(depth in 1usize..5, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let mut cred = f.user.clone();
        for _ in 0..depth {
            cred = issue_proxy(&mut rng, &cred, ProxyType::Impersonation, 512, 10, 500_000)
                .unwrap();
        }
        let id = validate_chain(cred.chain(), &f.trust, 100).unwrap();
        prop_assert_eq!(id.proxy_depth, depth);
        prop_assert_eq!(id.base_identity.to_string(), "/O=G/CN=User");
        prop_assert_eq!(id.rights, EffectiveRights::Full);
    }

    #[test]
    fn any_limited_proxy_limits_chain(
        depth in 2usize..5,
        limited_at in 0usize..5,
        seed in any::<u64>(),
    ) {
        let limited_at = limited_at % depth;
        let f = fixture();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let mut cred = f.user.clone();
        for i in 0..depth {
            let ty = if i == limited_at { ProxyType::Limited } else { ProxyType::Impersonation };
            cred = issue_proxy(&mut rng, &cred, ty, 512, 10, 500_000).unwrap();
        }
        let id = validate_chain(cred.chain(), &f.trust, 100).unwrap();
        prop_assert_eq!(id.rights, EffectiveRights::Limited);
    }

    #[test]
    fn crl_roundtrip_and_revocation(serials in prop::collection::vec(any::<u64>(), 0..20)) {
        let f = fixture();
        let crl = f.ca.issue_crl(serials.clone(), 10, 100);
        let decoded = gridsec_pki::ca::Crl::from_bytes(&crl.to_bytes()).unwrap();
        prop_assert!(decoded.verify(f.ca.certificate().public_key()));
        for s in &serials {
            prop_assert!(decoded.is_revoked(*s));
        }
    }
}
