//! Property-based tests for PKI invariants.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::cert::Certificate;
use gridsec_pki::encoding::Codec;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::store::TrustStore;
use gridsec_pki::validate::{validate_chain, EffectiveRights};
use gridsec_util::check::{check, Gen};
use std::sync::OnceLock;

const CASES: u64 = 64;

struct Fixture {
    ca: CertificateAuthority,
    trust: TrustStore,
    user: gridsec_pki::credential::Credential,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let mut rng = ChaChaRng::from_seed_bytes(b"pki proptest fixture");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=CA").unwrap(),
            512,
            0,
            1_000_000,
        );
        let user = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=User").unwrap(),
            512,
            0,
            1_000_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        Fixture { ca, trust, user }
    })
}

const DN_VALUE: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 .-";

/// DN generator: 1–5 components, attribute from a small alphabet, value
/// without '/' or '='.
fn dn(g: &mut Gen) -> DistinguishedName {
    let parts = g.vec(1..6, |g| {
        let attr = *g.choice(&["C", "O", "OU", "CN", "L", "DC"]);
        let value = g.string(DN_VALUE, 1..13);
        (attr, value)
    });
    let s: String = parts.iter().map(|(a, v)| format!("/{a}={v}")).collect();
    DistinguishedName::parse(&s).unwrap()
}

#[test]
fn dn_display_parse_roundtrip() {
    check("dn_display_parse_roundtrip", CASES, |g| {
        let dn = dn(g);
        assert_eq!(DistinguishedName::parse(&dn.to_string()).unwrap(), dn);
    });
}

#[test]
fn dn_codec_roundtrip() {
    check("dn_codec_roundtrip", CASES, |g| {
        let dn = dn(g);
        assert_eq!(DistinguishedName::from_bytes(&dn.to_bytes()).unwrap(), dn);
    });
}

#[test]
fn proxy_extension_always_validates_name_rule() {
    check("proxy_extension_always_validates_name_rule", CASES, |g| {
        let dn = dn(g);
        let cn = g.string("0123456789", 1..11);
        let ext = dn.with_extra_cn(&cn);
        assert!(ext.is_proxy_extension_of(&dn));
    });
}

#[test]
fn certificate_decode_never_panics_on_garbage() {
    check("certificate_decode_never_panics_on_garbage", CASES, |g| {
        let data = g.bytes(0..256);
        // Must return Err or Ok, never panic.
        let _ = Certificate::from_bytes(&data);
    });
}

#[test]
fn validation_time_respects_window() {
    check("validation_time_respects_window", CASES, |g| {
        let now = g.u64_in(0..2_000_000);
        let f = fixture();
        let result = validate_chain(f.user.chain(), &f.trust, now);
        assert_eq!(result.is_ok(), now <= 1_000_000);
    });
}

#[test]
fn proxy_chain_depth_matches() {
    check("proxy_chain_depth_matches", CASES, |g| {
        let depth = g.usize_in(1..5);
        let seed = g.u64();
        let f = fixture();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let mut cred = f.user.clone();
        for _ in 0..depth {
            cred =
                issue_proxy(&mut rng, &cred, ProxyType::Impersonation, 512, 10, 500_000).unwrap();
        }
        let id = validate_chain(cred.chain(), &f.trust, 100).unwrap();
        assert_eq!(id.proxy_depth, depth);
        assert_eq!(id.base_identity.to_string(), "/O=G/CN=User");
        assert_eq!(id.rights, EffectiveRights::Full);
    });
}

#[test]
fn any_limited_proxy_limits_chain() {
    check("any_limited_proxy_limits_chain", CASES, |g| {
        let depth = g.usize_in(2..5);
        let limited_at = g.usize_in(0..5) % depth;
        let seed = g.u64();
        let f = fixture();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let mut cred = f.user.clone();
        for i in 0..depth {
            let ty = if i == limited_at {
                ProxyType::Limited
            } else {
                ProxyType::Impersonation
            };
            cred = issue_proxy(&mut rng, &cred, ty, 512, 10, 500_000).unwrap();
        }
        let id = validate_chain(cred.chain(), &f.trust, 100).unwrap();
        assert_eq!(id.rights, EffectiveRights::Limited);
    });
}

#[test]
fn crl_roundtrip_and_revocation() {
    check("crl_roundtrip_and_revocation", CASES, |g| {
        let serials = g.vec(0..20, |g| g.u64());
        let f = fixture();
        let crl = f.ca.issue_crl(serials.clone(), 10, 100);
        let decoded = gridsec_pki::ca::Crl::from_bytes(&crl.to_bytes()).unwrap();
        assert!(decoded.verify(f.ca.certificate().public_key()));
        for s in &serials {
            assert!(decoded.is_revoked(*s));
        }
    });
}

#[test]
fn cached_validator_agrees_with_direct_walk() {
    use gridsec_pki::store::CrlStore;
    use gridsec_pki::validate::{validate_chain_with_crls, CachedValidator};
    check("cached_validator_agrees_with_direct_walk", CASES, |g| {
        let f = fixture();
        let seed = g.u64();
        let depth = g.usize_in(0..3);
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let mut cred = f.user.clone();
        for _ in 0..depth {
            cred =
                issue_proxy(&mut rng, &cred, ProxyType::Impersonation, 512, 10, 500_000).unwrap();
        }
        let mut v = CachedValidator::new(4);
        let crls = CrlStore::new();
        let now = g.u64_in(0..1_200_000);
        // Three queries at the same instant: the first misses and walks,
        // the rest hit — every answer must agree with the direct walk.
        for _ in 0..3 {
            let direct = validate_chain_with_crls(cred.chain(), &f.trust, &crls, now);
            let cached = v.validate(cred.chain(), &f.trust, &crls, now);
            match (direct, cached) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.base_identity, b.base_identity);
                    assert_eq!(a.proxy_depth, b.proxy_depth);
                    assert_eq!(a.rights, b.rights);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("cache diverged: direct={a:?} cached={b:?}"),
            }
        }
    });
}

/// A proxy chain whose leaf window `[nb, na]` is strictly inside every
/// issuer window, so the leaf alone decides the chain's validity edge.
fn edged_proxy(g: &mut Gen) -> (gridsec_pki::credential::Credential, u64, u64) {
    let f = fixture();
    let seed = g.u64();
    let nb = g.u64_in(1..500_000);
    let na = nb + g.u64_in(1..400_000);
    let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
    let cred = issue_proxy(
        &mut rng,
        &f.user,
        ProxyType::Impersonation,
        512,
        nb,
        na - nb,
    )
    .unwrap();
    assert_eq!(cred.certificate().tbs.validity.not_before, nb);
    assert_eq!(cred.certificate().tbs.validity.not_after, na);
    (cred, nb, na)
}

#[test]
fn validation_window_edges_are_inclusive() {
    check("validation_window_edges_are_inclusive", CASES, |g| {
        let f = fixture();
        let (cred, nb, na) = edged_proxy(g);
        // Validity is inclusive at both instants — the credential works
        // at exactly `not_before` and exactly `not_after` ...
        assert!(validate_chain(cred.chain(), &f.trust, nb).is_ok());
        assert!(validate_chain(cred.chain(), &f.trust, na).is_ok());
        // ... and fails one tick outside either edge.
        assert!(validate_chain(cred.chain(), &f.trust, nb - 1).is_err());
        assert!(validate_chain(cred.chain(), &f.trust, na + 1).is_err());
    });
}

#[test]
fn cached_validator_hits_pin_window_edges() {
    use gridsec_pki::store::CrlStore;
    use gridsec_pki::validate::{validate_chain_with_crls, CachedValidator};
    check("cached_validator_hits_pin_window_edges", CASES, |g| {
        let f = fixture();
        let (cred, nb, na) = edged_proxy(g);
        let crls = CrlStore::new();
        let mut v = CachedValidator::new(4);

        // Warm the cache mid-window, then probe exactly at each edge:
        // the warm entry must still HIT (no re-walk) and agree with the
        // direct walk, because both windows are inclusive.
        let mid = nb + (na - nb) / 2;
        assert!(v.validate(cred.chain(), &f.trust, &crls, mid).is_ok());
        assert_eq!((v.hits(), v.misses()), (0, 1));
        for edge in [nb, na] {
            let direct = validate_chain_with_crls(cred.chain(), &f.trust, &crls, edge).unwrap();
            let cached = v.validate(cred.chain(), &f.trust, &crls, edge).unwrap();
            assert_eq!(direct.base_identity, cached.base_identity);
            assert_eq!(direct.proxy_depth, cached.proxy_depth);
        }
        assert_eq!((v.hits(), v.misses()), (2, 1));

        // One tick past `not_after` the entry is stale: the probe is a
        // MISS, the stale entry is dropped, and the re-walk reports the
        // same expiry error the direct walk does.
        let direct = validate_chain_with_crls(cred.chain(), &f.trust, &crls, na + 1);
        let cached = v.validate(cred.chain(), &f.trust, &crls, na + 1);
        assert_eq!(direct.unwrap_err(), cached.unwrap_err());
        assert_eq!((v.hits(), v.misses()), (2, 2));

        // Same one tick before `not_before` (re-warm first: the stale
        // drop above emptied the cache).
        assert!(v.validate(cred.chain(), &f.trust, &crls, mid).is_ok());
        let direct = validate_chain_with_crls(cred.chain(), &f.trust, &crls, nb - 1);
        let cached = v.validate(cred.chain(), &f.trust, &crls, nb - 1);
        assert_eq!(direct.unwrap_err(), cached.unwrap_err());
    });
}

#[test]
fn batch_validation_agrees_at_window_edges() {
    use gridsec_pki::store::CrlStore;
    use gridsec_pki::validate::{validate_chain_with_crls, CachedValidator};
    check("batch_validation_agrees_at_window_edges", CASES, |g| {
        let f = fixture();
        let crls = CrlStore::new();
        // A handful of chains with independent windows; `now` lands
        // exactly on one chain's edge, so the batch must return Ok for
        // that chain (inclusive) while attributing expiry/not-yet-valid
        // errors to the right positions among the others.
        let creds: Vec<_> = (0..4).map(|_| edged_proxy(g)).collect();
        let pick = g.usize_in(0..4);
        let now = if g.bool() {
            creds[pick].2
        } else {
            creds[pick].1
        };

        let chains: Vec<&[Certificate]> = creds.iter().map(|(c, _, _)| c.chain()).collect();
        let mut v = CachedValidator::new(8);
        let batch = v.validate_batch(&chains, &f.trust, &crls, now);
        assert_eq!(batch.len(), chains.len());
        for (i, got) in batch.iter().enumerate() {
            let direct = validate_chain_with_crls(chains[i], &f.trust, &crls, now);
            match (direct, got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.base_identity, b.base_identity);
                    assert_eq!(a.proxy_depth, b.proxy_depth);
                }
                (Err(a), Err(b)) => assert_eq!(&a, b),
                (a, b) => panic!("batch diverged at {i}: direct={a:?} batch={b:?}"),
            }
        }
        // The picked chain sat exactly on its own edge — inclusive.
        assert!(batch[pick].is_ok());

        // A second batch at the same instant is pure cache hits for the
        // chains that validated, and still position-for-position equal.
        let ok_count = batch.iter().filter(|r| r.is_ok()).count() as u64;
        let hits_before = v.hits();
        let again = v.validate_batch(&chains, &f.trust, &crls, now);
        assert_eq!(v.hits(), hits_before + ok_count);
        for (a, b) in batch.iter().zip(again.iter()) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
    });
}

#[test]
fn cached_validator_agrees_after_revocation() {
    use gridsec_pki::store::CrlStore;
    use gridsec_pki::validate::{validate_chain_with_crls, CachedValidator};
    check("cached_validator_agrees_after_revocation", CASES, |g| {
        let f = fixture();
        let seed = g.u64();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let depth = g.usize_in(0..3);
        let mut cred = f.user.clone();
        for _ in 0..depth {
            cred =
                issue_proxy(&mut rng, &cred, ProxyType::Impersonation, 512, 10, 500_000).unwrap();
        }
        let mut v = CachedValidator::new(4);
        let mut crls = CrlStore::new();
        let now = g.u64_in(10..400_000);
        // Warm the cache with a positive result...
        assert!(v.validate(cred.chain(), &f.trust, &crls, now).is_ok());
        // ...then revoke either the user's certificate or some unrelated
        // serial. The store mutation bumps the CRL generation, so the
        // cached entry must not mask the new revocation state.
        let serial = if g.bool() {
            f.user.certificate().tbs.serial
        } else {
            g.u64() | (1 << 63)
        };
        assert!(crls.add(
            f.ca.issue_crl(vec![serial], now, 1_000_000),
            f.ca.certificate()
        ));
        let direct = validate_chain_with_crls(cred.chain(), &f.trust, &crls, now);
        let cached = v.validate(cred.chain(), &f.trust, &crls, now);
        match (direct, cached) {
            (Ok(a), Ok(b)) => assert_eq!(a.base_identity, b.base_identity),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("cache diverged after revocation: direct={a:?} cached={b:?}"),
        }
    });
}
