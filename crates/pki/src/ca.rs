//! Certificate authorities and certificate revocation lists.
//!
//! The paper (§3) stresses that CA trust is *unilateral*: "a single entity
//! in an organization can decide to trust any CA, without necessarily
//! involving the organization as a whole". A [`CertificateAuthority`] here
//! is an issuing identity; consumers decide trust by adding the CA
//! certificate to their own [`crate::store::TrustStore`].

use crate::cert::{key_usage, BasicConstraints, Certificate, Extensions, TbsCertificate, Validity};
use crate::credential::Credential;
use crate::encoding::{Codec, Decoder, Encoder};
use crate::name::DistinguishedName;
use crate::PkiError;
use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use std::sync::atomic::{AtomicU64, Ordering};

/// A certificate authority: a self- or parent-signed CA certificate plus
/// its signing key and a serial counter.
pub struct CertificateAuthority {
    certificate: Certificate,
    key: RsaKeyPair,
    next_serial: AtomicU64,
}

impl CertificateAuthority {
    /// Create a self-signed root CA.
    pub fn create_root<E: EntropySource>(
        rng: &mut E,
        name: DistinguishedName,
        key_bits: usize,
        not_before: u64,
        not_after: u64,
    ) -> Self {
        let key = RsaKeyPair::generate(rng, key_bits);
        let tbs = TbsCertificate {
            serial: 1,
            issuer: name.clone(),
            subject: name,
            validity: Validity {
                not_before,
                not_after,
            },
            public_key: key.public().clone(),
            extensions: Extensions {
                basic_constraints: Some(BasicConstraints {
                    is_ca: true,
                    path_len: None,
                }),
                key_usage: Some(key_usage::CERT_SIGN | key_usage::CRL_SIGN),
                proxy_cert_info: None,
                subject_alt_names: vec![],
            },
        };
        let certificate = Certificate::sign(tbs, &key);
        CertificateAuthority {
            certificate,
            key,
            next_serial: AtomicU64::new(2),
        }
    }

    /// Create an intermediate CA certified by `parent`.
    pub fn create_intermediate<E: EntropySource>(
        rng: &mut E,
        parent: &CertificateAuthority,
        name: DistinguishedName,
        key_bits: usize,
        path_len: Option<u32>,
        validity: Validity,
    ) -> Self {
        let key = RsaKeyPair::generate(rng, key_bits);
        let extensions = Extensions {
            basic_constraints: Some(BasicConstraints {
                is_ca: true,
                path_len,
            }),
            key_usage: Some(key_usage::CERT_SIGN | key_usage::CRL_SIGN),
            proxy_cert_info: None,
            subject_alt_names: vec![],
        };
        let certificate =
            parent.issue_certificate(name, key.public().clone(), validity, extensions);
        CertificateAuthority {
            certificate,
            key,
            next_serial: AtomicU64::new(1),
        }
    }

    /// The CA's own certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The CA's distinguished name.
    pub fn name(&self) -> &DistinguishedName {
        self.certificate.subject()
    }

    /// Sign an arbitrary TBS built by the caller (low-level hook).
    pub fn issue_certificate(
        &self,
        subject: DistinguishedName,
        public_key: RsaPublicKey,
        validity: Validity,
        extensions: Extensions,
    ) -> Certificate {
        let tbs = TbsCertificate {
            serial: self.next_serial.fetch_add(1, Ordering::Relaxed),
            issuer: self.certificate.subject().clone(),
            subject,
            validity,
            public_key,
            extensions,
        };
        Certificate::sign(tbs, &self.key)
    }

    /// Issue an end-entity (user) credential: generates a key pair and
    /// returns the full [`Credential`]. This is the "enrollment with the
    /// CA" step that the paper contrasts with lightweight proxy creation —
    /// in a real deployment it involves a registration authority and a
    /// human administrator.
    pub fn issue_identity<E: EntropySource>(
        &self,
        rng: &mut E,
        subject: DistinguishedName,
        key_bits: usize,
        not_before: u64,
        not_after: u64,
    ) -> Credential {
        let key = RsaKeyPair::generate(rng, key_bits);
        let extensions = Extensions {
            basic_constraints: Some(BasicConstraints {
                is_ca: false,
                path_len: None,
            }),
            key_usage: Some(key_usage::DIGITAL_SIGNATURE | key_usage::KEY_ENCIPHERMENT),
            proxy_cert_info: None,
            subject_alt_names: vec![],
        };
        let cert = self.issue_certificate(
            subject,
            key.public().clone(),
            Validity {
                not_before,
                not_after,
            },
            extensions,
        );
        Credential::new(vec![cert, self.certificate.clone()], key)
    }

    /// Issue a host credential (subject alt names carry the host address).
    pub fn issue_host_identity<E: EntropySource>(
        &self,
        rng: &mut E,
        subject: DistinguishedName,
        alt_names: Vec<String>,
        key_bits: usize,
        not_before: u64,
        not_after: u64,
    ) -> Credential {
        let key = RsaKeyPair::generate(rng, key_bits);
        let extensions = Extensions {
            basic_constraints: Some(BasicConstraints {
                is_ca: false,
                path_len: None,
            }),
            key_usage: Some(key_usage::DIGITAL_SIGNATURE | key_usage::KEY_ENCIPHERMENT),
            proxy_cert_info: None,
            subject_alt_names: alt_names,
        };
        let cert = self.issue_certificate(
            subject,
            key.public().clone(),
            Validity {
                not_before,
                not_after,
            },
            extensions,
        );
        Credential::new(vec![cert, self.certificate.clone()], key)
    }

    /// Issue a signed certificate revocation list.
    pub fn issue_crl(&self, revoked_serials: Vec<u64>, this_update: u64, next_update: u64) -> Crl {
        let tbs = CrlTbs {
            issuer: self.certificate.subject().clone(),
            this_update,
            next_update,
            revoked_serials,
        };
        let signature = self.key.sign_pkcs1_sha256(&tbs.to_bytes());
        Crl { tbs, signature }
    }
}

/// The signed content of a CRL.
#[derive(Clone, PartialEq, Debug)]
pub struct CrlTbs {
    /// Issuing CA name.
    pub issuer: DistinguishedName,
    /// Issuance time.
    pub this_update: u64,
    /// Time by which a fresh CRL must be fetched.
    pub next_update: u64,
    /// Serial numbers of revoked certificates.
    pub revoked_serials: Vec<u64>,
}

/// A certificate revocation list.
#[derive(Clone, PartialEq, Debug)]
pub struct Crl {
    /// Signed content.
    pub tbs: CrlTbs,
    /// Issuer signature over the encoded TBS.
    pub signature: Vec<u8>,
}

impl Crl {
    /// Verify the CRL signature against the issuing CA's key.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify_pkcs1_sha256(&self.tbs.to_bytes(), &self.signature)
    }

    /// `true` iff `serial` appears on the list.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.tbs.revoked_serials.contains(&serial)
    }

    /// `true` iff the CRL is stale at `now`.
    pub fn is_stale(&self, now: u64) -> bool {
        now > self.tbs.next_update
    }
}

impl Codec for CrlTbs {
    fn encode(&self, enc: &mut Encoder) {
        self.issuer.encode(enc);
        enc.put_u64(self.this_update).put_u64(self.next_update);
        enc.put_seq(&self.revoked_serials, |e, s| {
            e.put_u64(*s);
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(CrlTbs {
            issuer: DistinguishedName::decode(dec)?,
            this_update: dec.get_u64()?,
            next_update: dec.get_u64()?,
            revoked_serials: dec.get_seq(|d| d.get_u64())?,
        })
    }
}

impl Codec for Crl {
    fn encode(&self, enc: &mut Encoder) {
        self.tbs.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(Crl {
            tbs: CrlTbs::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn root() -> CertificateAuthority {
        let mut rng = ChaChaRng::from_seed_bytes(b"ca test root");
        CertificateAuthority::create_root(&mut rng, dn("/O=Grid/CN=Root CA"), 512, 0, 1_000_000)
    }

    #[test]
    fn root_is_self_signed_ca() {
        let ca = root();
        let cert = ca.certificate();
        assert!(cert.is_ca());
        assert!(cert.is_self_issued());
        assert!(cert.verify_signature(cert.public_key()));
    }

    #[test]
    fn issued_identity_verifies_against_ca() {
        let ca = root();
        let mut rng = ChaChaRng::from_seed_bytes(b"user");
        let cred = ca.issue_identity(&mut rng, dn("/O=Grid/CN=Jane"), 512, 0, 500_000);
        let leaf = cred.certificate();
        assert!(!leaf.is_ca());
        assert_eq!(leaf.issuer(), ca.name());
        assert!(leaf.verify_signature(ca.certificate().public_key()));
        // Chain includes the CA cert.
        assert_eq!(cred.chain().len(), 2);
    }

    #[test]
    fn serials_are_unique() {
        let ca = root();
        let mut rng = ChaChaRng::from_seed_bytes(b"serials");
        let a = ca.issue_identity(&mut rng, dn("/O=Grid/CN=A"), 512, 0, 10);
        let b = ca.issue_identity(&mut rng, dn("/O=Grid/CN=B"), 512, 0, 10);
        assert_ne!(a.certificate().tbs.serial, b.certificate().tbs.serial);
    }

    #[test]
    fn intermediate_chain() {
        let ca = root();
        let mut rng = ChaChaRng::from_seed_bytes(b"intermediate");
        let inter = CertificateAuthority::create_intermediate(
            &mut rng,
            &ca,
            dn("/O=Grid/OU=Site/CN=Site CA"),
            512,
            Some(0),
            Validity {
                not_before: 0,
                not_after: 500_000,
            },
        );
        assert!(inter.certificate().is_ca());
        assert!(inter
            .certificate()
            .verify_signature(ca.certificate().public_key()));
        let mut rng2 = ChaChaRng::from_seed_bytes(b"leaf");
        let cred = inter.issue_identity(&mut rng2, dn("/O=Grid/OU=Site/CN=U"), 512, 0, 100);
        assert!(cred
            .certificate()
            .verify_signature(inter.certificate().public_key()));
    }

    #[test]
    fn host_identity_carries_alt_names() {
        let ca = root();
        let mut rng = ChaChaRng::from_seed_bytes(b"host");
        let cred = ca.issue_host_identity(
            &mut rng,
            dn("/O=Grid/CN=host compute1.site.org"),
            vec!["compute1.site.org".to_string()],
            512,
            0,
            100,
        );
        assert_eq!(
            cred.certificate().tbs.extensions.subject_alt_names,
            vec!["compute1.site.org".to_string()]
        );
    }

    #[test]
    fn crl_signs_and_checks() {
        let ca = root();
        let crl = ca.issue_crl(vec![5, 9], 100, 200);
        assert!(crl.verify(ca.certificate().public_key()));
        assert!(crl.is_revoked(5));
        assert!(crl.is_revoked(9));
        assert!(!crl.is_revoked(6));
        assert!(!crl.is_stale(150));
        assert!(crl.is_stale(201));
    }

    #[test]
    fn crl_tamper_detected() {
        let ca = root();
        let mut crl = ca.issue_crl(vec![5], 100, 200);
        crl.tbs.revoked_serials.clear();
        assert!(!crl.verify(ca.certificate().public_key()));
    }

    #[test]
    fn crl_codec_roundtrip() {
        let ca = root();
        let crl = ca.issue_crl(vec![1, 2, 3], 100, 200);
        let decoded = Crl::from_bytes(&crl.to_bytes()).unwrap();
        assert_eq!(decoded, crl);
    }
}
