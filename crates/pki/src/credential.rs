//! Credentials: a certificate chain plus the matching private key.
//!
//! A GSI entity (user, service, or host) authenticates with a
//! [`Credential`]. For a plain identity the chain is
//! `[end-entity cert, CA cert...]`; after `grid-proxy-init` style sign-on
//! the chain grows proxies at the front: `[proxy, EEC, CA...]`.

use crate::cert::Certificate;
use crate::name::DistinguishedName;
use gridsec_crypto::rsa::RsaKeyPair;

/// A certificate chain (leaf first) and the leaf's private key.
#[derive(Clone, Debug)]
pub struct Credential {
    chain: Vec<Certificate>,
    key: RsaKeyPair,
}

impl Credential {
    /// Assemble a credential. `chain[0]` must be the certificate whose
    /// public key matches `key`; this is asserted.
    pub fn new(chain: Vec<Certificate>, key: RsaKeyPair) -> Self {
        assert!(!chain.is_empty(), "credential chain must be non-empty");
        assert_eq!(
            chain[0].public_key(),
            key.public(),
            "leaf certificate must certify the private key"
        );
        Credential { chain, key }
    }

    /// The leaf certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.chain[0]
    }

    /// The full chain, leaf first.
    pub fn chain(&self) -> &[Certificate] {
        &self.chain
    }

    /// The private key.
    pub fn key(&self) -> &RsaKeyPair {
        &self.key
    }

    /// The leaf subject name.
    pub fn subject(&self) -> &DistinguishedName {
        self.certificate().subject()
    }

    /// Sign a message with the leaf key (PKCS#1 v1.5 / SHA-256).
    pub fn sign(&self, msg: &[u8]) -> Vec<u8> {
        self.key.sign_pkcs1_sha256(msg)
    }

    /// Number of proxy certificates at the front of the chain.
    pub fn proxy_depth(&self) -> usize {
        self.chain.iter().take_while(|c| c.is_proxy()).count()
    }

    /// The *base identity*: the subject of the first non-proxy certificate
    /// (the end-entity certificate). For a plain identity this is just the
    /// leaf subject. This is the name the paper's grid-mapfile and the
    /// "proxies of the same user trust each other" policy key on.
    pub fn base_identity(&self) -> &DistinguishedName {
        self.chain
            .iter()
            .find(|c| !c.is_proxy())
            .map(|c| c.subject())
            .unwrap_or_else(|| self.certificate().subject())
    }

    /// `true` if this credential is (or chains up to) the same base
    /// identity as `other` — the GT2 implicit trust rule between proxies
    /// issued by the same user (paper §3).
    pub fn same_base_identity(&self, other: &Credential) -> bool {
        self.base_identity() == other.base_identity()
    }
}

#[cfg(test)]
mod tests {
    use crate::ca::CertificateAuthority;
    use crate::name::DistinguishedName;
    use crate::proxy::{issue_proxy, ProxyType};
    use gridsec_crypto::rng::ChaChaRng;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn base_identity_of_plain_credential() {
        let mut rng = ChaChaRng::from_seed_bytes(b"cred plain");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        let cred = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500);
        assert_eq!(cred.base_identity(), &dn("/O=G/CN=Jane"));
        assert_eq!(cred.proxy_depth(), 0);
        assert_eq!(cred.subject(), &dn("/O=G/CN=Jane"));
    }

    #[test]
    fn base_identity_pierces_proxies() {
        let mut rng = ChaChaRng::from_seed_bytes(b"cred proxy");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 10_000);
        let p1 = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 10, 100).unwrap();
        let p2 = issue_proxy(&mut rng, &p1, ProxyType::Impersonation, 512, 10, 50).unwrap();
        assert_eq!(p2.proxy_depth(), 2);
        assert_eq!(p2.base_identity(), &dn("/O=G/CN=Jane"));
        assert_ne!(p2.subject(), &dn("/O=G/CN=Jane"));
    }

    #[test]
    fn same_base_identity_rule() {
        let mut rng = ChaChaRng::from_seed_bytes(b"cred same");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 10_000);
        let eve = ca.issue_identity(&mut rng, dn("/O=G/CN=Eve"), 512, 0, 10_000);
        let jp1 = issue_proxy(&mut rng, &jane, ProxyType::Impersonation, 512, 10, 100).unwrap();
        let jp2 = issue_proxy(&mut rng, &jane, ProxyType::Impersonation, 512, 10, 100).unwrap();
        let ep = issue_proxy(&mut rng, &eve, ProxyType::Impersonation, 512, 10, 100).unwrap();
        assert!(jp1.same_base_identity(&jp2));
        assert!(jp1.same_base_identity(&jane));
        assert!(!jp1.same_base_identity(&ep));
    }

    #[test]
    fn signing_uses_leaf_key() {
        let mut rng = ChaChaRng::from_seed_bytes(b"cred sign");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        let cred = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500);
        let sig = cred.sign(b"request");
        assert!(cred
            .certificate()
            .public_key()
            .verify_pkcs1_sha256(b"request", &sig));
    }

    #[test]
    #[should_panic(expected = "leaf certificate must certify")]
    fn mismatched_key_panics() {
        let mut rng = ChaChaRng::from_seed_bytes(b"cred mismatch");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        let a = ca.issue_identity(&mut rng, dn("/O=G/CN=A"), 512, 0, 500);
        let b = ca.issue_identity(&mut rng, dn("/O=G/CN=B"), 512, 0, 500);
        let _ = super::Credential::new(a.chain().to_vec(), b.key().clone());
    }
}
