//! Certificate chain validation with RFC 3820 proxy rules.
//!
//! Given a chain (leaf first) and a [`TrustStore`], [`validate_chain`]
//! walks from the trust anchor down to the leaf enforcing:
//!
//! * signature chaining, validity windows, and revocation;
//! * CA structure: `BasicConstraints.is_ca`, `certSign` usage, and CA
//!   path-length budgets;
//! * the proxy profile: proxies are issued only by end entities or other
//!   proxies, the subject extends the issuer by exactly one `CN`
//!   component, issuers need `digitalSignature` usage, and proxy
//!   path-length budgets are enforced;
//! * effective rights: `Limited` anywhere in the chain makes the whole
//!   chain limited; `Independent` severs inheritance; `Restricted`
//!   policies accumulate so authorization layers can intersect them.
//!
//! The output [`ValidatedIdentity`] carries the *base identity* (the
//! end-entity subject), which is what grid-mapfiles, CAS policies, and
//! the "same user's proxies trust each other" rule key on.
//!
//! [`CachedValidator`] memoizes successful walks keyed on the chain
//! digest and the trust/CRL store generations, so services that see the
//! same chain repeatedly (per-message XML signatures, repeated context
//! establishment) pay the RSA verification cost once per chain rather
//! than once per use. Negative results are never cached.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use crate::cert::{key_usage, Certificate, ProxyPolicy};
use crate::encoding::Codec;
use crate::name::DistinguishedName;
use crate::store::{CrlStore, TrustStore};
use crate::PkiError;
use gridsec_crypto::rsa::{RsaPublicKey, RsaVerifyCtx};
use gridsec_crypto::sha256::sha256;

/// The rights the validated chain conveys relative to its base identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EffectiveRights {
    /// Full impersonation of the base identity.
    Full,
    /// Site-defined reduced rights (limited proxy somewhere in the chain).
    Limited,
    /// No inherited rights: the leaf is an independent identity.
    Independent,
}

/// The result of a successful chain validation.
#[derive(Clone, Debug)]
pub struct ValidatedIdentity {
    /// Leaf subject name.
    pub subject: DistinguishedName,
    /// End-entity subject (the "grid identity" of the user or host).
    pub base_identity: DistinguishedName,
    /// Leaf public key (the key to authenticate the peer against).
    pub public_key: RsaPublicKey,
    /// Number of proxy certificates in the chain.
    pub proxy_depth: usize,
    /// Effective rights after combining proxy policies.
    pub rights: EffectiveRights,
    /// Restricted-proxy policies in chain order (language, policy bytes).
    pub restrictions: Vec<(String, Vec<u8>)>,
}

/// Validate `chain` (leaf first) against `trust` at time `now`, without
/// revocation checking.
pub fn validate_chain(
    chain: &[Certificate],
    trust: &TrustStore,
    now: u64,
) -> Result<ValidatedIdentity, PkiError> {
    validate_chain_with_crls(chain, trust, &CrlStore::new(), now)
}

#[derive(PartialEq, Clone, Copy)]
enum Phase {
    Ca,
    EndEntity,
}

/// Validate `chain` (leaf first) against `trust` and `crls` at time `now`.
pub fn validate_chain_with_crls(
    chain: &[Certificate],
    trust: &TrustStore,
    crls: &CrlStore,
    now: u64,
) -> Result<ValidatedIdentity, PkiError> {
    validate_chain_inner(chain, trust, crls, now, &mut |cert, key| {
        cert.verify_signature(key)
    })
}

/// The chain walk with the signature check abstracted: `verify(cert,
/// issuer_key)` decides each certificate's signature. The plain entry
/// points pass `Certificate::verify_signature`; [`CachedValidator`]
/// passes shared per-issuer [`RsaVerifyCtx`]s, and its batch path
/// passes a collector that defers the checks entirely.
fn validate_chain_inner(
    chain: &[Certificate],
    trust: &TrustStore,
    crls: &CrlStore,
    now: u64,
    verify: &mut dyn FnMut(&Certificate, &RsaPublicKey) -> bool,
) -> Result<ValidatedIdentity, PkiError> {
    if chain.is_empty() {
        return Err(PkiError::InvalidChain("empty chain"));
    }

    // ------------------------------------------------------------------
    // Locate the trust anchor for the topmost certificate.
    // ------------------------------------------------------------------
    let top = chain.last().unwrap();
    let anchor_key: RsaPublicKey = if trust.contains(top) {
        // The chain includes the trusted root itself; its own key signs it.
        top.public_key().clone()
    } else {
        let root = trust
            .find_by_subject(top.issuer())
            .ok_or(PkiError::UntrustedRoot)?;
        if !root.tbs.validity.contains(now) {
            return Err(PkiError::Expired {
                now,
                not_before: root.tbs.validity.not_before,
                not_after: root.tbs.validity.not_after,
            });
        }
        root.public_key().clone()
    };

    // ------------------------------------------------------------------
    // Walk from the anchor side down to the leaf.
    // ------------------------------------------------------------------
    let mut phase = Phase::Ca;
    let mut parent_key = anchor_key;
    let mut parent_cert: Option<&Certificate> = None;
    let mut base_identity: Option<DistinguishedName> = None;
    let mut proxy_depth = 0usize;
    let mut rights = EffectiveRights::Full;
    let mut restrictions: Vec<(String, Vec<u8>)> = Vec::new();
    let mut ca_budget: Option<u32> = None;
    let mut proxy_budget: Option<u32> = None;

    for cert in chain.iter().rev() {
        // Universal checks: window, signature, revocation.
        if !cert.tbs.validity.contains(now) {
            return Err(PkiError::Expired {
                now,
                not_before: cert.tbs.validity.not_before,
                not_after: cert.tbs.validity.not_after,
            });
        }
        if !verify(cert, &parent_key) {
            return Err(PkiError::BadSignature);
        }
        if crls.is_revoked(cert.issuer(), cert.tbs.serial, now) {
            return Err(PkiError::Revoked {
                serial: cert.tbs.serial,
            });
        }

        if cert.is_proxy() {
            // Proxy structural rules.
            if cert.is_ca() {
                return Err(PkiError::InvalidProxy("proxy certificate marked as CA"));
            }
            let parent = match (phase, parent_cert) {
                (Phase::EndEntity, Some(p)) => p,
                _ => return Err(PkiError::InvalidProxy("proxy not issued by an end entity")),
            };
            if parent.key_usage() & key_usage::DIGITAL_SIGNATURE == 0 {
                return Err(PkiError::InvalidProxy(
                    "proxy issuer lacks digitalSignature usage",
                ));
            }
            if cert.issuer() != parent.subject() {
                return Err(PkiError::InvalidProxy("proxy issuer/subject mismatch"));
            }
            if !cert.subject().is_proxy_extension_of(parent.subject()) {
                return Err(PkiError::InvalidProxy(
                    "proxy subject must extend issuer by one CN",
                ));
            }
            // Path-length budget for proxies.
            if proxy_budget == Some(0) {
                return Err(PkiError::InvalidProxy("proxy path length exceeded"));
            }
            proxy_budget = proxy_budget.map(|b| b - 1);
            let info = cert.tbs.extensions.proxy_cert_info.as_ref().unwrap();
            if let Some(own) = info.path_len_constraint {
                proxy_budget = Some(proxy_budget.map_or(own, |b| b.min(own)));
            }
            // Rights combination.
            match &info.policy {
                ProxyPolicy::Impersonation => {}
                ProxyPolicy::Limited => {
                    if rights == EffectiveRights::Full {
                        rights = EffectiveRights::Limited;
                    }
                }
                ProxyPolicy::Independent => {
                    rights = EffectiveRights::Independent;
                }
                ProxyPolicy::Restricted { language, policy } => {
                    restrictions.push((language.clone(), policy.clone()));
                }
            }
            proxy_depth += 1;
        } else if cert.is_ca() {
            if phase != Phase::Ca {
                return Err(PkiError::InvalidChain("CA certificate below end entity"));
            }
            if cert.key_usage() & key_usage::CERT_SIGN == 0 {
                return Err(PkiError::InvalidChain("CA lacks certSign usage"));
            }
            // CA path-length accounting: self-issued roots do not consume
            // budget; intermediates do.
            if !cert.is_self_issued() {
                if ca_budget == Some(0) {
                    return Err(PkiError::InvalidChain("CA path length exceeded"));
                }
                ca_budget = ca_budget.map(|b| b - 1);
            }
            if let Some(own) = cert
                .tbs
                .extensions
                .basic_constraints
                .and_then(|b| b.path_len)
            {
                ca_budget = Some(ca_budget.map_or(own, |b| b.min(own)));
            }
        } else {
            // End-entity certificate.
            if phase != Phase::Ca {
                return Err(PkiError::InvalidChain("multiple end entities in chain"));
            }
            phase = Phase::EndEntity;
            base_identity = Some(cert.subject().clone());
        }

        parent_key = cert.public_key().clone();
        parent_cert = Some(cert);
    }

    let leaf = &chain[0];
    Ok(ValidatedIdentity {
        subject: leaf.subject().clone(),
        base_identity: base_identity.unwrap_or_else(|| leaf.subject().clone()),
        public_key: leaf.public_key().clone(),
        proxy_depth,
        rights,
        restrictions,
    })
}

// ----------------------------------------------------------------------
// Memoized validation
// ----------------------------------------------------------------------

struct CachedEntry {
    identity: ValidatedIdentity,
    /// Intersection of the validity windows of every certificate the
    /// walk touched (chain plus external anchor). Outside it, the
    /// cached result may no longer hold, so the walk is redone.
    not_before: u64,
    not_after: u64,
}

/// Memoized chain validation.
///
/// Entries are keyed on a digest of the chain's certificate
/// fingerprints and are only valid for the trust-store / CRL-store
/// generations they were computed under: any store mutation bumps its
/// generation, which clears the cache on the next call. Hits are
/// additionally gated on the intersected validity window of the chain,
/// so expiry is honoured without a revalidation walk. Only *successful*
/// validations are cached — a rejected chain is re-examined every time,
/// so an attacker cannot pin a negative (or have a transient failure
/// outlive its cause).
///
/// Eviction is FIFO over a bounded capacity, so cache behaviour is a
/// pure function of the call sequence — two identical runs hit, miss,
/// and evict identically (the determinism contract of the simulation
/// harness).
pub struct CachedValidator {
    capacity: usize,
    trust_generation: u64,
    crl_generation: u64,
    entries: HashMap<[u8; 32], CachedEntry>,
    order: VecDeque<[u8; 32]>,
    /// Shared per-issuer-key verify contexts (precomputed Montgomery
    /// state), keyed on a digest of the public key. Cleared together
    /// with the result cache on any store-generation bump: the contexts
    /// are pure functions of the keys, but tying their lifetime to the
    /// trust/CRL epoch keeps "what is precomputed" a function of the
    /// current stores — and bounds staleness the same way the result
    /// cache does.
    verify_ctxs: HashMap<[u8; 32], Arc<RsaVerifyCtx>>,
    hits: u64,
    misses: u64,
}

/// Digest identifying a public key (length-prefixed `n` and `e`).
fn key_digest(key: &RsaPublicKey) -> [u8; 32] {
    let n = key.modulus().to_bytes_be();
    let e = key.exponent().to_bytes_be();
    let mut data = Vec::with_capacity(n.len() + e.len() + 8);
    data.extend_from_slice(&(n.len() as u32).to_be_bytes());
    data.extend_from_slice(&n);
    data.extend_from_slice(&(e.len() as u32).to_be_bytes());
    data.extend_from_slice(&e);
    sha256(&data)
}

/// One deferred signature check collected during a batch walk.
struct SigJob {
    chain_idx: usize,
    msg: Vec<u8>,
    sig: Vec<u8>,
}

impl CachedValidator {
    /// Validator memoizing at most `capacity` chains (`capacity > 0`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "validator cache capacity must be positive");
        CachedValidator {
            capacity,
            trust_generation: 0,
            crl_generation: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            verify_ctxs: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Bound on retained verify contexts; reaching it clears the map
    /// (deterministic, like the FIFO result cache, and far above the
    /// issuer-key population of any realistic deployment).
    const MAX_VERIFY_CTXS: usize = 64;

    /// Shared verify context for `key`, creating (and memoizing) one on
    /// first sight. Associated fn so callers can split-borrow the map
    /// while iterating other fields.
    fn ctx_for(
        ctxs: &mut HashMap<[u8; 32], Arc<RsaVerifyCtx>>,
        key: &RsaPublicKey,
    ) -> Arc<RsaVerifyCtx> {
        let digest = key_digest(key);
        if let Some(ctx) = ctxs.get(&digest) {
            return Arc::clone(ctx);
        }
        if ctxs.len() >= Self::MAX_VERIFY_CTXS {
            ctxs.clear();
        }
        let ctx = Arc::new(key.verify_ctx());
        ctxs.insert(digest, Arc::clone(&ctx));
        ctx
    }

    /// Drop every memoized result and verify context if either store's
    /// generation moved since the last call.
    fn refresh_generations(&mut self, trust: &TrustStore, crls: &CrlStore) {
        if trust.generation() != self.trust_generation || crls.generation() != self.crl_generation {
            // A store changed underneath us: every cached result is
            // suspect (a new CRL may revoke, a removed anchor may
            // untrust), so drop them all — including the precomputed
            // verify contexts, whose issuer population belonged to the
            // old epoch.
            self.entries.clear();
            self.order.clear();
            self.verify_ctxs.clear();
            self.trust_generation = trust.generation();
            self.crl_generation = crls.generation();
        }
    }

    /// Window-gated cache probe; removes a stale entry on the way out.
    fn cache_lookup(&mut self, key: &[u8; 32], now: u64) -> Option<ValidatedIdentity> {
        if let Some(entry) = self.entries.get(key) {
            if entry.not_before <= now && now <= entry.not_after {
                self.hits += 1;
                return Some(entry.identity.clone());
            }
            // Outside the cached window: the stale entry is dropped and
            // the real walk reports the precise error (or caches a
            // fresh window).
            self.entries.remove(key);
            self.order.retain(|k| k != key);
        }
        None
    }

    /// Memoize a successful walk under `key`, intersecting validity
    /// windows over everything the walk checked (chain plus external
    /// anchor), with FIFO eviction at capacity.
    fn cache_insert(
        &mut self,
        key: [u8; 32],
        chain: &[Certificate],
        trust: &TrustStore,
        identity: &ValidatedIdentity,
    ) {
        let mut not_before = 0u64;
        let mut not_after = u64::MAX;
        for cert in chain {
            not_before = not_before.max(cert.tbs.validity.not_before);
            not_after = not_after.min(cert.tbs.validity.not_after);
        }
        let top = chain.last().expect("validated chain is non-empty");
        if !trust.contains(top) {
            if let Some(root) = trust.find_by_subject(top.issuer()) {
                not_before = not_before.max(root.tbs.validity.not_before);
                not_after = not_after.min(root.tbs.validity.not_after);
            }
        }

        if self.entries.len() == self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key,
            CachedEntry {
                identity: identity.clone(),
                not_before,
                not_after,
            },
        );
        self.order.push_back(key);
    }

    /// Digest identifying a chain: SHA-256 over the concatenated
    /// certificate fingerprints, leaf first.
    pub fn chain_digest(chain: &[Certificate]) -> [u8; 32] {
        let mut data = Vec::with_capacity(32 * chain.len());
        for cert in chain {
            data.extend_from_slice(&cert.fingerprint());
        }
        sha256(&data)
    }

    /// Validate `chain` against `trust` and `crls` at `now`, reusing a
    /// memoized result when one is applicable. Semantically identical
    /// to [`validate_chain_with_crls`].
    pub fn validate(
        &mut self,
        chain: &[Certificate],
        trust: &TrustStore,
        crls: &CrlStore,
        now: u64,
    ) -> Result<ValidatedIdentity, PkiError> {
        self.refresh_generations(trust, crls);

        let key = Self::chain_digest(chain);
        if let Some(identity) = self.cache_lookup(&key, now) {
            return Ok(identity);
        }
        self.misses += 1;

        // Walk with shared per-issuer verify contexts: chains under one
        // CA reuse its Montgomery state across calls. The verdicts are
        // identical to `Certificate::verify_signature` by construction.
        let ctxs = &mut self.verify_ctxs;
        let identity = validate_chain_inner(chain, trust, crls, now, &mut |cert, issuer_key| {
            cert.verify_signature_with(&Self::ctx_for(ctxs, issuer_key))
        })?;

        self.cache_insert(key, chain, trust, &identity);
        Ok(identity)
    }

    /// Validate many chains at once, grouping all deferred signature
    /// checks by issuer key and running each group through
    /// [`RsaVerifyCtx::verify_batch`]. Results are positionally aligned
    /// with `chains` and each is identical to what [`Self::validate`]
    /// would return for that chain alone:
    ///
    /// * chains whose structural walk and batched signature checks all
    ///   pass are cached and returned `Ok` directly;
    /// * any chain with a structural error *or* a failed batched
    ///   signature is re-run through the individual path, so the exact
    ///   error — including the walk-order position of a bad signature
    ///   relative to other defects — matches the one-at-a-time API.
    pub fn validate_batch(
        &mut self,
        chains: &[&[Certificate]],
        trust: &TrustStore,
        crls: &CrlStore,
        now: u64,
    ) -> Vec<Result<ValidatedIdentity, PkiError>> {
        self.refresh_generations(trust, crls);

        // Phase 1: per-chain structural walk with signature checks
        // deferred into per-issuer groups. `None` marks a chain that
        // still needs the individual path (cache-stale, structural
        // failure, or later a batch signature failure).
        let mut results: Vec<Option<Result<ValidatedIdentity, PkiError>>> =
            Vec::with_capacity(chains.len());
        let mut walked: Vec<Option<ValidatedIdentity>> = vec![None; chains.len()];
        let mut groups: BTreeMap<[u8; 32], (RsaPublicKey, Vec<SigJob>)> = BTreeMap::new();
        for (i, chain) in chains.iter().enumerate() {
            let key = Self::chain_digest(chain);
            if let Some(identity) = self.cache_lookup(&key, now) {
                results.push(Some(Ok(identity)));
                continue;
            }
            let walk = validate_chain_inner(chain, trust, crls, now, &mut |cert, issuer_key| {
                let entry = groups
                    .entry(key_digest(issuer_key))
                    .or_insert_with(|| (issuer_key.clone(), Vec::new()));
                entry.1.push(SigJob {
                    chain_idx: i,
                    msg: cert.tbs.to_bytes(),
                    sig: cert.signature.clone(),
                });
                true
            });
            match walk {
                Ok(identity) => {
                    walked[i] = Some(identity);
                    results.push(None);
                }
                Err(_) => {
                    // Structural failure. Drop the jobs this walk
                    // queued — the individual re-run below decides
                    // whether a deferred bad signature should have
                    // preempted the structural error.
                    for (_, jobs) in groups.values_mut() {
                        jobs.retain(|j| j.chain_idx != i);
                    }
                    results.push(None);
                }
            }
        }

        // Phase 2: one batched verification per issuer key. BTreeMap
        // order keeps context creation deterministic.
        let mut sig_failed = vec![false; chains.len()];
        for (key, jobs) in groups.values() {
            if jobs.is_empty() {
                continue;
            }
            let ctx = Self::ctx_for(&mut self.verify_ctxs, key);
            let items: Vec<(&[u8], &[u8])> = jobs
                .iter()
                .map(|j| (j.msg.as_slice(), j.sig.as_slice()))
                .collect();
            let outcome = ctx.verify_batch(&items);
            for (job, &ok) in jobs.iter().zip(outcome.valid()) {
                if !ok {
                    sig_failed[job.chain_idx] = true;
                }
            }
        }

        // Phase 3: settle each chain. All-pass walks become cached
        // positives; everything else re-runs individually for the
        // exact one-at-a-time verdict.
        results
            .into_iter()
            .enumerate()
            .map(|(i, settled)| {
                if let Some(done) = settled {
                    return done;
                }
                match (&walked[i], sig_failed[i]) {
                    (Some(identity), false) => {
                        self.misses += 1;
                        let key = Self::chain_digest(chains[i]);
                        self.cache_insert(key, chains[i], trust, identity);
                        Ok(identity.clone())
                    }
                    _ => self.validate(chains[i], trust, crls, now),
                }
            })
            .collect()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (full walks) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of issuer keys with a retained precomputed verify
    /// context (drops to zero on any store-generation bump).
    pub fn precomputed_keys(&self) -> usize {
        self.verify_ctxs.len()
    }

    /// Number of memoized chains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::cert::Validity;
    use crate::credential::Credential;
    use crate::proxy::{issue_proxy, issue_proxy_with_path_len, ProxyType};
    use gridsec_crypto::rng::ChaChaRng;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        ca: CertificateAuthority,
        trust: TrustStore,
        user: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"validate tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            ca,
            trust,
            user,
        }
    }

    #[test]
    fn plain_identity_validates() {
        let w = world();
        let id = validate_chain(w.user.chain(), &w.trust, 500).unwrap();
        assert_eq!(id.subject, dn("/O=G/CN=Jane"));
        assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));
        assert_eq!(id.proxy_depth, 0);
        assert_eq!(id.rights, EffectiveRights::Full);
        assert!(id.restrictions.is_empty());
    }

    #[test]
    fn chain_without_root_cert_validates() {
        let w = world();
        // Only the leaf: the root is found in the trust store by name.
        let chain = vec![w.user.certificate().clone()];
        let id = validate_chain(&chain, &w.trust, 500).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));
    }

    #[test]
    fn proxy_chain_validates() {
        let mut w = world();
        let p1 = issue_proxy(&mut w.rng, &w.user, ProxyType::Impersonation, 512, 10, 1000).unwrap();
        let p2 = issue_proxy(&mut w.rng, &p1, ProxyType::Impersonation, 512, 20, 500).unwrap();
        let id = validate_chain(p2.chain(), &w.trust, 100).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));
        assert_eq!(id.proxy_depth, 2);
        assert_eq!(id.rights, EffectiveRights::Full);
        assert_eq!(&id.public_key, p2.certificate().public_key());
    }

    #[test]
    fn untrusted_root_rejected() {
        let w = world();
        let empty = TrustStore::new();
        assert_eq!(
            validate_chain(w.user.chain(), &empty, 500).unwrap_err(),
            PkiError::UntrustedRoot
        );
    }

    #[test]
    fn expired_leaf_rejected() {
        let w = world();
        let err = validate_chain(w.user.chain(), &w.trust, 200_000).unwrap_err();
        assert!(matches!(err, PkiError::Expired { .. }));
    }

    #[test]
    fn expired_proxy_rejected_while_eec_ok() {
        let mut w = world();
        let p = issue_proxy(&mut w.rng, &w.user, ProxyType::Impersonation, 512, 10, 50).unwrap();
        assert!(validate_chain(p.chain(), &w.trust, 40).is_ok());
        let err = validate_chain(p.chain(), &w.trust, 100).unwrap_err();
        assert!(matches!(err, PkiError::Expired { .. }));
        // EEC itself is still fine.
        assert!(validate_chain(w.user.chain(), &w.trust, 100).is_ok());
    }

    #[test]
    fn revoked_eec_rejected() {
        let w = world();
        let serial = w.user.certificate().tbs.serial;
        let crl = w.ca.issue_crl(vec![serial], 100, 10_000);
        let mut crls = CrlStore::new();
        assert!(crls.add(crl, w.ca.certificate()));
        let err = validate_chain_with_crls(w.user.chain(), &w.trust, &crls, 500).unwrap_err();
        assert_eq!(err, PkiError::Revoked { serial });
    }

    #[test]
    fn revocation_cuts_off_proxies_too() {
        let mut w = world();
        let p = issue_proxy(&mut w.rng, &w.user, ProxyType::Impersonation, 512, 10, 1000).unwrap();
        let serial = w.user.certificate().tbs.serial;
        let crl = w.ca.issue_crl(vec![serial], 100, 10_000);
        let mut crls = CrlStore::new();
        assert!(crls.add(crl, w.ca.certificate()));
        assert!(validate_chain_with_crls(p.chain(), &w.trust, &crls, 500).is_err());
    }

    #[test]
    fn limited_proxy_is_sticky() {
        let mut w = world();
        let lim = issue_proxy(&mut w.rng, &w.user, ProxyType::Limited, 512, 10, 1000).unwrap();
        let full_on_top =
            issue_proxy(&mut w.rng, &lim, ProxyType::Impersonation, 512, 20, 500).unwrap();
        let id = validate_chain(full_on_top.chain(), &w.trust, 100).unwrap();
        assert_eq!(id.rights, EffectiveRights::Limited);
    }

    #[test]
    fn independent_proxy_dominates() {
        let mut w = world();
        let ind = issue_proxy(&mut w.rng, &w.user, ProxyType::Independent, 512, 10, 1000).unwrap();
        let id = validate_chain(ind.chain(), &w.trust, 100).unwrap();
        assert_eq!(id.rights, EffectiveRights::Independent);
    }

    #[test]
    fn restricted_policies_accumulate() {
        let mut w = world();
        let r1 = issue_proxy(
            &mut w.rng,
            &w.user,
            ProxyType::Restricted {
                language: "cas-rights-v1".into(),
                policy: b"p1".to_vec(),
            },
            512,
            10,
            1000,
        )
        .unwrap();
        let r2 = issue_proxy(
            &mut w.rng,
            &r1,
            ProxyType::Restricted {
                language: "cas-rights-v1".into(),
                policy: b"p2".to_vec(),
            },
            512,
            20,
            500,
        )
        .unwrap();
        let id = validate_chain(r2.chain(), &w.trust, 100).unwrap();
        assert_eq!(
            id.restrictions,
            vec![
                ("cas-rights-v1".to_string(), b"p1".to_vec()),
                ("cas-rights-v1".to_string(), b"p2".to_vec())
            ]
        );
    }

    #[test]
    fn proxy_path_len_enforced_at_validation() {
        let mut w = world();
        // Allow 1 proxy below; then manually chain two more by bypassing
        // issuance checks (attacker-style), and ensure validation catches it.
        let p1 = issue_proxy_with_path_len(
            &mut w.rng,
            &w.user,
            ProxyType::Impersonation,
            Some(1),
            512,
            10,
            1000,
        )
        .unwrap();
        let p2 = issue_proxy(&mut w.rng, &p1, ProxyType::Impersonation, 512, 20, 500).unwrap();
        assert!(validate_chain(p2.chain(), &w.trust, 100).is_ok());
        let p3 = issue_proxy(&mut w.rng, &p2, ProxyType::Impersonation, 512, 30, 200).unwrap();
        let err = validate_chain(p3.chain(), &w.trust, 100).unwrap_err();
        assert!(matches!(
            err,
            PkiError::InvalidProxy("proxy path length exceeded")
        ));
    }

    #[test]
    fn forged_proxy_signature_rejected() {
        let mut w = world();
        let p = issue_proxy(&mut w.rng, &w.user, ProxyType::Impersonation, 512, 10, 1000).unwrap();
        let mut chain = p.chain().to_vec();
        // Tamper with the proxy subject (e.g. to claim another identity).
        chain[0].tbs.subject = dn("/O=G/CN=Eve/CN=1");
        assert_eq!(
            validate_chain(&chain, &w.trust, 100).unwrap_err(),
            PkiError::BadSignature
        );
    }

    #[test]
    fn proxy_forged_by_other_user_rejected() {
        let mut w = world();
        // Eve issues a "proxy" whose subject claims to extend Jane's name.
        let eve =
            w.ca.issue_identity(&mut w.rng, dn("/O=G/CN=Eve"), 512, 0, 100_000);
        let fake = issue_proxy(&mut w.rng, &eve, ProxyType::Impersonation, 512, 10, 100).unwrap();
        let mut chain = fake.chain().to_vec();
        // Graft Eve's proxy onto Jane's chain.
        chain[1] = w.user.certificate().clone();
        chain[2] = w.ca.certificate().clone();
        let err = validate_chain(&chain, &w.trust, 100).unwrap_err();
        // Fails either signature or name chaining depending on grafting.
        assert!(matches!(
            err,
            PkiError::BadSignature | PkiError::InvalidProxy(_)
        ));
    }

    #[test]
    fn intermediate_ca_path_len_enforced() {
        let mut rng = ChaChaRng::from_seed_bytes(b"ca pathlen");
        let root =
            CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=Root"), 512, 0, 1_000_000);
        // Root allows path_len 0 below it via an intermediate with own 0.
        let inter1 = CertificateAuthority::create_intermediate(
            &mut rng,
            &root,
            dn("/O=G/CN=Inter1"),
            512,
            Some(0),
            Validity {
                not_before: 0,
                not_after: 1_000_000,
            },
        );
        let inter2 = CertificateAuthority::create_intermediate(
            &mut rng,
            &inter1,
            dn("/O=G/CN=Inter2"),
            512,
            None,
            Validity {
                not_before: 0,
                not_after: 1_000_000,
            },
        );
        let user = inter2.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(root.certificate().clone());

        // Chain: [user, inter2, inter1, root] — inter2 exceeds inter1's 0.
        let chain = vec![
            user.certificate().clone(),
            inter2.certificate().clone(),
            inter1.certificate().clone(),
            root.certificate().clone(),
        ];
        let err = validate_chain(&chain, &trust, 100).unwrap_err();
        assert!(matches!(
            err,
            PkiError::InvalidChain("CA path length exceeded")
        ));

        // One level is fine.
        let user1 = inter1.issue_identity(&mut rng, dn("/O=G/CN=V"), 512, 0, 100_000);
        let chain = vec![
            user1.certificate().clone(),
            inter1.certificate().clone(),
            root.certificate().clone(),
        ];
        assert!(validate_chain(&chain, &trust, 100).is_ok());
    }

    #[test]
    fn ca_below_end_entity_rejected() {
        let w = world();
        // Malformed order: [CA, user] (CA as leaf below user).
        let chain = vec![
            w.ca.certificate().clone(),
            w.user.certificate().clone(),
            w.ca.certificate().clone(),
        ];
        let err = validate_chain(&chain, &w.trust, 100).unwrap_err();
        assert!(matches!(
            err,
            PkiError::InvalidChain(_) | PkiError::BadSignature
        ));
    }

    #[test]
    fn validating_ca_certificate_itself() {
        let w = world();
        let chain = vec![w.ca.certificate().clone()];
        let id = validate_chain(&chain, &w.trust, 100).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=CA"));
        assert_eq!(id.proxy_depth, 0);
    }

    #[test]
    fn empty_chain_rejected() {
        let w = world();
        assert!(matches!(
            validate_chain(&[], &w.trust, 100).unwrap_err(),
            PkiError::InvalidChain(_)
        ));
    }

    #[test]
    fn cached_validator_hits_after_first_walk() {
        let w = world();
        let mut v = CachedValidator::new(8);
        let crls = CrlStore::new();
        let id1 = v.validate(w.user.chain(), &w.trust, &crls, 500).unwrap();
        let id2 = v.validate(w.user.chain(), &w.trust, &crls, 600).unwrap();
        assert_eq!(id1.base_identity, id2.base_identity);
        assert_eq!((v.hits(), v.misses()), (1, 1));
    }

    #[test]
    fn cached_validator_sees_new_revocation() {
        let w = world();
        let mut v = CachedValidator::new(8);
        let mut crls = CrlStore::new();
        assert!(v.validate(w.user.chain(), &w.trust, &crls, 500).is_ok());
        // Revoke the user: the CRL-store generation bump must invalidate
        // the cached positive result.
        let serial = w.user.certificate().tbs.serial;
        assert!(crls.add(
            w.ca.issue_crl(vec![serial], 100, 10_000),
            w.ca.certificate()
        ));
        assert_eq!(
            v.validate(w.user.chain(), &w.trust, &crls, 500)
                .unwrap_err(),
            PkiError::Revoked { serial }
        );
        assert!(v.is_empty());
    }

    #[test]
    fn cached_validator_never_caches_negatives() {
        let w = world();
        let mut v = CachedValidator::new(8);
        let empty = TrustStore::new();
        let crls = CrlStore::new();
        for _ in 0..3 {
            assert_eq!(
                v.validate(w.user.chain(), &empty, &crls, 500).unwrap_err(),
                PkiError::UntrustedRoot
            );
        }
        assert!(v.is_empty());
        assert_eq!((v.hits(), v.misses()), (0, 3));
    }

    #[test]
    fn cached_validator_honours_expiry() {
        let w = world();
        let mut v = CachedValidator::new(8);
        let crls = CrlStore::new();
        assert!(v.validate(w.user.chain(), &w.trust, &crls, 500).is_ok());
        // User cert expires at 100_000; a hit must not outlive it.
        let err = v
            .validate(w.user.chain(), &w.trust, &crls, 200_000)
            .unwrap_err();
        assert!(matches!(err, PkiError::Expired { .. }));
        assert_eq!(v.hits(), 0);
    }

    #[test]
    fn cached_validator_evicts_fifo() {
        let mut w = world();
        let mut v = CachedValidator::new(2);
        let crls = CrlStore::new();
        let users: Vec<_> = (0..3)
            .map(|i| {
                w.ca.issue_identity(&mut w.rng, dn(&format!("/O=G/CN=U{i}")), 512, 0, 100_000)
            })
            .collect();
        for u in &users {
            v.validate(u.chain(), &w.trust, &crls, 500).unwrap();
        }
        assert_eq!(v.len(), 2);
        // Oldest (U0) was evicted: validating it again is a miss.
        let misses = v.misses();
        v.validate(users[0].chain(), &w.trust, &crls, 500).unwrap();
        assert_eq!(v.misses(), misses + 1);
    }

    #[test]
    fn self_signed_non_root_rejected() {
        let mut w = world();
        // An attacker self-signs a "CA" not present in the store.
        let rogue =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1000);
        let victim = rogue.issue_identity(&mut w.rng, dn("/O=G/CN=Jane"), 512, 0, 1000);
        assert_eq!(
            validate_chain(victim.chain(), &w.trust, 100).unwrap_err(),
            PkiError::UntrustedRoot
        );
    }
}
