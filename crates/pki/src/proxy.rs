//! Proxy certificate issuance (paper §3; Internet X.509 Proxy Certificate
//! Profile, later RFC 3820).
//!
//! The defining property: *users create proxies by signing with their own
//! credentials — no CA, no administrator*. That is what makes single
//! sign-on and dynamic delegation lightweight in GSI, and experiment C3
//! in `EXPERIMENTS.md` measures exactly this contrast.
//!
//! Two entry points:
//! * [`issue_proxy`] — local sign-on: generate a fresh key pair and sign a
//!   proxy certificate for it (what `grid-proxy-init` does).
//! * [`issue_delegated_proxy`] — remote delegation: sign a proxy
//!   certificate over a key pair generated *by the remote party*, so the
//!   private key never crosses the wire (GSI delegation over an
//!   established channel; used by `gridsec-tls` and GRAM's step 7).

use crate::cert::{
    key_usage, BasicConstraints, Certificate, Extensions, ProxyCertInfo, ProxyPolicy,
    TbsCertificate, Validity,
};
use crate::credential::Credential;
use crate::PkiError;
use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey};

/// The kind of proxy to create (maps onto [`ProxyPolicy`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProxyType {
    /// Full impersonation of the issuer.
    Impersonation,
    /// Reduced-rights proxy (GT2 semantics: e.g. data transfer but no job
    /// submission).
    Limited,
    /// New independent identity; inherits nothing.
    Independent,
    /// Rights restricted by an embedded policy.
    Restricted {
        /// Policy language identifier.
        language: String,
        /// Policy bytes.
        policy: Vec<u8>,
    },
}

impl ProxyType {
    fn to_policy(&self) -> ProxyPolicy {
        match self {
            ProxyType::Impersonation => ProxyPolicy::Impersonation,
            ProxyType::Limited => ProxyPolicy::Limited,
            ProxyType::Independent => ProxyPolicy::Independent,
            ProxyType::Restricted { language, policy } => ProxyPolicy::Restricted {
                language: language.clone(),
                policy: policy.clone(),
            },
        }
    }
}

/// Check that `issuer_cert` may issue a proxy right now, per RFC 3820.
fn check_issuer(issuer_cert: &Certificate, now: u64) -> Result<(), PkiError> {
    if issuer_cert.is_ca() {
        return Err(PkiError::InvalidProxy("CAs must not issue proxies"));
    }
    if !issuer_cert.tbs.validity.contains(now) {
        return Err(PkiError::Expired {
            now,
            not_before: issuer_cert.tbs.validity.not_before,
            not_after: issuer_cert.tbs.validity.not_after,
        });
    }
    if issuer_cert.key_usage() & key_usage::DIGITAL_SIGNATURE == 0 {
        return Err(PkiError::InvalidProxy(
            "issuer lacks digitalSignature key usage",
        ));
    }
    if let Some(info) = &issuer_cert.tbs.extensions.proxy_cert_info {
        if info.path_len_constraint == Some(0) {
            return Err(PkiError::InvalidProxy("issuer proxy path length exhausted"));
        }
    }
    Ok(())
}

/// Construct the proxy TBS for a given subject key.
fn build_proxy_tbs<E: EntropySource>(
    rng: &mut E,
    issuer_cert: &Certificate,
    subject_key: &RsaPublicKey,
    proxy_type: &ProxyType,
    path_len_constraint: Option<u32>,
    now: u64,
    lifetime: u64,
) -> TbsCertificate {
    // Unique CN component: random 64-bit serial, as GT does.
    let mut serial_bytes = [0u8; 8];
    rng.fill_bytes(&mut serial_bytes);
    let serial = u64::from_be_bytes(serial_bytes);

    // Clamp the proxy lifetime into the issuer's own validity window.
    let not_after = now
        .saturating_add(lifetime)
        .min(issuer_cert.tbs.validity.not_after);

    TbsCertificate {
        serial,
        issuer: issuer_cert.subject().clone(),
        subject: issuer_cert.subject().with_extra_cn(&serial.to_string()),
        validity: Validity {
            not_before: now,
            not_after,
        },
        public_key: subject_key.clone(),
        extensions: Extensions {
            basic_constraints: Some(BasicConstraints {
                is_ca: false,
                path_len: None,
            }),
            key_usage: Some(key_usage::DIGITAL_SIGNATURE | key_usage::KEY_ENCIPHERMENT),
            proxy_cert_info: Some(ProxyCertInfo {
                path_len_constraint,
                policy: proxy_type.to_policy(),
            }),
            subject_alt_names: vec![],
        },
    }
}

/// Create a proxy credential locally ("grid-proxy-init"): a fresh key pair
/// plus a proxy certificate signed by `parent`'s key.
///
/// `lifetime` is in simulation seconds; the default sign-on lifetime in GT
/// was 12 hours, and callers typically pass something similar.
pub fn issue_proxy<E: EntropySource>(
    rng: &mut E,
    parent: &Credential,
    proxy_type: ProxyType,
    key_bits: usize,
    now: u64,
    lifetime: u64,
) -> Result<Credential, PkiError> {
    issue_proxy_with_path_len(rng, parent, proxy_type, None, key_bits, now, lifetime)
}

/// [`issue_proxy`] with an explicit path-length constraint on how many
/// further proxies may hang below the new one.
pub fn issue_proxy_with_path_len<E: EntropySource>(
    rng: &mut E,
    parent: &Credential,
    proxy_type: ProxyType,
    path_len_constraint: Option<u32>,
    key_bits: usize,
    now: u64,
    lifetime: u64,
) -> Result<Credential, PkiError> {
    check_issuer(parent.certificate(), now)?;
    let key = RsaKeyPair::generate(rng, key_bits);
    let tbs = build_proxy_tbs(
        rng,
        parent.certificate(),
        key.public(),
        &proxy_type,
        path_len_constraint,
        now,
        lifetime,
    );
    let cert = Certificate::sign(tbs, parent.key());
    let mut chain = Vec::with_capacity(parent.chain().len() + 1);
    chain.push(cert);
    chain.extend_from_slice(parent.chain());
    Ok(Credential::new(chain, key))
}

/// Delegate to a remote party: sign a proxy certificate over
/// `remote_public_key` (whose private half was generated remotely and
/// never leaves the remote process). Returns the certificate; the remote
/// side appends it to the delegator's chain to assemble its credential.
pub fn issue_delegated_proxy<E: EntropySource>(
    rng: &mut E,
    parent: &Credential,
    remote_public_key: &RsaPublicKey,
    proxy_type: ProxyType,
    now: u64,
    lifetime: u64,
) -> Result<Certificate, PkiError> {
    check_issuer(parent.certificate(), now)?;
    let tbs = build_proxy_tbs(
        rng,
        parent.certificate(),
        remote_public_key,
        &proxy_type,
        None,
        now,
        lifetime,
    );
    Ok(Certificate::sign(tbs, parent.key()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::name::DistinguishedName;
    use gridsec_crypto::rng::ChaChaRng;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn setup() -> (ChaChaRng, CertificateAuthority, Credential) {
        let mut rng = ChaChaRng::from_seed_bytes(b"proxy tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 100_000);
        (rng, ca, user)
    }

    #[test]
    fn proxy_has_rfc3820_shape() {
        let (mut rng, _ca, user) = setup();
        let p = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 10, 1000).unwrap();
        let cert = p.certificate();
        assert!(cert.is_proxy());
        assert!(!cert.is_ca());
        assert_eq!(cert.issuer(), user.subject());
        assert!(cert.subject().is_proxy_extension_of(user.subject()));
        assert!(cert.verify_signature(user.certificate().public_key()));
        assert_eq!(p.chain().len(), user.chain().len() + 1);
    }

    #[test]
    fn proxy_lifetime_clamped_to_issuer() {
        let (mut rng, _ca, user) = setup();
        let p = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 10, u64::MAX).unwrap();
        assert_eq!(
            p.certificate().tbs.validity.not_after,
            user.certificate().tbs.validity.not_after
        );
    }

    #[test]
    fn expired_issuer_rejected() {
        let (mut rng, _ca, user) = setup();
        let err =
            issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 200_000, 10).unwrap_err();
        assert!(matches!(err, PkiError::Expired { .. }));
    }

    #[test]
    fn proxy_of_proxy() {
        let (mut rng, _ca, user) = setup();
        let p1 = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 10, 1000).unwrap();
        let p2 = issue_proxy(&mut rng, &p1, ProxyType::Impersonation, 512, 20, 500).unwrap();
        assert_eq!(p2.proxy_depth(), 2);
        assert!(p2
            .certificate()
            .subject()
            .is_proxy_extension_of(p1.certificate().subject()));
        assert!(p2
            .certificate()
            .verify_signature(p1.certificate().public_key()));
    }

    #[test]
    fn path_len_zero_blocks_further_proxies() {
        let (mut rng, _ca, user) = setup();
        let p1 = issue_proxy_with_path_len(
            &mut rng,
            &user,
            ProxyType::Impersonation,
            Some(0),
            512,
            10,
            1000,
        )
        .unwrap();
        let err = issue_proxy(&mut rng, &p1, ProxyType::Impersonation, 512, 20, 100).unwrap_err();
        assert!(matches!(err, PkiError::InvalidProxy(_)));
    }

    #[test]
    fn limited_and_restricted_policies_recorded() {
        let (mut rng, _ca, user) = setup();
        let lim = issue_proxy(&mut rng, &user, ProxyType::Limited, 512, 10, 100).unwrap();
        assert_eq!(
            lim.certificate()
                .tbs
                .extensions
                .proxy_cert_info
                .as_ref()
                .unwrap()
                .policy,
            ProxyPolicy::Limited
        );
        let res = issue_proxy(
            &mut rng,
            &user,
            ProxyType::Restricted {
                language: "cas-rights-v1".into(),
                policy: b"read-only".to_vec(),
            },
            512,
            10,
            100,
        )
        .unwrap();
        match &res
            .certificate()
            .tbs
            .extensions
            .proxy_cert_info
            .as_ref()
            .unwrap()
            .policy
        {
            ProxyPolicy::Restricted { language, policy } => {
                assert_eq!(language, "cas-rights-v1");
                assert_eq!(policy, b"read-only");
            }
            other => panic!("unexpected policy {other:?}"),
        }
    }

    #[test]
    fn delegated_proxy_signs_remote_key() {
        let (mut rng, _ca, user) = setup();
        // Remote side generates its own key pair.
        let mut remote_rng = ChaChaRng::from_seed_bytes(b"remote");
        let remote_key = RsaKeyPair::generate(&mut remote_rng, 512);
        let cert = issue_delegated_proxy(
            &mut rng,
            &user,
            remote_key.public(),
            ProxyType::Impersonation,
            10,
            1000,
        )
        .unwrap();
        assert_eq!(cert.public_key(), remote_key.public());
        // Remote assembles a credential: [delegated proxy, user chain...].
        let mut chain = vec![cert];
        chain.extend_from_slice(user.chain());
        let remote_cred = Credential::new(chain, remote_key);
        assert_eq!(remote_cred.base_identity(), user.subject());
    }

    #[test]
    fn ca_may_not_issue_proxy() {
        let mut rng = ChaChaRng::from_seed_bytes(b"ca as proxy issuer");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        // Build a Credential around the CA cert itself (not normally done).
        // We need the CA key; simulate by issuing a CA-shaped identity.
        // Instead: directly check check_issuer rejects CA certs.
        assert!(matches!(
            super::check_issuer(ca.certificate(), 10),
            Err(PkiError::InvalidProxy(_))
        ));
    }

    #[test]
    fn proxies_have_distinct_subjects() {
        let (mut rng, _ca, user) = setup();
        let p1 = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 10, 100).unwrap();
        let p2 = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 10, 100).unwrap();
        assert_ne!(p1.certificate().subject(), p2.certificate().subject());
    }
}
