//! Certificates: the TBS ("to-be-signed") structure, extensions, and
//! signature verification.
//!
//! Mirrors the X.509v3 profile GSI relies on: basic constraints for CAs,
//! key usage, and the `ProxyCertInfo` extension from the Internet X.509
//! Proxy Certificate Profile (the paper's reference 28, later RFC 3820).

use crate::encoding::{Codec, Decoder, Encoder};
use crate::name::DistinguishedName;
use crate::PkiError;
use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaVerifyCtx};
use gridsec_crypto::sha256::sha256;

/// Key usage bit flags (subset relevant to GSI).
pub mod key_usage {
    /// May sign application data / protocol messages.
    pub const DIGITAL_SIGNATURE: u8 = 0b0000_0001;
    /// May be used to encrypt key material (RSA key transport).
    pub const KEY_ENCIPHERMENT: u8 = 0b0000_0010;
    /// May sign certificates (CAs and proxy issuers).
    pub const CERT_SIGN: u8 = 0b0000_0100;
    /// May sign certificate revocation lists.
    pub const CRL_SIGN: u8 = 0b0000_1000;
}

/// Certificate validity window in simulation seconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Validity {
    /// First instant (inclusive) at which the certificate is valid.
    pub not_before: u64,
    /// Last instant (inclusive) at which the certificate is valid.
    pub not_after: u64,
}

impl Validity {
    /// `true` iff `now` falls inside the window.
    pub fn contains(&self, now: u64) -> bool {
        self.not_before <= now && now <= self.not_after
    }
}

/// The `BasicConstraints` extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BasicConstraints {
    /// `true` for certificate authorities.
    pub is_ca: bool,
    /// Maximum number of intermediate CAs below this one.
    pub path_len: Option<u32>,
}

/// The policy carried in a `ProxyCertInfo` extension (RFC 3820 §3.8).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProxyPolicy {
    /// Proxy inherits all rights of the issuer ("impersonation proxy").
    Impersonation,
    /// Proxy inherits a site-defined reduced right set (GT2's "limited
    /// proxy": e.g. may transfer files but not start jobs).
    Limited,
    /// Proxy has only rights granted directly to its own new identity.
    Independent,
    /// Rights constrained by an embedded policy expression.
    Restricted {
        /// Identifier of the policy language (e.g. `"cas-rights-v1"`).
        language: String,
        /// Opaque policy bytes interpreted by the named language.
        policy: Vec<u8>,
    },
}

/// The `ProxyCertInfo` extension.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProxyCertInfo {
    /// Maximum depth of further proxies below this one (`None` = no limit).
    pub path_len_constraint: Option<u32>,
    /// The delegation policy.
    pub policy: ProxyPolicy,
}

/// The extension set of a certificate.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Extensions {
    /// CA marker and path length.
    pub basic_constraints: Option<BasicConstraints>,
    /// Key usage flags (see [`key_usage`]).
    pub key_usage: Option<u8>,
    /// Present iff the certificate is a proxy certificate.
    pub proxy_cert_info: Option<ProxyCertInfo>,
    /// DNS-style alternative names (used for host certificates).
    pub subject_alt_names: Vec<String>,
}

/// The to-be-signed portion of a certificate.
#[derive(Clone, PartialEq, Debug)]
pub struct TbsCertificate {
    /// Serial number, unique per issuer.
    pub serial: u64,
    /// Name of the signing entity.
    pub issuer: DistinguishedName,
    /// Name of the certified entity.
    pub subject: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// The certified public key.
    pub public_key: RsaPublicKey,
    /// X.509v3-style extensions.
    pub extensions: Extensions,
}

/// A signed certificate.
#[derive(Clone, PartialEq, Debug)]
pub struct Certificate {
    /// The signed content.
    pub tbs: TbsCertificate,
    /// PKCS#1 v1.5 / SHA-256 signature by the issuer over the encoded TBS.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Sign a TBS structure with the issuer's key.
    pub fn sign(tbs: TbsCertificate, issuer_key: &RsaKeyPair) -> Certificate {
        let signature = issuer_key.sign_pkcs1_sha256(&tbs.to_bytes());
        Certificate { tbs, signature }
    }

    /// Verify this certificate's signature against a candidate issuer key.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify_pkcs1_sha256(&self.tbs.to_bytes(), &self.signature)
    }

    /// Like [`Certificate::verify_signature`], but through a shared
    /// [`RsaVerifyCtx`] so repeated verifications under one issuer key
    /// (every chain signed by the same CA) skip the per-call Montgomery
    /// setup. The verdict is identical by construction.
    pub fn verify_signature_with(&self, issuer_ctx: &RsaVerifyCtx) -> bool {
        issuer_ctx.verify_pkcs1_sha256(&self.tbs.to_bytes(), &self.signature)
    }

    /// `true` iff marked as a CA via basic constraints.
    pub fn is_ca(&self) -> bool {
        self.tbs
            .extensions
            .basic_constraints
            .is_some_and(|bc| bc.is_ca)
    }

    /// `true` iff this is a proxy certificate (carries `ProxyCertInfo`).
    pub fn is_proxy(&self) -> bool {
        self.tbs.extensions.proxy_cert_info.is_some()
    }

    /// `true` iff issuer == subject (candidate trust anchor shape).
    pub fn is_self_issued(&self) -> bool {
        self.tbs.issuer == self.tbs.subject
    }

    /// Key usage flags; absent extension means "no restriction" and is
    /// returned as all-bits-set.
    pub fn key_usage(&self) -> u8 {
        self.tbs.extensions.key_usage.unwrap_or(u8::MAX)
    }

    /// SHA-256 over the full encoded certificate.
    pub fn fingerprint(&self) -> [u8; 32] {
        sha256(&self.to_bytes())
    }

    /// Subject shorthand.
    pub fn subject(&self) -> &DistinguishedName {
        &self.tbs.subject
    }

    /// Issuer shorthand.
    pub fn issuer(&self) -> &DistinguishedName {
        &self.tbs.issuer
    }

    /// Public-key shorthand.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.tbs.public_key
    }
}

// ----------------------------------------------------------------------
// Codec impls
// ----------------------------------------------------------------------

impl Codec for Validity {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.not_before).put_u64(self.not_after);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(Validity {
            not_before: dec.get_u64()?,
            not_after: dec.get_u64()?,
        })
    }
}

impl Codec for BasicConstraints {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.is_ca as u8);
        enc.put_option(self.path_len.as_ref(), |e, v| {
            e.put_u32(*v);
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        let is_ca = match dec.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(PkiError::Decode("bad bool")),
        };
        let path_len = dec.get_option(|d| d.get_u32())?;
        Ok(BasicConstraints { is_ca, path_len })
    }
}

impl Codec for ProxyPolicy {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ProxyPolicy::Impersonation => {
                enc.put_u8(0);
            }
            ProxyPolicy::Limited => {
                enc.put_u8(1);
            }
            ProxyPolicy::Independent => {
                enc.put_u8(2);
            }
            ProxyPolicy::Restricted { language, policy } => {
                enc.put_u8(3).put_str(language).put_bytes(policy);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(match dec.get_u8()? {
            0 => ProxyPolicy::Impersonation,
            1 => ProxyPolicy::Limited,
            2 => ProxyPolicy::Independent,
            3 => ProxyPolicy::Restricted {
                language: dec.get_str()?,
                policy: dec.get_bytes()?,
            },
            _ => return Err(PkiError::Decode("unknown proxy policy tag")),
        })
    }
}

impl Codec for ProxyCertInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_option(self.path_len_constraint.as_ref(), |e, v| {
            e.put_u32(*v);
        });
        self.policy.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(ProxyCertInfo {
            path_len_constraint: dec.get_option(|d| d.get_u32())?,
            policy: ProxyPolicy::decode(dec)?,
        })
    }
}

impl Codec for Extensions {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_option(self.basic_constraints.as_ref(), |e, v| v.encode(e));
        enc.put_option(self.key_usage.as_ref(), |e, v| {
            e.put_u8(*v);
        });
        enc.put_option(self.proxy_cert_info.as_ref(), |e, v| v.encode(e));
        enc.put_seq(&self.subject_alt_names, |e, s| {
            e.put_str(s);
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(Extensions {
            basic_constraints: dec.get_option(BasicConstraints::decode)?,
            key_usage: dec.get_option(|d| d.get_u8())?,
            proxy_cert_info: dec.get_option(ProxyCertInfo::decode)?,
            subject_alt_names: dec.get_seq(|d| d.get_str())?,
        })
    }
}

/// Encode a public key as (n, e) — shared with protocol crates that
/// ship bare public keys (e.g. GSI delegation CSRs).
pub fn encode_public_key(enc: &mut Encoder, key: &RsaPublicKey) {
    enc.put_biguint(key.modulus()).put_biguint(key.exponent());
}

/// Decode a public key from (n, e).
pub fn decode_public_key(dec: &mut Decoder<'_>) -> Result<RsaPublicKey, PkiError> {
    let n = dec.get_biguint()?;
    let e = dec.get_biguint()?;
    if n.is_zero() || e.is_zero() {
        return Err(PkiError::Decode("degenerate public key"));
    }
    Ok(RsaPublicKey::new(n, e))
}

impl Codec for TbsCertificate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.serial);
        self.issuer.encode(enc);
        self.subject.encode(enc);
        self.validity.encode(enc);
        encode_public_key(enc, &self.public_key);
        self.extensions.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(TbsCertificate {
            serial: dec.get_u64()?,
            issuer: DistinguishedName::decode(dec)?,
            subject: DistinguishedName::decode(dec)?,
            validity: Validity::decode(dec)?,
            public_key: decode_public_key(dec)?,
            extensions: Extensions::decode(dec)?,
        })
    }
}

impl Codec for Certificate {
    fn encode(&self, enc: &mut Encoder) {
        self.tbs.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(Certificate {
            tbs: TbsCertificate::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;

    fn keypair(seed: &[u8]) -> RsaKeyPair {
        let mut rng = ChaChaRng::from_seed_bytes(seed);
        RsaKeyPair::generate(&mut rng, 512)
    }

    fn sample_tbs(key: &RsaPublicKey) -> TbsCertificate {
        TbsCertificate {
            serial: 42,
            issuer: DistinguishedName::parse("/O=Grid/CN=CA").unwrap(),
            subject: DistinguishedName::parse("/O=Grid/CN=Jane").unwrap(),
            validity: Validity {
                not_before: 100,
                not_after: 200,
            },
            public_key: key.clone(),
            extensions: Extensions {
                basic_constraints: Some(BasicConstraints {
                    is_ca: false,
                    path_len: None,
                }),
                key_usage: Some(key_usage::DIGITAL_SIGNATURE | key_usage::KEY_ENCIPHERMENT),
                proxy_cert_info: None,
                subject_alt_names: vec!["host.grid.example".to_string()],
            },
        }
    }

    #[test]
    fn sign_and_verify() {
        let ca_key = keypair(b"ca");
        let subj_key = keypair(b"subj");
        let cert = Certificate::sign(sample_tbs(subj_key.public()), &ca_key);
        assert!(cert.verify_signature(ca_key.public()));
        assert!(!cert.verify_signature(subj_key.public()));
    }

    #[test]
    fn tamper_detection() {
        let ca_key = keypair(b"ca");
        let subj_key = keypair(b"subj");
        let mut cert = Certificate::sign(sample_tbs(subj_key.public()), &ca_key);
        cert.tbs.serial = 43;
        assert!(!cert.verify_signature(ca_key.public()));
    }

    #[test]
    fn codec_roundtrip_full() {
        let ca_key = keypair(b"ca");
        let subj_key = keypair(b"subj");
        let mut tbs = sample_tbs(subj_key.public());
        tbs.extensions.proxy_cert_info = Some(ProxyCertInfo {
            path_len_constraint: Some(3),
            policy: ProxyPolicy::Restricted {
                language: "cas-rights-v1".to_string(),
                policy: vec![1, 2, 3],
            },
        });
        let cert = Certificate::sign(tbs, &ca_key);
        let decoded = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(decoded, cert);
        assert!(decoded.verify_signature(ca_key.public()));
    }

    #[test]
    fn proxy_policy_variants_roundtrip() {
        for p in [
            ProxyPolicy::Impersonation,
            ProxyPolicy::Limited,
            ProxyPolicy::Independent,
            ProxyPolicy::Restricted {
                language: "x".into(),
                policy: vec![],
            },
        ] {
            assert_eq!(ProxyPolicy::from_bytes(&p.to_bytes()).unwrap(), p);
        }
    }

    #[test]
    fn validity_window() {
        let v = Validity {
            not_before: 10,
            not_after: 20,
        };
        assert!(!v.contains(9));
        assert!(v.contains(10));
        assert!(v.contains(15));
        assert!(v.contains(20));
        assert!(!v.contains(21));
    }

    #[test]
    fn classification_helpers() {
        let ca_key = keypair(b"ca");
        let mut tbs = sample_tbs(ca_key.public());
        tbs.extensions.basic_constraints = Some(BasicConstraints {
            is_ca: true,
            path_len: Some(0),
        });
        tbs.subject = tbs.issuer.clone();
        let cert = Certificate::sign(tbs, &ca_key);
        assert!(cert.is_ca());
        assert!(cert.is_self_issued());
        assert!(!cert.is_proxy());
    }

    #[test]
    fn key_usage_default_is_permissive() {
        let ca_key = keypair(b"ca");
        let mut tbs = sample_tbs(ca_key.public());
        tbs.extensions.key_usage = None;
        let cert = Certificate::sign(tbs, &ca_key);
        assert_eq!(cert.key_usage(), u8::MAX);
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let ca_key = keypair(b"ca");
        let subj_key = keypair(b"subj");
        let c1 = Certificate::sign(sample_tbs(subj_key.public()), &ca_key);
        let mut tbs2 = sample_tbs(subj_key.public());
        tbs2.serial = 43;
        let c2 = Certificate::sign(tbs2, &ca_key);
        assert_ne!(c1.fingerprint(), c2.fingerprint());
    }

    #[test]
    fn degenerate_public_key_rejected() {
        let mut enc = Encoder::new();
        enc.put_biguint(&gridsec_bignum::BigUint::zero())
            .put_biguint(&gridsec_bignum::BigUint::from(65537u64));
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(decode_public_key(&mut dec).is_err());
    }
}
