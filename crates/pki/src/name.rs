//! X.500-style distinguished names, rendered in the slash form GSI tools
//! use (e.g. `/C=US/O=Globus/CN=Von Welch`).
//!
//! Proxy certificates extend their issuer's name with one extra `CN`
//! component (RFC 3820 §3.4); [`DistinguishedName::with_extra_cn`] and
//! [`DistinguishedName::is_proxy_extension_of`] implement that rule.

use crate::encoding::{Codec, Decoder, Encoder};
use crate::PkiError;
use std::fmt;

/// One relative distinguished name component, e.g. `CN=Jane`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NameComponent {
    /// Attribute type, e.g. `C`, `O`, `OU`, `CN`.
    pub attr: String,
    /// Attribute value.
    pub value: String,
}

/// An ordered sequence of name components.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct DistinguishedName {
    components: Vec<NameComponent>,
}

impl DistinguishedName {
    /// Build from components.
    pub fn new(components: Vec<NameComponent>) -> Self {
        DistinguishedName { components }
    }

    /// Parse the slash form: `/C=US/O=Org/CN=Name`. Empty values are
    /// rejected; attribute names are normalized to uppercase.
    pub fn parse(s: &str) -> Result<Self, PkiError> {
        if !s.starts_with('/') {
            return Err(PkiError::BadName("must start with '/'"));
        }
        let mut components = Vec::new();
        for part in s[1..].split('/') {
            if part.is_empty() {
                return Err(PkiError::BadName("empty component"));
            }
            let (attr, value) = part
                .split_once('=')
                .ok_or(PkiError::BadName("component missing '='"))?;
            if attr.is_empty() || value.is_empty() {
                return Err(PkiError::BadName("empty attribute or value"));
            }
            components.push(NameComponent {
                attr: attr.to_uppercase(),
                value: value.to_string(),
            });
        }
        if components.is_empty() {
            return Err(PkiError::BadName("no components"));
        }
        Ok(DistinguishedName { components })
    }

    /// The components in order.
    pub fn components(&self) -> &[NameComponent] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` iff the name has no components (only constructible via
    /// `Default`; parsed names are non-empty).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The value of the final `CN` component, if the last component is one.
    pub fn last_cn(&self) -> Option<&str> {
        self.components
            .last()
            .filter(|c| c.attr == "CN")
            .map(|c| c.value.as_str())
    }

    /// Return this name extended with one extra `CN=<value>` component —
    /// the RFC 3820 subject construction for a proxy certificate.
    pub fn with_extra_cn(&self, value: &str) -> DistinguishedName {
        let mut components = self.components.clone();
        components.push(NameComponent {
            attr: "CN".to_string(),
            value: value.to_string(),
        });
        DistinguishedName { components }
    }

    /// RFC 3820 name chaining: `self` must equal `issuer` plus exactly one
    /// additional `CN` component.
    pub fn is_proxy_extension_of(&self, issuer: &DistinguishedName) -> bool {
        self.components.len() == issuer.components.len() + 1
            && self.components[..issuer.components.len()] == issuer.components[..]
            && self.components.last().map(|c| c.attr.as_str()) == Some("CN")
    }

    /// Strip trailing `CN` proxy components down to `base_len` components —
    /// used to recover the end-entity ("base") identity from a proxy
    /// subject.
    pub fn truncated(&self, base_len: usize) -> DistinguishedName {
        DistinguishedName {
            components: self.components[..base_len.min(self.components.len())].to_vec(),
        }
    }
}

impl Codec for DistinguishedName {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.components, |e, c| {
            e.put_str(&c.attr).put_str(&c.value);
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        let components = dec.get_seq(|d| {
            Ok(NameComponent {
                attr: d.get_str()?,
                value: d.get_str()?,
            })
        })?;
        Ok(DistinguishedName { components })
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.components {
            write!(f, "/{}={}", c.attr, c.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "/C=US/O=Argonne/OU=MCS/CN=Von Welch";
        let dn = DistinguishedName::parse(s).unwrap();
        assert_eq!(dn.to_string(), s);
        assert_eq!(dn.len(), 4);
        assert_eq!(dn.last_cn(), Some("Von Welch"));
    }

    #[test]
    fn parse_normalizes_attr_case() {
        let dn = DistinguishedName::parse("/c=US/cn=x").unwrap();
        assert_eq!(dn.to_string(), "/C=US/CN=x");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "CN=x", "/", "/CN", "/CN=", "/=x", "//CN=x"] {
            assert!(DistinguishedName::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn value_may_contain_equals() {
        let dn = DistinguishedName::parse("/CN=a=b").unwrap();
        assert_eq!(dn.components()[0].value, "a=b");
    }

    #[test]
    fn proxy_extension_rules() {
        let base = DistinguishedName::parse("/O=Grid/CN=Jane").unwrap();
        let proxy = base.with_extra_cn("12345");
        assert_eq!(proxy.to_string(), "/O=Grid/CN=Jane/CN=12345");
        assert!(proxy.is_proxy_extension_of(&base));
        assert!(!base.is_proxy_extension_of(&proxy));
        assert!(!base.is_proxy_extension_of(&base));

        // Two levels of proxy.
        let proxy2 = proxy.with_extra_cn("999");
        assert!(proxy2.is_proxy_extension_of(&proxy));
        assert!(!proxy2.is_proxy_extension_of(&base));
    }

    #[test]
    fn proxy_extension_requires_cn() {
        let base = DistinguishedName::parse("/O=Grid/CN=Jane").unwrap();
        let mut comps = base.components().to_vec();
        comps.push(NameComponent {
            attr: "OU".to_string(),
            value: "x".to_string(),
        });
        let not_proxy = DistinguishedName::new(comps);
        assert!(!not_proxy.is_proxy_extension_of(&base));
    }

    #[test]
    fn proxy_extension_requires_same_prefix() {
        let base = DistinguishedName::parse("/O=Grid/CN=Jane").unwrap();
        let other = DistinguishedName::parse("/O=Grid/CN=Eve/CN=1").unwrap();
        assert!(!other.is_proxy_extension_of(&base));
    }

    #[test]
    fn truncation_recovers_base() {
        let base = DistinguishedName::parse("/O=Grid/CN=Jane").unwrap();
        let p2 = base.with_extra_cn("1").with_extra_cn("2");
        assert_eq!(p2.truncated(2), base);
        assert_eq!(p2.truncated(10), p2);
    }

    #[test]
    fn codec_roundtrip() {
        let dn = DistinguishedName::parse("/C=US/O=USC/OU=ISI/CN=Laura Pearlman").unwrap();
        let bytes = dn.to_bytes();
        assert_eq!(DistinguishedName::from_bytes(&bytes).unwrap(), dn);
    }

    #[test]
    fn last_cn_absent_when_not_cn() {
        let dn = DistinguishedName::parse("/CN=x/O=org").unwrap();
        assert_eq!(dn.last_cn(), None);
    }
}
