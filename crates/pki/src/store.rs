//! Trust anchors and revocation state.
//!
//! A [`TrustStore`] is per-entity: adding a CA is the *unilateral* trust
//! decision the paper highlights as the reason GSI chose PKI over
//! Kerberos-style bilateral realm agreements.

use crate::ca::Crl;
use crate::cert::Certificate;
use crate::name::DistinguishedName;
use std::collections::HashMap;

/// A set of trusted root CA certificates.
///
/// Every mutation bumps a generation counter so validation caches keyed
/// on it ([`crate::validate::CachedValidator`]) invalidate when the
/// anchor set changes.
#[derive(Clone, Default, Debug)]
pub struct TrustStore {
    roots: Vec<Certificate>,
    generation: u64,
}

impl TrustStore {
    /// Empty store (trusts nothing).
    pub fn new() -> Self {
        TrustStore::default()
    }

    /// Add a root CA certificate. Self-signed CA shape is required.
    pub fn add_root(&mut self, cert: Certificate) {
        assert!(cert.is_ca(), "trust anchors must be CA certificates");
        assert!(
            cert.is_self_issued(),
            "trust anchors must be self-issued roots"
        );
        if !self.contains(&cert) {
            self.roots.push(cert);
            self.generation += 1;
        }
    }

    /// Monotonic edit counter: changes whenever the anchor set does.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// All trusted roots.
    pub fn roots(&self) -> &[Certificate] {
        &self.roots
    }

    /// Find a trusted root by subject name.
    pub fn find_by_subject(&self, name: &DistinguishedName) -> Option<&Certificate> {
        self.roots.iter().find(|c| c.subject() == name)
    }

    /// `true` iff this exact certificate (by fingerprint) is a trusted root.
    pub fn contains(&self, cert: &Certificate) -> bool {
        let fp = cert.fingerprint();
        self.roots.iter().any(|c| c.fingerprint() == fp)
    }

    /// Number of trusted roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// `true` if no roots are trusted.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

/// A store of current CRLs keyed by issuer name.
///
/// CRLs are only accepted if their signature verifies against the issuer
/// certificate supplied at insertion time.
#[derive(Clone, Default, Debug)]
pub struct CrlStore {
    crls: HashMap<String, Crl>,
    generation: u64,
}

impl CrlStore {
    /// Empty store.
    pub fn new() -> Self {
        CrlStore::default()
    }

    /// Insert a CRL after verifying its signature against `issuer`.
    /// Returns `false` (and does not insert) if verification fails or the
    /// issuer name does not match.
    pub fn add(&mut self, crl: Crl, issuer: &Certificate) -> bool {
        if crl.tbs.issuer != *issuer.subject() || !crl.verify(issuer.public_key()) {
            return false;
        }
        self.crls.insert(crl.tbs.issuer.to_string(), crl);
        self.generation += 1;
        true
    }

    /// Monotonic edit counter: changes whenever revocation state does.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Check revocation: `true` iff a current CRL from `issuer` lists
    /// `serial`. Missing or stale CRLs are treated as "not revoked" —
    /// matching GT2's default soft-fail behaviour.
    pub fn is_revoked(&self, issuer: &DistinguishedName, serial: u64, now: u64) -> bool {
        match self.crls.get(&issuer.to_string()) {
            Some(crl) if !crl.is_stale(now) => crl.is_revoked(serial),
            _ => false,
        }
    }

    /// Number of stored CRLs.
    pub fn len(&self) -> usize {
        self.crls.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.crls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::name::DistinguishedName;
    use gridsec_crypto::rng::ChaChaRng;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn ca(seed: &[u8], name: &str) -> CertificateAuthority {
        let mut rng = ChaChaRng::from_seed_bytes(seed);
        CertificateAuthority::create_root(&mut rng, dn(name), 512, 0, 1_000_000)
    }

    #[test]
    fn add_and_find_roots() {
        let ca1 = ca(b"s1", "/O=A/CN=CA1");
        let ca2 = ca(b"s2", "/O=B/CN=CA2");
        let mut store = TrustStore::new();
        assert!(store.is_empty());
        store.add_root(ca1.certificate().clone());
        store.add_root(ca2.certificate().clone());
        assert_eq!(store.len(), 2);
        assert!(store.find_by_subject(&dn("/O=A/CN=CA1")).is_some());
        assert!(store.find_by_subject(&dn("/O=C/CN=CA3")).is_none());
        assert!(store.contains(ca1.certificate()));
    }

    #[test]
    fn duplicate_roots_deduplicated() {
        let ca1 = ca(b"s1", "/O=A/CN=CA1");
        let mut store = TrustStore::new();
        store.add_root(ca1.certificate().clone());
        store.add_root(ca1.certificate().clone());
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be CA")]
    fn non_ca_anchor_rejected() {
        let ca1 = ca(b"s1", "/O=A/CN=CA1");
        let mut rng = ChaChaRng::from_seed_bytes(b"user");
        let user = ca1.issue_identity(&mut rng, dn("/O=A/CN=U"), 512, 0, 100);
        let mut store = TrustStore::new();
        store.add_root(user.certificate().clone());
    }

    #[test]
    fn crl_store_checks_signature() {
        let ca1 = ca(b"s1", "/O=A/CN=CA1");
        let ca2 = ca(b"s2", "/O=B/CN=CA2");
        let crl = ca1.issue_crl(vec![7], 100, 500);
        let mut store = CrlStore::new();
        // Wrong issuer cert → rejected.
        assert!(!store.add(crl.clone(), ca2.certificate()));
        assert!(store.is_empty());
        // Right issuer → accepted.
        assert!(store.add(crl, ca1.certificate()));
        assert!(store.is_revoked(&dn("/O=A/CN=CA1"), 7, 200));
        assert!(!store.is_revoked(&dn("/O=A/CN=CA1"), 8, 200));
    }

    #[test]
    fn stale_crl_soft_fails() {
        let ca1 = ca(b"s1", "/O=A/CN=CA1");
        let crl = ca1.issue_crl(vec![7], 100, 150);
        let mut store = CrlStore::new();
        assert!(store.add(crl, ca1.certificate()));
        assert!(store.is_revoked(&dn("/O=A/CN=CA1"), 7, 120));
        // Past next_update: treated as unknown → not revoked.
        assert!(!store.is_revoked(&dn("/O=A/CN=CA1"), 7, 151));
    }

    #[test]
    fn missing_crl_means_not_revoked() {
        let store = CrlStore::new();
        assert!(!store.is_revoked(&dn("/O=A/CN=CA1"), 1, 100));
    }
}
