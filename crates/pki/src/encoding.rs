//! "DER-lite": a deterministic, length-prefixed binary encoding.
//!
//! Real GSI encodes certificates with ASN.1 DER. For this reproduction a
//! full ASN.1 stack would add bulk without architectural insight, so
//! certificates, CRLs, tickets, and tokens use this small deterministic
//! format instead: every value is written exactly one way, so signing the
//! encoded bytes is well-defined.
//!
//! Wire format primitives:
//! * `u8`, `u32`, `u64` — fixed-width big-endian.
//! * `bytes` — `u32` big-endian length prefix + raw bytes.
//! * `str` — `bytes` of UTF-8.
//! * `biguint` — `bytes` of minimal big-endian magnitude.
//! * optional values — `u8` presence flag then the value.
//! * sequences — `u32` count then each element.

use gridsec_bignum::BigUint;

use crate::PkiError;

/// An append-only encoder.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Consume and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append a length-prefixed big integer (minimal big-endian bytes).
    pub fn put_biguint(&mut self, v: &BigUint) -> &mut Self {
        self.put_bytes(&v.to_bytes_be())
    }

    /// Append an optional value via the provided closure.
    pub fn put_option<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) -> &mut Self {
        match v {
            None => {
                self.put_u8(0);
            }
            Some(inner) => {
                self.put_u8(1);
                f(self, inner);
            }
        }
        self
    }

    /// Append a sequence via the provided per-element closure.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// A cursor-based decoder over encoded bytes.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// `true` iff every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Error unless all input was consumed.
    pub fn expect_exhausted(&self) -> Result<(), PkiError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(PkiError::Decode("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PkiError> {
        if self.data.len() - self.pos < n {
            return Err(PkiError::Decode("unexpected end of input"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, PkiError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PkiError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PkiError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, PkiError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PkiError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| PkiError::Decode("invalid UTF-8"))
    }

    /// Read a length-prefixed big integer.
    pub fn get_biguint(&mut self) -> Result<BigUint, PkiError> {
        Ok(BigUint::from_bytes_be(&self.get_bytes()?))
    }

    /// Read an optional value via the provided closure.
    pub fn get_option<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, PkiError>,
    ) -> Result<Option<T>, PkiError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(PkiError::Decode("bad option flag")),
        }
    }

    /// Read a sequence via the provided per-element closure.
    pub fn get_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, PkiError>,
    ) -> Result<Vec<T>, PkiError> {
        let count = self.get_u32()? as usize;
        // Sanity cap: each element takes at least one byte.
        if count > self.data.len() - self.pos {
            return Err(PkiError::Decode("sequence count exceeds input"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types that encode to and decode from DER-lite.
pub trait Codec: Sized {
    /// Append this value to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Read a value from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError>;

    /// Encode to a standalone byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decode from a standalone byte vector, requiring full consumption.
    fn from_bytes(data: &[u8]) -> Result<Self, PkiError> {
        let mut dec = Decoder::new(data);
        let v = Self::decode(&mut dec)?;
        dec.expect_exhausted()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(0xDEADBEEF).put_u64(u64::MAX);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert!(d.is_exhausted());
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello").put_str("wörld").put_bytes(b"");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        assert_eq!(d.get_str().unwrap(), "wörld");
        assert_eq!(d.get_bytes().unwrap(), b"");
    }

    #[test]
    fn biguint_roundtrip() {
        let v = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let mut e = Encoder::new();
        e.put_biguint(&v).put_biguint(&BigUint::zero());
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_biguint().unwrap(), v);
        assert_eq!(d.get_biguint().unwrap(), BigUint::zero());
    }

    #[test]
    fn option_roundtrip() {
        let mut e = Encoder::new();
        e.put_option(Some(&42u64), |e, v| {
            e.put_u64(*v);
        });
        e.put_option(None::<&u64>, |e, v| {
            e.put_u64(*v);
        });
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_option(|d| d.get_u64()).unwrap(), Some(42));
        assert_eq!(d.get_option(|d| d.get_u64()).unwrap(), None);
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec!["a".to_string(), "bb".to_string(), "".to_string()];
        let mut e = Encoder::new();
        e.put_seq(&items, |e, s| {
            e.put_str(s);
        });
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_seq(|d| d.get_str()).unwrap(), items);
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello world");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(d.get_bytes(), Err(PkiError::Decode(_))));
        // Truncated length prefix too.
        let mut d = Decoder::new(&bytes[..2]);
        assert!(matches!(d.get_u32(), Err(PkiError::Decode(_))));
    }

    #[test]
    fn bad_option_flag_errors() {
        let mut d = Decoder::new(&[2u8]);
        assert!(matches!(
            d.get_option(|d| d.get_u8()),
            Err(PkiError::Decode("bad option flag"))
        ));
    }

    #[test]
    fn hostile_seq_count_rejected() {
        // Sequence claiming u32::MAX elements should not allocate.
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_seq(|d| d.get_u8()).is_err());
    }

    #[test]
    fn expect_exhausted_detects_trailing() {
        let mut d = Decoder::new(&[1, 2, 3]);
        d.get_u8().unwrap();
        assert!(d.expect_exhausted().is_err());
        d.get_u8().unwrap();
        d.get_u8().unwrap();
        assert!(d.expect_exhausted().is_ok());
    }

    #[test]
    fn encoding_is_deterministic() {
        let build = || {
            let mut e = Encoder::new();
            e.put_str("abc").put_u64(99).put_bytes(&[1, 2, 3]);
            e.finish()
        };
        assert_eq!(build(), build());
    }
}
