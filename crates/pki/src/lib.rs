//! # gridsec-pki
//!
//! X.509-style public key infrastructure with **proxy certificates** —
//! the trust fabric of the Grid Security Infrastructure reproduced from
//! *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! The paper's §3 rests on three PKI mechanisms, all implemented here:
//!
//! 1. **Identity certificates** issued by certificate authorities
//!    ([`ca::CertificateAuthority`]), with unilateral trust establishment:
//!    any party may add a CA to its [`store::TrustStore`] without
//!    organizational agreements (contrast Kerberos' bilateral realm trust).
//! 2. **Proxy certificates** ([`proxy`]) — the GSI extension (later
//!    RFC 3820) that lets a *user*, not an administrator, create a fresh
//!    identity and delegate some subset of rights to it. Impersonation,
//!    limited, independent, and restricted (policy-carrying) proxies are
//!    supported, with path-length constraints.
//! 3. **Chain validation** ([`validate`]) that enforces CA basic
//!    constraints, validity windows, revocation, and the RFC 3820 proxy
//!    rules (issuer/subject name chaining, one extra CN component, key
//!    usage, effective rights as the *intersection* along the chain).
//!
//! Certificates are serialized with a deterministic TLV encoding
//! ([`encoding`], "DER-lite") so signatures are over stable bytes without
//! pulling a full ASN.1 stack into the reproduction.
//!
//! ## Example: user proxy creation (paper §3, "grid-proxy-init")
//!
//! ```
//! use gridsec_crypto::rng::ChaChaRng;
//! use gridsec_pki::ca::CertificateAuthority;
//! use gridsec_pki::name::DistinguishedName;
//! use gridsec_pki::proxy::{issue_proxy, ProxyType};
//! use gridsec_pki::store::TrustStore;
//! use gridsec_pki::validate::validate_chain;
//!
//! let mut rng = ChaChaRng::from_seed_bytes(b"pki doc");
//! let ca = CertificateAuthority::create_root(
//!     &mut rng, DistinguishedName::parse("/C=US/O=DOE Science Grid/CN=CA").unwrap(),
//!     512, 0, 10_000_000);
//! let user = ca.issue_identity(
//!     &mut rng, DistinguishedName::parse("/C=US/O=DOE Science Grid/CN=Jane Doe").unwrap(),
//!     512, 0, 1_000_000);
//!
//! // Single sign-on: create a short-lived proxy, no CA involved.
//! let proxy = issue_proxy(&mut rng, &user, ProxyType::Impersonation, 512, 100, 43_300).unwrap();
//!
//! let mut trust = TrustStore::new();
//! trust.add_root(ca.certificate().clone());
//! let id = validate_chain(proxy.chain(), &trust, 500).unwrap();
//! assert_eq!(id.base_identity.to_string(), "/C=US/O=DOE Science Grid/CN=Jane Doe");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cert;
pub mod credential;
pub mod encoding;
pub mod name;
pub mod proxy;
pub mod store;
pub mod validate;

/// Errors produced by PKI operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// A TLV decode failure with context.
    Decode(&'static str),
    /// A signature did not verify.
    BadSignature,
    /// A certificate is outside its validity window.
    Expired {
        /// Time at which validation was attempted.
        now: u64,
        /// Start of the certificate's validity window.
        not_before: u64,
        /// End of the certificate's validity window.
        not_after: u64,
    },
    /// A certificate has been revoked.
    Revoked {
        /// Serial number of the revoked certificate.
        serial: u64,
    },
    /// No trust anchor matches the top of the chain.
    UntrustedRoot,
    /// The chain violates structural rules (details in the message).
    InvalidChain(&'static str),
    /// Proxy-specific rule violation.
    InvalidProxy(&'static str),
    /// Name parsing failed.
    BadName(&'static str),
    /// Attempted operation requires a CA certificate.
    NotACa,
}

impl core::fmt::Display for PkiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PkiError::Decode(m) => write!(f, "decode error: {m}"),
            PkiError::BadSignature => write!(f, "signature verification failed"),
            PkiError::Expired {
                now,
                not_before,
                not_after,
            } => write!(
                f,
                "certificate not valid at t={now} (window [{not_before}, {not_after}])"
            ),
            PkiError::Revoked { serial } => write!(f, "certificate serial {serial} is revoked"),
            PkiError::UntrustedRoot => write!(f, "no trusted root for chain"),
            PkiError::InvalidChain(m) => write!(f, "invalid chain: {m}"),
            PkiError::InvalidProxy(m) => write!(f, "invalid proxy: {m}"),
            PkiError::BadName(m) => write!(f, "bad distinguished name: {m}"),
            PkiError::NotACa => write!(f, "certificate is not a CA"),
        }
    }
}

impl std::error::Error for PkiError {}
