//! The audit service: "a service that securely logs relevant information
//! about events" (paper §4.1).
//!
//! Entries are hash-chained: each record carries the SHA-256 of its
//! predecessor, so truncation or in-place modification of history is
//! detectable by [`AuditLog::verify`].

use gridsec_crypto::sha256::sha256;
use gridsec_ogsa::hosting::AuditEvent;
use gridsec_util::sync::Mutex;
use std::sync::Arc;

/// One chained audit record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Sequence number.
    pub seq: u64,
    /// The recorded event.
    pub event: AuditEvent,
    /// Hash of the previous record (all zero for the first).
    pub prev_hash: [u8; 32],
    /// Hash of this record (over seq, event fields, prev_hash).
    pub hash: [u8; 32],
}

fn record_hash(seq: u64, event: &AuditEvent, prev_hash: &[u8; 32]) -> [u8; 32] {
    let mut data = Vec::new();
    data.extend_from_slice(&seq.to_be_bytes());
    data.extend_from_slice(&event.now.to_be_bytes());
    data.extend_from_slice(event.caller.as_bytes());
    data.push(0);
    data.extend_from_slice(event.operation.as_bytes());
    data.push(0);
    data.extend_from_slice(event.outcome.as_bytes());
    data.push(0);
    data.extend_from_slice(prev_hash);
    sha256(&data)
}

/// A tamper-evident audit log, shareable across hosting environments.
#[derive(Clone, Default)]
pub struct AuditLog {
    inner: Arc<Mutex<Vec<AuditRecord>>>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Append an event, chaining it to the previous record.
    pub fn append(&self, event: AuditEvent) {
        let mut log = self.inner.lock();
        let seq = log.len() as u64;
        let prev_hash = log.last().map(|r| r.hash).unwrap_or([0u8; 32]);
        let hash = record_hash(seq, &event, &prev_hash);
        log.push(AuditRecord {
            seq,
            event,
            prev_hash,
            hash,
        });
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.inner.lock().clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` if no records.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Verify the whole chain; returns the index of the first bad record,
    /// or `Ok(())`.
    pub fn verify(&self) -> Result<(), usize> {
        let log = self.inner.lock();
        let mut prev = [0u8; 32];
        for (i, rec) in log.iter().enumerate() {
            if rec.seq != i as u64
                || rec.prev_hash != prev
                || rec.hash != record_hash(rec.seq, &rec.event, &rec.prev_hash)
            {
                return Err(i);
            }
            prev = rec.hash;
        }
        Ok(())
    }

    /// An [`gridsec_ogsa::hosting::AuditSink`] feeding this log — plug it
    /// into a hosting environment with `set_audit`.
    pub fn sink(&self) -> gridsec_ogsa::hosting::AuditSink {
        let log = self.clone();
        Box::new(move |event| log.append(event))
    }

    /// A [`gridsec_util::trace::TraceSink`] mirroring every trace event
    /// into this hash chain: the span name becomes the caller, the
    /// event name the operation, and the detail the outcome. Install it
    /// with [`gridsec_util::trace::Tracer::set_sink`] so the flows'
    /// structured events land in the tamper-evident log — the paper's
    /// audit service fed by live flow data.
    pub fn trace_sink(&self) -> gridsec_util::trace::TraceSink {
        let log = self.clone();
        Box::new(move |r: gridsec_util::trace::SinkRecord| {
            log.append(AuditEvent {
                now: r.t,
                caller: r.span,
                operation: r.name,
                outcome: r.detail,
            });
        })
    }

    /// Attach this log to `tracer`: every span event the tracer records
    /// is chained here.
    pub fn attach(&self, tracer: &gridsec_util::trace::Tracer) {
        tracer.set_sink(self.trace_sink());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(caller: &str, op: &str, outcome: &str) -> AuditEvent {
        AuditEvent {
            now: 100,
            caller: caller.to_string(),
            operation: op.to_string(),
            outcome: outcome.to_string(),
        }
    }

    #[test]
    fn append_and_verify() {
        let log = AuditLog::new();
        log.append(ev("/O=G/CN=A", "createService echo", "permit"));
        log.append(ev("/O=G/CN=B", "invoke gsh:1 run", "deny"));
        log.append(ev("/O=G/CN=A", "destroy gsh:1", "permit"));
        assert_eq!(log.len(), 3);
        assert!(log.verify().is_ok());
        // Chain links.
        let records = log.records();
        assert_eq!(records[1].prev_hash, records[0].hash);
        assert_eq!(records[2].prev_hash, records[1].hash);
    }

    #[test]
    fn tampering_detected() {
        let log = AuditLog::new();
        log.append(ev("a", "x", "permit"));
        log.append(ev("b", "y", "deny"));
        // Rewrite history in place.
        {
            let mut inner = log.inner.lock();
            inner[0].event.outcome = "deny".to_string();
        }
        assert_eq!(log.verify(), Err(0));
    }

    #[test]
    fn truncation_detected() {
        let log = AuditLog::new();
        log.append(ev("a", "x", "permit"));
        log.append(ev("b", "y", "permit"));
        log.append(ev("c", "z", "permit"));
        {
            let mut inner = log.inner.lock();
            inner.remove(1); // drop a middle record
        }
        assert!(log.verify().is_err());
    }

    #[test]
    fn sink_feeds_log() {
        let log = AuditLog::new();
        let mut sink = log.sink();
        sink(ev("caller", "op", "permit"));
        sink(ev("caller", "op2", "deny"));
        assert_eq!(log.len(), 2);
        assert!(log.verify().is_ok());
    }

    #[test]
    fn empty_log_verifies() {
        assert!(AuditLog::new().verify().is_ok());
    }

    #[test]
    fn trace_events_chain_into_the_log() {
        use gridsec_util::trace;
        let log = AuditLog::new();
        let tracer = trace::Tracer::new();
        log.attach(&tracer);
        let _g = trace::install(&tracer);
        {
            let _sp = trace::span("cas.issue");
            trace::event("cas.decision", "subject=/O=G/CN=Alice outcome=issued");
        }
        trace::event("orphan", "no span open");
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].event.caller, "cas.issue");
        assert_eq!(records[0].event.operation, "cas.decision");
        assert_eq!(
            records[0].event.outcome,
            "subject=/O=G/CN=Alice outcome=issued"
        );
        assert_eq!(records[1].event.caller, "");
        assert!(log.verify().is_ok());
    }
}
