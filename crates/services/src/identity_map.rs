//! The identity mapping service (paper §4.1): "takes a user's identity in
//! one domain and returns the identity in another (e.g., given the user's
//! X.509 identity, it could return the Kerberos principal name)".
//!
//! Provided both as a plain library type ([`IdentityMap`]) and as a
//! hostable Grid service ([`IdentityMappingService`]) so other services
//! can out-call it per the paper's security-as-services model.

use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::OgsaError;
use gridsec_pki::name::DistinguishedName;
use gridsec_xml::Element;
use std::collections::HashMap;

/// Bidirectional DN ↔ Kerberos-principal map.
#[derive(Clone, Default, Debug)]
pub struct IdentityMap {
    dn_to_principal: HashMap<String, String>,
    principal_to_dn: HashMap<String, String>,
}

impl IdentityMap {
    /// Empty map.
    pub fn new() -> Self {
        IdentityMap::default()
    }

    /// Register a bidirectional mapping.
    pub fn add(&mut self, dn: &DistinguishedName, principal: &str, realm: &str) {
        let qualified = format!("{principal}@{realm}");
        self.dn_to_principal
            .insert(dn.to_string(), qualified.clone());
        self.principal_to_dn.insert(qualified, dn.to_string());
    }

    /// X.509 → Kerberos (`user@REALM`).
    pub fn to_principal(&self, dn: &DistinguishedName) -> Option<&str> {
        self.dn_to_principal
            .get(&dn.to_string())
            .map(|s| s.as_str())
    }

    /// Kerberos → X.509.
    pub fn to_dn(&self, principal: &str, realm: &str) -> Option<DistinguishedName> {
        self.principal_to_dn
            .get(&format!("{principal}@{realm}"))
            .and_then(|s| DistinguishedName::parse(s).ok())
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.dn_to_principal.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.dn_to_principal.is_empty()
    }
}

/// The map as a hostable Grid service. Operations: `toPrincipal` (payload
/// text = DN) and `toDn` (payload text = `user@REALM`).
pub struct IdentityMappingService {
    map: IdentityMap,
}

impl IdentityMappingService {
    /// Wrap a map.
    pub fn new(map: IdentityMap) -> Self {
        IdentityMappingService { map }
    }
}

impl GridService for IdentityMappingService {
    fn service_type(&self) -> &str {
        "identity-mapping"
    }

    fn invoke(
        &mut self,
        _ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "toPrincipal" => {
                let dn = DistinguishedName::parse(&payload.text_content())
                    .map_err(|_| OgsaError::Malformed("bad DN"))?;
                match self.map.to_principal(&dn) {
                    Some(p) => Ok(Element::new("idmap:Principal").with_text(p)),
                    None => Ok(Element::new("idmap:NoMapping")),
                }
            }
            "toDn" => {
                let text = payload.text_content();
                let (user, realm) = text
                    .split_once('@')
                    .ok_or(OgsaError::Malformed("expected user@REALM"))?;
                match self.map.to_dn(user, realm) {
                    Some(dn) => Ok(Element::new("idmap:Dn").with_text(dn.to_string())),
                    None => Ok(Element::new("idmap:NoMapping")),
                }
            }
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn bidirectional_mapping() {
        let mut map = IdentityMap::new();
        map.add(&dn("/O=G/CN=Jane"), "jdoe", "SITE.A");
        map.add(&dn("/O=G/CN=Carl"), "carl", "SITE.A");
        assert_eq!(map.to_principal(&dn("/O=G/CN=Jane")), Some("jdoe@SITE.A"));
        assert_eq!(map.to_dn("jdoe", "SITE.A"), Some(dn("/O=G/CN=Jane")));
        assert_eq!(map.to_principal(&dn("/O=G/CN=Nobody")), None);
        assert_eq!(map.to_dn("ghost", "SITE.A"), None);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn realm_disambiguates() {
        let mut map = IdentityMap::new();
        map.add(&dn("/O=A/CN=J"), "j", "SITE.A");
        map.add(&dn("/O=B/CN=J"), "j", "SITE.B");
        assert_eq!(map.to_dn("j", "SITE.A"), Some(dn("/O=A/CN=J")));
        assert_eq!(map.to_dn("j", "SITE.B"), Some(dn("/O=B/CN=J")));
    }

    #[test]
    fn grid_service_operations() {
        use gridsec_crypto::rng::ChaChaRng;
        use gridsec_pki::ca::CertificateAuthority;
        use gridsec_pki::store::TrustStore;
        use gridsec_pki::validate::validate_chain;

        let mut map = IdentityMap::new();
        map.add(&dn("/O=G/CN=Jane"), "jdoe", "SITE.A");
        let mut svc = IdentityMappingService::new(map);

        let mut rng = ChaChaRng::from_seed_bytes(b"idmap svc");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        let cred = ca.issue_identity(&mut rng, dn("/O=G/CN=Caller"), 512, 0, 1000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let ctx = RequestContext {
            caller: validate_chain(cred.chain(), &trust, 10).unwrap(),
            now: 10,
            handle: "gsh:idmap".to_string(),
        };

        let r = svc
            .invoke(
                &ctx,
                "toPrincipal",
                &Element::new("q").with_text("/O=G/CN=Jane"),
            )
            .unwrap();
        assert_eq!(r.text_content(), "jdoe@SITE.A");

        let r = svc
            .invoke(&ctx, "toDn", &Element::new("q").with_text("jdoe@SITE.A"))
            .unwrap();
        assert_eq!(r.text_content(), "/O=G/CN=Jane");

        let r = svc
            .invoke(
                &ctx,
                "toPrincipal",
                &Element::new("q").with_text("/O=G/CN=Ghost"),
            )
            .unwrap();
        assert_eq!(r.name, "idmap:NoMapping");

        assert!(svc
            .invoke(&ctx, "toDn", &Element::new("q").with_text("no-at-sign"))
            .is_err());
    }
}
