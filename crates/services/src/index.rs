//! An MDS-like index (Monitoring and Discovery) service.
//!
//! The paper's §2 motivates dynamically-created VO services with exactly
//! this example: "the VO itself may create directory services to keep
//! track of VO participants. Like their static counterparts, these
//! resources must be securely coordinated." This Grid service is such a
//! directory: VO members register service endpoints; queries are
//! authenticated and authorized by the hosting environment like any
//! other Grid service, and registrations record the authenticated owner.

use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::OgsaError;
use gridsec_xml::Element;
use std::collections::BTreeMap;

/// One registered entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Logical name (e.g. `"gram.compute1"`).
    pub name: String,
    /// Endpoint or handle the name resolves to.
    pub endpoint: String,
    /// Free-form metadata (e.g. service type).
    pub metadata: String,
    /// Base identity of the registrant (recorded from the authenticated
    /// caller, not from the payload — registrations are attributable).
    pub owner: String,
    /// Registration time.
    pub registered_at: u64,
}

/// The index service. Operations:
/// * `register` — payload `<mds:Register name=".." endpoint=".." meta=".."/>`
/// * `lookup`   — payload `<mds:Lookup name=".."/>`
/// * `list`     — payload ignored; returns all entries
/// * `unregister` — owner-only removal
#[derive(Default)]
pub struct IndexService {
    entries: BTreeMap<String, IndexEntry>,
}

impl IndexService {
    /// Empty index.
    pub fn new() -> Self {
        IndexService::default()
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no registrations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn entry_element(e: &IndexEntry) -> Element {
    Element::new("mds:Entry")
        .with_attr("name", e.name.clone())
        .with_attr("endpoint", e.endpoint.clone())
        .with_attr("meta", e.metadata.clone())
        .with_attr("owner", e.owner.clone())
        .with_attr("registeredAt", e.registered_at.to_string())
}

impl GridService for IndexService {
    fn service_type(&self) -> &str {
        "mds-index"
    }

    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "register" => {
                let name = payload
                    .attr("name")
                    .ok_or(OgsaError::Malformed("register needs name"))?
                    .to_string();
                let endpoint = payload
                    .attr("endpoint")
                    .ok_or(OgsaError::Malformed("register needs endpoint"))?
                    .to_string();
                let owner = ctx.caller.base_identity.to_string();
                // Re-registration allowed only by the same owner.
                if let Some(existing) = self.entries.get(&name) {
                    if existing.owner != owner {
                        return Err(OgsaError::NotAuthorized {
                            caller: owner,
                            operation: format!("re-register {name}"),
                        });
                    }
                }
                self.entries.insert(
                    name.clone(),
                    IndexEntry {
                        name: name.clone(),
                        endpoint,
                        metadata: payload.attr("meta").unwrap_or("").to_string(),
                        owner,
                        registered_at: ctx.now,
                    },
                );
                Ok(Element::new("mds:Registered").with_attr("name", name))
            }
            "lookup" => {
                let name = payload
                    .attr("name")
                    .ok_or(OgsaError::Malformed("lookup needs name"))?;
                match self.entries.get(name) {
                    Some(e) => Ok(entry_element(e)),
                    None => Ok(Element::new("mds:NotFound").with_attr("name", name)),
                }
            }
            "list" => {
                let mut out = Element::new("mds:Entries");
                for e in self.entries.values() {
                    out.push_child(entry_element(e));
                }
                Ok(out)
            }
            "unregister" => {
                let name = payload
                    .attr("name")
                    .ok_or(OgsaError::Malformed("unregister needs name"))?;
                let owner = ctx.caller.base_identity.to_string();
                match self.entries.get(name) {
                    Some(e) if e.owner == owner => {
                        self.entries.remove(name);
                        Ok(Element::new("mds:Unregistered"))
                    }
                    Some(_) => Err(OgsaError::NotAuthorized {
                        caller: owner,
                        operation: format!("unregister {name}"),
                    }),
                    None => Ok(Element::new("mds:NotFound").with_attr("name", name)),
                }
            }
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }

    fn service_data(&self, name: &str) -> Option<Element> {
        (name == "entryCount")
            .then(|| Element::new("sde:entryCount").with_text(self.entries.len().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn ctx_for(name: &str, seed: &[u8]) -> RequestContext {
        let mut rng = ChaChaRng::from_seed_bytes(seed);
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000);
        let cred = ca.issue_identity(&mut rng, dn(name), 512, 0, 10_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        RequestContext {
            caller: validate_chain(cred.chain(), &trust, 10).unwrap(),
            now: 500,
            handle: "gsh:mds".to_string(),
        }
    }

    fn register(
        svc: &mut IndexService,
        ctx: &RequestContext,
        name: &str,
        ep: &str,
    ) -> Result<Element, OgsaError> {
        svc.invoke(
            ctx,
            "register",
            &Element::new("mds:Register")
                .with_attr("name", name)
                .with_attr("endpoint", ep)
                .with_attr("meta", "type=gram"),
        )
    }

    #[test]
    fn register_lookup_list_unregister() {
        let mut svc = IndexService::new();
        let jane = ctx_for("/O=G/CN=Jane", b"idx jane");
        register(&mut svc, &jane, "gram.compute1", "net:compute1").unwrap();
        register(&mut svc, &jane, "ftp.data1", "net:data1").unwrap();
        assert_eq!(svc.len(), 2);

        let found = svc
            .invoke(
                &jane,
                "lookup",
                &Element::new("q").with_attr("name", "gram.compute1"),
            )
            .unwrap();
        assert_eq!(found.attr("endpoint"), Some("net:compute1"));
        assert_eq!(found.attr("owner"), Some("/O=G/CN=Jane"));
        assert_eq!(found.attr("registeredAt"), Some("500"));

        let all = svc.invoke(&jane, "list", &Element::new("q")).unwrap();
        assert_eq!(all.child_elements().count(), 2);

        svc.invoke(
            &jane,
            "unregister",
            &Element::new("q").with_attr("name", "ftp.data1"),
        )
        .unwrap();
        assert_eq!(svc.len(), 1);
        assert_eq!(svc.service_data("entryCount").unwrap().text_content(), "1");
    }

    #[test]
    fn lookup_missing_is_not_found() {
        let mut svc = IndexService::new();
        let jane = ctx_for("/O=G/CN=Jane", b"idx jane");
        let r = svc
            .invoke(
                &jane,
                "lookup",
                &Element::new("q").with_attr("name", "ghost"),
            )
            .unwrap();
        assert_eq!(r.name, "mds:NotFound");
    }

    #[test]
    fn registrations_are_owned() {
        let mut svc = IndexService::new();
        let jane = ctx_for("/O=G/CN=Jane", b"idx jane");
        let eve = ctx_for("/O=G/CN=Eve", b"idx eve");
        register(&mut svc, &jane, "gram.compute1", "net:real").unwrap();
        // Eve cannot hijack the name...
        let err = register(&mut svc, &eve, "gram.compute1", "net:evil").unwrap_err();
        assert!(matches!(err, OgsaError::NotAuthorized { .. }));
        // ...nor unregister it.
        let err = svc
            .invoke(
                &eve,
                "unregister",
                &Element::new("q").with_attr("name", "gram.compute1"),
            )
            .unwrap_err();
        assert!(matches!(err, OgsaError::NotAuthorized { .. }));
        // Jane can update her own entry.
        register(&mut svc, &jane, "gram.compute1", "net:moved").unwrap();
        let found = svc
            .invoke(
                &jane,
                "lookup",
                &Element::new("q").with_attr("name", "gram.compute1"),
            )
            .unwrap();
        assert_eq!(found.attr("endpoint"), Some("net:moved"));
    }
}
