//! SSLK5: GSI → Kerberos credential conversion (the reverse gateway of
//! paper §3), built on the KDC's PKINIT-style AS exchange.
//!
//! A grid user holding an X.509 credential obtains a Kerberos TGT at a
//! Kerberos-only site, letting GSI users consume Kerberized services
//! without a site password.

use gridsec_bignum::prime::EntropySource;
use gridsec_kerberos::messages::{open, Key, ReplyPart, Ticket};
use gridsec_kerberos::{Kdc, KrbError};
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::Codec;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;

/// The result of an SSLK5 login: a TGT plus its session key, usable for
/// ordinary TGS exchanges afterwards.
#[derive(Debug)]
pub struct Sslk5Login {
    /// The issued ticket-granting ticket.
    pub tgt: Ticket,
    /// Session key for the TGT.
    pub session_key: Key,
    /// The mapped principal.
    pub principal: String,
    /// TGT expiry.
    pub end_time: u64,
}

/// Perform the PKINIT exchange: authenticate to `kdc` with `credential`
/// (validated against the KDC's `trust`), mapping grid identities to
/// principals with `principal_map`.
#[allow(clippy::too_many_arguments)]
pub fn sslk5_login<E: EntropySource>(
    rng: &mut E,
    kdc: &Kdc,
    credential: &Credential,
    trust: &TrustStore,
    principal_map: impl Fn(&DistinguishedName) -> Option<String>,
    now: u64,
    requested_life: u64,
) -> Result<Sslk5Login, KrbError> {
    // Proof of possession over a fresh nonce.
    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    let mut pop_payload = b"pkinit-pop".to_vec();
    pop_payload.extend_from_slice(&nonce);
    let pop_signature = credential.sign(&pop_payload);

    let principal_preview = principal_map(credential.base_identity());

    let (wrapped_key, reply) = kdc.pkinit_as_exchange(
        rng,
        credential.chain(),
        &pop_signature,
        &nonce,
        trust,
        principal_map,
        now,
        requested_life,
    )?;

    // Unwrap the RSA-encrypted reply key with our certificate key.
    let reply_key_bytes = credential
        .key()
        .decrypt_pkcs1(&wrapped_key)
        .map_err(|_| KrbError::Integrity)?;
    let reply_key: Key = reply_key_bytes
        .try_into()
        .map_err(|_| KrbError::Decode("bad reply key length"))?;
    let plain = open(&reply_key, b"krb-as-rep", &reply.enc_part)?;
    let part = ReplyPart::from_bytes(&plain).map_err(|_| KrbError::Decode("reply part"))?;

    Ok(Sslk5Login {
        tgt: reply.tgt,
        session_key: part.session_key,
        principal: principal_preview.unwrap_or_default(),
        end_time: part.end_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_kerberos::client::KrbClient;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::proxy::{issue_proxy, ProxyType};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        kdc: Kdc,
        trust: TrustStore,
        jane: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"sslk5 tests");
        let kdc = Kdc::new(&mut rng, "SITE.B", 36_000);
        kdc.add_principal("jdoe", "site-password");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            kdc,
            trust,
            jane,
        }
    }

    fn jane_map(d: &DistinguishedName) -> Option<String> {
        (d == &dn("/O=G/CN=Jane")).then(|| "jdoe".to_string())
    }

    #[test]
    fn gsi_user_obtains_usable_tgt() {
        let mut w = world();
        let login =
            sslk5_login(&mut w.rng, &w.kdc, &w.jane, &w.trust, jane_map, 100, 10_000).unwrap();
        assert_eq!(login.principal, "jdoe");

        // The TGT works for a normal TGS exchange.
        let fs_key = w.kdc.add_service(&mut w.rng, "host/fs1");
        let client = KrbClient::from_password("jdoe", "SITE.B", "site-password");
        let auth = client.make_authenticator(&mut w.rng, &login.session_key, 110);
        let st = w
            .kdc
            .tgs_exchange(&mut w.rng, &login.tgt, &auth, "host/fs1", 110, 1000)
            .unwrap();
        let body = st.ticket.unseal(&fs_key).unwrap();
        assert_eq!(body.client, "jdoe");
    }

    #[test]
    fn proxy_credential_works_via_base_identity() {
        let mut w = world();
        let proxy = issue_proxy(
            &mut w.rng,
            &w.jane,
            ProxyType::Impersonation,
            512,
            50,
            10_000,
        )
        .unwrap();
        let login =
            sslk5_login(&mut w.rng, &w.kdc, &proxy, &w.trust, jane_map, 100, 10_000).unwrap();
        assert_eq!(login.principal, "jdoe");
    }

    #[test]
    fn untrusted_chain_rejected() {
        let mut w = world();
        let rogue =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1000);
        let fake = rogue.issue_identity(&mut w.rng, dn("/O=G/CN=Jane"), 512, 0, 1000);
        assert_eq!(
            sslk5_login(&mut w.rng, &w.kdc, &fake, &w.trust, jane_map, 100, 1000).unwrap_err(),
            KrbError::PkiRejected
        );
    }

    #[test]
    fn unmapped_identity_rejected() {
        let mut w = world();
        let err =
            sslk5_login(&mut w.rng, &w.kdc, &w.jane, &w.trust, |_| None, 100, 1000).unwrap_err();
        assert!(matches!(err, KrbError::NoMapping(_)));
    }

    #[test]
    fn mapping_to_unregistered_principal_rejected() {
        let mut w = world();
        let err = sslk5_login(
            &mut w.rng,
            &w.kdc,
            &w.jane,
            &w.trust,
            |_| Some("ghost".to_string()),
            100,
            1000,
        )
        .unwrap_err();
        assert!(matches!(err, KrbError::UnknownPrincipal(_)));
    }
}
