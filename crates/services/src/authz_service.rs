//! The authorization service (paper §4.1, Figure 3 step 5): "evaluates
//! policy rules regarding the decision to allow the attempted actions" —
//! the PERMIS/Akenti role in the paper's example, hostable as a Grid
//! service.

use gridsec_authz::policy::{Decision, PolicySet, Request};
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::OgsaError;
use gridsec_xml::Element;

/// Policy evaluation as a hostable Grid service. Operation `decide` takes
/// `<authz:Request subject=".." resource=".." action=".."/>` (plus
/// optional `<authz:Tag>` children) and returns the decision.
pub struct AuthorizationService {
    policy: PolicySet,
    /// Decisions served (experiment instrumentation).
    pub decisions: u64,
}

impl AuthorizationService {
    /// Wrap a policy set.
    pub fn new(policy: PolicySet) -> Self {
        AuthorizationService {
            policy,
            decisions: 0,
        }
    }
}

impl GridService for AuthorizationService {
    fn service_type(&self) -> &str {
        "authorization"
    }

    fn invoke(
        &mut self,
        _ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "decide" => {
                let subject = payload
                    .attr("subject")
                    .ok_or(OgsaError::Malformed("decide needs subject"))?;
                let resource = payload
                    .attr("resource")
                    .ok_or(OgsaError::Malformed("decide needs resource"))?;
                let action = payload
                    .attr("action")
                    .ok_or(OgsaError::Malformed("decide needs action"))?;
                let mut req = Request::new(subject, resource, action);
                for tag in payload.find_all("authz:Tag") {
                    req = req.with_tag(&tag.text_content());
                }
                self.decisions += 1;
                let d = self.policy.evaluate(&req);
                Ok(Element::new("authz:Decision").with_text(match d {
                    Decision::Permit => "permit",
                    Decision::Deny => "deny",
                    Decision::NotApplicable => "not-applicable",
                }))
            }
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }

    fn service_data(&self, name: &str) -> Option<Element> {
        (name == "decisionCount")
            .then(|| Element::new("sde:decisionCount").with_text(self.decisions.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_authz::policy::{CombiningAlg, Effect, Rule, SubjectMatch};
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn ctx() -> RequestContext {
        let mut rng = ChaChaRng::from_seed_bytes(b"authz svc");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        let cred = ca.issue_identity(&mut rng, dn("/O=G/CN=HE"), 512, 0, 1000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        RequestContext {
            caller: validate_chain(cred.chain(), &trust, 10).unwrap(),
            now: 10,
            handle: "gsh:authz".to_string(),
        }
    }

    fn service() -> AuthorizationService {
        let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
        p.add(Rule::new(
            SubjectMatch::Exact("/O=G/CN=Jane".to_string()),
            "queue:batch",
            "submit",
            Effect::Permit,
        ));
        p.add(Rule::new(
            SubjectMatch::Exact("group:ops".to_string()),
            "queue:*",
            "*",
            Effect::Permit,
        ));
        AuthorizationService::new(p)
    }

    fn decide(
        svc: &mut AuthorizationService,
        c: &RequestContext,
        s: &str,
        r: &str,
        a: &str,
    ) -> String {
        svc.invoke(
            c,
            "decide",
            &Element::new("authz:Request")
                .with_attr("subject", s)
                .with_attr("resource", r)
                .with_attr("action", a),
        )
        .unwrap()
        .text_content()
    }

    #[test]
    fn decisions() {
        let mut svc = service();
        let c = ctx();
        assert_eq!(
            decide(&mut svc, &c, "/O=G/CN=Jane", "queue:batch", "submit"),
            "permit"
        );
        assert_eq!(
            decide(&mut svc, &c, "/O=G/CN=Jane", "queue:batch", "cancel"),
            "not-applicable"
        );
        assert_eq!(
            decide(&mut svc, &c, "/O=G/CN=Eve", "queue:batch", "submit"),
            "not-applicable"
        );
        assert_eq!(svc.decisions, 3);
        assert_eq!(
            svc.service_data("decisionCount").unwrap().text_content(),
            "3"
        );
    }

    #[test]
    fn tags_carry_groups() {
        let mut svc = service();
        let c = ctx();
        let result = svc
            .invoke(
                &c,
                "decide",
                &Element::new("authz:Request")
                    .with_attr("subject", "/O=G/CN=Op1")
                    .with_attr("resource", "queue:debug")
                    .with_attr("action", "drain")
                    .with_child(Element::new("authz:Tag").with_text("group:ops")),
            )
            .unwrap();
        assert_eq!(result.text_content(), "permit");
    }

    #[test]
    fn malformed_requests_rejected() {
        let mut svc = service();
        let c = ctx();
        assert!(svc
            .invoke(&c, "decide", &Element::new("authz:Request"))
            .is_err());
        assert!(svc.invoke(&c, "nonsense", &Element::new("x")).is_err());
    }
}
