//! MyProxy-style online credential repository (GridCertLib's portal SSO
//! flow; Novotny/Tuecke/Welch's MyProxy, referenced from the paper's
//! single-sign-on story).
//!
//! A portal user *stores* a delegated credential at the repository once
//! (the repository generates the key pair locally — the user's private
//! key never crosses the wire, exactly the GSI delegation shape), then
//! any later incarnation of the portal — including one reborn after a
//! crash — presents the owner name and passphrase to *re-acquire* a
//! short-lived proxy, or to *renew* the proxy of a long-running job.
//!
//! The repository is durable: stored credentials (chain + locally
//! generated private key) and every visible proxy issuance are
//! journaled write-ahead into a [`Journal`], and the service is meant
//! to be hosted in a [`CrashableServer`] with `persist_replies: true`.
//! Issuance is exactly-once across any kill window: the issue record —
//! including the exact reply bytes — is durable before the reply can
//! leave the process, so a retransmission after the worst-window crash
//! is answered with the *same* proxy certificate instead of minting a
//! second one.
//!
//! Kill points (see `testbed::faults`):
//!
//! * `myproxy.store.exec` — before a store commit executes.
//! * `myproxy.store.journaled` — credential durable, reply lost.
//! * `myproxy.issue.exec` — before a get/renew issuance executes.
//! * `myproxy.issue.journaled` — issuance durable, reply lost (the
//!   worst window: recovery must serve the journaled proxy, not mint a
//!   fresh one).

use std::collections::HashMap;

use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use gridsec_crypto::sha256::sha256;
use gridsec_pki::cert::{decode_public_key, encode_public_key, Certificate};
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::proxy::{issue_delegated_proxy, ProxyType};
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::{CrashPlan, CrashRecover, Journal};
use gridsec_testbed::rpc::RpcClient;
use gridsec_util::trace;

/// Op: begin a store — the repository generates and returns a key.
pub const OP_STORE_BEGIN: &str = "mp-store-begin";
/// Op: commit a store — deliver the proxy certificate over that key.
pub const OP_STORE_COMMIT: &str = "mp-store-commit";
/// Op: issue a fresh short-lived proxy for a portal re-acquisition.
pub const OP_GET: &str = "mp-get";
/// Op: issue a fresh short-lived proxy renewing a running job's.
pub const OP_RENEW: &str = "mp-renew";
/// Op: remove a stored credential.
pub const OP_DESTROY: &str = "mp-destroy";

/// Journal tag: a committed store (owner, passphrase hash, key, chain).
pub const TAG_STORE: &str = "mp-store";
/// Journal tag: a visible issuance (caller, call id, exact reply).
pub const TAG_ISSUE: &str = "mp-issue";
/// Journal tag: a destroy.
pub const TAG_DESTROY: &str = "mp-destroy";

/// Errors from remote credential-repository calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MyProxyError {
    /// RPC transport failure (retries exhausted).
    Transport(String),
    /// Malformed reply.
    Decode(&'static str),
    /// The repository refused the request (bad passphrase, no such
    /// credential, expired stored credential, ...).
    Refused(String),
}

impl core::fmt::Display for MyProxyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MyProxyError::Transport(m) => write!(f, "transport error: {m}"),
            MyProxyError::Decode(m) => write!(f, "decode error: {m}"),
            MyProxyError::Refused(m) => write!(f, "refused: {m}"),
        }
    }
}

impl std::error::Error for MyProxyError {}

fn pass_hash(passphrase: &str) -> [u8; 32] {
    sha256(passphrase.as_bytes())
}

/// One stored credential: the delegated chain plus the repository-held
/// private key, gated by a passphrase hash.
struct Stored {
    pass_hash: [u8; 32],
    credential: Credential,
}

fn encode_keypair(e: &mut Encoder, key: &RsaKeyPair) {
    let (p, q) = key.primes();
    e.put_biguint(p)
        .put_biguint(q)
        .put_biguint(key.public().exponent());
}

fn decode_keypair(d: &mut Decoder<'_>) -> Option<RsaKeyPair> {
    let p = d.get_biguint().ok()?;
    let q = d.get_biguint().ok()?;
    let e = d.get_biguint().ok()?;
    RsaKeyPair::from_components(p, q, e).ok()
}

/// The durable MyProxy repository; plug into a
/// [`CrashableServer`][gridsec_testbed::faults::CrashableServer] (with
/// `persist_replies: true`) as its [`CrashRecover`] application.
pub struct MyProxyServer {
    clock: SimClock,
    seed: Vec<u8>,
    generation: u64,
    rng: ChaChaRng,
    plan: CrashPlan,
    /// The write-ahead journal (shared with the supervisor).
    pub journal: Journal,
    /// Issuance lifetime cap, sim-seconds: requests asking for more are
    /// clamped (MyProxy's `max_proxy_lifetime`).
    max_lifetime: u64,
    /// owner → stored credential. Rebuilt from the journal on recovery.
    stored: HashMap<String, Stored>,
    /// (caller, call-id) → exact issue reply already journaled.
    issued: HashMap<(String, u64), Vec<u8>>,
    /// (caller, owner) → key pair awaiting its store commit. Volatile:
    /// a crash aborts the half-open store and the client begins again.
    pending_store: HashMap<(String, String), RsaKeyPair>,
    /// Serials of every proxy that became visible (journaled).
    serials: Vec<u64>,
}

impl MyProxyServer {
    /// Open the repository over `journal`, replaying any existing
    /// records. `max_lifetime` caps issued proxy lifetimes.
    pub fn new(
        clock: SimClock,
        seed: &[u8],
        plan: CrashPlan,
        journal: Journal,
        max_lifetime: u64,
    ) -> Self {
        let mut s = MyProxyServer {
            clock,
            seed: seed.to_vec(),
            generation: 0,
            rng: ChaChaRng::from_seed_bytes(seed),
            plan,
            journal,
            max_lifetime,
            stored: HashMap::new(),
            issued: HashMap::new(),
            pending_store: HashMap::new(),
            serials: Vec::new(),
        };
        s.recover();
        s
    }

    /// Owners with a stored credential.
    pub fn stored_count(&self) -> usize {
        self.stored.len()
    }

    /// Distinct proxy issuances that became visible (journaled) —
    /// retransmissions and crash-replays do not inflate this.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }

    /// Serials of every visible issued proxy, in journal order.
    pub fn issued_serials(&self) -> &[u64] {
        &self.serials
    }

    fn reply_ok(body: &[u8]) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("ok").put_bytes(body);
        e.finish()
    }

    fn reply_err(msg: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("err").put_bytes(msg.as_bytes());
        e.finish()
    }

    fn authorized(&self, owner: &str, passphrase: &str) -> Result<&Stored, &'static str> {
        let stored = self.stored.get(owner).ok_or("no such credential")?;
        if stored.pass_hash != pass_hash(passphrase) {
            return Err("bad passphrase");
        }
        Ok(stored)
    }

    fn handle_store_begin(&mut self, from: &str, d: &mut Decoder<'_>) -> Vec<u8> {
        let (Ok(owner), Ok(_passphrase)) = (d.get_str(), d.get_str()) else {
            return Self::reply_err("malformed store-begin");
        };
        // A fresh begin always restarts the pending store: the previous
        // half-open attempt (client died mid-flow) is abandoned.
        let key = RsaKeyPair::generate(&mut self.rng, 512);
        let mut e = Encoder::new();
        encode_public_key(&mut e, key.public());
        self.pending_store.insert((from.to_string(), owner), key);
        Self::reply_ok(&e.finish())
    }

    fn handle_store_commit(&mut self, from: &str, d: &mut Decoder<'_>) -> Vec<u8> {
        let parsed = (|| {
            let owner = d.get_str().ok()?;
            let passphrase = d.get_str().ok()?;
            let proxy_cert = Certificate::decode(d).ok()?;
            let chain = d.get_seq(Certificate::decode).ok()?;
            Some((owner, passphrase, proxy_cert, chain))
        })();
        let Some((owner, passphrase, proxy_cert, issuer_chain)) = parsed else {
            return Self::reply_err("malformed store-commit");
        };
        let Some(key) = self
            .pending_store
            .remove(&(from.to_string(), owner.clone()))
        else {
            return Self::reply_err("no store in progress");
        };
        if proxy_cert.public_key() != key.public() {
            return Self::reply_err("certificate is not over our key");
        }
        if self.plan.fires("myproxy.store.exec") {
            return Vec::new();
        }
        let hash = pass_hash(&passphrase);
        let mut e = Encoder::new();
        e.put_str(&owner).put_bytes(&hash);
        encode_keypair(&mut e, &key);
        proxy_cert.encode(&mut e);
        e.put_seq(&issuer_chain, |enc, c| c.encode(enc));
        if self.journal.append(TAG_STORE, &e.finish()).is_err() {
            return Self::reply_err("journal unavailable");
        }
        if self.plan.fires("myproxy.store.journaled") {
            return Vec::new();
        }
        let mut chain = vec![proxy_cert];
        chain.extend(issuer_chain);
        trace::add("myproxy.stores", 1);
        self.stored.insert(
            owner,
            Stored {
                pass_hash: hash,
                credential: Credential::new(chain, key),
            },
        );
        Self::reply_ok(&[])
    }

    fn handle_issue(&mut self, from: &str, id: u64, op: &str, d: &mut Decoder<'_>) -> Vec<u8> {
        let key = (from.to_string(), id);
        if let Some(reply) = self.issued.get(&key) {
            trace::event("myproxy.issue.replayed", &format!("from={from} id={id}"));
            return reply.clone();
        }
        let parsed = (|| {
            let owner = d.get_str().ok()?;
            let passphrase = d.get_str().ok()?;
            let public_key = decode_public_key(d).ok()?;
            let lifetime = d.get_u64().ok()?;
            Some((owner, passphrase, public_key, lifetime))
        })();
        let Some((owner, passphrase, public_key, lifetime)) = parsed else {
            return Self::reply_err(&format!("malformed {op}"));
        };
        if self.plan.fires("myproxy.issue.exec") {
            return Vec::new();
        }
        let now = self.clock.now();
        let reply = match self.issue(&owner, &passphrase, &public_key, lifetime, now) {
            Ok((reply, serial)) => {
                // Write-ahead: the exact reply is durable before it can
                // leave, so the worst-window crash replays it instead
                // of minting a second proxy.
                let mut e = Encoder::new();
                e.put_str(from)
                    .put_u64(id)
                    .put_str(&owner)
                    .put_u64(serial)
                    .put_bytes(&reply);
                if self.journal.append(TAG_ISSUE, &e.finish()).is_err() {
                    return Self::reply_err("journal unavailable");
                }
                if self.plan.fires("myproxy.issue.journaled") {
                    return Vec::new();
                }
                self.issued.insert(key, reply.clone());
                self.serials.push(serial);
                trace::add(
                    if op == OP_RENEW {
                        "myproxy.renewals"
                    } else {
                        "myproxy.issues"
                    },
                    1,
                );
                reply
            }
            Err(msg) => Self::reply_err(msg),
        };
        reply
    }

    fn issue(
        &mut self,
        owner: &str,
        passphrase: &str,
        public_key: &RsaPublicKey,
        lifetime: u64,
        now: u64,
    ) -> Result<(Vec<u8>, u64), &'static str> {
        let lifetime = lifetime.min(self.max_lifetime);
        let stored = self.authorized(owner, passphrase)?;
        let parent = stored.credential.clone();
        let cert = issue_delegated_proxy(
            &mut self.rng,
            &parent,
            public_key,
            ProxyType::Impersonation,
            now,
            lifetime,
        )
        .map_err(|_| "stored credential cannot issue (expired?)")?;
        let serial = cert.tbs.serial;
        let mut e = Encoder::new();
        cert.encode(&mut e);
        e.put_seq(parent.chain(), |enc, c| c.encode(enc));
        Ok((Self::reply_ok(&e.finish()), serial))
    }

    fn handle_destroy(&mut self, d: &mut Decoder<'_>) -> Vec<u8> {
        let (Ok(owner), Ok(passphrase)) = (d.get_str(), d.get_str()) else {
            return Self::reply_err("malformed destroy");
        };
        if let Err(msg) = self.authorized(&owner, &passphrase) {
            return Self::reply_err(msg);
        }
        let mut e = Encoder::new();
        e.put_str(&owner);
        if self.journal.append(TAG_DESTROY, &e.finish()).is_err() {
            return Self::reply_err("journal unavailable");
        }
        self.stored.remove(&owner);
        trace::add("myproxy.destroys", 1);
        Self::reply_ok(&[])
    }
}

impl CrashRecover for MyProxyServer {
    fn handle(&mut self, from: &str, id: u64, body: &[u8]) -> Vec<u8> {
        let mut d = Decoder::new(body);
        let Ok(op) = d.get_str() else {
            return Self::reply_err("malformed request");
        };
        match op.as_str() {
            OP_STORE_BEGIN => self.handle_store_begin(from, &mut d),
            OP_STORE_COMMIT => self.handle_store_commit(from, &mut d),
            OP_GET | OP_RENEW => self.handle_issue(from, id, &op, &mut d),
            OP_DESTROY => self.handle_destroy(&mut d),
            _ => Self::reply_err("unknown myproxy op"),
        }
    }

    fn crash(&mut self) {
        self.generation += 1;
        let mut seed = self.seed.clone();
        seed.extend_from_slice(&self.generation.to_be_bytes());
        self.rng = ChaChaRng::from_seed_bytes(&seed);
        self.stored.clear();
        self.issued.clear();
        self.pending_store.clear();
        self.serials.clear();
    }

    fn recover(&mut self) {
        self.crash();
        for (tag, body) in self.journal.records() {
            let mut d = Decoder::new(&body);
            match tag.as_str() {
                TAG_STORE => {
                    let parsed = (|| {
                        let owner = d.get_str().ok()?;
                        let hash: [u8; 32] = d.get_bytes().ok()?.try_into().ok()?;
                        let key = decode_keypair(&mut d)?;
                        let proxy_cert = Certificate::decode(&mut d).ok()?;
                        let issuer_chain = d.get_seq(Certificate::decode).ok()?;
                        Some((owner, hash, key, proxy_cert, issuer_chain))
                    })();
                    if let Some((owner, pass_hash, key, proxy_cert, issuer_chain)) = parsed {
                        let mut chain = vec![proxy_cert];
                        chain.extend(issuer_chain);
                        self.stored.insert(
                            owner,
                            Stored {
                                pass_hash,
                                credential: Credential::new(chain, key),
                            },
                        );
                    }
                }
                TAG_ISSUE => {
                    let parsed = (|| {
                        let from = d.get_str().ok()?;
                        let id = d.get_u64().ok()?;
                        let _owner = d.get_str().ok()?;
                        let serial = d.get_u64().ok()?;
                        let reply = d.get_bytes().ok()?;
                        Some((from, id, serial, reply))
                    })();
                    if let Some((from, id, serial, reply)) = parsed {
                        self.issued.insert((from, id), reply);
                        self.serials.push(serial);
                    }
                }
                TAG_DESTROY => {
                    if let Ok(owner) = d.get_str() {
                        self.stored.remove(&owner);
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

fn round(rpc: &mut RpcClient, request: Vec<u8>) -> Result<Vec<u8>, MyProxyError> {
    let raw = rpc
        .call(&request)
        .map_err(|e| MyProxyError::Transport(e.to_string()))?;
    decode_verdict(&raw)
}

/// Split a repository reply into its `ok` body, or the typed refusal.
pub fn decode_verdict(raw: &[u8]) -> Result<Vec<u8>, MyProxyError> {
    let mut d = Decoder::new(raw);
    let (Ok(status), Ok(body)) = (d.get_str(), d.get_bytes()) else {
        return Err(MyProxyError::Decode("malformed myproxy reply"));
    };
    match status.as_str() {
        "ok" => Ok(body),
        _ => Err(MyProxyError::Refused(
            String::from_utf8_lossy(&body).into_owned(),
        )),
    }
}

/// Encode an `mp-get` / `mp-renew` request body.
pub fn encode_issue_request(
    op: &str,
    owner: &str,
    passphrase: &str,
    public_key: &RsaPublicKey,
    lifetime: u64,
) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(op).put_str(owner).put_str(passphrase);
    encode_public_key(&mut e, public_key);
    e.put_u64(lifetime);
    e.finish()
}

/// Decode an issue reply body (proxy certificate + issuer chain) and
/// assemble the credential around the locally held key.
pub fn assemble_issued(body: &[u8], key: RsaKeyPair) -> Result<Credential, MyProxyError> {
    let mut d = Decoder::new(body);
    let parsed = (|| {
        let cert = Certificate::decode(&mut d).ok()?;
        let chain = d.get_seq(Certificate::decode).ok()?;
        Some((cert, chain))
    })();
    let Some((cert, issuer_chain)) = parsed else {
        return Err(MyProxyError::Decode("malformed issue reply"));
    };
    if cert.public_key() != key.public() {
        return Err(MyProxyError::Decode("certificate is not over our key"));
    }
    let mut chain = vec![cert];
    chain.extend(issuer_chain);
    Ok(Credential::new(chain, key))
}

/// Store `delegator`'s credential at the repository: the repository
/// generates the key pair, we sign a delegated proxy over it. The
/// delegated proxy's lifetime is clamped by `delegator`'s own window.
pub fn store_credential<E: gridsec_bignum::prime::EntropySource>(
    rpc: &mut RpcClient,
    rng: &mut E,
    owner: &str,
    passphrase: &str,
    delegator: &Credential,
    now: u64,
    lifetime: u64,
) -> Result<(), MyProxyError> {
    let mut e = Encoder::new();
    e.put_str(OP_STORE_BEGIN).put_str(owner).put_str(passphrase);
    let body = round(rpc, e.finish())?;
    let mut d = Decoder::new(&body);
    let repo_key =
        decode_public_key(&mut d).map_err(|_| MyProxyError::Decode("malformed repo key"))?;
    let cert = issue_delegated_proxy(
        rng,
        delegator,
        &repo_key,
        ProxyType::Impersonation,
        now,
        lifetime,
    )
    .map_err(|e| MyProxyError::Refused(format!("cannot delegate to repository: {e:?}")))?;
    let mut e = Encoder::new();
    e.put_str(OP_STORE_COMMIT)
        .put_str(owner)
        .put_str(passphrase);
    cert.encode(&mut e);
    e.put_seq(delegator.chain(), |enc, c| c.encode(enc));
    round(rpc, e.finish())?;
    Ok(())
}

fn issue_round<E: gridsec_bignum::prime::EntropySource>(
    rpc: &mut RpcClient,
    rng: &mut E,
    op: &str,
    owner: &str,
    passphrase: &str,
    key_bits: usize,
    lifetime: u64,
) -> Result<Credential, MyProxyError> {
    let key = RsaKeyPair::generate(rng, key_bits);
    let body = round(
        rpc,
        encode_issue_request(op, owner, passphrase, key.public(), lifetime),
    )?;
    assemble_issued(&body, key)
}

/// Re-acquire a short-lived proxy from the repository (portal login or
/// post-crash recovery): generate a key pair locally, the repository
/// signs a proxy over it from the stored credential.
pub fn acquire<E: gridsec_bignum::prime::EntropySource>(
    rpc: &mut RpcClient,
    rng: &mut E,
    owner: &str,
    passphrase: &str,
    key_bits: usize,
    lifetime: u64,
) -> Result<Credential, MyProxyError> {
    issue_round(rpc, rng, OP_GET, owner, passphrase, key_bits, lifetime)
}

/// Renew a long-running job's proxy: same issuance as [`acquire`], but
/// counted (and traced) as a renewal.
pub fn renew<E: gridsec_bignum::prime::EntropySource>(
    rpc: &mut RpcClient,
    rng: &mut E,
    owner: &str,
    passphrase: &str,
    key_bits: usize,
    lifetime: u64,
) -> Result<Credential, MyProxyError> {
    issue_round(rpc, rng, OP_RENEW, owner, passphrase, key_bits, lifetime)
}

/// Remove the stored credential.
pub fn destroy(rpc: &mut RpcClient, owner: &str, passphrase: &str) -> Result<(), MyProxyError> {
    let mut e = Encoder::new();
    e.put_str(OP_DESTROY).put_str(owner).put_str(passphrase);
    round(rpc, e.finish())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;
    use gridsec_testbed::faults::CrashableServer;
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::os::{SimOs, ROOT_UID};
    use gridsec_util::retry::RetryPolicy;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        jane: Credential,
        clock: SimClock,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"myproxy tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            jane,
            clock: SimClock::starting_at(100),
        }
    }

    struct Rig {
        app: Rc<RefCell<MyProxyServer>>,
        server: Rc<RefCell<CrashableServer>>,
        rpc: RpcClient,
        plan: CrashPlan,
    }

    fn rig(w: &World, plan: CrashPlan) -> Rig {
        let os = SimOs::new();
        os.add_host("repo");
        let journal = Journal::open(os, "repo", "/var/myproxy/journal.wal", ROOT_UID);
        let app = Rc::new(RefCell::new(MyProxyServer::new(
            w.clock.clone(),
            b"myproxy rig",
            plan.clone(),
            journal.clone(),
            50_000,
        )));
        let net = Network::new();
        net.enable_faults(w.clock.clone(), 0x3A9D, FaultProfile::default());
        let server = Rc::new(RefCell::new(CrashableServer::new(
            net.register("repo"),
            "myproxy",
            plan.clone(),
            journal,
            true,
        )));
        let mut rpc = RpcClient::new(
            net.register("portal"),
            "repo",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = server.clone();
        let hook_app = app.clone();
        rpc.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));
        Rig {
            app,
            server,
            rpc,
            plan,
        }
    }

    #[test]
    fn store_acquire_renew_destroy_roundtrip() {
        let mut w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        assert_eq!(r.app.borrow().stored_count(), 1);

        let proxy = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap();
        assert_eq!(proxy.base_identity(), &dn("/O=G/CN=Jane"));
        assert_eq!(proxy.proxy_depth(), 2, "user → repo proxy → short proxy");
        let id = validate_chain(proxy.chain(), &w.trust, w.clock.now()).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));

        let renewed = renew(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap();
        assert_ne!(
            renewed.certificate().subject(),
            proxy.certificate().subject()
        );
        assert_eq!(r.app.borrow().issued_count(), 2);

        destroy(&mut r.rpc, "jane", "s3cret").unwrap();
        let err = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap_err();
        assert!(matches!(err, MyProxyError::Refused(m) if m.contains("no such credential")));
    }

    #[test]
    fn passphrase_gates_every_verb() {
        let mut w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        let err = acquire(&mut r.rpc, &mut w.rng, "jane", "wrong", 512, 3_600).unwrap_err();
        assert!(matches!(err, MyProxyError::Refused(m) if m.contains("bad passphrase")));
        let err = destroy(&mut r.rpc, "jane", "wrong").unwrap_err();
        assert!(matches!(err, MyProxyError::Refused(m) if m.contains("bad passphrase")));
        assert_eq!(r.app.borrow().stored_count(), 1, "nothing destroyed");
    }

    #[test]
    fn issuance_lifetime_is_capped() {
        let mut w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        let proxy = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, u64::MAX).unwrap();
        let not_after = proxy.certificate().tbs.validity.not_after;
        assert!(
            not_after <= w.clock.now() + 50_000,
            "cap applied: {not_after}"
        );
    }

    #[test]
    fn stored_credentials_survive_crash_and_recovery() {
        let mut w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        r.app.borrow_mut().crash();
        assert_eq!(r.app.borrow().stored_count(), 0, "crash wipes memory");
        r.app.borrow_mut().recover();
        assert_eq!(r.app.borrow().stored_count(), 1, "journal replay restores");
        let proxy = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap();
        assert!(validate_chain(proxy.chain(), &w.trust, w.clock.now()).is_ok());
    }

    #[test]
    fn worst_window_crash_issues_exactly_once() {
        let mut w = world();
        let plan = CrashPlan::manual(3);
        let mut r = rig(&w, plan);
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        // Kill after the issue record is durable but before the reply
        // leaves: the retransmission must be served the SAME proxy.
        r.plan.arm("myproxy.issue.journaled", 1);
        let proxy = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap();
        assert_eq!(r.plan.crashes(), 1, "the kill fired");
        assert_eq!(r.server.borrow().restarts(), 1);
        assert_eq!(r.app.borrow().issued_count(), 1, "exactly one issuance");
        assert_eq!(
            r.app.borrow().issued_serials(),
            &[proxy.certificate().tbs.serial],
            "the visible proxy is the journaled one"
        );
    }

    #[test]
    fn crash_before_issue_executes_yields_one_visible_proxy() {
        let mut w = world();
        let plan = CrashPlan::manual(3);
        let mut r = rig(&w, plan);
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        r.plan.arm("myproxy.issue.exec", 1);
        let proxy = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap();
        assert_eq!(r.plan.crashes(), 1);
        assert_eq!(r.app.borrow().issued_count(), 1);
        assert!(validate_chain(proxy.chain(), &w.trust, w.clock.now()).is_ok());
    }

    #[test]
    fn crash_mid_store_aborts_cleanly_and_store_retries() {
        let mut w = world();
        let plan = CrashPlan::manual(3);
        let mut r = rig(&w, plan);
        // Kill during the commit execution: pending key is volatile, so
        // the first flow dies; a fresh store flow succeeds.
        r.plan.arm("myproxy.store.exec", 1);
        let err = store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap_err();
        assert!(matches!(err, MyProxyError::Refused(_)), "{err:?}");
        assert_eq!(r.app.borrow().stored_count(), 0, "no half-stored state");
        store_credential(
            &mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 100_000,
        )
        .unwrap();
        assert_eq!(r.app.borrow().stored_count(), 1);
    }

    #[test]
    fn expired_stored_credential_refuses_issuance() {
        let mut w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        // Store with a short delegated lifetime, then age past it.
        store_credential(&mut r.rpc, &mut w.rng, "jane", "s3cret", &w.jane, 100, 500).unwrap();
        w.clock.set(10_000);
        let err = acquire(&mut r.rpc, &mut w.rng, "jane", "s3cret", 512, 3_600).unwrap_err();
        assert!(
            matches!(err, MyProxyError::Refused(m) if m.contains("expired")),
            "typed refusal, not a panic"
        );
    }
}
