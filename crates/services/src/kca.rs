//! The Kerberos Certificate Authority (KCA): Kerberos → GSI credential
//! conversion (paper §3 and Figure 3 step 2; Kornievskaia et al., ref 29).
//!
//! A site with an existing Kerberos infrastructure runs a KCA: users
//! authenticate with a Kerberos service ticket and receive a short-lived
//! X.509 certificate over a locally-generated key pair, letting them act
//! on the Grid without a personal long-lived certificate.

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::rsa::RsaKeyPair;
use gridsec_kerberos::client::{KrbClient, ServiceVerifier};
use gridsec_kerberos::messages::Key;
use gridsec_kerberos::{Kdc, KrbError, Ticket};
use gridsec_ogsa::client::CredentialSource;
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::cert::Certificate;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;

/// The KCA service principal registered with the KDC.
pub const KCA_SERVICE: &str = "kca/grid";

/// The KCA: an online CA that certifies Kerberos-authenticated users.
pub struct KerberosCa {
    ca: CertificateAuthority,
    verifier: ServiceVerifier,
    realm: String,
    cert_lifetime: u64,
}

impl KerberosCa {
    /// Stand up a KCA for a realm: registers the `kca/grid` service with
    /// the KDC and creates the KCA's own (short-lived-issuing) CA.
    ///
    /// Grid relying parties that want to accept this site's users add
    /// `kca.certificate()` to their trust stores — a *unilateral* act.
    pub fn new<E: EntropySource>(
        rng: &mut E,
        kdc: &Kdc,
        ca_key_bits: usize,
        ca_validity: u64,
        cert_lifetime: u64,
    ) -> Self {
        let key: Key = kdc.add_service(rng, KCA_SERVICE);
        let realm = kdc.realm().to_string();
        let name = DistinguishedName::parse(&format!("/O=KCA {realm}/CN=Kerberos CA"))
            .expect("static name");
        let ca = CertificateAuthority::create_root(rng, name, ca_key_bits, 0, ca_validity);
        KerberosCa {
            ca,
            verifier: ServiceVerifier::new(KCA_SERVICE, key),
            realm,
            cert_lifetime,
        }
    }

    /// The KCA's root certificate (trust anchor for its issued certs).
    pub fn certificate(&self) -> &Certificate {
        self.ca.certificate()
    }

    /// The DN the KCA will issue for a principal.
    pub fn dn_for_principal(&self, principal: &str) -> DistinguishedName {
        DistinguishedName::parse(&format!("/O=KCA {}/CN={principal}", self.realm))
            .expect("principal names are attribute-safe")
    }

    /// Convert: given a valid (ticket, authenticator) for `kca/grid` and a
    /// client-generated public key, issue a short-lived certificate. The
    /// private key never leaves the requester.
    pub fn convert(
        &self,
        ticket: &Ticket,
        authenticator: &[u8],
        public_key: &gridsec_crypto::rsa::RsaPublicKey,
        now: u64,
    ) -> Result<Certificate, KrbError> {
        let accepted = self.verifier.accept(ticket, authenticator, now)?;
        let subject = self.dn_for_principal(&accepted.client);
        let extensions = gridsec_pki::cert::Extensions {
            basic_constraints: Some(gridsec_pki::cert::BasicConstraints {
                is_ca: false,
                path_len: None,
            }),
            key_usage: Some(
                gridsec_pki::cert::key_usage::DIGITAL_SIGNATURE
                    | gridsec_pki::cert::key_usage::KEY_ENCIPHERMENT,
            ),
            proxy_cert_info: None,
            subject_alt_names: vec![format!("{}@{}", accepted.client, self.realm)],
        };
        Ok(self.ca.issue_certificate(
            subject,
            public_key.clone(),
            gridsec_pki::cert::Validity {
                not_before: now,
                not_after: (now + self.cert_lifetime).min(accepted.end_time.max(now)),
            },
            extensions,
        ))
    }
}

/// A [`CredentialSource`] backed by a Kerberos login + the KCA — the
/// client half of Figure 3 step 2. Holds shared handles so it satisfies
/// the `'static` bound `OgsaClient` places on sources.
pub struct KcaCredentialSource {
    kdc: std::sync::Arc<Kdc>,
    kca: std::sync::Arc<KerberosCa>,
    client: KrbClient,
    key_bits: usize,
    rng: gridsec_crypto::rng::ChaChaRng,
    cached: Option<(u64, Credential)>,
}

impl KcaCredentialSource {
    /// Create a source for a Kerberos user (`principal`/`password`).
    pub fn new(
        kdc: std::sync::Arc<Kdc>,
        kca: std::sync::Arc<KerberosCa>,
        principal: &str,
        password: &str,
        key_bits: usize,
        rng_seed: &[u8],
    ) -> Self {
        let client = KrbClient::from_password(principal, kdc.realm(), password);
        KcaCredentialSource {
            kdc,
            kca,
            client,
            key_bits,
            rng: gridsec_crypto::rng::ChaChaRng::from_seed_bytes(rng_seed),
            cached: None,
        }
    }

    fn convert_now(&mut self, now: u64) -> Result<Credential, OgsaError> {
        let fail = |stage: &str, e: KrbError| {
            OgsaError::Application(format!("KCA conversion failed at {stage}: {e}"))
        };
        // Kerberos login: AS then TGS for kca/grid.
        let tgt_reply = self
            .kdc
            .as_exchange(&mut self.rng, &self.client.principal, now, 36_000)
            .map_err(|e| fail("AS", e))?;
        let (tgt, tgt_part) = self
            .client
            .open_tgt_reply(&tgt_reply)
            .map_err(|e| fail("AS-open", e))?;
        let auth = self
            .client
            .make_authenticator(&mut self.rng, &tgt_part.session_key, now);
        let st = self
            .kdc
            .tgs_exchange(&mut self.rng, &tgt, &auth, KCA_SERVICE, now, 3600)
            .map_err(|e| fail("TGS", e))?;
        let st_part = self
            .client
            .open_service_reply(&tgt_part.session_key, &st)
            .map_err(|e| fail("TGS-open", e))?;

        // Local key pair; KCA certifies the public half.
        let key = RsaKeyPair::generate(&mut self.rng, self.key_bits);
        let ap_auth = self
            .client
            .make_authenticator(&mut self.rng, &st_part.session_key, now);
        let cert = self
            .kca
            .convert(&st.ticket, &ap_auth, key.public(), now)
            .map_err(|e| fail("convert", e))?;
        Ok(Credential::new(
            vec![cert, self.kca.certificate().clone()],
            key,
        ))
    }
}

impl CredentialSource for KcaCredentialSource {
    fn token_type(&self) -> &str {
        "kerberos-ticket"
    }

    fn obtain(&mut self, now: u64) -> Result<Credential, OgsaError> {
        if let Some((t, cred)) = &self.cached {
            if *t == now {
                return Ok(cred.clone());
            }
        }
        let cred = self.convert_now(now)?;
        self.cached = Some((now, cred.clone()));
        Ok(cred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_ogsa::client::CredentialSource;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    use std::sync::Arc;

    struct World {
        rng: ChaChaRng,
        kdc: Arc<Kdc>,
        kca: Arc<KerberosCa>,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"kca tests");
        let kdc = Kdc::new(&mut rng, "SITE.A", 36_000);
        kdc.add_principal("alice", "pw");
        let kca = KerberosCa::new(&mut rng, &kdc, 512, 1_000_000, 43_200);
        World {
            rng,
            kdc: Arc::new(kdc),
            kca: Arc::new(kca),
        }
    }

    #[test]
    fn kerberos_user_becomes_grid_identity() {
        let w = world();
        let mut source = KcaCredentialSource::new(
            w.kdc.clone(),
            w.kca.clone(),
            "alice",
            "pw",
            512,
            b"alice rng",
        );
        let cred = source.obtain(100).unwrap();
        assert_eq!(cred.subject().to_string(), "/O=KCA SITE.A/CN=alice");

        // A grid relying party that unilaterally trusts this KCA can
        // validate the credential.
        let mut trust = TrustStore::new();
        trust.add_root(w.kca.certificate().clone());
        let id = validate_chain(cred.chain(), &trust, 200).unwrap();
        assert_eq!(id.base_identity.to_string(), "/O=KCA SITE.A/CN=alice");
    }

    #[test]
    fn issued_certs_are_short_lived() {
        let w = world();
        let mut source = KcaCredentialSource::new(
            w.kdc.clone(),
            w.kca.clone(),
            "alice",
            "pw",
            512,
            b"alice rng",
        );
        let cred = source.obtain(100).unwrap();
        let v = cred.certificate().tbs.validity;
        assert_eq!(v.not_before, 100);
        assert!(v.not_after <= 100 + 43_200);
    }

    #[test]
    fn wrong_password_fails_conversion() {
        let w = world();
        let mut source = KcaCredentialSource::new(
            w.kdc.clone(),
            w.kca.clone(),
            "alice",
            "WRONG",
            512,
            b"alice rng",
        );
        assert!(matches!(source.obtain(100), Err(OgsaError::Application(_))));
    }

    #[test]
    fn unknown_principal_fails() {
        let w = world();
        let mut source =
            KcaCredentialSource::new(w.kdc.clone(), w.kca.clone(), "mallory", "pw", 512, b"m rng");
        assert!(source.obtain(100).is_err());
    }

    #[test]
    fn stolen_ticket_without_key_fails_at_kca() {
        let mut w = world();
        // Get a legit ticket for the KCA.
        let client = KrbClient::from_password("alice", "SITE.A", "pw");
        let tgt_reply = w.kdc.as_exchange(&mut w.rng, "alice", 100, 1000).unwrap();
        let (tgt, part) = client.open_tgt_reply(&tgt_reply).unwrap();
        let auth = client.make_authenticator(&mut w.rng, &part.session_key, 100);
        let st = w
            .kdc
            .tgs_exchange(&mut w.rng, &tgt, &auth, KCA_SERVICE, 100, 1000)
            .unwrap();
        // Attacker has the ticket but not the session key: authenticator
        // under a guessed key is rejected.
        let bad_auth = client.make_authenticator(&mut w.rng, &[0u8; 32], 100);
        let key = RsaKeyPair::generate(&mut w.rng, 512);
        assert!(w
            .kca
            .convert(&st.ticket, &bad_auth, key.public(), 100)
            .is_err());
    }

    #[test]
    fn token_type_is_kerberos() {
        let w = world();
        let source =
            KcaCredentialSource::new(w.kdc.clone(), w.kca.clone(), "alice", "pw", 512, b"rng");
        assert_eq!(source.token_type(), "kerberos-ticket");
    }
}
