//! CAS as a credential-conversion service (paper §4.5 step 2): "CAS, for
//! translating the user's personal credential to a VO credential".
//!
//! The translation is concrete: the user asks their VO's CAS for a signed
//! rights assertion, then self-issues a **restricted proxy** whose
//! RFC 3820 policy field carries the serialized assertion (policy
//! language `cas-rights-v1`). Any relying party validating the chain
//! recovers the assertion from the proxy's restrictions and can enforce
//! VO policy — the identity *and* the rights travel in one credential.

use gridsec_authz::cas::{CasAssertion, CasServer};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_ogsa::client::CredentialSource;
use gridsec_ogsa::OgsaError;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::Codec;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::validate::ValidatedIdentity;

/// The RFC 3820 policy-language identifier for embedded CAS assertions.
pub const CAS_POLICY_LANGUAGE: &str = "cas-rights-v1";

/// A [`CredentialSource`] producing VO credentials: personal credential +
/// CAS assertion → restricted proxy.
pub struct CasCredentialSource<'a> {
    cas: &'a CasServer,
    personal: Credential,
    proxy_key_bits: usize,
    proxy_lifetime: u64,
    rng: ChaChaRng,
}

impl<'a> CasCredentialSource<'a> {
    /// Create a source for a user with a personal credential.
    pub fn new(
        cas: &'a CasServer,
        personal: Credential,
        proxy_key_bits: usize,
        proxy_lifetime: u64,
        rng_seed: &[u8],
    ) -> Self {
        CasCredentialSource {
            cas,
            personal,
            proxy_key_bits,
            proxy_lifetime,
            rng: ChaChaRng::from_seed_bytes(rng_seed),
        }
    }

    /// The step-1 exchange plus proxy embedding, explicitly.
    pub fn vo_credential(&mut self, now: u64) -> Result<Credential, OgsaError> {
        let assertion = self
            .cas
            .issue_assertion(self.personal.base_identity(), now)
            .ok_or_else(|| {
                OgsaError::Application(format!(
                    "{} is not a member of VO {}",
                    self.personal.base_identity(),
                    self.cas.vo()
                ))
            })?;
        issue_proxy(
            &mut self.rng,
            &self.personal,
            ProxyType::Restricted {
                language: CAS_POLICY_LANGUAGE.to_string(),
                policy: assertion.to_bytes(),
            },
            self.proxy_key_bits,
            now,
            self.proxy_lifetime,
        )
        .map_err(|e| OgsaError::Application(format!("proxy issuance failed: {e}")))
    }
}

impl CredentialSource for CasCredentialSource<'_> {
    fn token_type(&self) -> &str {
        "cas-assertion"
    }

    fn obtain(&mut self, now: u64) -> Result<Credential, OgsaError> {
        self.vo_credential(now)
    }
}

/// Relying-party helper: extract embedded CAS assertions from a validated
/// identity's restrictions.
pub fn extract_assertions(identity: &ValidatedIdentity) -> Vec<CasAssertion> {
    identity
        .restrictions
        .iter()
        .filter(|(lang, _)| lang == CAS_POLICY_LANGUAGE)
        .filter_map(|(_, bytes)| CasAssertion::from_bytes(bytes).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_authz::cas::ResourceGate;
    use gridsec_authz::policy::{CombiningAlg, Decision, Effect, PolicySet, Rule, SubjectMatch};
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        trust: TrustStore,
        cas: CasServer,
        jane: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"cas source tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let cas_cred = ca.issue_identity(&mut rng, dn("/O=G/CN=CAS"), 512, 0, 500_000);
        let cas = CasServer::new("physics-vo", cas_cred, 3600);
        cas.enroll(&dn("/O=G/CN=Jane"), vec![]);
        cas.add_rule(Rule::new(
            SubjectMatch::Exact("/O=G/CN=Jane".to_string()),
            "/detector/*",
            "read",
            Effect::Permit,
        ));
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World { trust, cas, jane }
    }

    #[test]
    fn vo_credential_carries_assertion_through_validation() {
        let w = world();
        let mut source = CasCredentialSource::new(&w.cas, w.jane.clone(), 512, 3600, b"jane rng");
        let vo_cred = source.obtain(100).unwrap();
        assert_eq!(vo_cred.proxy_depth(), 1);

        // A relying party validates the chain and recovers the assertion
        // from the restricted-proxy policy.
        let id = validate_chain(vo_cred.chain(), &w.trust, 200).unwrap();
        let assertions = extract_assertions(&id);
        assert_eq!(assertions.len(), 1);
        let a = &assertions[0];
        assert!(a.verify(w.cas.public_key()));
        assert_eq!(a.tbs.vo, "physics-vo");
        assert_eq!(a.tbs.subject, dn("/O=G/CN=Jane"));
        assert!(a.tbs.rights[0].covers("/detector/run1", "read"));
    }

    #[test]
    fn recovered_assertion_drives_resource_gate() {
        let w = world();
        let mut source = CasCredentialSource::new(&w.cas, w.jane.clone(), 512, 3600, b"jane rng");
        let vo_cred = source.obtain(100).unwrap();
        let id = validate_chain(vo_cred.chain(), &w.trust, 200).unwrap();
        let assertion = &extract_assertions(&id)[0];

        let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
        local.add(Rule::new(
            SubjectMatch::Exact("vo:physics-vo".to_string()),
            "/detector/*",
            "read",
            Effect::Permit,
        ));
        let mut gate = ResourceGate::new(local);
        gate.trust_cas("physics-vo", w.cas.public_key().clone());

        let d = gate
            .authorize_with_cas(assertion, &id.base_identity, "/detector/run1", "read", 200)
            .unwrap();
        assert_eq!(d, Decision::Permit);
        let d = gate
            .authorize_with_cas(assertion, &id.base_identity, "/detector/run1", "write", 200)
            .unwrap();
        assert_eq!(d, Decision::Deny);
    }

    #[test]
    fn non_member_cannot_obtain_vo_credential() {
        let w = world();
        let mut rng = ChaChaRng::from_seed_bytes(b"eve");
        let ca2 = CertificateAuthority::create_root(&mut rng, dn("/O=G2/CN=CA"), 512, 0, 1000);
        let eve = ca2.issue_identity(&mut rng, dn("/O=G2/CN=Eve"), 512, 0, 1000);
        let mut source = CasCredentialSource::new(&w.cas, eve, 512, 3600, b"eve rng");
        assert!(matches!(source.obtain(100), Err(OgsaError::Application(_))));
    }

    #[test]
    fn token_type() {
        let w = world();
        let source = CasCredentialSource::new(&w.cas, w.jane.clone(), 512, 3600, b"rng");
        assert_eq!(source.token_type(), "cas-assertion");
    }
}
