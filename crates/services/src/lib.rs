//! # gridsec-services
//!
//! The OGSA security services itemized by the paper's §4.1 (from the OGSA
//! Security Roadmap), implemented for the `gridsec` reproduction of
//! *Security for Grid Services* (Welch et al., HPDC 2003):
//!
//! * **Credential processing service** — [`credproc`]: validates
//!   authentication tokens (certificate chains) and reports the
//!   authenticated identity.
//! * **Authorization service** — [`authz_service`]: evaluates policy
//!   rules for (requestor, target, action) triples; hostable as a Grid
//!   service so hosting environments can out-call it (Figure 3 step 5).
//! * **Credential conversion service** — [`kca`] (Kerberos → GSI, the
//!   paper's KCA) and [`sslk5`] (GSI → Kerberos via PKINIT), bridging
//!   mechanism domains (Figure 3 step 2).
//! * **Identity mapping service** — [`identity_map`]: X.509 DN ↔
//!   Kerberos principal translation.
//! * **Audit service** — [`audit`]: a tamper-evident, hash-chained log
//!   that hosting environments feed.
//! * **CAS as credential conversion** — [`cas_source`]: wraps a CAS
//!   assertion into a *restricted proxy* credential, "translating the
//!   user's personal credential to a VO credential".
//! * **MDS-like index** — [`index`]: the VO directory service §2 uses to
//!   motivate dynamically-created, securely-coordinated services.
//! * **Online credential repository** — [`myproxy`]: MyProxy-style
//!   durable store backing the paper's portal single-sign-on flow;
//!   issues short-lived delegated proxies with exactly-once semantics
//!   across crash/restart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod authz_service;
pub mod cas_source;
pub mod credproc;
pub mod identity_map;
pub mod idmap_rpc;
pub mod index;
pub mod kca;
pub mod myproxy;
pub mod sslk5;
