//! The credential processing service (paper §4.1): "handles the details
//! of processing and validating authentication tokens" — the XKMS-shaped
//! token validation service of Figure 3 steps 3–4.
//!
//! Hosting environments *can* validate chains locally (and do, in the
//! fast path); this service exists so that validation can also be
//! outsourced, exactly as the paper envisions, and is used by the F3
//! benchmark to measure the outsourced variant.

use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::OgsaError;
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::{validate_chain_with_crls, EffectiveRights};
use gridsec_wsse::xmlsig::decode_chain;
use gridsec_xml::Element;

/// Token validation as a hostable Grid service. Operation `validate`
/// takes a base64 chain (the BinarySecurityToken format) and returns the
/// validated identity attributes or a fault.
pub struct CredentialProcessingService {
    trust: TrustStore,
    crls: CrlStore,
}

impl CredentialProcessingService {
    /// Create with the trust anchors this validator accepts.
    pub fn new(trust: TrustStore, crls: CrlStore) -> Self {
        CredentialProcessingService { trust, crls }
    }
}

impl GridService for CredentialProcessingService {
    fn service_type(&self) -> &str {
        "credential-processing"
    }

    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "validate" => {
                let chain = decode_chain(&payload.text_content())
                    .map_err(|e| OgsaError::Application(format!("bad token: {e}")))?;
                match validate_chain_with_crls(&chain, &self.trust, &self.crls, ctx.now) {
                    Ok(id) => Ok(Element::new("credproc:Identity")
                        .with_attr("subject", id.subject.to_string())
                        .with_attr("base", id.base_identity.to_string())
                        .with_attr("proxyDepth", id.proxy_depth.to_string())
                        .with_attr(
                            "rights",
                            match id.rights {
                                EffectiveRights::Full => "full",
                                EffectiveRights::Limited => "limited",
                                EffectiveRights::Independent => "independent",
                            },
                        )),
                    Err(e) => Ok(Element::new("credproc:Invalid").with_text(e.to_string())),
                }
            }
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::proxy::{issue_proxy, ProxyType};
    use gridsec_pki::validate::validate_chain;
    use gridsec_wsse::xmlsig::encode_chain;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn setup() -> (
        ChaChaRng,
        CertificateAuthority,
        TrustStore,
        CredentialProcessingService,
        RequestContext,
    ) {
        let mut rng = ChaChaRng::from_seed_bytes(b"credproc tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let svc = CredentialProcessingService::new(trust.clone(), CrlStore::new());
        let caller = ca.issue_identity(&mut rng, dn("/O=G/CN=Host"), 512, 0, 1_000_000);
        let ctx = RequestContext {
            caller: validate_chain(caller.chain(), &trust, 100).unwrap(),
            now: 100,
            handle: "gsh:credproc".to_string(),
        };
        (rng, ca, trust, svc, ctx)
    }

    #[test]
    fn validates_good_proxy_chain() {
        let (mut rng, ca, _trust, mut svc, ctx) = setup();
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let proxy = issue_proxy(&mut rng, &user, ProxyType::Limited, 512, 50, 10_000).unwrap();
        let token = encode_chain(proxy.chain());
        let result = svc
            .invoke(&ctx, "validate", &Element::new("t").with_text(token))
            .unwrap();
        assert_eq!(result.name, "credproc:Identity");
        assert_eq!(result.attr("base"), Some("/O=G/CN=Jane"));
        assert_eq!(result.attr("proxyDepth"), Some("1"));
        assert_eq!(result.attr("rights"), Some("limited"));
    }

    #[test]
    fn reports_invalid_for_untrusted_chain() {
        let (mut rng, _ca, _trust, mut svc, ctx) = setup();
        let rogue = CertificateAuthority::create_root(&mut rng, dn("/O=Evil/CN=CA"), 512, 0, 1000);
        let fake = rogue.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 1000);
        let token = encode_chain(fake.chain());
        let result = svc
            .invoke(&ctx, "validate", &Element::new("t").with_text(token))
            .unwrap();
        assert_eq!(result.name, "credproc:Invalid");
    }

    #[test]
    fn garbage_token_is_application_error() {
        let (_rng, _ca, _trust, mut svc, ctx) = setup();
        assert!(svc
            .invoke(&ctx, "validate", &Element::new("t").with_text("!!!"))
            .is_err());
    }
}
