//! Crash-durable identity mapping over the at-most-once RPC layer.
//!
//! The paper's §4.1 identity mapping service is the simplest of the
//! "security services" to make restartable: its only state is the
//! mapping table, which here is a write-ahead [`Journal`] — every
//! `add` is appended *before* it takes effect, a crash discards the
//! in-memory [`IdentityMap`], and recovery replays the journal.
//! [`DurableIdentityMap`] plugs into a
//! [`CrashableServer`][gridsec_testbed::faults::CrashableServer], so
//! retransmitted lookups are answered from the rebuilt reply cache and
//! mutations stay idempotent across any crash schedule.
//!
//! Kill points (see `testbed::faults`):
//!
//! * `idmap.add.exec` — before the mapping record is journaled (the
//!   retransmit re-runs the add from scratch).
//! * `idmap.add.journaled` — after the record is durable but before the
//!   reply leaves (recovery replays the mapping; the retransmit sees a
//!   table that already contains it).

use crate::identity_map::IdentityMap;
use gridsec_pki::encoding::{Decoder, Encoder};
use gridsec_pki::name::DistinguishedName;
use gridsec_testbed::faults::{CrashPlan, CrashRecover, Journal};
use gridsec_testbed::rpc::RpcClient;
use gridsec_util::trace;

/// Op: register a DN ↔ principal mapping.
pub const OP_ADD: &str = "idmap-add";
/// Op: X.509 DN → Kerberos principal.
pub const OP_TO_PRINCIPAL: &str = "idmap-to-principal";
/// Op: Kerberos principal → X.509 DN.
pub const OP_TO_DN: &str = "idmap-to-dn";

/// Journal tag for one mapping record.
pub const TAG_MAP: &str = "idmap-map";

/// Errors from remote identity-map calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdMapError {
    /// RPC transport failure (retries exhausted).
    Transport(String),
    /// Malformed reply.
    Decode(&'static str),
    /// The service refused the request.
    Refused(String),
}

impl core::fmt::Display for IdMapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IdMapError::Transport(m) => write!(f, "transport error: {m}"),
            IdMapError::Decode(m) => write!(f, "decode error: {m}"),
            IdMapError::Refused(m) => write!(f, "refused: {m}"),
        }
    }
}

impl std::error::Error for IdMapError {}

/// An [`IdentityMap`] wrapped in write-ahead journaling and crash
/// recovery, servable through a `CrashableServer`.
pub struct DurableIdentityMap {
    map: IdentityMap,
    plan: CrashPlan,
    /// The write-ahead journal (shared with the supervisor).
    pub journal: Journal,
}

impl DurableIdentityMap {
    /// Open over `journal`, replaying any existing records.
    pub fn new(plan: CrashPlan, journal: Journal) -> Self {
        let mut s = DurableIdentityMap {
            map: IdentityMap::new(),
            plan,
            journal,
        };
        s.replay();
        s
    }

    /// The recovered in-memory table.
    pub fn map(&self) -> &IdentityMap {
        &self.map
    }

    fn replay(&mut self) {
        for (tag, body) in self.journal.records() {
            if tag == TAG_MAP {
                Self::apply_record(&mut self.map, &body);
            }
        }
    }

    fn apply_record(map: &mut IdentityMap, body: &[u8]) {
        let mut d = Decoder::new(body);
        let (Ok(dn), Ok(principal), Ok(realm)) = (d.get_str(), d.get_str(), d.get_str()) else {
            return;
        };
        if let Ok(dn) = DistinguishedName::parse(&dn) {
            map.add(&dn, &principal, &realm);
        }
    }

    fn reply_ok(body: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("ok").put_str(body);
        e.finish()
    }

    fn reply_none() -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("none").put_str("");
        e.finish()
    }

    fn reply_err(msg: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("err").put_str(msg);
        e.finish()
    }
}

impl CrashRecover for DurableIdentityMap {
    fn handle(&mut self, _from: &str, _id: u64, body: &[u8]) -> Vec<u8> {
        let mut d = Decoder::new(body);
        let Ok(op) = d.get_str() else {
            return Self::reply_err("malformed request");
        };
        match op.as_str() {
            OP_ADD => {
                let (Ok(dn_s), Ok(principal), Ok(realm)) = (d.get_str(), d.get_str(), d.get_str())
                else {
                    return Self::reply_err("malformed add");
                };
                let Ok(dn) = DistinguishedName::parse(&dn_s) else {
                    return Self::reply_err("bad DN");
                };
                if self.plan.fires("idmap.add.exec") {
                    return Vec::new();
                }
                // Write-ahead: the mapping is durable before it is
                // visible, so a crash at any later point recovers it.
                let mut e = Encoder::new();
                e.put_str(&dn_s).put_str(&principal).put_str(&realm);
                if self.journal.append(TAG_MAP, &e.finish()).is_err() {
                    return Self::reply_err("journal unavailable");
                }
                if self.plan.fires("idmap.add.journaled") {
                    return Vec::new();
                }
                self.map.add(&dn, &principal, &realm);
                trace::add("idmap.adds", 1);
                Self::reply_ok(&format!("{principal}@{realm}"))
            }
            OP_TO_PRINCIPAL => {
                let Ok(dn_s) = d.get_str() else {
                    return Self::reply_err("malformed lookup");
                };
                match DistinguishedName::parse(&dn_s)
                    .ok()
                    .and_then(|dn| self.map.to_principal(&dn).map(str::to_string))
                {
                    Some(p) => Self::reply_ok(&p),
                    None => Self::reply_none(),
                }
            }
            OP_TO_DN => {
                let (Ok(principal), Ok(realm)) = (d.get_str(), d.get_str()) else {
                    return Self::reply_err("malformed lookup");
                };
                match self.map.to_dn(&principal, &realm) {
                    Some(dn) => Self::reply_ok(&dn.to_string()),
                    None => Self::reply_none(),
                }
            }
            _ => Self::reply_err("unknown op"),
        }
    }

    fn crash(&mut self) {
        self.map = IdentityMap::new();
    }

    fn recover(&mut self) {
        self.crash();
        self.replay();
    }
}

fn round(rpc: &mut RpcClient, request: Vec<u8>) -> Result<(String, String), IdMapError> {
    let raw = rpc
        .call(&request)
        .map_err(|e| IdMapError::Transport(e.to_string()))?;
    let mut d = Decoder::new(&raw);
    let (Ok(status), Ok(body)) = (d.get_str(), d.get_str()) else {
        return Err(IdMapError::Decode("malformed idmap reply"));
    };
    Ok((status, body))
}

/// Register a mapping on a remote durable identity map.
pub fn remote_add(
    rpc: &mut RpcClient,
    dn: &DistinguishedName,
    principal: &str,
    realm: &str,
) -> Result<(), IdMapError> {
    let mut e = Encoder::new();
    e.put_str(OP_ADD)
        .put_str(&dn.to_string())
        .put_str(principal)
        .put_str(realm);
    match round(rpc, e.finish())? {
        (s, _) if s == "ok" => Ok(()),
        (_, msg) => Err(IdMapError::Refused(msg)),
    }
}

/// Resolve a DN to `user@REALM` on a remote durable identity map.
pub fn remote_to_principal(
    rpc: &mut RpcClient,
    dn: &DistinguishedName,
) -> Result<Option<String>, IdMapError> {
    let mut e = Encoder::new();
    e.put_str(OP_TO_PRINCIPAL).put_str(&dn.to_string());
    match round(rpc, e.finish())? {
        (s, p) if s == "ok" => Ok(Some(p)),
        (s, _) if s == "none" => Ok(None),
        (_, msg) => Err(IdMapError::Refused(msg)),
    }
}

/// Resolve `user@REALM` to a DN on a remote durable identity map.
pub fn remote_to_dn(
    rpc: &mut RpcClient,
    principal: &str,
    realm: &str,
) -> Result<Option<DistinguishedName>, IdMapError> {
    let mut e = Encoder::new();
    e.put_str(OP_TO_DN).put_str(principal).put_str(realm);
    match round(rpc, e.finish())? {
        (s, d) if s == "ok" => Ok(DistinguishedName::parse(&d).ok()),
        (s, _) if s == "none" => Ok(None),
        (_, msg) => Err(IdMapError::Refused(msg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_testbed::clock::SimClock;
    use gridsec_testbed::faults::CrashableServer;
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::os::{SimOs, ROOT_UID};
    use gridsec_util::retry::RetryPolicy;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn journal() -> (SimOs, Journal) {
        let os = SimOs::new();
        os.add_host("idmap-host");
        let j = Journal::open(os.clone(), "idmap-host", "/var/idmap/journal.wal", ROOT_UID);
        (os, j)
    }

    #[test]
    fn mappings_survive_crash_and_recover() {
        let (_os, j) = journal();
        let mut m = DurableIdentityMap::new(CrashPlan::disabled(), j);
        let _ = m.handle("admin", 1, &{
            let mut e = Encoder::new();
            e.put_str(OP_ADD)
                .put_str("/O=G/CN=Jane")
                .put_str("jdoe")
                .put_str("SITE.A");
            e.finish()
        });
        assert_eq!(m.map().len(), 1);
        m.crash();
        assert!(m.map().is_empty(), "crash wipes memory");
        m.recover();
        assert_eq!(
            m.map().to_principal(&dn("/O=G/CN=Jane")),
            Some("jdoe@SITE.A"),
            "journal replay restores the table"
        );
    }

    #[test]
    fn crash_between_journal_and_reply_keeps_add_idempotent() {
        let plan = CrashPlan::manual(2);
        plan.arm("idmap.add.journaled", 1);
        let (_os, j) = journal();
        let mut m = DurableIdentityMap::new(plan.clone(), j);
        let req = {
            let mut e = Encoder::new();
            e.put_str(OP_ADD)
                .put_str("/O=G/CN=Jane")
                .put_str("jdoe")
                .put_str("SITE.A");
            e.finish()
        };
        let _ = m.handle("admin", 5, &req);
        assert!(plan.take_pending().is_some(), "kill point fired");
        m.crash();
        m.recover();
        // The record was durable, so recovery already applied it; the
        // retransmit just re-reports success.
        assert_eq!(m.map().len(), 1);
        let reply = m.handle("admin", 5, &req);
        assert_eq!(Decoder::new(&reply).get_str().unwrap(), "ok");
        assert_eq!(m.map().len(), 1, "no duplicate mapping");
    }

    #[test]
    fn full_rpc_chain_with_crash_and_restart() {
        let plan = CrashPlan::manual(3);
        plan.arm("idmap.add.journaled", 1);
        let (_os, j) = journal();
        let durable = Rc::new(RefCell::new(DurableIdentityMap::new(
            plan.clone(),
            j.clone(),
        )));
        let clock = SimClock::new();
        let net = Network::new();
        net.enable_faults(clock, 0x1D3A, FaultProfile::default());
        let server = Rc::new(RefCell::new(CrashableServer::new(
            net.register("idmap-host"),
            "idmap",
            plan.clone(),
            j,
            true,
        )));
        let mut rpc = RpcClient::new(
            net.register("admin"),
            "idmap-host",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = server.clone();
        let hook_app = durable.clone();
        rpc.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));

        // The armed kill fires after the journal append: the client's
        // retransmit rides through the restart and still gets "ok".
        remote_add(&mut rpc, &dn("/O=G/CN=Jane"), "jdoe", "SITE.A").unwrap();
        assert_eq!(plan.crashes(), 1);
        assert_eq!(server.borrow().restarts(), 1);
        assert_eq!(
            remote_to_principal(&mut rpc, &dn("/O=G/CN=Jane")).unwrap(),
            Some("jdoe@SITE.A".to_string())
        );
        assert_eq!(
            remote_to_dn(&mut rpc, "jdoe", "SITE.A").unwrap(),
            Some(dn("/O=G/CN=Jane"))
        );
        assert_eq!(
            remote_to_principal(&mut rpc, &dn("/O=G/CN=Ghost")).unwrap(),
            None
        );
        assert_eq!(durable.borrow().map().len(), 1, "exactly one mapping");
    }
}
