//! Property tests for the policy engine and grid-mapfile.

use gridsec_authz::gridmap::GridMapFile;
use gridsec_authz::policy::{
    CombiningAlg, Decision, Effect, Pattern, PolicySet, Request, Rule, SubjectMatch,
};
use gridsec_pki::name::DistinguishedName;
use gridsec_util::check::{check, Gen};

const CASES: u64 = 128;
const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

fn pattern(g: &mut Gen) -> String {
    match g.pick(3) {
        0 => "*".to_string(),
        1 => format!("/{}/*", g.string(LOWER, 1..9)),
        _ => format!("/{}", g.string(LOWER, 1..9)),
    }
}

fn rule(g: &mut Gen) -> Rule {
    let subject = match g.pick(2) {
        0 => SubjectMatch::Any,
        _ => SubjectMatch::Exact(format!("/O=G/CN={}", g.string(LOWER, 1..7))),
    };
    let resource = pattern(g);
    let action = (*g.choice(&["*", "read", "write"])).to_string();
    let effect = *g.choice(&[Effect::Permit, Effect::Deny]);
    Rule::new(subject, &resource, &action, effect)
}

fn request(g: &mut Gen) -> Request {
    let subj = g.string(LOWER, 1..7);
    let res = g.string(LOWER, 1..9);
    let act = *g.choice(&["read", "write", "exec"]);
    Request::new(&format!("/O=G/CN={subj}"), &format!("/{res}/x"), act)
}

#[test]
fn pattern_parse_matches_consistently() {
    check("pattern_parse_matches_consistently", CASES, |g| {
        let s = pattern(g);
        let v = g.string("/abcdefghijklmnopqrstuvwxyz", 0..16);
        let p = Pattern::parse(&s);
        // Any + prefix semantics.
        match &p {
            Pattern::Any => assert!(p.matches(&v)),
            Pattern::Prefix(pre) => assert_eq!(p.matches(&v), v.starts_with(pre.as_str())),
            Pattern::Exact(e) => assert_eq!(p.matches(&v), &v == e),
        }
    });
}

#[test]
fn deny_overrides_is_sound() {
    check("deny_overrides_is_sound", CASES, |g| {
        let rules = g.vec(0..12, rule);
        let req = request(g);
        let policy = PolicySet {
            rules: rules.clone(),
            combining: CombiningAlg::DenyOverrides,
        };
        let decision = policy.evaluate(&req);
        let applicable: Vec<&Rule> = rules
            .iter()
            .filter(|r| {
                let subject_ok = match &r.subject {
                    SubjectMatch::Any => true,
                    SubjectMatch::Exact(s) => *s == req.subject,
                };
                subject_ok && r.resource.matches(&req.resource) && r.action.matches(&req.action)
            })
            .collect();
        let any_deny = applicable.iter().any(|r| r.effect == Effect::Deny);
        let any_permit = applicable.iter().any(|r| r.effect == Effect::Permit);
        let expected = if any_deny {
            Decision::Deny
        } else if any_permit {
            Decision::Permit
        } else {
            Decision::NotApplicable
        };
        assert_eq!(decision, expected);
    });
}

#[test]
fn adding_a_deny_never_grants() {
    check("adding_a_deny_never_grants", CASES, |g| {
        let rules = g.vec(0..8, rule);
        let req = request(g);
        // Monotonicity: appending a deny rule can only move decisions
        // toward Deny under deny-overrides.
        let base = PolicySet {
            rules: rules.clone(),
            combining: CombiningAlg::DenyOverrides,
        };
        let mut extended_rules = rules;
        extended_rules.push(Rule::new(SubjectMatch::Any, "*", "*", Effect::Deny));
        let extended = PolicySet {
            rules: extended_rules,
            combining: CombiningAlg::DenyOverrides,
        };
        let before = base.evaluate(&req);
        let after = extended.evaluate(&req);
        assert_eq!(after, Decision::Deny);
        // And the base decision was never "more denied" than after.
        assert!(
            before == Decision::Deny
                || before == Decision::Permit
                || before == Decision::NotApplicable
        );
    });
}

#[test]
fn permitted_rights_are_actually_permitted() {
    check("permitted_rights_are_actually_permitted", CASES, |g| {
        let rules = g.vec(0..12, rule);
        let subj = g.string(LOWER, 1..7);
        // Every right enumerated for a subject evaluates Permit or Deny —
        // never NotApplicable — under the same policy (a deny rule may
        // still override, but the permit must apply).
        let subject = format!("/O=G/CN={subj}");
        let policy = PolicySet {
            rules,
            combining: CombiningAlg::DenyOverrides,
        };
        for (resource, action) in policy.permitted_rights(&subject, &[]) {
            // Construct a concrete request inside the right's patterns.
            let concrete_res = resource.replace('*', "x");
            let concrete_act = if action == "*" {
                "read".to_string()
            } else {
                action
            };
            let d = policy.evaluate(&Request::new(&subject, &concrete_res, &concrete_act));
            assert_ne!(d, Decision::NotApplicable);
        }
    });
}

#[test]
fn gridmap_roundtrip() {
    check("gridmap_roundtrip", CASES, |g| {
        let entries = g.vec(0..10, |g| (g.string(LOWER, 1..9), g.string(LOWER, 1..9)));
        let mut map = GridMapFile::new();
        for (cn, acct) in &entries {
            map.add(
                DistinguishedName::parse(&format!("/O=G/CN={cn}")).unwrap(),
                vec![acct.clone()],
            );
        }
        let reparsed = GridMapFile::parse(&map.to_text()).unwrap();
        assert_eq!(reparsed, map);
    });
}
