//! Property tests for the policy engine and grid-mapfile.

use gridsec_authz::gridmap::GridMapFile;
use gridsec_authz::policy::{
    CombiningAlg, Decision, Effect, Pattern, PolicySet, Request, Rule, SubjectMatch,
};
use gridsec_pki::name::DistinguishedName;
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("*".to_string()),
        "[a-z]{1,8}".prop_map(|s| format!("/{s}/*")),
        "[a-z]{1,8}".prop_map(|s| format!("/{s}")),
    ]
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop_oneof![
            Just(SubjectMatch::Any),
            "[a-z]{1,6}".prop_map(|s| SubjectMatch::Exact(format!("/O=G/CN={s}"))),
        ],
        pattern_strategy(),
        prop_oneof![Just("*".to_string()), Just("read".to_string()), Just("write".to_string())],
        prop_oneof![Just(Effect::Permit), Just(Effect::Deny)],
    )
        .prop_map(|(subject, resource, action, effect)| {
            Rule::new(subject, &resource, &action, effect)
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        "[a-z]{1,6}",
        "[a-z]{1,8}",
        prop_oneof![Just("read"), Just("write"), Just("exec")],
    )
        .prop_map(|(subj, res, act)| Request::new(&format!("/O=G/CN={subj}"), &format!("/{res}/x"), act))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pattern_parse_matches_consistently(s in pattern_strategy(), v in "[/a-z]{0,16}") {
        let p = Pattern::parse(&s);
        // Any + prefix semantics.
        match &p {
            Pattern::Any => prop_assert!(p.matches(&v)),
            Pattern::Prefix(pre) => prop_assert_eq!(p.matches(&v), v.starts_with(pre.as_str())),
            Pattern::Exact(e) => prop_assert_eq!(p.matches(&v), &v == e),
        }
    }

    #[test]
    fn deny_overrides_is_sound(rules in prop::collection::vec(rule_strategy(), 0..12), req in request_strategy()) {
        let policy = PolicySet { rules: rules.clone(), combining: CombiningAlg::DenyOverrides };
        let decision = policy.evaluate(&req);
        let applicable: Vec<&Rule> = rules.iter().filter(|r| {
            let subject_ok = match &r.subject {
                SubjectMatch::Any => true,
                SubjectMatch::Exact(s) => *s == req.subject,
            };
            subject_ok && r.resource.matches(&req.resource) && r.action.matches(&req.action)
        }).collect();
        let any_deny = applicable.iter().any(|r| r.effect == Effect::Deny);
        let any_permit = applicable.iter().any(|r| r.effect == Effect::Permit);
        let expected = if any_deny { Decision::Deny }
            else if any_permit { Decision::Permit }
            else { Decision::NotApplicable };
        prop_assert_eq!(decision, expected);
    }

    #[test]
    fn adding_a_deny_never_grants(rules in prop::collection::vec(rule_strategy(), 0..8), req in request_strategy()) {
        // Monotonicity: appending a deny rule can only move decisions
        // toward Deny under deny-overrides.
        let base = PolicySet { rules: rules.clone(), combining: CombiningAlg::DenyOverrides };
        let mut extended_rules = rules;
        extended_rules.push(Rule::new(SubjectMatch::Any, "*", "*", Effect::Deny));
        let extended = PolicySet { rules: extended_rules, combining: CombiningAlg::DenyOverrides };
        let before = base.evaluate(&req);
        let after = extended.evaluate(&req);
        prop_assert_eq!(after, Decision::Deny);
        // And the base decision was never "more denied" than after.
        prop_assert!(before == Decision::Deny || before == Decision::Permit || before == Decision::NotApplicable);
    }

    #[test]
    fn permitted_rights_are_actually_permitted(rules in prop::collection::vec(rule_strategy(), 0..12), subj in "[a-z]{1,6}") {
        // Every right enumerated for a subject evaluates Permit or Deny —
        // never NotApplicable — under the same policy (a deny rule may
        // still override, but the permit must apply).
        let subject = format!("/O=G/CN={subj}");
        let policy = PolicySet { rules, combining: CombiningAlg::DenyOverrides };
        for (resource, action) in policy.permitted_rights(&subject, &[]) {
            // Construct a concrete request inside the right's patterns.
            let concrete_res = resource.replace('*', "x");
            let concrete_act = if action == "*" { "read".to_string() } else { action };
            let d = policy.evaluate(&Request::new(&subject, &concrete_res, &concrete_act));
            prop_assert_ne!(d, Decision::NotApplicable);
        }
    }

    #[test]
    fn gridmap_roundtrip(entries in prop::collection::vec(("[a-z]{1,8}", "[a-z]{1,8}"), 0..10)) {
        let mut map = GridMapFile::new();
        for (cn, acct) in &entries {
            map.add(
                DistinguishedName::parse(&format!("/O=G/CN={cn}")).unwrap(),
                vec![acct.clone()],
            );
        }
        let reparsed = GridMapFile::parse(&map.to_text()).unwrap();
        prop_assert_eq!(reparsed, map);
    }
}
