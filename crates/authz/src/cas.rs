//! The Community Authorization Service (paper §3, Figure 2; Pearlman et
//! al., ref 26).
//!
//! Three-step flow, reproduced exactly:
//!
//! 1. A user authenticates to the [`CasServer`] and receives a signed
//!    [`CasAssertion`] enumerating the rights the VO grants them.
//! 2. The user presents the assertion to a resource alongside the
//!    request.
//! 3. The resource's [`ResourceGate`] checks **both** its local policy
//!    (does the VO get to use this resource at all? does the local admin
//!    forbid this specific thing?) and the VO policy in the assertion.
//!    "CAS allows a resource to remain the ultimate authority over that
//!    resource."

use crate::policy::{CombiningAlg, Decision, Pattern, PolicySet, Request};
use crate::AuthzError;
use gridsec_crypto::rsa::RsaPublicKey;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::PkiError;
use gridsec_util::sync::RwLock;
use std::collections::HashMap;

/// A right granted by the VO: (resource pattern, action pattern).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Right {
    /// Resource pattern string (`*`, `prefix*`, or exact).
    pub resource: String,
    /// Action pattern string.
    pub action: String,
}

impl Right {
    /// Does this right cover the concrete (resource, action)?
    pub fn covers(&self, resource: &str, action: &str) -> bool {
        Pattern::parse(&self.resource).matches(resource)
            && Pattern::parse(&self.action).matches(action)
    }
}

/// The signed content of a CAS assertion (SAML-attribute-assertion in
/// spirit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CasAssertionTbs {
    /// Name of the issuing VO.
    pub vo: String,
    /// The user the rights are granted to (base identity).
    pub subject: DistinguishedName,
    /// Granted rights.
    pub rights: Vec<Right>,
    /// Start of validity.
    pub not_before: u64,
    /// End of validity.
    pub not_after: u64,
}

impl Codec for CasAssertionTbs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.vo);
        self.subject.encode(enc);
        enc.put_seq(&self.rights, |e, r| {
            e.put_str(&r.resource).put_str(&r.action);
        });
        enc.put_u64(self.not_before).put_u64(self.not_after);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(CasAssertionTbs {
            vo: dec.get_str()?,
            subject: DistinguishedName::decode(dec)?,
            rights: dec.get_seq(|d| {
                Ok(Right {
                    resource: d.get_str()?,
                    action: d.get_str()?,
                })
            })?,
            not_before: dec.get_u64()?,
            not_after: dec.get_u64()?,
        })
    }
}

/// A signed CAS assertion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CasAssertion {
    /// Signed content.
    pub tbs: CasAssertionTbs,
    /// CAS signature over the encoded TBS.
    pub signature: Vec<u8>,
}

impl Codec for CasAssertion {
    fn encode(&self, enc: &mut Encoder) {
        self.tbs.encode(enc);
        enc.put_bytes(&self.signature);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(CasAssertion {
            tbs: CasAssertionTbs::decode(dec)?,
            signature: dec.get_bytes()?,
        })
    }
}

impl CasAssertion {
    /// Verify the issuer signature.
    pub fn verify(&self, cas_key: &RsaPublicKey) -> bool {
        cas_key.verify_pkcs1_sha256(&self.tbs.to_bytes(), &self.signature)
    }
}

/// The CAS server: VO membership, outsourced policy, assertion issuance.
pub struct CasServer {
    vo: String,
    credential: Credential,
    /// user base identity → group tags.
    membership: RwLock<HashMap<String, Vec<String>>>,
    /// The VO's policy over its users and groups.
    policy: RwLock<PolicySet>,
    /// Default assertion lifetime.
    assertion_lifetime: u64,
}

impl CasServer {
    /// Create a CAS server for a VO, signing with `credential`.
    pub fn new(vo: &str, credential: Credential, assertion_lifetime: u64) -> Self {
        CasServer {
            vo: vo.to_string(),
            credential,
            membership: RwLock::new(HashMap::new()),
            policy: RwLock::new(PolicySet::new(CombiningAlg::DenyOverrides)),
            assertion_lifetime,
        }
    }

    /// The VO name.
    pub fn vo(&self) -> &str {
        &self.vo
    }

    /// The CAS public key (resources pin this).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.credential.certificate().public_key()
    }

    /// Enroll a user with group tags.
    pub fn enroll(&self, user: &DistinguishedName, groups: Vec<String>) {
        self.membership.write().insert(user.to_string(), groups);
    }

    /// Add a VO policy rule.
    pub fn add_rule(&self, rule: crate::policy::Rule) {
        self.policy.write().add(rule);
    }

    /// Number of enrolled users.
    pub fn member_count(&self) -> usize {
        self.membership.read().len()
    }

    /// Step 1 of Figure 2: issue an assertion to an authenticated user.
    /// Returns `None` if the user is not a VO member.
    pub fn issue_assertion(&self, user: &DistinguishedName, now: u64) -> Option<CasAssertion> {
        let membership = self.membership.read();
        let groups = membership.get(&user.to_string())?;
        let rights: Vec<Right> = self
            .policy
            .read()
            .permitted_rights(&user.to_string(), groups)
            .into_iter()
            .map(|(resource, action)| Right { resource, action })
            .collect();
        let tbs = CasAssertionTbs {
            vo: self.vo.clone(),
            subject: user.clone(),
            rights,
            not_before: now,
            not_after: now + self.assertion_lifetime,
        };
        let signature = self.credential.sign(&tbs.to_bytes());
        Some(CasAssertion { tbs, signature })
    }
}

/// The resource-side enforcement point (Figure 2 step 3).
pub struct ResourceGate {
    /// Local policy — the resource remains the ultimate authority.
    pub local_policy: PolicySet,
    /// Trusted CAS servers: VO name → CAS public key.
    trusted_cas: HashMap<String, RsaPublicKey>,
}

impl ResourceGate {
    /// Create a gate with a local policy.
    pub fn new(local_policy: PolicySet) -> Self {
        ResourceGate {
            local_policy,
            trusted_cas: HashMap::new(),
        }
    }

    /// Outsource policy to a VO: trust its CAS key. This is the
    /// "resource providers outsource policy control to the VO" step.
    pub fn trust_cas(&mut self, vo: &str, key: RsaPublicKey) {
        self.trusted_cas.insert(vo.to_string(), key);
    }

    /// Authorize a direct (no CAS) request under local policy only.
    pub fn authorize_direct(
        &self,
        subject: &DistinguishedName,
        resource: &str,
        action: &str,
    ) -> Decision {
        self.local_policy
            .evaluate(&Request::new(&subject.to_string(), resource, action))
    }

    /// Authorize a CAS-mediated request: the presenter shows an assertion
    /// with their rights. The decision is the *intersection*: the VO must
    /// grant the right AND local policy must permit the VO's use of the
    /// resource (subject `vo:<name>`), with local denies overriding.
    pub fn authorize_with_cas(
        &self,
        assertion: &CasAssertion,
        presenter: &DistinguishedName,
        resource: &str,
        action: &str,
        now: u64,
    ) -> Result<Decision, AuthzError> {
        // Assertion authenticity.
        let key = self
            .trusted_cas
            .get(&assertion.tbs.vo)
            .ok_or(AuthzError::UntrustedAssertion)?;
        if !assertion.verify(key) {
            return Err(AuthzError::UntrustedAssertion);
        }
        // Freshness.
        if now < assertion.tbs.not_before || now > assertion.tbs.not_after {
            return Err(AuthzError::AssertionExpired {
                now,
                not_after: assertion.tbs.not_after,
            });
        }
        // Binding to the presenter.
        if assertion.tbs.subject != *presenter {
            return Err(AuthzError::SubjectMismatch {
                assertion_subject: assertion.tbs.subject.to_string(),
                presenter: presenter.to_string(),
            });
        }
        // VO policy: does the assertion grant this right?
        let vo_grants = assertion
            .tbs
            .rights
            .iter()
            .any(|r| r.covers(resource, action));
        if !vo_grants {
            return Ok(Decision::Deny);
        }
        // Local policy: the request is evaluated as the VO (the resource
        // outsourced this slice of policy to the VO) with the user's own
        // identity as a tag so user-specific local denies still bite.
        let req = Request::new(&format!("vo:{}", assertion.tbs.vo), resource, action)
            .with_tag(&presenter.to_string());
        Ok(self.local_policy.evaluate(&req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Effect, Rule, SubjectMatch};
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        cas: CasServer,
        gate: ResourceGate,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"cas tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let cas_cred = ca.issue_identity(&mut rng, dn("/O=G/CN=CAS physics-vo"), 512, 0, 1_000_000);
        let cas = CasServer::new("physics-vo", cas_cred, 3600);

        // VO membership + outsourced policy.
        cas.enroll(&dn("/O=G/CN=Jane"), vec!["group:analysts".to_string()]);
        cas.enroll(&dn("/O=G/CN=Carl"), vec![]);
        cas.add_rule(Rule::new(
            SubjectMatch::Exact("group:analysts".to_string()),
            "/detector/*",
            "read",
            Effect::Permit,
        ));
        cas.add_rule(Rule::new(
            SubjectMatch::Exact("/O=G/CN=Carl".to_string()),
            "/detector/run1",
            "read",
            Effect::Permit,
        ));

        // Resource: local policy lets the VO read detector data, but the
        // local admin has blacklisted a particular dataset and a user.
        let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
        local.add(Rule::new(
            SubjectMatch::Exact("vo:physics-vo".to_string()),
            "/detector/*",
            "read",
            Effect::Permit,
        ));
        local.add(Rule::new(
            SubjectMatch::Exact("vo:physics-vo".to_string()),
            "/detector/embargoed",
            "*",
            Effect::Deny,
        ));
        local.add(Rule::new(
            SubjectMatch::Exact("/O=G/CN=Banned".to_string()),
            "*",
            "*",
            Effect::Deny,
        ));
        let mut gate = ResourceGate::new(local);
        gate.trust_cas("physics-vo", cas.public_key().clone());
        World { cas, gate }
    }

    #[test]
    fn figure2_full_flow() {
        let w = world();
        // Step 1: Jane gets an assertion.
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        assert!(assertion.verify(w.cas.public_key()));
        assert_eq!(assertion.tbs.vo, "physics-vo");
        // Steps 2-3: present to the resource.
        let d = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Jane"),
                "/detector/run7",
                "read",
                200,
            )
            .unwrap();
        assert_eq!(d, Decision::Permit);
    }

    #[test]
    fn vo_policy_limits_rights() {
        let w = world();
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        // VO granted read, not write.
        let d = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Jane"),
                "/detector/run7",
                "write",
                200,
            )
            .unwrap();
        assert_eq!(d, Decision::Deny);
    }

    #[test]
    fn local_policy_overrides_vo_grant() {
        let w = world();
        // Give the VO a rule that *would* grant the embargoed dataset.
        w.cas.add_rule(Rule::new(
            SubjectMatch::Exact("group:analysts".to_string()),
            "/detector/embargoed",
            "read",
            Effect::Permit,
        ));
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        let d = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Jane"),
                "/detector/embargoed",
                "read",
                200,
            )
            .unwrap();
        // Resource remains the ultimate authority.
        assert_eq!(d, Decision::Deny);
    }

    #[test]
    fn non_member_gets_no_assertion() {
        let w = world();
        assert!(w
            .cas
            .issue_assertion(&dn("/O=G/CN=Stranger"), 100)
            .is_none());
        assert_eq!(w.cas.member_count(), 2);
    }

    #[test]
    fn stolen_assertion_unusable_by_other_subject() {
        let w = world();
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        let err = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Eve"),
                "/detector/run7",
                "read",
                200,
            )
            .unwrap_err();
        assert!(matches!(err, AuthzError::SubjectMismatch { .. }));
    }

    #[test]
    fn expired_assertion_rejected() {
        let w = world();
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        let err = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Jane"),
                "/detector/run7",
                "read",
                10_000,
            )
            .unwrap_err();
        assert!(matches!(err, AuthzError::AssertionExpired { .. }));
    }

    #[test]
    fn forged_assertion_rejected() {
        let w = world();
        let mut assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        assertion.tbs.rights.push(Right {
            resource: "*".to_string(),
            action: "*".to_string(),
        });
        let err = w
            .gate
            .authorize_with_cas(&assertion, &dn("/O=G/CN=Jane"), "/anything", "write", 200)
            .unwrap_err();
        assert_eq!(err, AuthzError::UntrustedAssertion);
    }

    #[test]
    fn assertion_from_unknown_vo_rejected() {
        let mut rng = ChaChaRng::from_seed_bytes(b"other vo");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=X/CN=CA"), 512, 0, 1000);
        let rogue_cred = ca.issue_identity(&mut rng, dn("/O=X/CN=CAS"), 512, 0, 1000);
        let rogue = CasServer::new("rogue-vo", rogue_cred, 3600);
        rogue.enroll(&dn("/O=G/CN=Jane"), vec![]);
        rogue.add_rule(Rule::new(SubjectMatch::Any, "*", "*", Effect::Permit));
        let assertion = rogue.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();

        let w = world();
        let err = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Jane"),
                "/detector/run7",
                "read",
                200,
            )
            .unwrap_err();
        assert_eq!(err, AuthzError::UntrustedAssertion);
    }

    #[test]
    fn assertion_codec_roundtrip() {
        let w = world();
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Jane"), 100).unwrap();
        let decoded = CasAssertion::from_bytes(&assertion.to_bytes()).unwrap();
        assert_eq!(decoded, assertion);
        assert!(decoded.verify(w.cas.public_key()));
    }

    #[test]
    fn direct_local_authorization() {
        let w = world();
        // No VO involvement: local policy alone, which has no rule for
        // individual users on the detector → NotApplicable.
        assert_eq!(
            w.gate
                .authorize_direct(&dn("/O=G/CN=Jane"), "/detector/run7", "read"),
            Decision::NotApplicable
        );
    }

    #[test]
    fn per_user_local_deny_bites_through_cas() {
        let mut w = world();
        w.cas
            .enroll(&dn("/O=G/CN=Banned"), vec!["group:analysts".to_string()]);
        let assertion = w.cas.issue_assertion(&dn("/O=G/CN=Banned"), 100).unwrap();
        let d = w
            .gate
            .authorize_with_cas(
                &assertion,
                &dn("/O=G/CN=Banned"),
                "/detector/run7",
                "read",
                200,
            )
            .unwrap();
        assert_eq!(d, Decision::Deny);
        let _ = &mut w;
    }
}
