//! Crash-durable CAS: the Figure-2 server as a restartable process.
//!
//! The paper's §4 argument is that security services hold no state a
//! restart cannot recover: policy lives in a database, assertions are
//! stateless signed messages. [`DurableCas`] makes that concrete — every
//! mutation (enrollment, policy rule, issued assertion) is appended to a
//! [`Journal`] *before* it takes effect, and a crash throws away the
//! entire in-memory [`CasServer`]. Recovery replays the journal into a
//! fresh server.
//!
//! Issued assertions are journaled keyed by `(caller, call-id)`. That
//! closes the window where the application record is durable but the
//! RPC reply-cache record is not: a retransmit that re-executes after a
//! restart finds the journaled assertion and returns those exact bytes
//! instead of signing a second assertion with a fresh validity window —
//! "one assertion issued" holds across any crash schedule.
//!
//! Kill points (see `testbed::faults`):
//!
//! * `cas.issue.exec` — before the assertion is signed (no side effect
//!   yet; the retransmit simply re-runs issuance).
//! * `cas.issue.journaled` — after the issuance record is durable but
//!   before the reply leaves (the retransmit is answered from the
//!   journal).

use crate::cas::CasServer;
use crate::net::CasService;
use crate::policy::{Effect, Rule, SubjectMatch};
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Decoder, Encoder};
use gridsec_pki::name::DistinguishedName;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::{CrashPlan, CrashRecover, Journal};
use gridsec_util::trace;
use std::collections::HashMap;
use std::sync::Arc;

/// Journal tag for an enrollment record.
pub const TAG_ENROLL: &str = "cas-enroll";
/// Journal tag for a VO policy rule record.
pub const TAG_RULE: &str = "cas-rule";
/// Journal tag for an issued-assertion record (keyed by caller+call-id).
pub const TAG_ISSUED: &str = "cas-issued";

/// A [`CasServer`] wrapped in write-ahead journaling and crash recovery.
///
/// Plug into a [`CrashableServer`][gridsec_testbed::faults::CrashableServer]
/// as its [`CrashRecover`] application. All VO setup must go through
/// [`enroll`][DurableCas::enroll] / [`add_rule`][DurableCas::add_rule]
/// so it lands in the journal.
pub struct DurableCas {
    vo: String,
    credential: Credential,
    assertion_lifetime: u64,
    clock: SimClock,
    plan: CrashPlan,
    journal: Journal,
    cas: Arc<CasServer>,
    service: CasService,
    /// (caller, call-id) → exact reply bytes already issued.
    issued: HashMap<(String, u64), Vec<u8>>,
}

impl DurableCas {
    /// Create a durable CAS for `vo`, journaling into `journal`. An
    /// existing journal (e.g. from a previous incarnation) is replayed
    /// immediately.
    pub fn new(
        vo: &str,
        credential: Credential,
        assertion_lifetime: u64,
        clock: SimClock,
        plan: CrashPlan,
        journal: Journal,
    ) -> Self {
        let cas = Arc::new(CasServer::new(vo, credential.clone(), assertion_lifetime));
        let service = CasService::new(cas.clone(), clock.clone());
        let mut durable = DurableCas {
            vo: vo.to_string(),
            credential,
            assertion_lifetime,
            clock,
            plan,
            journal,
            cas,
            service,
            issued: HashMap::new(),
        };
        durable.recover();
        durable
    }

    /// The live (possibly freshly recovered) CAS server.
    pub fn cas(&self) -> &Arc<CasServer> {
        &self.cas
    }

    /// Number of distinct assertions actually issued (journaled `ok`
    /// replies). A retransmit answered from the journal does not count.
    pub fn issued_count(&self) -> usize {
        self.issued
            .values()
            .filter(|reply| {
                Decoder::new(reply)
                    .get_str()
                    .is_ok_and(|status| status == "ok")
            })
            .count()
    }

    /// Enroll a VO member: journaled, then applied.
    pub fn enroll(&self, user: &DistinguishedName, groups: Vec<String>) {
        let mut e = Encoder::new();
        e.put_str(&user.to_string());
        e.put_seq(&groups, |enc, g| {
            enc.put_str(g);
        });
        self.journal
            .append(TAG_ENROLL, &e.finish())
            .expect("journal enroll");
        self.cas.enroll(user, groups);
    }

    /// Add a VO policy rule: journaled, then applied. Patterns are kept
    /// as their source strings so replay reparses them identically.
    pub fn add_rule(&self, subject: SubjectMatch, resource: &str, action: &str, effect: Effect) {
        let mut e = Encoder::new();
        let (kind, name) = match &subject {
            SubjectMatch::Any => (0u8, String::new()),
            SubjectMatch::Exact(s) => (1u8, s.clone()),
        };
        e.put_u8(kind).put_str(&name);
        e.put_str(resource).put_str(action);
        e.put_u8(match effect {
            Effect::Permit => 0,
            Effect::Deny => 1,
        });
        self.journal
            .append(TAG_RULE, &e.finish())
            .expect("journal rule");
        self.cas
            .add_rule(Rule::new(subject, resource, action, effect));
    }

    fn apply_record(&mut self, tag: &str, body: &[u8]) {
        let mut d = Decoder::new(body);
        match tag {
            TAG_ENROLL => {
                let Ok(subject) = d.get_str() else { return };
                let Ok(groups) = d.get_seq(|g| g.get_str()) else {
                    return;
                };
                if let Ok(user) = DistinguishedName::parse(&subject) {
                    self.cas.enroll(&user, groups);
                }
            }
            TAG_RULE => {
                let parsed = (|| {
                    let kind = d.get_u8()?;
                    let name = d.get_str()?;
                    let resource = d.get_str()?;
                    let action = d.get_str()?;
                    let effect = d.get_u8()?;
                    Ok::<_, gridsec_pki::PkiError>((kind, name, resource, action, effect))
                })();
                if let Ok((kind, name, resource, action, effect)) = parsed {
                    let subject = if kind == 0 {
                        SubjectMatch::Any
                    } else {
                        SubjectMatch::Exact(name)
                    };
                    let effect = if effect == 0 {
                        Effect::Permit
                    } else {
                        Effect::Deny
                    };
                    self.cas
                        .add_rule(Rule::new(subject, &resource, &action, effect));
                }
            }
            TAG_ISSUED => {
                let parsed = (|| {
                    let from = d.get_str()?;
                    let id = d.get_u64()?;
                    let reply = d.get_bytes()?;
                    Ok::<_, gridsec_pki::PkiError>((from, id, reply))
                })();
                if let Ok((from, id, reply)) = parsed {
                    self.issued.insert((from, id), reply);
                }
            }
            _ => {}
        }
    }
}

impl CrashRecover for DurableCas {
    fn handle(&mut self, from: &str, id: u64, body: &[u8]) -> Vec<u8> {
        let key = (from.to_string(), id);
        // Re-execution after a restart: the reply-cache record may have
        // been lost, but the issuance record is durable — answer with
        // the exact bytes already issued.
        if let Some(reply) = self.issued.get(&key) {
            trace::event("cas.issue.replayed", &format!("from={from} id={id}"));
            return reply.clone();
        }
        if self.plan.fires("cas.issue.exec") {
            return Vec::new();
        }
        let reply = self.service.handle(from, body);
        let mut e = Encoder::new();
        e.put_str(from).put_u64(id).put_bytes(&reply);
        self.journal
            .append(TAG_ISSUED, &e.finish())
            .expect("journal issued");
        if self.plan.fires("cas.issue.journaled") {
            return Vec::new();
        }
        self.issued.insert(key, reply.clone());
        reply
    }

    fn crash(&mut self) {
        // The process dies: every in-memory structure is gone.
        self.cas = Arc::new(CasServer::new(
            &self.vo,
            self.credential.clone(),
            self.assertion_lifetime,
        ));
        self.service = CasService::new(self.cas.clone(), self.clock.clone());
        self.issued.clear();
    }

    fn recover(&mut self) {
        self.crash();
        for (tag, body) in self.journal.records() {
            self.apply_record(&tag, &body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_testbed::os::{SimOs, ROOT_UID};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn durable_cas(plan: CrashPlan) -> (SimOs, DurableCas) {
        let mut rng = ChaChaRng::from_seed_bytes(b"durable cas tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=VO/CN=CA"), 512, 0, 1_000_000);
        let cred = ca.issue_identity(&mut rng, dn("/O=VO/CN=CAS"), 512, 0, 100_000);
        let os = SimOs::new();
        os.add_host("cas-host");
        let journal = Journal::open(os.clone(), "cas-host", "/var/cas/journal.wal", ROOT_UID);
        let cas = DurableCas::new("physics-vo", cred, 3600, SimClock::new(), plan, journal);
        cas.enroll(&dn("/O=G/CN=Alice"), vec!["group:analysts".into()]);
        cas.add_rule(
            SubjectMatch::Exact("group:analysts".to_string()),
            "dataset/*",
            "read",
            Effect::Permit,
        );
        (os, cas)
    }

    fn issue_request(user: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str(crate::net::OP_ISSUE).put_str(user);
        e.finish()
    }

    #[test]
    fn membership_and_policy_survive_crash() {
        let (_os, mut cas) = durable_cas(CrashPlan::disabled());
        assert_eq!(cas.cas().member_count(), 1);
        cas.crash();
        assert_eq!(cas.cas().member_count(), 0, "crash wipes memory");
        cas.recover();
        assert_eq!(cas.cas().member_count(), 1, "journal replay restores");
        let reply = cas.handle("alice", 1, &issue_request("/O=G/CN=Alice"));
        assert_eq!(Decoder::new(&reply).get_str().unwrap(), "ok");
    }

    #[test]
    fn retransmit_after_restart_gets_identical_assertion() {
        let (_os, mut cas) = durable_cas(CrashPlan::disabled());
        let first = cas.handle("alice", 7, &issue_request("/O=G/CN=Alice"));
        cas.crash();
        cas.recover();
        let second = cas.handle("alice", 7, &issue_request("/O=G/CN=Alice"));
        assert_eq!(first, second, "same call-id → byte-identical assertion");
        assert_eq!(cas.issued_count(), 1, "only one assertion was issued");
        // A genuinely new call-id issues again (bytes may coincide —
        // signing is deterministic and the clock is frozen — but the
        // journal records a second issuance).
        let _ = cas.handle("alice", 8, &issue_request("/O=G/CN=Alice"));
        assert_eq!(cas.issued_count(), 2);
    }

    #[test]
    fn crash_between_journal_and_reply_does_not_double_issue() {
        let plan = CrashPlan::manual(2);
        plan.arm("cas.issue.journaled", 1);
        let (_os, mut cas) = durable_cas(plan.clone());
        // First execution journals the assertion, then the latched
        // crash fires; the supervisor would discard this reply.
        let _ = cas.handle("alice", 3, &issue_request("/O=G/CN=Alice"));
        assert!(plan.take_pending().is_some(), "kill point fired");
        cas.crash();
        cas.recover();
        let replayed = cas.handle("alice", 3, &issue_request("/O=G/CN=Alice"));
        assert_eq!(Decoder::new(&replayed).get_str().unwrap(), "ok");
        assert_eq!(cas.issued_count(), 1, "no duplicate side effect");
    }

    #[test]
    fn refusals_are_journaled_and_stable_too() {
        let (_os, mut cas) = durable_cas(CrashPlan::disabled());
        let refusal = cas.handle("mallory", 1, &issue_request("/O=G/CN=Mallory"));
        assert_eq!(Decoder::new(&refusal).get_str().unwrap(), "none");
        cas.crash();
        cas.recover();
        let again = cas.handle("mallory", 1, &issue_request("/O=G/CN=Mallory"));
        assert_eq!(refusal, again);
        assert_eq!(cas.issued_count(), 0);
    }
}
