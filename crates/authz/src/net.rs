//! The Figure-2 CAS exchange across the simulated network.
//!
//! Step 1 of the paper's CAS flow — "user asks the CAS server for a
//! signed capability assertion" — becomes a remote call that must
//! survive drop/duplicate/reorder faults. The request rides the
//! at-most-once RPC layer ([`gridsec_testbed::rpc`]); issuing an
//! assertion is read-only on the CAS side, but the reply cache still
//! pins one deterministic assertion per call, so a duplicated request
//! cannot yield two assertions with different validity windows.
//!
//! Wire format (via [`gridsec_pki::encoding`]): request
//! `"cas-issue" ‖ subject-DN`; reply `"ok" ‖ assertion-bytes`,
//! `"none" ‖ reason`, or `"err" ‖ reason`.

use crate::cas::{CasAssertion, CasServer};
use crate::AuthzError;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::name::DistinguishedName;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::rpc::RpcClient;
use gridsec_util::trace;
use std::sync::Arc;

/// Op tag for assertion issuance.
pub const OP_ISSUE: &str = "cas-issue";

/// The CAS server behind an RPC endpoint: plug [`CasService::handle`]
/// into an [`RpcServer::poll`][gridsec_testbed::rpc::RpcServer::poll]
/// handler. Issuance timestamps come from the shared [`SimClock`], so a
/// retransmitted request answered from the reply cache carries the
/// validity window of the *first* execution — exactly what a client
/// that saw the first reply get lost expects.
pub struct CasService {
    cas: Arc<CasServer>,
    clock: SimClock,
}

impl CasService {
    /// Serve `cas`, stamping assertions with `clock` time.
    pub fn new(cas: Arc<CasServer>, clock: SimClock) -> Self {
        CasService { cas, clock }
    }

    /// Handle one request frame; returns the reply frame. Malformed
    /// input and non-members get error replies, never panics.
    pub fn handle(&mut self, from: &str, payload: &[u8]) -> Vec<u8> {
        let _sp = trace::span_with("cas.issue", &format!("from={from}"));
        let mut d = Decoder::new(payload);
        let parsed = d.get_str().and_then(|op| Ok((op, d.get_str()?)));
        let (op, subject) = match parsed {
            Ok(x) => x,
            Err(_) => return reply("err", b"malformed request"),
        };
        if op != OP_ISSUE {
            return reply("err", b"unknown cas op");
        }
        let Ok(user) = DistinguishedName::parse(&subject) else {
            return reply("err", b"bad subject DN");
        };
        match self.cas.issue_assertion(&user, self.clock.now()) {
            Some(assertion) => {
                trace::event("cas.decision", &format!("subject={subject} outcome=issued"));
                trace::add("cas.assertions_issued", 1);
                reply("ok", &assertion.to_bytes())
            }
            None => {
                trace::event(
                    "cas.decision",
                    &format!("subject={subject} outcome=refused"),
                );
                trace::add("cas.refusals", 1);
                reply("none", b"not a VO member")
            }
        }
    }
}

fn reply(status: &str, body: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(status).put_bytes(body);
    e.finish()
}

/// Fetch a CAS assertion for `user` over `rpc`, retrying per the
/// client's policy. The returned assertion is signature-checked by the
/// caller's [`ResourceGate`][crate::cas::ResourceGate] as usual — this
/// function only moves it across the faulty wire.
pub fn fetch_assertion(
    rpc: &mut RpcClient,
    user: &DistinguishedName,
) -> Result<CasAssertion, AuthzError> {
    let mut sp = trace::span_with("cas.fetch", &format!("user={user}"));
    let result = (|| {
        let mut e = Encoder::new();
        e.put_str(OP_ISSUE).put_str(&user.to_string());
        let raw = rpc
            .call(&e.finish())
            .map_err(|err| AuthzError::Transport(err.to_string()))?;
        let mut d = Decoder::new(&raw);
        let status = d
            .get_str()
            .map_err(|_| AuthzError::Decode("malformed cas reply"))?;
        let body = d
            .get_bytes()
            .map_err(|_| AuthzError::Decode("malformed cas reply"))?;
        match status.as_str() {
            "ok" => {
                let mut ad = Decoder::new(&body);
                let assertion = CasAssertion::decode(&mut ad)
                    .map_err(|_| AuthzError::Decode("bad assertion bytes"))?;
                trace::event(
                    "cas.assertion.received",
                    &format!("vo={}", assertion.tbs.vo),
                );
                trace::add("cas.assertions_fetched", 1);
                Ok(assertion)
            }
            _ => Err(AuthzError::Refused(
                String::from_utf8_lossy(&body).into_owned(),
            )),
        }
    })();
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Effect, Rule, SubjectMatch};
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::rpc::{RpcClient, RpcServer};
    use gridsec_util::retry::RetryPolicy;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn cas_world() -> (Arc<CasServer>, DistinguishedName) {
        let mut rng = ChaChaRng::from_seed_bytes(b"cas net tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=VO/CN=CA"), 512, 0, 1_000_000);
        let cred = ca.issue_identity(&mut rng, dn("/O=VO/CN=CAS"), 512, 0, 100_000);
        let cas = Arc::new(CasServer::new("physics-vo", cred, 3600));
        let user = dn("/O=G/CN=Alice");
        cas.enroll(&user, vec!["group:analysts".into()]);
        cas.add_rule(Rule::new(
            SubjectMatch::Exact("group:analysts".to_string()),
            "dataset/*",
            "read",
            Effect::Permit,
        ));
        (cas, user)
    }

    fn fetch_over(net: &Network, clock: SimClock) -> (CasAssertion, Arc<CasServer>) {
        let (cas, user) = cas_world();
        let service = Rc::new(RefCell::new(CasService::new(cas.clone(), clock)));
        let rpc_server = Rc::new(RefCell::new(RpcServer::new(net.register("cas"))));
        let mut rpc = RpcClient::new(
            net.register("alice"),
            "cas",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = rpc_server.clone();
        let hook_service = service.clone();
        rpc.set_pump(move || {
            hook_server
                .borrow_mut()
                .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
        });
        let assertion = fetch_assertion(&mut rpc, &user).unwrap();
        (assertion, cas)
    }

    #[test]
    fn fetches_over_perfect_network() {
        let net = Network::new();
        let (assertion, cas) = fetch_over(&net, SimClock::new());
        assert!(assertion.verify(cas.public_key()));
        assert_eq!(assertion.tbs.vo, "physics-vo");
        assert_eq!(assertion.tbs.subject, dn("/O=G/CN=Alice"));
    }

    #[test]
    fn fetches_under_lossy_wan_with_valid_window() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock.clone(), 0xCA5, FaultProfile::lossy_wan());
        let (assertion, cas) = fetch_over(&net, clock.clone());
        assert!(assertion.verify(cas.public_key()));
        // The window was stamped at first execution; even after retries
        // advanced the clock, the assertion is valid *now*.
        let now = clock.now();
        assert!(assertion.tbs.not_before <= now && now < assertion.tbs.not_after);
    }

    #[test]
    fn non_member_is_refused_not_transport_error() {
        let net = Network::new();
        let (cas, _user) = cas_world();
        let service = Rc::new(RefCell::new(CasService::new(cas, SimClock::new())));
        let rpc_server = Rc::new(RefCell::new(RpcServer::new(net.register("cas"))));
        let mut rpc = RpcClient::new(net.register("mallory"), "cas", RetryPolicy::default());
        let hook_server = rpc_server.clone();
        let hook_service = service.clone();
        rpc.set_pump(move || {
            hook_server
                .borrow_mut()
                .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
        });
        match fetch_assertion(&mut rpc, &dn("/O=G/CN=Mallory")) {
            Err(AuthzError::Refused(_)) => {}
            other => panic!("expected Refused, got {other:?}"),
        }
    }
}
