//! # gridsec-authz
//!
//! Authorization for the `gridsec` reproduction of *Security for Grid
//! Services* (Welch et al., HPDC 2003): local policy, identity mapping,
//! and the **Community Authorization Service** (CAS).
//!
//! The paper's Figure 2 is the heart of this crate: a VO expresses policy
//! *outsourced to it by resource providers*; a user fetches a signed CAS
//! assertion; the resource enforces **the intersection of local policy
//! and VO policy**, remaining "the ultimate authority over that
//! resource". Concretely:
//!
//! * [`gridmap`] — the grid-mapfile: GSI identity → local account
//!   (paper §5.3 step 3).
//! * [`policy`] — a rule-based policy engine (subject / resource / action
//!   / effect with deny-overrides and friends), standing in for the
//!   XACML evaluation a 2003 deployment would have used.
//! * [`cas`] — the CAS server (issues signed rights assertions scoped to
//!   a user and the VO's outsourced policy) and the resource-side
//!   [`cas::ResourceGate`] that enforces `local ∩ VO`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cas;
pub mod durable;
pub mod gridmap;
pub mod net;
pub mod policy;

/// Errors from authorization components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzError {
    /// grid-mapfile line could not be parsed.
    BadMapEntry(String),
    /// Assertion signature invalid or from an untrusted CAS.
    UntrustedAssertion,
    /// Assertion expired or not yet valid.
    AssertionExpired {
        /// Evaluation time.
        now: u64,
        /// Assertion expiry.
        not_after: u64,
    },
    /// Assertion was issued to a different user.
    SubjectMismatch {
        /// User named in the assertion.
        assertion_subject: String,
        /// User presenting it.
        presenter: String,
    },
    /// Structural decode failure.
    Decode(&'static str),
    /// The CAS exchange could not cross the network (retry policy
    /// exhausted, endpoint gone, or a malformed reply).
    Transport(String),
    /// The CAS refused to issue an assertion (e.g. not a VO member).
    Refused(String),
}

impl core::fmt::Display for AuthzError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuthzError::BadMapEntry(l) => write!(f, "bad grid-mapfile entry: {l}"),
            AuthzError::UntrustedAssertion => write!(f, "untrusted CAS assertion"),
            AuthzError::AssertionExpired { now, not_after } => {
                write!(f, "assertion expired: now={now}, not_after={not_after}")
            }
            AuthzError::SubjectMismatch {
                assertion_subject,
                presenter,
            } => write!(
                f,
                "assertion subject {assertion_subject:?} does not match presenter {presenter:?}"
            ),
            AuthzError::Decode(m) => write!(f, "decode error: {m}"),
            AuthzError::Transport(m) => write!(f, "transport error: {m}"),
            AuthzError::Refused(m) => write!(f, "CAS refused: {m}"),
        }
    }
}

impl std::error::Error for AuthzError {}
