//! The grid-mapfile: GSI identity → local account mapping.
//!
//! Paper §5.3 step 3: the MMJFS "determines the local account in which
//! the job should be run based on the requestor's identity using the
//! grid-mapfile, a local configuration file containing mappings from GSI
//! identities to local identities".
//!
//! Format (one entry per line, as in GT):
//!
//! ```text
//! "/O=Grid/CN=Jane Doe" jdoe
//! "/O=Grid/CN=Carl K" carl,shared
//! ```
//!
//! The first listed account is the default; additional comma-separated
//! accounts are also permitted mappings.

use crate::AuthzError;
use gridsec_pki::name::DistinguishedName;

/// One mapping entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapEntry {
    /// The grid identity (base identity of a validated chain).
    pub identity: DistinguishedName,
    /// Permitted local accounts; the first is the default.
    pub accounts: Vec<String>,
}

/// A parsed grid-mapfile.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct GridMapFile {
    entries: Vec<MapEntry>,
}

impl GridMapFile {
    /// Empty map.
    pub fn new() -> Self {
        GridMapFile::default()
    }

    /// Add a mapping (appends; earlier entries win on lookup).
    pub fn add(&mut self, identity: DistinguishedName, accounts: Vec<String>) {
        assert!(!accounts.is_empty(), "mapping needs at least one account");
        self.entries.push(MapEntry { identity, accounts });
    }

    /// Parse the textual format. Blank lines and `#` comments allowed.
    pub fn parse(text: &str) -> Result<GridMapFile, AuthzError> {
        let mut map = GridMapFile::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let line = line
                .strip_prefix('"')
                .ok_or_else(|| AuthzError::BadMapEntry(raw.to_string()))?;
            let (dn_str, rest) = line
                .split_once('"')
                .ok_or_else(|| AuthzError::BadMapEntry(raw.to_string()))?;
            let identity = DistinguishedName::parse(dn_str)
                .map_err(|_| AuthzError::BadMapEntry(raw.to_string()))?;
            let accounts: Vec<String> = rest
                .trim()
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if accounts.is_empty() {
                return Err(AuthzError::BadMapEntry(raw.to_string()));
            }
            map.entries.push(MapEntry { identity, accounts });
        }
        Ok(map)
    }

    /// Serialize to the textual format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("\"{}\" {}\n", e.identity, e.accounts.join(",")));
        }
        out
    }

    /// Default account for an identity (first matching entry).
    pub fn lookup(&self, identity: &DistinguishedName) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| &e.identity == identity)
            .map(|e| e.accounts[0].as_str())
    }

    /// `true` iff `identity` may run as `account`.
    pub fn permits(&self, identity: &DistinguishedName, account: &str) -> bool {
        self.entries
            .iter()
            .any(|e| &e.identity == identity && e.accounts.iter().any(|a| a == account))
    }

    /// All entries.
    pub fn entries(&self) -> &[MapEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    const SAMPLE: &str = r#"
# DOE Science Grid mappings
"/O=Grid/CN=Jane Doe" jdoe
"/O=Grid/CN=Carl K" carl,shared

"/O=Grid/OU=ISI/CN=Laura P" laura
"#;

    #[test]
    fn parse_and_lookup() {
        let map = GridMapFile::parse(SAMPLE).unwrap();
        assert_eq!(map.entries().len(), 3);
        assert_eq!(map.lookup(&dn("/O=Grid/CN=Jane Doe")), Some("jdoe"));
        assert_eq!(map.lookup(&dn("/O=Grid/CN=Carl K")), Some("carl"));
        assert_eq!(map.lookup(&dn("/O=Grid/CN=Nobody")), None);
    }

    #[test]
    fn multi_account_permits() {
        let map = GridMapFile::parse(SAMPLE).unwrap();
        assert!(map.permits(&dn("/O=Grid/CN=Carl K"), "carl"));
        assert!(map.permits(&dn("/O=Grid/CN=Carl K"), "shared"));
        assert!(!map.permits(&dn("/O=Grid/CN=Carl K"), "jdoe"));
        assert!(!map.permits(&dn("/O=Grid/CN=Jane Doe"), "shared"));
    }

    #[test]
    fn roundtrip() {
        let map = GridMapFile::parse(SAMPLE).unwrap();
        let again = GridMapFile::parse(&map.to_text()).unwrap();
        assert_eq!(again, map);
    }

    #[test]
    fn proxy_base_identity_maps() {
        // The map is keyed on *base* identities: a proxy's leaf subject is
        // NOT in the map but its base identity is.
        let map = GridMapFile::parse(SAMPLE).unwrap();
        let proxy_subject = dn("/O=Grid/CN=Jane Doe").with_extra_cn("12345");
        assert_eq!(map.lookup(&proxy_subject), None);
        assert_eq!(map.lookup(&proxy_subject.truncated(2)), Some("jdoe"));
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "/O=G/CN=x jdoe",    // missing quotes
            "\"/O=G/CN=x\"",     // missing account
            "\"/O=G/CN=x jdoe",  // unterminated quote
            "\"not-a-dn\" jdoe", // bad DN
        ] {
            assert!(GridMapFile::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn first_entry_wins() {
        let text = "\"/O=G/CN=x\" first\n\"/O=G/CN=x\" second\n";
        let map = GridMapFile::parse(text).unwrap();
        assert_eq!(map.lookup(&dn("/O=G/CN=x")), Some("first"));
        assert!(map.permits(&dn("/O=G/CN=x"), "second"));
    }

    #[test]
    fn add_api() {
        let mut map = GridMapFile::new();
        map.add(dn("/O=G/CN=y"), vec!["acct".to_string()]);
        assert_eq!(map.lookup(&dn("/O=G/CN=y")), Some("acct"));
    }
}
