//! A rule-based policy engine (XACML-lite).
//!
//! The paper's §4.1 authorization service "evaluates policy rules
//! regarding the decision to allow the attempted actions based on
//! information about the requestor ..., the target ..., and details of
//! the request". This module supplies that evaluation core, used by
//! local resource policy, CAS VO policy, and the OGSA authorization
//! service.

/// A permit/deny outcome attached to a rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Effect {
    /// The rule grants the request.
    Permit,
    /// The rule forbids the request.
    Deny,
}

/// Result of evaluating a policy set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Granted.
    Permit,
    /// Denied by rule.
    Deny,
    /// No rule applied (resource owners usually treat this as deny).
    NotApplicable,
}

/// Subject matcher.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SubjectMatch {
    /// Matches every subject.
    Any,
    /// Exact subject string (a DN, `vo:<name>`, or `group:<name>` tag).
    Exact(String),
}

/// Matcher for resources and actions: exact string or `prefix*` glob.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// Matches everything.
    Any,
    /// Exact match.
    Exact(String),
    /// Prefix match (`"/scratch/*"` style).
    Prefix(String),
}

impl Pattern {
    /// Parse from a compact string form: `*`, `prefix*`, or exact.
    pub fn parse(s: &str) -> Pattern {
        if s == "*" {
            Pattern::Any
        } else if let Some(prefix) = s.strip_suffix('*') {
            Pattern::Prefix(prefix.to_string())
        } else {
            Pattern::Exact(s.to_string())
        }
    }

    /// Test a value.
    pub fn matches(&self, value: &str) -> bool {
        match self {
            Pattern::Any => true,
            Pattern::Exact(e) => e == value,
            Pattern::Prefix(p) => value.starts_with(p.as_str()),
        }
    }
}

/// One policy rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Who the rule applies to.
    pub subject: SubjectMatch,
    /// Which resources.
    pub resource: Pattern,
    /// Which actions.
    pub action: Pattern,
    /// Grant or forbid.
    pub effect: Effect,
}

impl Rule {
    /// Convenience constructor parsing pattern strings.
    pub fn new(subject: SubjectMatch, resource: &str, action: &str, effect: Effect) -> Rule {
        Rule {
            subject,
            resource: Pattern::parse(resource),
            action: Pattern::parse(action),
            effect,
        }
    }

    fn applies(&self, req: &Request) -> bool {
        let subject_ok = match &self.subject {
            SubjectMatch::Any => true,
            SubjectMatch::Exact(s) => req.subject == *s || req.subject_tags.contains(s),
        };
        subject_ok && self.resource.matches(&req.resource) && self.action.matches(&req.action)
    }
}

/// How rule outcomes combine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CombiningAlg {
    /// Any applicable Deny wins over Permits.
    DenyOverrides,
    /// Any applicable Permit wins over Denies.
    PermitOverrides,
    /// First applicable rule decides.
    FirstApplicable,
}

/// An authorization request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Primary subject string (typically the base identity DN).
    pub subject: String,
    /// Additional subject tags (`group:...`, `vo:...`).
    pub subject_tags: Vec<String>,
    /// Target resource identifier.
    pub resource: String,
    /// Requested action.
    pub action: String,
}

impl Request {
    /// Request with no extra tags.
    pub fn new(subject: &str, resource: &str, action: &str) -> Request {
        Request {
            subject: subject.to_string(),
            subject_tags: Vec::new(),
            resource: resource.to_string(),
            action: action.to_string(),
        }
    }

    /// Builder: attach a tag.
    pub fn with_tag(mut self, tag: &str) -> Request {
        self.subject_tags.push(tag.to_string());
        self
    }
}

/// An ordered rule set with a combining algorithm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicySet {
    /// The rules, in order.
    pub rules: Vec<Rule>,
    /// The combining algorithm.
    pub combining: CombiningAlg,
}

impl PolicySet {
    /// Empty deny-overrides policy.
    pub fn new(combining: CombiningAlg) -> PolicySet {
        PolicySet {
            rules: Vec::new(),
            combining,
        }
    }

    /// Append a rule.
    pub fn add(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Evaluate a request.
    pub fn evaluate(&self, req: &Request) -> Decision {
        let mut saw_permit = false;
        let mut saw_deny = false;
        for rule in &self.rules {
            if !rule.applies(req) {
                continue;
            }
            match (self.combining, rule.effect) {
                (CombiningAlg::FirstApplicable, Effect::Permit) => return Decision::Permit,
                (CombiningAlg::FirstApplicable, Effect::Deny) => return Decision::Deny,
                (CombiningAlg::DenyOverrides, Effect::Deny) => return Decision::Deny,
                (CombiningAlg::PermitOverrides, Effect::Permit) => return Decision::Permit,
                (_, Effect::Permit) => saw_permit = true,
                (_, Effect::Deny) => saw_deny = true,
            }
        }
        match self.combining {
            CombiningAlg::DenyOverrides if saw_permit => Decision::Permit,
            CombiningAlg::PermitOverrides if saw_deny => Decision::Deny,
            _ => Decision::NotApplicable,
        }
    }

    /// All (resource, action) pairs this subject is permitted — used by
    /// CAS to enumerate rights for an assertion. Only exact resource and
    /// action patterns enumerate; glob rules are carried as globs.
    pub fn permitted_rights(&self, subject: &str, tags: &[String]) -> Vec<(String, String)> {
        let mut rights = Vec::new();
        for rule in &self.rules {
            if rule.effect != Effect::Permit {
                continue;
            }
            let applies = match &rule.subject {
                SubjectMatch::Any => true,
                SubjectMatch::Exact(s) => s == subject || tags.contains(s),
            };
            if !applies {
                continue;
            }
            let res = pattern_to_string(&rule.resource);
            let act = pattern_to_string(&rule.action);
            if !rights.contains(&(res.clone(), act.clone())) {
                rights.push((res, act));
            }
        }
        rights
    }
}

fn pattern_to_string(p: &Pattern) -> String {
    match p {
        Pattern::Any => "*".to_string(),
        Pattern::Exact(e) => e.clone(),
        Pattern::Prefix(pre) => format!("{pre}*"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permit(subject: &str, resource: &str, action: &str) -> Rule {
        Rule::new(
            SubjectMatch::Exact(subject.to_string()),
            resource,
            action,
            Effect::Permit,
        )
    }

    fn deny(subject: &str, resource: &str, action: &str) -> Rule {
        Rule::new(
            SubjectMatch::Exact(subject.to_string()),
            resource,
            action,
            Effect::Deny,
        )
    }

    #[test]
    fn pattern_matching() {
        assert!(Pattern::parse("*").matches("anything"));
        assert!(Pattern::parse("/scratch/*").matches("/scratch/run1"));
        assert!(!Pattern::parse("/scratch/*").matches("/home/x"));
        assert!(Pattern::parse("read").matches("read"));
        assert!(!Pattern::parse("read").matches("write"));
    }

    #[test]
    fn deny_overrides() {
        let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
        p.add(permit("/O=G/CN=Jane", "/data/*", "*"));
        p.add(deny("/O=G/CN=Jane", "/data/secret", "*"));
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/public", "read")),
            Decision::Permit
        );
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/secret", "read")),
            Decision::Deny
        );
    }

    #[test]
    fn permit_overrides() {
        let mut p = PolicySet::new(CombiningAlg::PermitOverrides);
        p.add(deny("/O=G/CN=Jane", "*", "*"));
        p.add(permit("/O=G/CN=Jane", "/data/open", "read"));
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/open", "read")),
            Decision::Permit
        );
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/other", "read")),
            Decision::Deny
        );
    }

    #[test]
    fn first_applicable() {
        let mut p = PolicySet::new(CombiningAlg::FirstApplicable);
        p.add(deny("/O=G/CN=Jane", "/data/x", "*"));
        p.add(permit("/O=G/CN=Jane", "/data/*", "*"));
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/x", "read")),
            Decision::Deny
        );
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/y", "read")),
            Decision::Permit
        );
    }

    #[test]
    fn not_applicable_when_no_rule_matches() {
        let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
        p.add(permit("/O=G/CN=Jane", "/data/*", "read"));
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Eve", "/data/x", "read")),
            Decision::NotApplicable
        );
        assert_eq!(
            p.evaluate(&Request::new("/O=G/CN=Jane", "/data/x", "write")),
            Decision::NotApplicable
        );
    }

    #[test]
    fn group_tags_match() {
        let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
        p.add(permit("group:physicists", "/detector/*", "read"));
        let req =
            Request::new("/O=G/CN=Jane", "/detector/run5", "read").with_tag("group:physicists");
        assert_eq!(p.evaluate(&req), Decision::Permit);
        let untagged = Request::new("/O=G/CN=Jane", "/detector/run5", "read");
        assert_eq!(p.evaluate(&untagged), Decision::NotApplicable);
    }

    #[test]
    fn any_subject() {
        let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
        p.add(Rule::new(
            SubjectMatch::Any,
            "/public/*",
            "read",
            Effect::Permit,
        ));
        assert_eq!(
            p.evaluate(&Request::new("anyone", "/public/doc", "read")),
            Decision::Permit
        );
    }

    #[test]
    fn permitted_rights_enumeration() {
        let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
        p.add(permit("/O=G/CN=Jane", "/data/*", "read"));
        p.add(permit("group:staff", "/queue/batch", "submit"));
        p.add(deny("/O=G/CN=Jane", "/data/secret", "read"));
        p.add(permit("/O=G/CN=Eve", "/other", "read"));
        let rights = p.permitted_rights("/O=G/CN=Jane", &["group:staff".to_string()]);
        assert_eq!(
            rights,
            vec![
                ("/data/*".to_string(), "read".to_string()),
                ("/queue/batch".to_string(), "submit".to_string()),
            ]
        );
    }

    #[test]
    fn empty_policy_not_applicable() {
        let p = PolicySet::new(CombiningAlg::DenyOverrides);
        assert_eq!(
            p.evaluate(&Request::new("x", "y", "z")),
            Decision::NotApplicable
        );
    }
}
