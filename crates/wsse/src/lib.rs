//! # gridsec-wsse
//!
//! Web services security for GT3: SOAP messaging with WS-Security,
//! XML-Signature, XML-Encryption, WS-SecureConversation / WS-Trust, and
//! WS-Policy — reproducing §4.3–§4.4 and §5.1 of *Security for Grid
//! Services* (Welch et al., HPDC 2003).
//!
//! The paper's two GT3 communication styles are both here:
//!
//! * **Stateful** ([`wssc`]): security contexts established by carrying
//!   the *same* GSS/TLS tokens GT2 used, but inside WS-Trust
//!   `RequestSecurityToken` SOAP envelopes ("GT3 messages carry the same
//!   context establishment tokens used by GT2 but transports them over
//!   SOAP instead of TCP"). Established contexts protect further
//!   envelopes via a `SecurityContextToken` header plus sealed bodies.
//! * **Stateless** ([`xmlsig`]): a message is signed with XML-Signature
//!   and can be verified with no prior contact — "the identity of the
//!   recipient does not have to be known to the sender when the message
//!   is sent", the property GRAM's create-on-first-message flow needs.
//!
//! Supporting modules: [`soap`] (envelopes and the WS-Security header),
//! [`xmlenc`] (XML-Encryption: RSA-wrapped content keys + AEAD payloads),
//! [`policy`] (WS-Policy publication and intersection, paper §4.3), and
//! [`b64`] (base64 for token embedding).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b64;
pub mod policy;
pub mod routing;
pub mod soap;
pub mod wssc;
pub mod xmlenc;
pub mod xmlsig;

use gridsec_pki::PkiError;
use gridsec_xml::XmlError;

/// Errors across the WS-Security stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsseError {
    /// XML parsing failed.
    Xml(String),
    /// Required element or attribute missing.
    Missing(&'static str),
    /// A digest over referenced content did not match.
    DigestMismatch,
    /// The XML signature value failed to verify.
    BadSignature,
    /// Certificate chain validation failed.
    Pki(PkiError),
    /// Base64 decoding failed.
    Base64,
    /// Decryption failed.
    Decrypt,
    /// Security-context protocol violation.
    Context(&'static str),
    /// Message timestamp outside freshness window.
    Stale {
        /// Verification time.
        now: u64,
        /// Message expiry.
        expires: u64,
    },
    /// No common policy alternative (paper §4.3 negotiation failed).
    NoCommonPolicy,
}

impl From<XmlError> for WsseError {
    fn from(e: XmlError) -> Self {
        WsseError::Xml(e.to_string())
    }
}

impl From<PkiError> for WsseError {
    fn from(e: PkiError) -> Self {
        WsseError::Pki(e)
    }
}

impl core::fmt::Display for WsseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WsseError::Xml(m) => write!(f, "XML error: {m}"),
            WsseError::Missing(m) => write!(f, "missing element: {m}"),
            WsseError::DigestMismatch => write!(f, "reference digest mismatch"),
            WsseError::BadSignature => write!(f, "XML signature invalid"),
            WsseError::Pki(e) => write!(f, "credential rejected: {e}"),
            WsseError::Base64 => write!(f, "base64 decode error"),
            WsseError::Decrypt => write!(f, "decryption failed"),
            WsseError::Context(m) => write!(f, "security context error: {m}"),
            WsseError::Stale { now, expires } => {
                write!(f, "message stale: now={now}, expires={expires}")
            }
            WsseError::NoCommonPolicy => write!(f, "no common security policy alternative"),
        }
    }
}

impl std::error::Error for WsseError {}
