//! Standard base64 (RFC 4648, with padding) for embedding binary tokens,
//! digests, and signatures in XML text content.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes to base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (b[0] as u32) << 16 | (b[1] as u32) << 8 | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode base64 (padding required; whitespace tolerated).
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let cleaned: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !cleaned.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for chunk in cleaned.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 {
            return None;
        }
        // '=' may only appear at the end.
        for (i, &c) in chunk.iter().enumerate() {
            if c == b'=' && i < 4 - pad {
                return None;
            }
        }
        let vals: Vec<u8> = chunk[..4 - pad]
            .iter()
            .map(|&c| decode_char(c))
            .collect::<Option<_>>()?;
        let mut n: u32 = 0;
        for (i, v) in vals.iter().enumerate() {
            n |= (*v as u32) << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zm9v  ").unwrap(), b"foo");
    }

    #[test]
    fn malformed_rejected() {
        for bad in ["A", "AB", "ABC", "A===", "Zm9v!", "=AAA", "A=AA"] {
            assert!(decode(bad).is_none(), "{bad:?}");
        }
    }
}
