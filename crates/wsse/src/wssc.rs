//! WS-SecureConversation / WS-Trust — GT3's *stateful* security (paper
//! §5.1).
//!
//! Context establishment: the GSS/TLS handshake tokens from
//! `gridsec-gssapi` ride inside WS-Trust `RequestSecurityToken` (RST) /
//! `RequestSecurityTokenResponse` (RSTR) SOAP envelopes as base64
//! `BinaryExchange` elements. The bytes inside are *identical* to the
//! tokens GT2 sends over TCP — the compatibility property the paper
//! claims and experiment C1 asserts byte-for-byte.
//!
//! After establishment, application envelopes are protected under the
//! context: a `wsc:SecurityContextToken` header names the context and the
//! body is sealed by the context's keys.
//!
//! Repeat conversations between the same pair can skip the asymmetric
//! handshake: the responder keeps a [`ServerSessionCache`], and a
//! client holding a [`ClientSession`] runs the abbreviated resumption
//! exchange ([`WsscResumeInitiator`]) — the same RST/RSTR envelope
//! shapes, but the `BinaryExchange` tokens carry only symmetric-crypto
//! material ([`gridsec_tls::session`]). An unknown ticket answers with
//! a context fault and the client falls back to the full handshake.

use std::collections::HashMap;

use gridsec_bignum::prime::EntropySource;
use gridsec_gssapi::context::{AcceptorContext, EstablishedContext, InitiatorContext, StepResult};
use gridsec_pki::validate::ValidatedIdentity;
use gridsec_tls::channel::SecureChannel;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::session::{
    is_resume_hello, resume_client, ClientResume, ClientSession, ServerResumeAwait,
    ServerSessionCache, DEFAULT_SESSION_CAPACITY,
};
use gridsec_xml::Element;

use crate::b64;
use crate::soap::Envelope;
use crate::WsseError;

/// Action URI for token-exchange envelopes.
pub const RST_ACTION: &str = "wst:RequestSecurityToken";
/// Action URI for protected application messages.
pub const SECURED_ACTION_PREFIX: &str = "wsc:Secured/";

fn rst_envelope(kind: &str, ctx_id: Option<&str>, token: Option<&[u8]>) -> Envelope {
    let mut req = Element::new(kind)
        .with_child(Element::new("wst:TokenType").with_text("wsc:SecurityContextToken"));
    if let Some(id) = ctx_id {
        req.push_child(Element::new("wsc:Identifier").with_text(id));
    }
    if let Some(t) = token {
        req.push_child(Element::new("wst:BinaryExchange").with_text(b64::encode(t)));
    }
    Envelope::request(RST_ACTION, req)
}

fn parse_rst(env: &Envelope) -> Result<(Option<String>, Option<Vec<u8>>), WsseError> {
    let req = env.payload().ok_or(WsseError::Missing("RST payload"))?;
    let ctx_id = req.find("wsc:Identifier").map(|e| e.text_content());
    let token = match req.find("wst:BinaryExchange") {
        Some(e) => Some(b64::decode(&e.text_content()).ok_or(WsseError::Base64)?),
        None => None,
    };
    Ok((ctx_id, token))
}

// ----------------------------------------------------------------------
// Initiator (client) side
// ----------------------------------------------------------------------

/// Client side of WS-SecureConversation establishment.
pub struct WsscInitiator {
    inner: InitiatorContext,
}

impl WsscInitiator {
    /// Start establishment; returns the state machine and the first RST
    /// envelope to send.
    pub fn begin<E: EntropySource>(config: TlsConfig, rng: &mut E) -> (Self, Envelope) {
        let (inner, token) = InitiatorContext::new(config, rng);
        (
            WsscInitiator { inner },
            rst_envelope("wst:RequestSecurityToken", None, Some(&token)),
        )
    }

    /// Process the server's RSTR; returns the final RST envelope (which
    /// must be delivered) and the established session.
    pub fn finish(mut self, rstr: &Envelope) -> Result<(Envelope, WsscSession), WsseError> {
        let (ctx_id, token) = parse_rst(rstr)?;
        let ctx_id = ctx_id.ok_or(WsseError::Context("RSTR missing context id"))?;
        let token = token.ok_or(WsseError::Context("RSTR missing token"))?;
        match self
            .inner
            .step(&token)
            .map_err(|_| WsseError::Context("handshake failed"))?
        {
            StepResult::Established {
                token: Some(finished),
                context,
            } => Ok((
                rst_envelope("wst:RequestSecurityToken", Some(&ctx_id), Some(&finished)),
                WsscSession {
                    ctx_id,
                    context: *context,
                },
            )),
            _ => Err(WsseError::Context("unexpected handshake state")),
        }
    }
}

/// Client side of the abbreviated resumption exchange: the same
/// RST/RSTR envelope shapes as [`WsscInitiator`], but the embedded
/// tokens skip certificate validation, RSA, and Diffie–Hellman.
pub struct WsscResumeInitiator {
    inner: ClientResume,
}

impl WsscResumeInitiator {
    /// Start a resumption from a cached session; returns the state
    /// machine and the first RST envelope.
    pub fn begin<E: EntropySource>(
        session: ClientSession,
        now: u64,
        lifetime: u64,
        rng: &mut E,
    ) -> (Self, Envelope) {
        let (inner, token) = resume_client(session, now, lifetime, rng);
        (
            WsscResumeInitiator { inner },
            rst_envelope("wst:RequestSecurityToken", None, Some(&token)),
        )
    }

    /// Process the server's RSTR; returns the final RST envelope (which
    /// must be delivered) and the resumed session.
    pub fn finish(self, rstr: &Envelope) -> Result<(Envelope, WsscSession), WsseError> {
        let (ctx_id, token) = parse_rst(rstr)?;
        let ctx_id = ctx_id.ok_or(WsseError::Context("RSTR missing context id"))?;
        let token = token.ok_or(WsseError::Context("RSTR missing token"))?;
        let (finished, channel) = self
            .inner
            .step(&token)
            .map_err(|_| WsseError::Context("resumption failed"))?;
        Ok((
            rst_envelope("wst:RequestSecurityToken", Some(&ctx_id), Some(&finished)),
            WsscSession {
                ctx_id,
                context: EstablishedContext::from_channel(channel),
            },
        ))
    }
}

/// An established client-side conversation.
pub struct WsscSession {
    /// The context identifier shared with the server.
    pub ctx_id: String,
    context: EstablishedContext,
}

impl WsscSession {
    /// The authenticated peer.
    pub fn peer(&self) -> &ValidatedIdentity {
        self.context.peer()
    }

    /// The underlying channel — read-only, for harvesting resumption
    /// state into a [`gridsec_tls::session::ClientSessionCache`].
    pub fn channel(&self) -> &SecureChannel {
        self.context.channel()
    }

    /// Protect an application envelope under this context.
    pub fn protect(&mut self, env: &Envelope) -> Envelope {
        protect_with(&mut self.context, &self.ctx_id, env)
    }

    /// Open a protected reply from the server.
    pub fn unprotect(&mut self, env: &Envelope) -> Result<Envelope, WsseError> {
        let (id, inner) = unprotect_with(&mut self.context, env)?;
        if id != self.ctx_id {
            return Err(WsseError::Context("context id mismatch"));
        }
        Ok(inner)
    }
}

// ----------------------------------------------------------------------
// Responder (server) side
// ----------------------------------------------------------------------

enum ServerCtx {
    Pending(Box<AcceptorContext>),
    PendingResume(Box<ServerResumeAwait>),
    Ready(Box<EstablishedContext>),
}

/// Server side: tracks many concurrent conversations keyed by context id.
pub struct WsscResponder {
    config: TlsConfig,
    next_id: u64,
    contexts: HashMap<String, ServerCtx>,
    sessions: ServerSessionCache,
}

impl WsscResponder {
    /// Create a responder with the service's TLS configuration.
    pub fn new(config: TlsConfig) -> Self {
        let sessions = ServerSessionCache::new(DEFAULT_SESSION_CAPACITY, config.session_lifetime);
        WsscResponder {
            config,
            next_id: 1,
            contexts: HashMap::new(),
            sessions,
        }
    }

    /// The responder's session cache (hit/miss counters for tests and
    /// metrics).
    pub fn sessions(&self) -> &ServerSessionCache {
        &self.sessions
    }

    /// Handle one RST envelope, returning the RSTR to send back.
    pub fn handle_rst<E: EntropySource>(
        &mut self,
        env: &Envelope,
        rng: &mut E,
    ) -> Result<Envelope, WsseError> {
        let (ctx_id, token) = parse_rst(env)?;
        let token = token.ok_or(WsseError::Context("RST missing token"))?;
        match ctx_id {
            None if is_resume_hello(&token) => {
                // Abbreviated handshake: ticket lookup instead of
                // certificate validation. A miss faults back to the
                // client, which falls back to the full handshake.
                let (out, await_finished) = self
                    .sessions
                    .accept(&token, self.config.now, rng)
                    .map_err(|_| WsseError::Context("no resumable session"))?;
                let id = format!("uuid:ctx-{}", self.next_id);
                self.next_id += 1;
                self.contexts.insert(
                    id.clone(),
                    ServerCtx::PendingResume(Box::new(await_finished)),
                );
                Ok(rst_envelope(
                    "wst:RequestSecurityTokenResponse",
                    Some(&id),
                    Some(&out),
                ))
            }
            None => {
                // New conversation.
                let id = format!("uuid:ctx-{}", self.next_id);
                self.next_id += 1;
                let mut acceptor = Box::new(AcceptorContext::new(self.config.clone()));
                match acceptor
                    .step(rng, &token)
                    .map_err(|_| WsseError::Context("handshake failed"))?
                {
                    StepResult::ContinueWith(out) => {
                        self.contexts
                            .insert(id.clone(), ServerCtx::Pending(acceptor));
                        Ok(rst_envelope(
                            "wst:RequestSecurityTokenResponse",
                            Some(&id),
                            Some(&out),
                        ))
                    }
                    StepResult::Established { .. } => {
                        Err(WsseError::Context("established too early"))
                    }
                }
            }
            Some(id) => {
                // Continue an existing conversation.
                let entry = self
                    .contexts
                    .remove(&id)
                    .ok_or(WsseError::Context("unknown context id"))?;
                let mut acceptor = match entry {
                    ServerCtx::Pending(a) => a,
                    ServerCtx::PendingResume(wait) => {
                        let channel = wait
                            .step(&token)
                            .map_err(|_| WsseError::Context("resumption failed"))?;
                        // Rotate: the resumed context mints a fresh ticket.
                        self.sessions.store(&channel);
                        self.contexts.insert(
                            id.clone(),
                            ServerCtx::Ready(Box::new(EstablishedContext::from_channel(channel))),
                        );
                        return Ok(rst_envelope(
                            "wst:RequestSecurityTokenResponse",
                            Some(&id),
                            None,
                        ));
                    }
                    ServerCtx::Ready(_) => {
                        return Err(WsseError::Context("context already established"))
                    }
                };
                match acceptor
                    .step(rng, &token)
                    .map_err(|_| WsseError::Context("handshake failed"))?
                {
                    StepResult::Established { context, .. } => {
                        self.sessions.store(context.channel());
                        self.contexts.insert(id.clone(), ServerCtx::Ready(context));
                        Ok(rst_envelope(
                            "wst:RequestSecurityTokenResponse",
                            Some(&id),
                            None,
                        ))
                    }
                    StepResult::ContinueWith(out) => {
                        self.contexts
                            .insert(id.clone(), ServerCtx::Pending(acceptor));
                        Ok(rst_envelope(
                            "wst:RequestSecurityTokenResponse",
                            Some(&id),
                            Some(&out),
                        ))
                    }
                }
            }
        }
    }

    /// Open a protected application envelope; returns the context id and
    /// the inner envelope.
    pub fn unprotect(&mut self, env: &Envelope) -> Result<(String, Envelope), WsseError> {
        let id = secured_ctx_id(env)?;
        match self.contexts.get_mut(&id) {
            Some(ServerCtx::Ready(ctx)) => {
                let (inner_id, inner) = unprotect_with(ctx, env)?;
                debug_assert_eq!(inner_id, id);
                Ok((id, inner))
            }
            _ => Err(WsseError::Context("no established context for id")),
        }
    }

    /// Protect a reply under an established context.
    pub fn protect(&mut self, ctx_id: &str, env: &Envelope) -> Result<Envelope, WsseError> {
        match self.contexts.get_mut(ctx_id) {
            Some(ServerCtx::Ready(ctx)) => Ok(protect_with(ctx, ctx_id, env)),
            _ => Err(WsseError::Context("no established context for id")),
        }
    }

    /// The authenticated peer of an established context.
    pub fn peer(&self, ctx_id: &str) -> Option<&ValidatedIdentity> {
        match self.contexts.get(ctx_id) {
            Some(ServerCtx::Ready(ctx)) => Some(ctx.peer()),
            _ => None,
        }
    }

    /// Update the time used to validate chains in *new* handshakes
    /// (already-established contexts are unaffected).
    pub fn set_time(&mut self, now: u64) {
        self.config.now = now;
    }

    /// Number of live contexts (pending + established).
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Direct access to an established context (used by the delegation
    /// protocol, which runs GSI delegation over the conversation).
    pub fn context_mut(&mut self, ctx_id: &str) -> Option<&mut EstablishedContext> {
        match self.contexts.get_mut(ctx_id) {
            Some(ServerCtx::Ready(ctx)) => Some(ctx),
            _ => None,
        }
    }
}

// ----------------------------------------------------------------------
// Message protection plumbing
// ----------------------------------------------------------------------

fn protect_with(ctx: &mut EstablishedContext, ctx_id: &str, env: &Envelope) -> Envelope {
    let mut body_xml = String::new();
    for el in &env.body {
        body_xml.push_str(&el.to_xml());
    }
    let sealed = ctx.wrap(body_xml.as_bytes());
    let mut out = Envelope::new();
    out.action = Some(format!(
        "{SECURED_ACTION_PREFIX}{}",
        env.action.as_deref().unwrap_or("")
    ));
    out.security_header_mut().push_child(
        Element::new("wsc:SecurityContextToken")
            .with_child(Element::new("wsc:Identifier").with_text(ctx_id)),
    );
    out.body = vec![Element::new("wsc:EncryptedMessage").with_text(b64::encode(&sealed))];
    out
}

fn secured_ctx_id(env: &Envelope) -> Result<String, WsseError> {
    env.security_header()
        .and_then(|s| s.find("wsc:SecurityContextToken"))
        .and_then(|t| t.find("wsc:Identifier"))
        .map(|i| i.text_content())
        .ok_or(WsseError::Missing("wsc:SecurityContextToken"))
}

fn unprotect_with(
    ctx: &mut EstablishedContext,
    env: &Envelope,
) -> Result<(String, Envelope), WsseError> {
    let id = secured_ctx_id(env)?;
    let sealed_b64 = env
        .payload()
        .filter(|p| p.name == "wsc:EncryptedMessage")
        .ok_or(WsseError::Missing("wsc:EncryptedMessage"))?
        .text_content();
    let sealed = b64::decode(&sealed_b64).ok_or(WsseError::Base64)?;
    let plain = ctx.unwrap(&sealed).map_err(|_| WsseError::Decrypt)?;
    let text = String::from_utf8(plain).map_err(|_| WsseError::Decrypt)?;
    let wrapper = Element::parse(&format!("<w>{text}</w>"))?;
    let mut inner = Envelope::new();
    inner.action = env
        .action
        .as_deref()
        .and_then(|a| a.strip_prefix(SECURED_ACTION_PREFIX))
        .filter(|a| !a.is_empty())
        .map(|a| a.to_string());
    inner.body = wrapper.child_elements().cloned().collect();
    Ok((id, inner))
}

/// Drive a full establishment between a client and a responder in one
/// process (helper for tests, examples, and benches). Returns the client
/// session; the responder retains the server half.
pub fn establish<E: EntropySource>(
    client_config: TlsConfig,
    responder: &mut WsscResponder,
    rng: &mut E,
) -> Result<WsscSession, WsseError> {
    let (initiator, rst1) = WsscInitiator::begin(client_config, rng);
    let rstr1 = responder.handle_rst(&Envelope::parse(&rst1.to_xml())?, rng)?;
    let (rst2, session) = initiator.finish(&Envelope::parse(&rstr1.to_xml())?)?;
    let _ack = responder.handle_rst(&Envelope::parse(&rst2.to_xml())?, rng)?;
    Ok(session)
}

/// Drive an abbreviated resumption exchange against a responder in one
/// process. The round-trip count matches [`establish`] but neither side
/// touches certificates, RSA, or Diffie–Hellman.
pub fn resume<E: EntropySource>(
    session: ClientSession,
    now: u64,
    lifetime: u64,
    responder: &mut WsscResponder,
    rng: &mut E,
) -> Result<WsscSession, WsseError> {
    let (initiator, rst1) = WsscResumeInitiator::begin(session, now, lifetime, rng);
    let rstr1 = responder.handle_rst(&Envelope::parse(&rst1.to_xml())?, rng)?;
    let (rst2, session) = initiator.finish(&Envelope::parse(&rstr1.to_xml())?)?;
    let _ack = responder.handle_rst(&Envelope::parse(&rst2.to_xml())?, rng)?;
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        alice: Credential,
        service: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"wssc tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let service = ca.issue_identity(&mut rng, dn("/O=G/CN=MMJFS"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            alice,
            service,
        }
    }

    fn cfg(w: &World, cred: &Credential) -> TlsConfig {
        TlsConfig::new(cred.clone(), w.trust.clone(), 100)
    }

    #[test]
    fn establish_and_exchange() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let mut session = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();

        assert_eq!(session.peer().base_identity, dn("/O=G/CN=MMJFS"));
        assert_eq!(
            responder.peer(&session.ctx_id).unwrap().base_identity,
            dn("/O=G/CN=Alice")
        );

        // Client → server protected request.
        let req = Envelope::request(
            "createService",
            Element::new("gram:Job").with_text("/bin/sim"),
        );
        let protected = session.protect(&req);
        assert!(protected.is_secured());
        assert!(!protected.to_xml().contains("/bin/sim"));
        let wire = Envelope::parse(&protected.to_xml()).unwrap();
        let (ctx_id, inner) = responder.unprotect(&wire).unwrap();
        assert_eq!(inner.action.as_deref(), Some("createService"));
        assert_eq!(inner.payload().unwrap().text_content(), "/bin/sim");

        // Server → client protected reply.
        let reply = Envelope::request("createServiceResponse", Element::new("gram:Handle"));
        let protected_reply = responder.protect(&ctx_id, &reply).unwrap();
        let opened = session
            .unprotect(&Envelope::parse(&protected_reply.to_xml()).unwrap())
            .unwrap();
        assert_eq!(opened.payload().unwrap().name, "gram:Handle");
    }

    #[test]
    fn resumed_conversation_skips_asymmetric_exchange() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let first = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        assert_eq!(responder.sessions().len(), 1);

        let cached = ClientSession::from_channel(first.channel()).unwrap();
        let mut resumed = resume(cached, 100, 3_600, &mut responder, &mut w.rng).unwrap();
        assert_eq!(responder.sessions().hits(), 1);
        assert_eq!(resumed.peer().base_identity, dn("/O=G/CN=MMJFS"));
        assert_eq!(
            responder.peer(&resumed.ctx_id).unwrap().base_identity,
            dn("/O=G/CN=Alice")
        );

        // The resumed context protects traffic like a full one.
        let req = Envelope::request("query", Element::new("gram:Status"));
        let protected = resumed.protect(&req);
        let (ctx_id, inner) = responder
            .unprotect(&Envelope::parse(&protected.to_xml()).unwrap())
            .unwrap();
        assert_eq!(ctx_id, resumed.ctx_id);
        assert_eq!(inner.payload().unwrap().name, "gram:Status");
    }

    #[test]
    fn resumption_rotates_ticket_for_next_hop() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let first = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        let cached = ClientSession::from_channel(first.channel()).unwrap();
        let old_ticket = *cached.ticket();

        let resumed = resume(cached, 100, 3_600, &mut responder, &mut w.rng).unwrap();
        let rotated = ClientSession::from_channel(resumed.channel()).unwrap();
        assert_ne!(*rotated.ticket(), old_ticket);

        // The rotated ticket resumes again; the original is spent only in
        // the sense that a fresh responder never saw it.
        let again = resume(rotated, 200, 3_600, &mut responder, &mut w.rng).unwrap();
        assert_eq!(again.peer().base_identity, dn("/O=G/CN=MMJFS"));
        assert_eq!(responder.sessions().hits(), 2);
    }

    #[test]
    fn unknown_ticket_faults_and_full_handshake_recovers() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let first = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        let cached = ClientSession::from_channel(first.channel()).unwrap();

        // A freshly restarted responder has an empty session cache.
        let mut reborn = WsscResponder::new(cfg(&w, &w.service));
        match resume(cached, 100, 3_600, &mut reborn, &mut w.rng) {
            Err(WsseError::Context(_)) => {}
            Err(other) => panic!("expected context fault, got {other:?}"),
            Ok(_) => panic!("resume against an empty cache must fault"),
        }
        assert_eq!(reborn.sessions().misses(), 1);

        // Fallback: the client re-runs the full exchange successfully.
        let recovered = establish(cfg(&w, &w.alice), &mut reborn, &mut w.rng).unwrap();
        assert_eq!(recovered.peer().base_identity, dn("/O=G/CN=MMJFS"));
    }

    #[test]
    fn multiple_concurrent_contexts() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let mut s1 = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        let mut s2 = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        assert_ne!(s1.ctx_id, s2.ctx_id);
        assert_eq!(responder.context_count(), 2);

        let p1 = s1.protect(&Envelope::request("a", Element::new("x")));
        let p2 = s2.protect(&Envelope::request("b", Element::new("y")));
        // Each opens only under its own context.
        assert!(responder.unprotect(&p2).is_ok());
        assert!(responder.unprotect(&p1).is_ok());
    }

    #[test]
    fn unknown_context_rejected() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let mut session = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        let mut protected = session.protect(&Envelope::request("a", Element::new("x")));
        // Rewrite the context id inside the Security header.
        protected.headers[0] = Element::new(crate::soap::SECURITY_HEADER).with_child(
            Element::new("wsc:SecurityContextToken")
                .with_child(Element::new("wsc:Identifier").with_text("uuid:ctx-999")),
        );
        assert!(matches!(
            responder.unprotect(&protected).unwrap_err(),
            WsseError::Context(_)
        ));
    }

    #[test]
    fn tampered_protected_body_rejected() {
        let mut w = world();
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        let mut session = establish(cfg(&w, &w.alice), &mut responder, &mut w.rng).unwrap();
        let protected = session.protect(&Envelope::request("a", Element::new("x")));
        let mut xml = protected.to_xml();
        let pos = xml.find("EncryptedMessage>").unwrap() + 20;
        let replacement = if xml.as_bytes()[pos] == b'A' {
            "B"
        } else {
            "A"
        };
        xml.replace_range(pos..pos + 1, replacement);
        let parsed = Envelope::parse(&xml).unwrap();
        let err = responder.unprotect(&parsed).unwrap_err();
        assert!(matches!(err, WsseError::Decrypt | WsseError::Base64));
    }

    #[test]
    fn untrusted_client_rejected_at_rst() {
        let mut w = world();
        let rogue =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
        let mallory = rogue.issue_identity(&mut w.rng, dn("/O=Evil/CN=M"), 512, 0, 100_000);
        let mut responder = WsscResponder::new(cfg(&w, &w.service));
        match establish(cfg(&w, &mallory), &mut responder, &mut w.rng) {
            Err(WsseError::Context(_)) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
            Ok(_) => panic!("rogue client must not establish a context"),
        }
    }

    #[test]
    fn rst_envelopes_are_well_formed_soap() {
        let mut w = world();
        let (_initiator, rst) = WsscInitiator::begin(cfg(&w, &w.alice), &mut w.rng);
        let xml = rst.to_xml();
        assert!(xml.contains("RequestSecurityToken"));
        assert!(xml.contains("BinaryExchange"));
        let parsed = Envelope::parse(&xml).unwrap();
        assert_eq!(parsed.action.as_deref(), Some(RST_ACTION));
    }

    #[test]
    fn gss_token_inside_rst_matches_gt2_token_bytes() {
        // Experiment C1's core assertion: the token GT3 sends inside the
        // SOAP envelope is byte-identical to the GT2/TLS token stream.
        let mut w = world();
        // Deterministic RNG → identical tokens from identical state.
        let mut rng1 = ChaChaRng::from_seed_bytes(b"token compare");
        let mut rng2 = ChaChaRng::from_seed_bytes(b"token compare");
        let (_init1, gt2_token) =
            gridsec_gssapi::context::InitiatorContext::new(cfg(&w, &w.alice), &mut rng1);
        let (_init2, rst) = WsscInitiator::begin(cfg(&w, &w.alice), &mut rng2);
        let embedded = rst
            .payload()
            .unwrap()
            .find("wst:BinaryExchange")
            .unwrap()
            .text_content();
        assert_eq!(b64::decode(&embedded).unwrap(), gt2_token);
        let _ = &mut w;
    }
}
