//! SOAP envelopes and the WS-Security header.
//!
//! GT3 sends every message — including security-protocol messages — as a
//! SOAP envelope, which is what lets "entities in the network recognize
//! whether and how an interaction is secured" (paper §4.4).

use gridsec_xml::Element;

use crate::WsseError;

/// SOAP namespace URI (1.1, as in 2003-era GT3).
pub const SOAP_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// WS-Security header element name.
pub const SECURITY_HEADER: &str = "wsse:Security";

/// A SOAP envelope: action, headers, body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// Optional action routing hint (e.g. `"createService"`).
    pub action: Option<String>,
    /// Header child elements (`wsse:Security`, addressing, ...).
    pub headers: Vec<Element>,
    /// Body child elements (the payload).
    pub body: Vec<Element>,
}

impl Envelope {
    /// Empty envelope.
    pub fn new() -> Self {
        Envelope {
            action: None,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Envelope with one payload element and an action.
    pub fn request(action: &str, payload: Element) -> Self {
        Envelope {
            action: Some(action.to_string()),
            headers: Vec::new(),
            body: vec![payload],
        }
    }

    /// The `wsse:Security` header, if present.
    pub fn security_header(&self) -> Option<&Element> {
        self.headers.iter().find(|h| h.name == SECURITY_HEADER)
    }

    /// The `wsse:Security` header, created on demand.
    pub fn security_header_mut(&mut self) -> &mut Element {
        if !self.headers.iter().any(|h| h.name == SECURITY_HEADER) {
            self.headers.push(Element::new(SECURITY_HEADER));
        }
        self.headers
            .iter_mut()
            .find(|h| h.name == SECURITY_HEADER)
            .unwrap()
    }

    /// Whether this envelope carries any security header — the property a
    /// firewall can check per §4.4 ("a firewall can recognize whether a
    /// connection is authenticated").
    pub fn is_secured(&self) -> bool {
        self.security_header()
            .is_some_and(|h| !h.children.is_empty())
    }

    /// Render the `<soap:Envelope>` element.
    pub fn to_element(&self) -> Element {
        let mut header = Element::new("soap:Header");
        if let Some(action) = &self.action {
            header.push_child(Element::new("wsa:Action").with_text(action.clone()));
        }
        for h in &self.headers {
            header.push_child(h.clone());
        }
        let mut body = Element::new("soap:Body").with_attr("wsu:Id", "Body");
        for b in &self.body {
            body.push_child(b.clone());
        }
        Element::new("soap:Envelope")
            .with_attr("xmlns:soap", SOAP_NS)
            .with_child(header)
            .with_child(body)
    }

    /// Serialize to XML text.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Parse an envelope from XML text.
    pub fn parse(xml: &str) -> Result<Envelope, WsseError> {
        let root = Element::parse(xml)?;
        Self::from_element(&root)
    }

    /// Extract an envelope from a parsed element.
    pub fn from_element(root: &Element) -> Result<Envelope, WsseError> {
        if root.local_name() != "Envelope" {
            return Err(WsseError::Missing("soap:Envelope"));
        }
        let header = root.find("Header");
        let body = root.find("Body").ok_or(WsseError::Missing("soap:Body"))?;
        let mut action = None;
        let mut headers = Vec::new();
        if let Some(h) = header {
            for child in h.child_elements() {
                if child.local_name() == "Action" {
                    action = Some(child.text_content());
                } else {
                    headers.push(child.clone());
                }
            }
        }
        Ok(Envelope {
            action,
            headers,
            body: body.child_elements().cloned().collect(),
        })
    }

    /// First body element, if any.
    pub fn payload(&self) -> Option<&Element> {
        self.body.first()
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope::new()
    }
}

/// A WS-Security `Timestamp`: freshness window for a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Timestamp {
    /// Creation time.
    pub created: u64,
    /// Expiry time.
    pub expires: u64,
}

impl Timestamp {
    /// Render as a `wsu:Timestamp` element.
    pub fn to_element(&self) -> Element {
        Element::new("wsu:Timestamp")
            .with_child(Element::new("wsu:Created").with_text(self.created.to_string()))
            .with_child(Element::new("wsu:Expires").with_text(self.expires.to_string()))
    }

    /// Read from a `wsu:Timestamp` element.
    pub fn from_element(el: &Element) -> Result<Timestamp, WsseError> {
        let created = el
            .find("Created")
            .ok_or(WsseError::Missing("wsu:Created"))?
            .text_content()
            .parse()
            .map_err(|_| WsseError::Missing("numeric wsu:Created"))?;
        let expires = el
            .find("Expires")
            .ok_or(WsseError::Missing("wsu:Expires"))?
            .text_content()
            .parse()
            .map_err(|_| WsseError::Missing("numeric wsu:Expires"))?;
        Ok(Timestamp { created, expires })
    }

    /// Enforce freshness at `now`.
    pub fn check(&self, now: u64) -> Result<(), WsseError> {
        if now > self.expires {
            return Err(WsseError::Stale {
                now,
                expires: self.expires,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let env = Envelope::request(
            "createService",
            Element::new("gram:JobRequest").with_text("/bin/ls"),
        );
        let xml = env.to_xml();
        let parsed = Envelope::parse(&xml).unwrap();
        assert_eq!(parsed.action.as_deref(), Some("createService"));
        assert_eq!(parsed.payload().unwrap().name, "gram:JobRequest");
        assert_eq!(parsed.payload().unwrap().text_content(), "/bin/ls");
    }

    #[test]
    fn security_header_on_demand() {
        let mut env = Envelope::new();
        assert!(env.security_header().is_none());
        assert!(!env.is_secured());
        env.security_header_mut()
            .push_child(Element::new("wsse:BinarySecurityToken"));
        assert!(env.security_header().is_some());
        assert!(env.is_secured());
        // Idempotent: only one Security header.
        env.security_header_mut();
        assert_eq!(
            env.headers
                .iter()
                .filter(|h| h.name == SECURITY_HEADER)
                .count(),
            1
        );
    }

    #[test]
    fn security_header_survives_roundtrip() {
        let mut env = Envelope::request("op", Element::new("x"));
        env.security_header_mut()
            .push_child(Element::new("t").with_text("tok"));
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.is_secured());
        assert_eq!(
            parsed
                .security_header()
                .unwrap()
                .find("t")
                .unwrap()
                .text_content(),
            "tok"
        );
    }

    #[test]
    fn missing_body_rejected() {
        assert!(matches!(
            Envelope::parse("<soap:Envelope><soap:Header/></soap:Envelope>"),
            Err(WsseError::Missing(_))
        ));
        assert!(Envelope::parse("<NotAnEnvelope/>").is_err());
    }

    #[test]
    fn timestamp_roundtrip_and_check() {
        let ts = Timestamp {
            created: 100,
            expires: 400,
        };
        let parsed = Timestamp::from_element(&ts.to_element()).unwrap();
        assert_eq!(parsed, ts);
        assert!(parsed.check(300).is_ok());
        assert!(matches!(parsed.check(500), Err(WsseError::Stale { .. })));
    }

    #[test]
    fn empty_body_allowed() {
        let env = Envelope::new();
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.payload().is_none());
    }
}
