//! XML-Encryption: confidential SOAP bodies (paper §5.1, "GSI3
//! implements message protection using ... XML-Encryption").
//!
//! Simplified XML-Encryption shape: the body payload is serialized,
//! sealed under a fresh ChaCha20-Poly1305 content key, and replaced by an
//! `xenc:EncryptedData` element; the content key travels RSA-wrapped in
//! an `xenc:EncryptedKey` addressed to the recipient's certificate.

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::aead;
use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use gridsec_xml::Element;

use crate::b64;
use crate::soap::Envelope;
use crate::WsseError;

/// Encrypt an envelope's body for `recipient`. Headers (including any
/// signature) are left intact — sign-then-encrypt composition works.
pub fn encrypt_body<E: EntropySource>(
    env: &Envelope,
    recipient: &RsaPublicKey,
    rng: &mut E,
) -> Result<Envelope, WsseError> {
    // Serialize the plaintext body children.
    let mut plain = String::new();
    for el in &env.body {
        plain.push_str(&el.to_xml());
    }

    // Fresh content key + nonce.
    let mut cek = [0u8; 32];
    rng.fill_bytes(&mut cek);
    let mut nonce = [0u8; 12];
    rng.fill_bytes(&mut nonce);
    let sealed = aead::seal(&cek, &nonce, b"xmlenc-body", plain.as_bytes());

    let wrapped_key = recipient
        .encrypt_pkcs1(rng, &cek)
        .map_err(|_| WsseError::Decrypt)?;

    let encrypted = Element::new("xenc:EncryptedData")
        .with_attr("Type", "urn:gridsec:content")
        .with_child(
            Element::new("xenc:EncryptionMethod")
                .with_attr("Algorithm", "urn:gridsec:chacha20-poly1305"),
        )
        .with_child(
            Element::new("ds:KeyInfo").with_child(
                Element::new("xenc:EncryptedKey")
                    .with_attr("Algorithm", "urn:gridsec:rsa-pkcs1")
                    .with_attr("RecipientKeyFingerprint", hex32(&recipient.fingerprint()))
                    .with_text(b64::encode(&wrapped_key)),
            ),
        )
        .with_child(Element::new("xenc:IV").with_text(b64::encode(&nonce)))
        .with_child(Element::new("xenc:CipherValue").with_text(b64::encode(&sealed)));

    let mut out = env.clone();
    out.body = vec![encrypted];
    Ok(out)
}

/// Decrypt an envelope body encrypted with [`encrypt_body`], restoring
/// the original payload elements.
pub fn decrypt_body(env: &Envelope, key: &RsaKeyPair) -> Result<Envelope, WsseError> {
    let ed = env
        .payload()
        .filter(|p| p.local_name() == "EncryptedData")
        .ok_or(WsseError::Missing("xenc:EncryptedData"))?;
    let wrapped = ed
        .path(&["ds:KeyInfo", "xenc:EncryptedKey"])
        .ok_or(WsseError::Missing("xenc:EncryptedKey"))?
        .text_content();
    let iv = ed
        .find("xenc:IV")
        .ok_or(WsseError::Missing("xenc:IV"))?
        .text_content();
    let cipher = ed
        .find("xenc:CipherValue")
        .ok_or(WsseError::Missing("xenc:CipherValue"))?
        .text_content();

    let cek_bytes = key
        .decrypt_pkcs1(&b64::decode(&wrapped).ok_or(WsseError::Base64)?)
        .map_err(|_| WsseError::Decrypt)?;
    let cek: [u8; 32] = cek_bytes.try_into().map_err(|_| WsseError::Decrypt)?;
    let nonce_bytes = b64::decode(&iv).ok_or(WsseError::Base64)?;
    let nonce: [u8; 12] = nonce_bytes.try_into().map_err(|_| WsseError::Decrypt)?;
    let sealed = b64::decode(&cipher).ok_or(WsseError::Base64)?;

    let plain =
        aead::open(&cek, &nonce, b"xmlenc-body", &sealed).map_err(|_| WsseError::Decrypt)?;
    let text = String::from_utf8(plain).map_err(|_| WsseError::Decrypt)?;

    // The plaintext is a concatenation of elements; wrap to parse.
    let wrapper = Element::parse(&format!("<w>{text}</w>"))?;
    let mut out = env.clone();
    out.body = wrapper.child_elements().cloned().collect();
    Ok(out)
}

fn hex32(bytes: &[u8; 32]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soap::Envelope;
    use gridsec_crypto::rng::ChaChaRng;

    fn keypair(seed: &[u8]) -> RsaKeyPair {
        let mut rng = ChaChaRng::from_seed_bytes(seed);
        RsaKeyPair::generate(&mut rng, 512)
    }

    fn payload_env() -> Envelope {
        Envelope::request(
            "submit",
            Element::new("job:Spec")
                .with_child(Element::new("job:Exe").with_text("/bin/x"))
                .with_child(Element::new("job:Args").with_text("a < b & c")),
        )
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = keypair(b"recipient");
        let mut rng = ChaChaRng::from_seed_bytes(b"enc rng");
        let env = payload_env();
        let enc = encrypt_body(&env, key.public(), &mut rng).unwrap();
        // Ciphertext hides the payload.
        let wire = enc.to_xml();
        assert!(!wire.contains("/bin/x"));
        assert!(wire.contains("EncryptedData"));
        // Wire roundtrip then decrypt.
        let parsed = Envelope::parse(&wire).unwrap();
        let dec = decrypt_body(&parsed, &key).unwrap();
        assert_eq!(dec.body, env.body);
        assert_eq!(
            dec.payload().unwrap().find("Args").unwrap().text_content(),
            "a < b & c"
        );
    }

    #[test]
    fn wrong_recipient_cannot_decrypt() {
        let key = keypair(b"recipient");
        let other = keypair(b"other");
        let mut rng = ChaChaRng::from_seed_bytes(b"enc rng");
        let enc = encrypt_body(&payload_env(), key.public(), &mut rng).unwrap();
        assert!(decrypt_body(&enc, &other).is_err());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = keypair(b"recipient");
        let mut rng = ChaChaRng::from_seed_bytes(b"enc rng");
        let enc = encrypt_body(&payload_env(), key.public(), &mut rng).unwrap();
        let mut xml = enc.to_xml();
        // Flip a character inside the CipherValue text.
        let pos = xml.find("CipherValue>").unwrap() + 20;
        let replacement = if xml.as_bytes()[pos] == b'A' {
            "B"
        } else {
            "A"
        };
        xml.replace_range(pos..pos + 1, replacement);
        let parsed = Envelope::parse(&xml).unwrap();
        assert!(decrypt_body(&parsed, &key).is_err());
    }

    #[test]
    fn plaintext_envelope_rejected() {
        let key = keypair(b"recipient");
        assert!(matches!(
            decrypt_body(&payload_env(), &key).unwrap_err(),
            WsseError::Missing(_)
        ));
    }

    #[test]
    fn headers_survive_encryption() {
        let key = keypair(b"recipient");
        let mut rng = ChaChaRng::from_seed_bytes(b"enc rng");
        let mut env = payload_env();
        env.security_header_mut()
            .push_child(Element::new("marker").with_text("keepme"));
        let enc = encrypt_body(&env, key.public(), &mut rng).unwrap();
        assert!(enc.security_header().unwrap().find("marker").is_some());
        let dec = decrypt_body(&enc, &key).unwrap();
        assert!(dec.security_header().unwrap().find("marker").is_some());
    }

    #[test]
    fn fresh_cek_per_message() {
        let key = keypair(b"recipient");
        let mut rng = ChaChaRng::from_seed_bytes(b"enc rng");
        let a = encrypt_body(&payload_env(), key.public(), &mut rng).unwrap();
        let b = encrypt_body(&payload_env(), key.public(), &mut rng).unwrap();
        assert_ne!(a.to_xml(), b.to_xml());
    }
}
