//! WS-Routing: application-level message paths (the paper's §6 future
//! work — "we are interested in exploiting WS-Routing to improve
//! firewall compatibility").
//!
//! The idea: because GT3 security lives in the *message* (signed or
//! context-protected envelopes), a message can traverse intermediaries —
//! including firewall-straddling routers — without terminating security
//! at each hop. A `wsr:path` header names the remaining forward hops;
//! each intermediary pops the next hop and forwards the envelope intact.
//! Combined with §4.4's observable security headers, a perimeter can
//! route *and* filter without holding any keys.

use gridsec_xml::Element;

use crate::soap::Envelope;
use crate::WsseError;

/// Header element name.
pub const PATH_HEADER: &str = "wsr:path";

/// A WS-Routing path: the remaining forward hops and the final endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingPath {
    /// Intermediaries still to traverse, in order.
    pub via: Vec<String>,
    /// The ultimate destination.
    pub to: String,
}

impl RoutingPath {
    /// A direct path.
    pub fn direct(to: &str) -> Self {
        RoutingPath {
            via: Vec::new(),
            to: to.to_string(),
        }
    }

    /// A path through intermediaries.
    pub fn through(via: &[&str], to: &str) -> Self {
        RoutingPath {
            via: via.iter().map(|s| s.to_string()).collect(),
            to: to.to_string(),
        }
    }

    fn to_element(&self) -> Element {
        let mut el =
            Element::new(PATH_HEADER).with_child(Element::new("wsr:to").with_text(self.to.clone()));
        let mut fwd = Element::new("wsr:fwd");
        for v in &self.via {
            fwd.push_child(Element::new("wsr:via").with_text(v.clone()));
        }
        el.push_child(fwd);
        el
    }

    fn from_element(el: &Element) -> Result<RoutingPath, WsseError> {
        let to = el
            .find("wsr:to")
            .ok_or(WsseError::Missing("wsr:to"))?
            .text_content();
        let via = el
            .find("wsr:fwd")
            .map(|f| f.find_all("wsr:via").map(|v| v.text_content()).collect())
            .unwrap_or_default();
        Ok(RoutingPath { via, to })
    }
}

/// Attach (or replace) the routing path on an envelope.
pub fn set_path(env: &mut Envelope, path: &RoutingPath) {
    env.headers.retain(|h| h.name != PATH_HEADER);
    env.headers.push(path.to_element());
}

/// Read the routing path, if any.
pub fn get_path(env: &Envelope) -> Result<Option<RoutingPath>, WsseError> {
    env.headers
        .iter()
        .find(|h| h.name == PATH_HEADER)
        .map(RoutingPath::from_element)
        .transpose()
}

/// Intermediary step: pop the next hop from the envelope's path.
///
/// Returns `Some(next_endpoint)` — the endpoint this intermediary should
/// forward to (an intermediate via, or the final `to`) — and rewrites the
/// header. Returns `None` if the envelope has no path header (the
/// message is already at its destination).
pub fn advance(env: &mut Envelope) -> Result<Option<String>, WsseError> {
    let Some(mut path) = get_path(env)? else {
        return Ok(None);
    };
    if path.via.is_empty() {
        // Final hop: deliver to `to` and strip the header.
        env.headers.retain(|h| h.name != PATH_HEADER);
        Ok(Some(path.to))
    } else {
        let next = path.via.remove(0);
        set_path(env, &path);
        Ok(Some(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_roundtrip() {
        let mut env = Envelope::request("op", Element::new("x"));
        let path = RoutingPath::through(&["edge", "dmz"], "service-host");
        set_path(&mut env, &path);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(get_path(&parsed).unwrap().unwrap(), path);
    }

    #[test]
    fn advance_walks_the_path() {
        let mut env = Envelope::request("op", Element::new("x"));
        set_path(&mut env, &RoutingPath::through(&["edge", "dmz"], "svc"));
        assert_eq!(advance(&mut env).unwrap(), Some("edge".to_string()));
        assert_eq!(advance(&mut env).unwrap(), Some("dmz".to_string()));
        assert_eq!(advance(&mut env).unwrap(), Some("svc".to_string()));
        // Header stripped at the end; further advances are None.
        assert_eq!(advance(&mut env).unwrap(), None);
        assert!(get_path(&env).unwrap().is_none());
    }

    #[test]
    fn direct_path_delivers_immediately() {
        let mut env = Envelope::request("op", Element::new("x"));
        set_path(&mut env, &RoutingPath::direct("svc"));
        assert_eq!(advance(&mut env).unwrap(), Some("svc".to_string()));
        assert_eq!(advance(&mut env).unwrap(), None);
    }

    #[test]
    fn set_path_replaces_existing() {
        let mut env = Envelope::request("op", Element::new("x"));
        set_path(&mut env, &RoutingPath::direct("a"));
        set_path(&mut env, &RoutingPath::direct("b"));
        assert_eq!(get_path(&env).unwrap().unwrap().to, "b");
        assert_eq!(
            env.headers.iter().filter(|h| h.name == PATH_HEADER).count(),
            1
        );
    }

    #[test]
    fn malformed_path_rejected() {
        let mut env = Envelope::request("op", Element::new("x"));
        env.headers.push(Element::new(PATH_HEADER)); // missing wsr:to
        assert!(get_path(&env).is_err());
    }
}
