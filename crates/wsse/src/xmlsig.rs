//! XML-Signature over SOAP envelopes — GT3's *stateless* message security
//! (paper §5.1).
//!
//! "a message can be created and signed, allowing the recipient to verify
//! the message's origin and integrity, without establishing synchronous
//! communication with the recipient" — this module implements exactly
//! that: [`sign_envelope`] needs no prior contact with the target, and
//! [`verify_envelope`] authenticates the sender purely from the embedded
//! certificate chain. GRAM's job-initiation request (Figure 4 step 1) is
//! signed this way because the LMJFS that will consume it may not exist
//! yet.
//!
//! Structure follows XML-Signature (enveloped form, simplified): a
//! `ds:Signature` in the WS-Security header carries `ds:SignedInfo` with
//! one `ds:Reference` per covered part (`#Body` and `#Timestamp`), each
//! with a SHA-256 digest of the part's canonical XML; the RSA signature
//! is over the canonical `SignedInfo`; the sender's certificate chain
//! rides in a `wsse:BinarySecurityToken`.

use gridsec_crypto::sha256::sha256;
use gridsec_pki::cert::Certificate;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::{validate_chain_with_crls, ValidatedIdentity};
use gridsec_xml::Element;

use crate::b64;
use crate::soap::{Envelope, Timestamp};
use crate::WsseError;

/// Encode a certificate chain for a BinarySecurityToken.
pub fn encode_chain(chain: &[Certificate]) -> String {
    let mut enc = Encoder::new();
    enc.put_seq(chain, |e, c| c.encode(e));
    b64::encode(&enc.finish())
}

/// Decode a BinarySecurityToken chain.
pub fn decode_chain(text: &str) -> Result<Vec<Certificate>, WsseError> {
    let bytes = b64::decode(text).ok_or(WsseError::Base64)?;
    let mut dec = Decoder::new(&bytes);
    let chain = dec.get_seq(Certificate::decode).map_err(WsseError::Pki)?;
    dec.expect_exhausted().map_err(WsseError::Pki)?;
    Ok(chain)
}

fn digest_of(el: &Element) -> String {
    b64::encode(&sha256(el.canonical_xml().as_bytes()))
}

/// Sign an envelope with `credential`, covering the Body and a fresh
/// Timestamp (valid `[now, now + ttl]`). Returns the secured envelope.
pub fn sign_envelope(env: &Envelope, credential: &Credential, now: u64, ttl: u64) -> Envelope {
    let mut out = env.clone();

    // Timestamp element (referenced by the signature).
    let ts = Timestamp {
        created: now,
        expires: now + ttl,
    };
    let ts_el = ts.to_element().with_attr("wsu:Id", "Timestamp");

    // Body element as it will appear on the wire.
    let body_el = {
        let mut body = Element::new("soap:Body").with_attr("wsu:Id", "Body");
        for b in &out.body {
            body.push_child(b.clone());
        }
        body
    };

    // SignedInfo with one reference per part.
    let signed_info = Element::new("ds:SignedInfo")
        .with_child(
            Element::new("ds:CanonicalizationMethod")
                .with_attr("Algorithm", "urn:gridsec:c14n-lite"),
        )
        .with_child(
            Element::new("ds:SignatureMethod")
                .with_attr("Algorithm", "urn:gridsec:rsa-pkcs1-sha256"),
        )
        .with_child(reference("#Body", &digest_of(&body_el)))
        .with_child(reference("#Timestamp", &digest_of(&ts_el)));

    let signature_value = credential.sign(signed_info.canonical_xml().as_bytes());

    let signature = Element::new("ds:Signature")
        .with_child(signed_info)
        .with_child(Element::new("ds:SignatureValue").with_text(b64::encode(&signature_value)))
        .with_child(
            Element::new("ds:KeyInfo").with_child(
                Element::new("wsse:BinarySecurityToken")
                    .with_attr("ValueType", "urn:gridsec:x509-chain")
                    .with_text(encode_chain(credential.chain())),
            ),
        );

    let sec = out.security_header_mut();
    sec.push_child(ts_el);
    sec.push_child(signature);
    out
}

fn reference(uri: &str, digest: &str) -> Element {
    Element::new("ds:Reference")
        .with_attr("URI", uri)
        .with_child(Element::new("ds:DigestMethod").with_attr("Algorithm", "urn:gridsec:sha256"))
        .with_child(Element::new("ds:DigestValue").with_text(digest))
}

/// The result of verifying a signed envelope.
#[derive(Clone, Debug)]
pub struct VerifiedMessage {
    /// The authenticated sender.
    pub identity: ValidatedIdentity,
    /// The signed freshness window.
    pub timestamp: Timestamp,
}

/// Verify a stateless-signed envelope against `trust` at `now`.
pub fn verify_envelope(
    env: &Envelope,
    trust: &TrustStore,
    crls: &CrlStore,
    now: u64,
) -> Result<VerifiedMessage, WsseError> {
    let sec = env
        .security_header()
        .ok_or(WsseError::Missing("wsse:Security"))?;
    let signature = sec
        .find("ds:Signature")
        .ok_or(WsseError::Missing("ds:Signature"))?;
    let signed_info = signature
        .find("ds:SignedInfo")
        .ok_or(WsseError::Missing("ds:SignedInfo"))?;
    let sig_value_b64 = signature
        .find("ds:SignatureValue")
        .ok_or(WsseError::Missing("ds:SignatureValue"))?
        .text_content();
    let bst = signature
        .path(&["ds:KeyInfo", "wsse:BinarySecurityToken"])
        .ok_or(WsseError::Missing("wsse:BinarySecurityToken"))?;

    // Authenticate the chain first (we need the leaf key).
    let chain = decode_chain(&bst.text_content())?;
    let identity = validate_chain_with_crls(&chain, trust, crls, now)?;

    // Verify the signature over canonical SignedInfo.
    let sig_value = b64::decode(&sig_value_b64).ok_or(WsseError::Base64)?;
    if !identity
        .public_key
        .verify_pkcs1_sha256(signed_info.canonical_xml().as_bytes(), &sig_value)
    {
        return Err(WsseError::BadSignature);
    }

    // Recompute every reference digest against the envelope as received.
    let envelope_el = env.to_element();
    let mut saw_body = false;
    let mut saw_timestamp = false;
    for r in signed_info.find_all("ds:Reference") {
        let uri = r.attr("URI").ok_or(WsseError::Missing("Reference URI"))?;
        let id = uri.strip_prefix('#').ok_or(WsseError::Missing("#-URI"))?;
        let target = envelope_el
            .find_by_attr("wsu:Id", id)
            .ok_or(WsseError::Missing("referenced element"))?;
        let expect = r
            .find("ds:DigestValue")
            .ok_or(WsseError::Missing("ds:DigestValue"))?
            .text_content();
        if digest_of(target) != expect {
            return Err(WsseError::DigestMismatch);
        }
        match id {
            "Body" => saw_body = true,
            "Timestamp" => saw_timestamp = true,
            _ => {}
        }
    }
    if !saw_body || !saw_timestamp {
        return Err(WsseError::Missing(
            "signature must cover Body and Timestamp",
        ));
    }

    // Freshness.
    let ts_el = sec
        .find("wsu:Timestamp")
        .ok_or(WsseError::Missing("wsu:Timestamp"))?;
    let timestamp = Timestamp::from_element(ts_el)?;
    timestamp.check(now)?;

    Ok(VerifiedMessage {
        identity,
        timestamp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::proxy::{issue_proxy, ProxyType};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        ca: CertificateAuthority,
        trust: TrustStore,
        alice: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"xmlsig tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            ca,
            trust,
            alice,
        }
    }

    fn job_envelope() -> Envelope {
        Envelope::request(
            "createService",
            Element::new("gram:JobRequest")
                .with_child(Element::new("gram:Executable").with_text("/bin/sim"))
                .with_child(Element::new("gram:Queue").with_text("batch")),
        )
    }

    #[test]
    fn sign_verify_roundtrip() {
        let w = world();
        let signed = sign_envelope(&job_envelope(), &w.alice, 100, 300);
        assert!(signed.is_secured());
        // Wire roundtrip: serialize, reparse, verify.
        let parsed = Envelope::parse(&signed.to_xml()).unwrap();
        let verified = verify_envelope(&parsed, &w.trust, &CrlStore::new(), 150).unwrap();
        assert_eq!(verified.identity.base_identity, dn("/O=G/CN=Alice"));
        assert_eq!(verified.timestamp.expires, 400);
        // Payload intact.
        assert_eq!(
            parsed
                .payload()
                .unwrap()
                .find("Executable")
                .unwrap()
                .text_content(),
            "/bin/sim"
        );
    }

    #[test]
    fn proxy_signed_message_verifies_to_base_identity() {
        let mut w = world();
        let proxy = issue_proxy(
            &mut w.rng,
            &w.alice,
            ProxyType::Impersonation,
            512,
            50,
            10_000,
        )
        .unwrap();
        let signed = sign_envelope(&job_envelope(), &proxy, 100, 300);
        let verified = verify_envelope(
            &Envelope::parse(&signed.to_xml()).unwrap(),
            &w.trust,
            &CrlStore::new(),
            150,
        )
        .unwrap();
        assert_eq!(verified.identity.base_identity, dn("/O=G/CN=Alice"));
        assert_eq!(verified.identity.proxy_depth, 1);
    }

    #[test]
    fn tampered_body_rejected() {
        let w = world();
        let signed = sign_envelope(&job_envelope(), &w.alice, 100, 300);
        let mut parsed = Envelope::parse(&signed.to_xml()).unwrap();
        // Attacker rewrites the executable.
        parsed.body[0] = Element::new("gram:JobRequest")
            .with_child(Element::new("gram:Executable").with_text("/bin/evil"));
        assert_eq!(
            verify_envelope(&parsed, &w.trust, &CrlStore::new(), 150).unwrap_err(),
            WsseError::DigestMismatch
        );
    }

    #[test]
    fn tampered_signed_info_rejected() {
        let w = world();
        let signed = sign_envelope(&job_envelope(), &w.alice, 100, 300);
        // Any edit inside SignedInfo (here: the digest algorithm URI)
        // changes its canonical bytes → the signature must fail.
        let xml = signed
            .to_xml()
            .replace("urn:gridsec:sha256", "urn:gridsec:sha256-weakened");
        let parsed = Envelope::parse(&xml).unwrap();
        let err = verify_envelope(&parsed, &w.trust, &CrlStore::new(), 150).unwrap_err();
        assert!(matches!(
            err,
            WsseError::BadSignature | WsseError::Missing(_)
        ));
    }

    #[test]
    fn expired_message_rejected() {
        let w = world();
        let signed = sign_envelope(&job_envelope(), &w.alice, 100, 50);
        let parsed = Envelope::parse(&signed.to_xml()).unwrap();
        assert!(matches!(
            verify_envelope(&parsed, &w.trust, &CrlStore::new(), 200).unwrap_err(),
            WsseError::Stale { .. }
        ));
    }

    #[test]
    fn untrusted_signer_rejected() {
        let mut w = world();
        let rogue =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
        let mallory = rogue.issue_identity(&mut w.rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let signed = sign_envelope(&job_envelope(), &mallory, 100, 300);
        let parsed = Envelope::parse(&signed.to_xml()).unwrap();
        assert!(matches!(
            verify_envelope(&parsed, &w.trust, &CrlStore::new(), 150).unwrap_err(),
            WsseError::Pki(_)
        ));
    }

    #[test]
    fn revoked_signer_rejected() {
        let w = world();
        let serial = w.alice.certificate().tbs.serial;
        let crl = w.ca.issue_crl(vec![serial], 100, 100_000);
        let mut crls = CrlStore::new();
        assert!(crls.add(crl, w.ca.certificate()));
        let signed = sign_envelope(&job_envelope(), &w.alice, 100, 300);
        let parsed = Envelope::parse(&signed.to_xml()).unwrap();
        assert!(matches!(
            verify_envelope(&parsed, &w.trust, &crls, 150).unwrap_err(),
            WsseError::Pki(gridsec_pki::PkiError::Revoked { .. })
        ));
    }

    #[test]
    fn unsigned_envelope_rejected() {
        let w = world();
        assert!(matches!(
            verify_envelope(&job_envelope(), &w.trust, &CrlStore::new(), 100).unwrap_err(),
            WsseError::Missing(_)
        ));
    }

    #[test]
    fn signature_swap_across_messages_rejected() {
        let w = world();
        let signed_a = sign_envelope(&job_envelope(), &w.alice, 100, 300);
        let other = Envelope::request("transfer", Element::new("ftp:Get").with_text("/data"));
        let signed_b = sign_envelope(&other, &w.alice, 100, 300);
        // Graft A's security header onto B's body.
        let mut franken = signed_b.clone();
        franken.headers = signed_a.headers.clone();
        assert_eq!(
            verify_envelope(&franken, &w.trust, &CrlStore::new(), 150).unwrap_err(),
            WsseError::DigestMismatch
        );
    }

    #[test]
    fn chain_codec_roundtrip() {
        let w = world();
        let text = encode_chain(w.alice.chain());
        let chain = decode_chain(&text).unwrap();
        assert_eq!(chain.len(), w.alice.chain().len());
        assert_eq!(&chain[0], w.alice.certificate());
        assert!(decode_chain("!!!").is_err());
    }
}
