//! WS-Policy: publishing security requirements and computing policy
//! intersection (paper §4.3).
//!
//! "An application wishing to interact with the service can examine this
//! published policy and gather the needed credentials and functionality"
//! — a service publishes a [`SecurityPolicy`] (alternatives of mechanism,
//! token types, trust roots, protection level) alongside its interface;
//! a client intersects its own capabilities with the published policy to
//! select a workable [`PolicyAlternative`] *before* first contact.
//! Experiment C5 measures this negotiation against hardcoded-mechanism
//! failure rates.

use gridsec_xml::Element;

use crate::WsseError;

/// Message-protection requirement level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Protection {
    /// Integrity only (XML-Signature).
    Sign,
    /// Confidentiality only (XML-Encryption).
    Encrypt,
    /// Both.
    SignAndEncrypt,
}

impl Protection {
    fn as_str(&self) -> &'static str {
        match self {
            Protection::Sign => "sign",
            Protection::Encrypt => "encrypt",
            Protection::SignAndEncrypt => "sign-and-encrypt",
        }
    }

    fn parse(s: &str) -> Result<Self, WsseError> {
        Ok(match s {
            "sign" => Protection::Sign,
            "encrypt" => Protection::Encrypt,
            "sign-and-encrypt" => Protection::SignAndEncrypt,
            _ => return Err(WsseError::Missing("valid sp:Protection")),
        })
    }
}

/// One acceptable way to talk to a service (a `wsp:All` branch).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyAlternative {
    /// Security mechanism, e.g. `"gsi-secure-conversation"`,
    /// `"xml-signature"`, `"gt2-tls"`.
    pub mechanism: String,
    /// Acceptable credential token types, e.g. `"x509-chain"`,
    /// `"kerberos-ticket"`, `"cas-assertion"`.
    pub token_types: Vec<String>,
    /// Acceptable trust roots (CA distinguished names). Empty = any.
    pub trust_roots: Vec<String>,
    /// Required protection level.
    pub protection: Protection,
}

/// A service's published security policy: a `wsp:ExactlyOne` over
/// alternatives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SecurityPolicy {
    /// Name of the publishing service (documentation only).
    pub service: String,
    /// Acceptable alternatives in preference order.
    pub alternatives: Vec<PolicyAlternative>,
}

impl SecurityPolicy {
    /// Render as a `wsp:Policy` document (published in the service's WSDL
    /// per WS-PolicyAttachment).
    pub fn to_element(&self) -> Element {
        let mut exactly_one = Element::new("wsp:ExactlyOne");
        for alt in &self.alternatives {
            let mut all = Element::new("wsp:All")
                .with_child(Element::new("sp:Mechanism").with_text(alt.mechanism.clone()))
                .with_child(Element::new("sp:Protection").with_text(alt.protection.as_str()));
            for t in &alt.token_types {
                all.push_child(Element::new("sp:TokenType").with_text(t.clone()));
            }
            for r in &alt.trust_roots {
                all.push_child(Element::new("sp:TrustRoot").with_text(r.clone()));
            }
            exactly_one.push_child(all);
        }
        Element::new("wsp:Policy")
            .with_attr("sp:Service", self.service.clone())
            .with_child(exactly_one)
    }

    /// Parse a `wsp:Policy` document.
    pub fn from_element(el: &Element) -> Result<SecurityPolicy, WsseError> {
        if el.local_name() != "Policy" {
            return Err(WsseError::Missing("wsp:Policy"));
        }
        let service = el.attr("sp:Service").unwrap_or("").to_string();
        let exactly_one = el
            .find("wsp:ExactlyOne")
            .ok_or(WsseError::Missing("wsp:ExactlyOne"))?;
        let mut alternatives = Vec::new();
        for all in exactly_one.find_all("wsp:All") {
            let mechanism = all
                .find("sp:Mechanism")
                .ok_or(WsseError::Missing("sp:Mechanism"))?
                .text_content();
            let protection = Protection::parse(
                &all.find("sp:Protection")
                    .ok_or(WsseError::Missing("sp:Protection"))?
                    .text_content(),
            )?;
            alternatives.push(PolicyAlternative {
                mechanism,
                token_types: all
                    .find_all("sp:TokenType")
                    .map(|t| t.text_content())
                    .collect(),
                trust_roots: all
                    .find_all("sp:TrustRoot")
                    .map(|t| t.text_content())
                    .collect(),
                protection,
            });
        }
        Ok(SecurityPolicy {
            service,
            alternatives,
        })
    }

    /// XML text convenience.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Parse from XML text.
    pub fn parse(xml: &str) -> Result<SecurityPolicy, WsseError> {
        Self::from_element(&Element::parse(xml)?)
    }
}

/// Intersect a client's capabilities with a server's published policy.
///
/// Returns the first workable combination in *server* preference order:
/// mechanisms must match exactly, the token-type sets must overlap, the
/// trust-root sets must overlap (empty list = accepts any), and the
/// resulting protection level is the stronger of the two requirements.
pub fn intersect(
    client: &SecurityPolicy,
    server: &SecurityPolicy,
) -> Result<PolicyAlternative, WsseError> {
    for s in &server.alternatives {
        for c in &client.alternatives {
            if s.mechanism != c.mechanism {
                continue;
            }
            let tokens: Vec<String> = s
                .token_types
                .iter()
                .filter(|t| c.token_types.contains(t))
                .cloned()
                .collect();
            if tokens.is_empty() {
                continue;
            }
            let roots: Vec<String> = if s.trust_roots.is_empty() {
                c.trust_roots.clone()
            } else if c.trust_roots.is_empty() {
                s.trust_roots.clone()
            } else {
                let shared: Vec<String> = s
                    .trust_roots
                    .iter()
                    .filter(|r| c.trust_roots.contains(r))
                    .cloned()
                    .collect();
                if shared.is_empty() {
                    continue;
                }
                shared
            };
            return Ok(PolicyAlternative {
                mechanism: s.mechanism.clone(),
                token_types: tokens,
                trust_roots: roots,
                protection: s.protection.max(c.protection),
            });
        }
    }
    Err(WsseError::NoCommonPolicy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alt(mech: &str, tokens: &[&str], roots: &[&str], p: Protection) -> PolicyAlternative {
        PolicyAlternative {
            mechanism: mech.to_string(),
            token_types: tokens.iter().map(|s| s.to_string()).collect(),
            trust_roots: roots.iter().map(|s| s.to_string()).collect(),
            protection: p,
        }
    }

    fn gram_policy() -> SecurityPolicy {
        SecurityPolicy {
            service: "MMJFS".to_string(),
            alternatives: vec![
                alt(
                    "gsi-secure-conversation",
                    &["x509-chain"],
                    &["/O=G/CN=CA"],
                    Protection::SignAndEncrypt,
                ),
                alt(
                    "xml-signature",
                    &["x509-chain", "cas-assertion"],
                    &["/O=G/CN=CA"],
                    Protection::Sign,
                ),
            ],
        }
    }

    #[test]
    fn xml_roundtrip() {
        let p = gram_policy();
        let parsed = SecurityPolicy::parse(&p.to_xml()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn intersection_picks_server_preference() {
        let server = gram_policy();
        let client = SecurityPolicy {
            service: "client".to_string(),
            alternatives: vec![
                alt(
                    "xml-signature",
                    &["x509-chain"],
                    &["/O=G/CN=CA"],
                    Protection::Sign,
                ),
                alt(
                    "gsi-secure-conversation",
                    &["x509-chain"],
                    &["/O=G/CN=CA"],
                    Protection::Sign,
                ),
            ],
        };
        let result = intersect(&client, &server).unwrap();
        // Server's first alternative wins even though client listed it second.
        assert_eq!(result.mechanism, "gsi-secure-conversation");
        // Protection upgraded to the stronger requirement.
        assert_eq!(result.protection, Protection::SignAndEncrypt);
    }

    #[test]
    fn token_type_mismatch_skips_alternative() {
        let server = gram_policy();
        let client = SecurityPolicy {
            service: "krb-only-client".to_string(),
            alternatives: vec![alt(
                "xml-signature",
                &["cas-assertion"],
                &["/O=G/CN=CA"],
                Protection::Sign,
            )],
        };
        let result = intersect(&client, &server).unwrap();
        assert_eq!(result.mechanism, "xml-signature");
        assert_eq!(result.token_types, vec!["cas-assertion".to_string()]);
    }

    #[test]
    fn disjoint_trust_roots_fail() {
        let server = gram_policy();
        let client = SecurityPolicy {
            service: "foreign".to_string(),
            alternatives: vec![alt(
                "xml-signature",
                &["x509-chain"],
                &["/O=Other/CN=CA"],
                Protection::Sign,
            )],
        };
        assert_eq!(
            intersect(&client, &server).unwrap_err(),
            WsseError::NoCommonPolicy
        );
    }

    #[test]
    fn empty_trust_roots_accept_any() {
        let server = SecurityPolicy {
            service: "open".to_string(),
            alternatives: vec![alt("xml-signature", &["x509-chain"], &[], Protection::Sign)],
        };
        let client = SecurityPolicy {
            service: "c".to_string(),
            alternatives: vec![alt(
                "xml-signature",
                &["x509-chain"],
                &["/O=Mine/CN=CA"],
                Protection::Sign,
            )],
        };
        let result = intersect(&client, &server).unwrap();
        assert_eq!(result.trust_roots, vec!["/O=Mine/CN=CA".to_string()]);
    }

    #[test]
    fn no_mechanism_overlap_fails() {
        let server = gram_policy();
        let client = SecurityPolicy {
            service: "legacy".to_string(),
            alternatives: vec![alt("gt2-tls", &["x509-chain"], &[], Protection::Sign)],
        };
        assert_eq!(
            intersect(&client, &server).unwrap_err(),
            WsseError::NoCommonPolicy
        );
    }

    #[test]
    fn malformed_policy_rejected() {
        assert!(SecurityPolicy::parse("<wsp:Policy/>").is_err());
        assert!(SecurityPolicy::parse(
            "<wsp:Policy><wsp:ExactlyOne><wsp:All/></wsp:ExactlyOne></wsp:Policy>"
        )
        .is_err());
        assert!(SecurityPolicy::parse("<other/>").is_err());
    }

    #[test]
    fn empty_alternatives_policy() {
        let p = SecurityPolicy {
            service: "none".to_string(),
            alternatives: vec![],
        };
        let parsed = SecurityPolicy::parse(&p.to_xml()).unwrap();
        assert!(parsed.alternatives.is_empty());
        assert_eq!(
            intersect(&parsed, &gram_policy()).unwrap_err(),
            WsseError::NoCommonPolicy
        );
    }
}
