//! Property tests over the WS-Security layers.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_util::check::{check, Gen};
use gridsec_wsse::b64;
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlenc::{decrypt_body, encrypt_body};
use gridsec_wsse::xmlsig::{sign_envelope, verify_envelope};
use gridsec_xml::Element;
use std::sync::OnceLock;

const CASES: u64 = 32;

struct Fixture {
    trust: TrustStore,
    user: Credential,
    recipient: gridsec_crypto::rsa::RsaKeyPair,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let mut rng = ChaChaRng::from_seed_bytes(b"wsse proptest");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=P/CN=CA").unwrap(),
            512,
            0,
            1_000_000,
        );
        let user = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=P/CN=U").unwrap(),
            512,
            0,
            1_000_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let recipient = gridsec_crypto::rsa::RsaKeyPair::generate(&mut rng, 512);
        Fixture {
            trust,
            user,
            recipient,
        }
    })
}

const NAME_FIRST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
const NAME_REST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

fn payload(g: &mut Gen) -> Element {
    let mut name = String::new();
    name.push(g.char_from(NAME_FIRST));
    name.push_str(&g.string(NAME_REST, 0..9));
    let text = g.printable_string(0..64);
    let mut el = Element::new(format!("app:{name}"));
    if !text.trim().is_empty() {
        el.push_text(text.trim().to_string());
    }
    el
}

#[test]
fn b64_roundtrip() {
    check("b64_roundtrip", CASES, |g| {
        let data = g.bytes(0..256);
        assert_eq!(b64::decode(&b64::encode(&data)).unwrap(), data);
    });
}

#[test]
fn b64_rejects_or_roundtrips_arbitrary_text() {
    check("b64_rejects_or_roundtrips_arbitrary_text", CASES, |g| {
        let s = g.string(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/= \n",
            0..64,
        );
        // decode never panics; when it succeeds, re-encoding the decoded
        // bytes and re-decoding yields the same bytes (canonicalization).
        if let Some(bytes) = b64::decode(&s) {
            assert_eq!(b64::decode(&b64::encode(&bytes)).unwrap(), bytes);
        }
    });
}

#[test]
fn any_signed_envelope_verifies_and_any_tamper_fails() {
    check(
        "any_signed_envelope_verifies_and_any_tamper_fails",
        CASES,
        |g| {
            let payload = payload(g);
            let action = g.string("abcdefghijklmnopqrstuvwxyz", 1..13);
            let flip = g.u16();
            let f = fixture();
            let env = Envelope::request(&action, payload);
            let signed = sign_envelope(&env, &f.user, 100, 300);
            let xml = signed.to_xml();
            let parsed = Envelope::parse(&xml).unwrap();
            assert!(verify_envelope(&parsed, &f.trust, &CrlStore::new(), 200).is_ok());

            // Flip one character of the serialized body text; verification
            // must not succeed with altered content.
            if let Some(start) = xml.find("<soap:Body") {
                let end = xml.find("</soap:Body>").unwrap_or(xml.len());
                if end > start + 20 {
                    let idx = start + 12 + (flip as usize % (end - start - 12));
                    let mut bytes = xml.clone().into_bytes();
                    let orig = bytes[idx];
                    // Substitute with a different alphanumeric to keep XML valid.
                    let repl = if orig == b'a' { b'b' } else { b'a' };
                    if orig != repl && orig.is_ascii_alphanumeric() {
                        bytes[idx] = repl;
                        if let Ok(s) = String::from_utf8(bytes) {
                            if let Ok(tampered) = Envelope::parse(&s) {
                                if tampered != parsed {
                                    assert!(verify_envelope(
                                        &tampered,
                                        &f.trust,
                                        &CrlStore::new(),
                                        200
                                    )
                                    .is_err());
                                }
                            }
                        }
                    }
                }
            }
        },
    );
}

#[test]
fn encrypt_decrypt_roundtrip_any_payload() {
    check("encrypt_decrypt_roundtrip_any_payload", CASES, |g| {
        let payload = payload(g);
        let seed = g.u64();
        let f = fixture();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let env = Envelope::request("op", payload);
        let enc = encrypt_body(&env, f.recipient.public(), &mut rng).unwrap();
        // The ciphertext hides the payload name.
        let dec = decrypt_body(&Envelope::parse(&enc.to_xml()).unwrap(), &f.recipient).unwrap();
        assert_eq!(dec.body, env.body);
    });
}

#[test]
fn sign_then_encrypt_composes() {
    check("sign_then_encrypt_composes", CASES, |g| {
        let payload = payload(g);
        let seed = g.u64();
        let f = fixture();
        let mut rng = ChaChaRng::from_seed_bytes(&seed.to_le_bytes());
        let env = Envelope::request("op", payload);
        let signed = sign_envelope(&env, &f.user, 100, 300);
        let enc = encrypt_body(&signed, f.recipient.public(), &mut rng).unwrap();
        let wire = Envelope::parse(&enc.to_xml()).unwrap();
        let dec = decrypt_body(&wire, &f.recipient).unwrap();
        assert!(verify_envelope(&dec, &f.trust, &CrlStore::new(), 200).is_ok());
    });
}
