//! # gridsec-gssapi
//!
//! A GSS-API-shaped security context layer over the `gridsec-tls` token
//! state machines, for the `gridsec` reproduction of *Security for Grid
//! Services* (Welch et al., HPDC 2003).
//!
//! The paper (§1) notes GSI supports "standardized APIs such as GSS-API":
//! GT code establishes security contexts through an
//! init/accept token loop that is agnostic to how tokens move. This crate
//! provides exactly that shape:
//!
//! * [`context::InitiatorContext`] / [`context::AcceptorContext`] — the
//!   token loop (`step(token_in) -> token_out / established`). The tokens
//!   are the *same bytes* as `gridsec-tls` handshake tokens; GT2 moves
//!   them over TCP framing, GT3 moves them inside WS-SecureConversation
//!   envelopes (paper §5.1).
//! * [`context::EstablishedContext`] — `wrap`/`unwrap` (sealed messages),
//!   `get_mic`/`verify_mic` (detached integrity), and the authenticated
//!   peer identity.
//! * [`delegation`] — the GSI delegation extension: after mutual
//!   authentication, the initiator delegates a proxy credential to the
//!   acceptor. The acceptor generates the key pair locally, so private
//!   keys never cross the wire (GRAM step 7 depends on this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod delegation;
pub mod mill;
pub mod net;
pub mod poll;

pub use context::{AcceptorContext, EstablishedContext, InitiatorContext, StepResult};

use gridsec_testbed::TestbedError;
use gridsec_tls::TlsError;

/// Errors from GSS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GssError {
    /// Underlying context/transport failure.
    Tls(TlsError),
    /// Token arrived for the wrong state.
    BadState(&'static str),
    /// Delegation protocol violation.
    Delegation(&'static str),
    /// The token exchange could not cross the network (retry policy
    /// exhausted, endpoint gone, or a malformed acceptor reply).
    Transport(String),
}

impl From<TlsError> for GssError {
    fn from(e: TlsError) -> Self {
        GssError::Tls(e)
    }
}

impl From<TestbedError> for GssError {
    fn from(e: TestbedError) -> Self {
        GssError::Transport(e.to_string())
    }
}

impl core::fmt::Display for GssError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GssError::Tls(e) => write!(f, "context error: {e}"),
            GssError::BadState(m) => write!(f, "bad state: {m}"),
            GssError::Delegation(m) => write!(f, "delegation error: {m}"),
            GssError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for GssError {}
