//! Poll-style GSS context establishment for scheduler-scale storms.
//!
//! The [`crate::context`] token loop assumes a driver that blocks per
//! session. At storm scale — 10⁵–10⁶ principals on one
//! [`gridsec_testbed::sched::Scheduler`] — every principal is a
//! `Step::WaitMail`-driven task instead, and the acceptor side sees
//! hellos *arrive across tasks* rather than as a pre-collected batch.
//! This module provides both halves as sans-io machines:
//!
//! - [`PollInitiator`] is the principal-side machine: constructing it
//!   performs the real ClientHello crypto (DH keypair + signature) and
//!   hands back the token to mail out; feeding the acceptor's reply
//!   performs the real verification and key derivation and yields the
//!   Finished token plus the established context.
//! - [`WaveAcceptor`] is the gateway-side collector: hellos submitted
//!   by many tasks accumulate until the gateway task reaches mail
//!   quiescence, then one [`WaveAcceptor::flush_wave`] call drives the
//!   whole accumulated wave through the [`HandshakeMill`] so
//!   certificate signature checks group by issuer key and DH/signing
//!   state comes from the shared [`gridsec_tls::pool::CryptoPool`].
//!
//! Every verdict is identical to the one-at-a-time [`AcceptorContext`]
//! loop; batching only changes how fast the same answers arrive. The
//! wave boundary is the scheduler's quiescence point, so wave sizes —
//! and therefore the amortization — are a pure function of the seed.

use std::collections::HashMap;

use gridsec_bignum::prime::EntropySource;
use gridsec_tls::handshake::TlsConfig;

use crate::context::{AcceptorContext, EstablishedContext, InitiatorContext, StepResult};
use crate::mill::HandshakeMill;
use crate::GssError;

/// Principal-side sans-io establishment machine (one token round).
pub struct PollInitiator {
    inner: InitiatorContext,
}

impl PollInitiator {
    /// Begin establishment. Returns the machine and the ClientHello
    /// token to send — this is where the initiator's DH keypair and
    /// hello signature are computed, so every principal constructing a
    /// `PollInitiator` pays real per-principal handshake crypto.
    pub fn new<E: EntropySource>(config: TlsConfig, rng: &mut E) -> (Self, Vec<u8>) {
        let (inner, hello) = InitiatorContext::new(config, rng);
        (PollInitiator { inner }, hello)
    }

    /// Feed the acceptor's ServerHello reply. On success returns the
    /// Finished token (which must still be sent to the acceptor) and
    /// the established context.
    pub fn feed(mut self, token: &[u8]) -> Result<(Vec<u8>, EstablishedContext), GssError> {
        match self.inner.step(token)? {
            StepResult::Established {
                token: Some(finished),
                context,
            } => Ok((finished, *context)),
            StepResult::Established { token: None, .. } => {
                Err(GssError::BadState("initiator finished without a token"))
            }
            StepResult::ContinueWith(_) => {
                Err(GssError::BadState("initiator should finish on ServerHello"))
            }
        }
    }
}

/// Gateway-side wave collector over a [`HandshakeMill`].
///
/// Sessions are caller-assigned `u64` ids (the storm uses the
/// principal's interned endpoint name). Hellos accumulate via
/// [`submit_hello`](WaveAcceptor::submit_hello); the owning task calls
/// [`flush_wave`](WaveAcceptor::flush_wave) once its mailbox runs dry,
/// batching everything that arrived since the previous flush.
pub struct WaveAcceptor {
    mill: HandshakeMill,
    pending: Vec<(u64, Vec<u8>)>,
    awaiting: HashMap<u64, AcceptorContext>,
    established: u64,
    failed: u64,
    waves: u64,
    peak_wave: usize,
}

impl WaveAcceptor {
    /// Build the collector around the acceptor credential config (the
    /// mill registers the config's DH group and signing contexts in the
    /// shared pool).
    pub fn new(config: TlsConfig) -> Self {
        WaveAcceptor {
            mill: HandshakeMill::new(config),
            pending: Vec::new(),
            awaiting: HashMap::new(),
            established: 0,
            failed: 0,
            waves: 0,
            peak_wave: 0,
        }
    }

    /// The underlying mill (pool statistics, config with pool attached).
    pub fn mill(&self) -> &HandshakeMill {
        &self.mill
    }

    /// Queue a ClientHello from session `id` for the next wave.
    pub fn submit_hello(&mut self, id: u64, hello: Vec<u8>) {
        self.pending.push((id, hello));
    }

    /// Hellos queued and not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Sessions that received a ServerHello and now await Finished.
    pub fn awaiting(&self) -> usize {
        self.awaiting.len()
    }

    /// Drive every queued hello through the mill as one batch. Returns,
    /// in submission order, each session's ServerHello token (to send
    /// back) or the same error the per-session acceptor would report.
    /// Accepted sessions are parked until their Finished token arrives
    /// via [`submit_finished`](WaveAcceptor::submit_finished).
    pub fn flush_wave<E: EntropySource>(
        &mut self,
        rng: &mut E,
    ) -> Vec<(u64, Result<Vec<u8>, GssError>)> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let wave = std::mem::take(&mut self.pending);
        self.waves += 1;
        self.peak_wave = self.peak_wave.max(wave.len());
        let hellos: Vec<&[u8]> = wave.iter().map(|(_, h)| h.as_slice()).collect();
        let results = self.mill.accept_wave(rng, &hellos);
        wave.iter()
            .zip(results)
            .map(|((id, _), r)| match r {
                Ok((server_hello, acceptor)) => {
                    self.awaiting.insert(*id, acceptor);
                    (*id, Ok(server_hello))
                }
                Err(e) => {
                    self.failed += 1;
                    (*id, Err(e))
                }
            })
            .collect()
    }

    /// Feed session `id`'s Finished token, completing establishment.
    pub fn submit_finished<E: EntropySource>(
        &mut self,
        id: u64,
        rng: &mut E,
        token: &[u8],
    ) -> Result<EstablishedContext, GssError> {
        let mut acceptor = self
            .awaiting
            .remove(&id)
            .ok_or(GssError::BadState("no session awaiting this token"))?;
        match acceptor.step(rng, token) {
            Ok(StepResult::Established { context, .. }) => {
                self.established += 1;
                Ok(*context)
            }
            Ok(StepResult::ContinueWith(_)) => {
                self.failed += 1;
                Err(GssError::BadState("acceptor should finish on Finished"))
            }
            Err(e) => {
                self.failed += 1;
                Err(e)
            }
        }
    }

    /// Fully established sessions.
    pub fn established(&self) -> u64 {
        self.established
    }

    /// Sessions that failed at either token (rejected hello or bad
    /// Finished).
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Waves flushed so far.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Largest single wave (the cross-task batching the scheduler's
    /// quiescence boundary actually achieved).
    pub fn peak_wave(&self) -> usize {
        self.peak_wave
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        users: Vec<Credential>,
        service: Credential,
    }

    fn world(n: usize) -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gss poll tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let users = (0..n)
            .map(|i| ca.issue_identity(&mut rng, dn(&format!("/O=G/CN=U{i}")), 512, 0, 100_000))
            .collect();
        let service = ca.issue_identity(&mut rng, dn("/O=G/CN=MJS"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            users,
            service,
        }
    }

    fn cfg(w: &World, cred: &Credential) -> TlsConfig {
        TlsConfig::new(cred.clone(), w.trust.clone(), 100)
    }

    #[test]
    fn cross_task_wave_establishes_working_contexts() {
        let mut w = world(5);
        let mut gw = WaveAcceptor::new(cfg(&w, &w.service));

        // Hellos trickle in "across tasks" — two flushes, arbitrary
        // session ids, interleaved with quiescence points.
        let mut inits = HashMap::new();
        for (i, user) in w.users.iter().enumerate() {
            let (init, hello) = PollInitiator::new(cfg(&w, user), &mut w.rng);
            let id = 1000 + i as u64;
            inits.insert(id, init);
            gw.submit_hello(id, hello);
            if i == 2 {
                // First quiescence: a wave of 3.
                assert_eq!(gw.pending(), 3);
                for (id, r) in gw.flush_wave(&mut w.rng) {
                    let server_hello = r.unwrap();
                    let init = inits.remove(&id).unwrap();
                    let (finished, mut ictx) = init.feed(&server_hello).unwrap();
                    let mut actx = gw.submit_finished(id, &mut w.rng, &finished).unwrap();
                    let sealed = ictx.wrap(b"req");
                    assert_eq!(actx.unwrap(&sealed).unwrap(), b"req");
                }
            }
        }
        // Second quiescence: the remaining 2.
        for (id, r) in gw.flush_wave(&mut w.rng) {
            let server_hello = r.unwrap();
            let init = inits.remove(&id).unwrap();
            let (finished, mut ictx) = init.feed(&server_hello).unwrap();
            let mut actx = gw.submit_finished(id, &mut w.rng, &finished).unwrap();
            let sealed = actx.wrap(b"rep");
            assert_eq!(ictx.unwrap(&sealed).unwrap(), b"rep");
        }
        assert_eq!(gw.established(), 5);
        assert_eq!(gw.failed(), 0);
        assert_eq!(gw.waves(), 2);
        assert_eq!(gw.peak_wave(), 3);
        assert_eq!(gw.awaiting(), 0);
        // The pool amortized: one chain walk per distinct user cert.
        let pool = gw.mill().pool();
        assert_eq!(pool.lock().unwrap().validator().misses(), 5);
    }

    #[test]
    fn rejections_and_unknown_sessions_error_like_the_plain_loop() {
        let mut w = world(1);
        let rogue =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
        let mallory = rogue.issue_identity(&mut w.rng, dn("/O=Evil/CN=M"), 512, 0, 100_000);

        let mut gw = WaveAcceptor::new(cfg(&w, &w.service));
        let (_good_init, good) = PollInitiator::new(cfg(&w, &w.users[0]), &mut w.rng);
        let (_bad_init, bad) = PollInitiator::new(cfg(&w, &mallory), &mut w.rng);
        gw.submit_hello(1, good);
        gw.submit_hello(2, bad);
        gw.submit_hello(3, b"garbage".to_vec());
        let wave = gw.flush_wave(&mut w.rng);
        assert!(wave[0].1.is_ok());
        assert!(matches!(
            wave[1].1,
            Err(GssError::Tls(gridsec_tls::TlsError::Pki(
                gridsec_pki::PkiError::UntrustedRoot
            )))
        ));
        assert!(matches!(
            wave[2].1,
            Err(GssError::Tls(gridsec_tls::TlsError::Protocol(_)))
        ));
        assert_eq!(gw.failed(), 2);

        // Finished for a session that never got a ServerHello.
        assert!(matches!(
            gw.submit_finished(99, &mut w.rng, b"x"),
            Err(GssError::BadState(_))
        ));
        // A bad Finished for a parked session fails and unparks it.
        assert!(gw.submit_finished(1, &mut w.rng, b"junk").is_err());
        assert_eq!(gw.awaiting(), 0);
        assert_eq!(gw.established(), 0);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let mut w = world(0);
        let mut gw = WaveAcceptor::new(cfg(&w, &w.service));
        assert!(gw.flush_wave(&mut w.rng).is_empty());
        assert_eq!(gw.waves(), 0);
    }
}
