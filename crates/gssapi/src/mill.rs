//! Multi-session context establishment with shared crypto state.
//!
//! A grid service at login time sees a *wave* of `init_sec_context`
//! tokens: hundreds of users, each with a chain hanging off the same
//! handful of CAs, all arriving at once. [`HandshakeMill`] is the
//! acceptor-side driver for that shape. It owns a
//! [`CryptoPool`] — precomputed DH tables and signing contexts for the
//! service credential, a chain-validation cache with shared per-issuer
//! verify contexts — and accepts hellos in batches so certificate
//! signature checks group by issuer key
//! ([`gridsec_pki::validate::CachedValidator::validate_batch`]).
//!
//! Every verdict is identical to what a fresh [`AcceptorContext`] would
//! have produced for the same token; the mill only changes *how fast*
//! the same answers arrive.

use std::sync::{Arc, Mutex};

use gridsec_bignum::prime::EntropySource;
use gridsec_tls::handshake::{server_accept_batch, TlsConfig};
use gridsec_tls::pool::CryptoPool;

use crate::context::AcceptorContext;
use crate::GssError;

/// Acceptor-side batch driver over a shared [`CryptoPool`].
pub struct HandshakeMill {
    config: TlsConfig,
    pool: Arc<Mutex<CryptoPool>>,
    accepted: u64,
    rejected: u64,
}

impl HandshakeMill {
    /// Build a mill around `config`: creates a [`CryptoPool`],
    /// registers the config's DH group (fixed-base table + modulus
    /// context) and credential (CRT signing contexts) in the thread's
    /// precomp registry, and attaches the pool to the config. If the
    /// config already carries a pool, that pool is reused (and the
    /// group/credential registered into the registry all the same).
    pub fn new(config: TlsConfig) -> Self {
        let pool = config
            .pool
            .clone()
            .unwrap_or_else(|| Arc::new(Mutex::new(CryptoPool::new())));
        {
            let mut p = pool.lock().expect("crypto pool lock");
            p.register_group(&config.group);
            p.register_signer(&config.credential);
        }
        let config = config.with_pool(Arc::clone(&pool));
        HandshakeMill {
            config,
            pool,
            accepted: 0,
            rejected: 0,
        }
    }

    /// The shared pool (for stats, or to attach to initiator configs on
    /// the same thread).
    pub fn pool(&self) -> Arc<Mutex<CryptoPool>> {
        Arc::clone(&self.pool)
    }

    /// The acceptor config with the pool attached (e.g. to hand to a
    /// plain [`AcceptorContext`] for a straggler arriving outside a
    /// wave).
    pub fn config(&self) -> &TlsConfig {
        &self.config
    }

    /// Accept a wave of initial tokens (ClientHellos). Returns, per
    /// token and in order, the ServerHello token to send back plus the
    /// context awaiting that session's final token — or the same error
    /// the one-at-a-time acceptor would have reported.
    pub fn accept_wave<E: EntropySource>(
        &mut self,
        rng: &mut E,
        hellos: &[&[u8]],
    ) -> Vec<Result<(Vec<u8>, AcceptorContext), GssError>> {
        server_accept_batch(&self.config, rng, hellos)
            .into_iter()
            .map(|r| match r {
                Ok((token, await_finished)) => {
                    self.accepted += 1;
                    Ok((token, AcceptorContext::from_await_finished(await_finished)))
                }
                Err(e) => {
                    self.rejected += 1;
                    Err(GssError::from(e))
                }
            })
            .collect()
    }

    /// Hellos that produced a ServerHello so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Hellos rejected so far (parse, validation, or binding failures).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{establish_in_memory, InitiatorContext, StepResult};
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        users: Vec<Credential>,
        service: Credential,
    }

    fn world(n_users: usize) -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"mill tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let users = (0..n_users)
            .map(|i| ca.issue_identity(&mut rng, dn(&format!("/O=G/CN=U{i}")), 512, 0, 100_000))
            .collect();
        let service = ca.issue_identity(&mut rng, dn("/O=G/CN=MJS"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            users,
            service,
        }
    }

    fn cfg(w: &World, cred: &Credential) -> TlsConfig {
        TlsConfig::new(cred.clone(), w.trust.clone(), 100)
    }

    #[test]
    fn wave_establishes_working_contexts() {
        let mut w = world(6);
        let mut mill = HandshakeMill::new(cfg(&w, &w.service));

        // A wave of initiators.
        let mut inits = Vec::new();
        let mut hellos = Vec::new();
        for user in &w.users {
            let (init, hello) = InitiatorContext::new(cfg(&w, user), &mut w.rng);
            inits.push(init);
            hellos.push(hello);
        }
        let hello_refs: Vec<&[u8]> = hellos.iter().map(|h| h.as_slice()).collect();
        let wave = mill.accept_wave(&mut w.rng, &hello_refs);
        assert_eq!(mill.accepted(), 6);
        assert_eq!(mill.rejected(), 0);

        // Finish every session and exchange a message both ways.
        for (i, (init, accepted)) in inits.into_iter().zip(wave).enumerate() {
            let (server_hello, mut acceptor) = accepted.unwrap();
            let mut init = init;
            let (finished, mut ictx) = match init.step(&server_hello).unwrap() {
                StepResult::Established { token, context } => (token.unwrap(), context),
                StepResult::ContinueWith(_) => panic!("initiator should finish"),
            };
            let mut actx = match acceptor.step(&mut w.rng, &finished).unwrap() {
                StepResult::Established { context, .. } => context,
                StepResult::ContinueWith(_) => panic!("acceptor should finish"),
            };
            assert_eq!(actx.peer().base_identity, dn(&format!("/O=G/CN=U{i}")));
            assert_eq!(ictx.peer().base_identity, dn("/O=G/CN=MJS"));
            let t = ictx.wrap(format!("request {i}").as_bytes());
            assert_eq!(actx.unwrap(&t).unwrap(), format!("request {i}").as_bytes());
            let r = actx.wrap(b"ok");
            assert_eq!(ictx.unwrap(&r).unwrap(), b"ok");
        }

        // The pool did the chain walks once each and shares issuer
        // contexts across the wave.
        let pool = mill.pool();
        let pool = pool.lock().unwrap();
        assert_eq!(pool.validator().misses(), 6);
        assert!(pool.validator().precomputed_keys() >= 1);
    }

    #[test]
    fn wave_rejections_match_individual_acceptor() {
        let mut w = world(3);
        let rogue_ca =
            CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
        let mallory = rogue_ca.issue_identity(&mut w.rng, dn("/O=Evil/CN=M"), 512, 0, 100_000);

        let (_i0, good) = InitiatorContext::new(cfg(&w, &w.users[0]), &mut w.rng);
        let (_i1, bad) = InitiatorContext::new(cfg(&w, &mallory), &mut w.rng);
        let garbage = b"not a token".to_vec();

        let mut mill = HandshakeMill::new(cfg(&w, &w.service));
        let wave = mill.accept_wave(
            &mut w.rng,
            &[good.as_slice(), bad.as_slice(), garbage.as_slice()],
        );
        assert!(wave[0].is_ok());
        assert!(matches!(
            wave[1],
            Err(GssError::Tls(gridsec_tls::TlsError::Pki(
                gridsec_pki::PkiError::UntrustedRoot
            )))
        ));
        assert!(matches!(
            wave[2],
            Err(GssError::Tls(gridsec_tls::TlsError::Protocol(_)))
        ));
        assert_eq!((mill.accepted(), mill.rejected()), (1, 2));

        // The individual acceptor agrees on each verdict.
        for (i, hello) in [good.as_slice(), bad.as_slice(), garbage.as_slice()]
            .into_iter()
            .enumerate()
        {
            let mut acceptor = AcceptorContext::new(cfg(&w, &w.service));
            let individual = acceptor.step(&mut w.rng, hello);
            assert_eq!(individual.is_ok(), wave[i].is_ok(), "token {i}");
        }
    }

    #[test]
    fn pooled_and_plain_establishment_agree() {
        let mut w = world(1);
        // Same world, two paths: a mill-driven wave of one, and the
        // plain in-memory loop. Both must authenticate the same pair.
        let mut mill = HandshakeMill::new(cfg(&w, &w.service));
        let (mut init, hello) = InitiatorContext::new(cfg(&w, &w.users[0]), &mut w.rng);
        let wave = mill.accept_wave(&mut w.rng, &[hello.as_slice()]);
        let (server_hello, mut acceptor) = wave.into_iter().next().unwrap().unwrap();
        let (finished, ictx) = match init.step(&server_hello).unwrap() {
            StepResult::Established { token, context } => (token.unwrap(), context),
            StepResult::ContinueWith(_) => panic!("initiator should finish"),
        };
        let actx = match acceptor.step(&mut w.rng, &finished).unwrap() {
            StepResult::Established { context, .. } => context,
            StepResult::ContinueWith(_) => panic!("acceptor should finish"),
        };

        let (pictx, pactx) =
            establish_in_memory(cfg(&w, &w.users[0]), cfg(&w, &w.service), &mut w.rng).unwrap();
        assert_eq!(ictx.peer().base_identity, pictx.peer().base_identity);
        assert_eq!(actx.peer().base_identity, pactx.peer().base_identity);
    }
}
