//! GSI credential delegation over an established context (paper §3, §5.3
//! step 7).
//!
//! Protocol (all messages wrapped under the established context):
//!
//! 1. Initiator → acceptor: `DELEG-REQ` (announces intent + proxy type).
//! 2. Acceptor generates a key pair *locally* and replies with the public
//!    key (a CSR in spirit). The private key never leaves the acceptor.
//! 3. Initiator signs a proxy certificate over that key with its own
//!    credential and sends the certificate plus its chain.
//! 4. Acceptor assembles the delegated [`Credential`].
//!
//! This is how an MJS obtains "GSI credentials for the job" without the
//! user's key material ever crossing the network.

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::rsa::RsaKeyPair;
use gridsec_pki::cert::Certificate;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::proxy::{issue_delegated_proxy, ProxyType};
use gridsec_pki::PkiError;

use crate::context::EstablishedContext;
use crate::GssError;

const REQ_MAGIC: &[u8] = b"GSI-DELEG-REQ-V1";

/// Message 3 payload: the signed proxy certificate and the issuer chain.
struct DelegatedChain {
    proxy_cert: Certificate,
    issuer_chain: Vec<Certificate>,
}

impl Codec for DelegatedChain {
    fn encode(&self, enc: &mut Encoder) {
        self.proxy_cert.encode(enc);
        enc.put_seq(&self.issuer_chain, |e, c| c.encode(e));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(DelegatedChain {
            proxy_cert: Certificate::decode(dec)?,
            issuer_chain: dec.get_seq(Certificate::decode)?,
        })
    }
}

/// Initiator step 1: produce the (wrapped) delegation request token.
pub fn request_delegation(ctx: &mut EstablishedContext) -> Vec<u8> {
    ctx.wrap(REQ_MAGIC)
}

/// Acceptor step 2: on receiving the request, generate a local key pair
/// and return the (wrapped) public-key token plus the pending state.
pub fn respond_with_key<E: EntropySource>(
    ctx: &mut EstablishedContext,
    rng: &mut E,
    request_token: &[u8],
    key_bits: usize,
) -> Result<(Vec<u8>, PendingDelegation), GssError> {
    let req = ctx.unwrap(request_token)?;
    if req != REQ_MAGIC {
        return Err(GssError::Delegation("not a delegation request"));
    }
    let key = RsaKeyPair::generate(rng, key_bits);
    let mut enc = Encoder::new();
    gridsec_pki::cert::encode_public_key(&mut enc, key.public());
    let token = ctx.wrap(&enc.finish());
    Ok((token, PendingDelegation { key }))
}

/// Initiator step 3: sign a proxy over the acceptor's public key and send
/// the certificate + chain.
pub fn deliver_proxy<E: EntropySource>(
    ctx: &mut EstablishedContext,
    rng: &mut E,
    delegator: &Credential,
    key_token: &[u8],
    proxy_type: ProxyType,
    now: u64,
    lifetime: u64,
) -> Result<Vec<u8>, GssError> {
    let key_bytes = ctx.unwrap(key_token)?;
    let mut dec = Decoder::new(&key_bytes);
    let remote_public = gridsec_pki::cert::decode_public_key(&mut dec)
        .map_err(|_| GssError::Delegation("malformed public key"))?;
    dec.expect_exhausted()
        .map_err(|_| GssError::Delegation("trailing bytes in key token"))?;

    let proxy_cert =
        issue_delegated_proxy(rng, delegator, &remote_public, proxy_type, now, lifetime)
            .map_err(|_| GssError::Delegation("proxy issuance refused"))?;
    let msg = DelegatedChain {
        proxy_cert,
        issuer_chain: delegator.chain().to_vec(),
    };
    Ok(ctx.wrap(&msg.to_bytes()))
}

/// Acceptor-side state between steps 2 and 4: the locally-generated key.
pub struct PendingDelegation {
    key: RsaKeyPair,
}

impl PendingDelegation {
    /// Acceptor step 4: assemble the delegated credential.
    pub fn finish(
        self,
        ctx: &mut EstablishedContext,
        chain_token: &[u8],
    ) -> Result<Credential, GssError> {
        let bytes = ctx.unwrap(chain_token)?;
        let msg = DelegatedChain::from_bytes(&bytes)
            .map_err(|_| GssError::Delegation("malformed delegated chain"))?;
        if msg.proxy_cert.public_key() != self.key.public() {
            return Err(GssError::Delegation("certificate is not over our key"));
        }
        let mut chain = vec![msg.proxy_cert];
        chain.extend(msg.issuer_chain);
        Ok(Credential::new(chain, self.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::establish_in_memory;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::{validate_chain, EffectiveRights};
    use gridsec_tls::handshake::TlsConfig;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct Setup {
        rng: ChaChaRng,
        trust: TrustStore,
        alice: Credential,
        ic: EstablishedContext,
        ac: EstablishedContext,
    }

    fn setup() -> Setup {
        let mut rng = ChaChaRng::from_seed_bytes(b"delegation tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let mjs = ca.issue_identity(&mut rng, dn("/O=G/CN=MJS"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let (ic, ac) = establish_in_memory(
            TlsConfig::new(alice.clone(), trust.clone(), 100),
            TlsConfig::new(mjs, trust.clone(), 100),
            &mut rng,
        )
        .unwrap();
        Setup {
            rng,
            trust,
            alice,
            ic,
            ac,
        }
    }

    fn run_delegation(s: &mut Setup, proxy_type: ProxyType) -> Credential {
        let t1 = request_delegation(&mut s.ic);
        let (t2, pending) = respond_with_key(&mut s.ac, &mut s.rng, &t1, 512).unwrap();
        let t3 =
            deliver_proxy(&mut s.ic, &mut s.rng, &s.alice, &t2, proxy_type, 100, 5000).unwrap();
        pending.finish(s.ic_to_ac_ctx_hack(), &t3).unwrap()
    }

    impl Setup {
        // `finish` must run on the acceptor context; this helper exists to
        // keep borrows simple in run_delegation.
        fn ic_to_ac_ctx_hack(&mut self) -> &mut EstablishedContext {
            &mut self.ac
        }
    }

    #[test]
    fn delegated_credential_is_valid_proxy_of_initiator() {
        let mut s = setup();
        let cred = run_delegation(&mut s, ProxyType::Impersonation);
        assert_eq!(cred.base_identity(), &dn("/O=G/CN=Alice"));
        assert_eq!(cred.proxy_depth(), 1);
        let id = validate_chain(cred.chain(), &s.trust, 200).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Alice"));
        assert_eq!(id.rights, EffectiveRights::Full);
    }

    #[test]
    fn limited_delegation_yields_limited_rights() {
        let mut s = setup();
        let cred = run_delegation(&mut s, ProxyType::Limited);
        let id = validate_chain(cred.chain(), &s.trust, 200).unwrap();
        assert_eq!(id.rights, EffectiveRights::Limited);
    }

    #[test]
    fn delegated_key_can_sign() {
        let mut s = setup();
        let cred = run_delegation(&mut s, ProxyType::Impersonation);
        let sig = cred.sign(b"act on behalf of alice");
        assert!(cred
            .certificate()
            .public_key()
            .verify_pkcs1_sha256(b"act on behalf of alice", &sig));
    }

    #[test]
    fn non_request_token_rejected() {
        let mut s = setup();
        let bogus = s.ic.wrap(b"not a delegation request");
        assert!(matches!(
            respond_with_key(&mut s.ac, &mut s.rng, &bogus, 512),
            Err(GssError::Delegation(_))
        ));
    }

    #[test]
    fn mismatched_certificate_rejected() {
        let mut s = setup();
        let t1 = request_delegation(&mut s.ic);
        let (_t2, pending) = respond_with_key(&mut s.ac, &mut s.rng, &t1, 512).unwrap();
        // Initiator signs over the WRONG key (its own, not the acceptor's).
        let wrong = issue_delegated_proxy(
            &mut s.rng,
            &s.alice,
            s.alice.certificate().public_key(),
            ProxyType::Impersonation,
            100,
            1000,
        )
        .unwrap();
        let msg = DelegatedChain {
            proxy_cert: wrong,
            issuer_chain: s.alice.chain().to_vec(),
        };
        let t3 = s.ic.wrap(&msg.to_bytes());
        assert!(matches!(
            pending.finish(&mut s.ac, &t3),
            Err(GssError::Delegation("certificate is not over our key"))
        ));
    }

    #[test]
    fn delegation_chain_can_be_redelegated() {
        // MJS redelegates alice's credential onward (proxy of proxy).
        let mut s = setup();
        let first = run_delegation(&mut s, ProxyType::Impersonation);
        // New context: MJS (holding delegated cred) → another service.
        let mut rng2 = ChaChaRng::from_seed_bytes(b"redelegate");
        let ca2 = &s.trust; // same trust
        let (mut ic2, mut ac2) = establish_in_memory(
            TlsConfig::new(first.clone(), ca2.clone(), 200),
            TlsConfig::new(s.alice.clone(), ca2.clone(), 200),
            &mut rng2,
        )
        .unwrap();
        let t1 = request_delegation(&mut ic2);
        let (t2, pending) = respond_with_key(&mut ac2, &mut rng2, &t1, 512).unwrap();
        let t3 = deliver_proxy(
            &mut ic2,
            &mut rng2,
            &first,
            &t2,
            ProxyType::Impersonation,
            200,
            1000,
        )
        .unwrap();
        let second = pending.finish(&mut ac2, &t3).unwrap();
        assert_eq!(second.proxy_depth(), 2);
        let id = validate_chain(second.chain(), &s.trust, 250).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Alice"));
    }
}
