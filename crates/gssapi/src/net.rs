//! GSS context establishment across the simulated network.
//!
//! [`crate::context::establish_in_memory`] drives the token loop with
//! both sides in one call frame; this module moves the same three
//! tokens over a [`gridsec_testbed::net::Network`] that may be dropping,
//! duplicating, and reordering datagrams. Each token exchange rides the
//! at-most-once RPC layer ([`gridsec_testbed::rpc`]):
//!
//! * the client retransmits with exponential backoff, so a lost token
//!   costs latency, not the context;
//! * the server's reply cache answers retransmitted or duplicated token
//!   frames without re-stepping the acceptor, which matters because
//!   `AcceptorContext::step` is *not* idempotent — feeding token 1 twice
//!   would corrupt the handshake state.
//!
//! Wire format (via [`gridsec_pki::encoding`]): requests are
//! `op ‖ token` where `op` is `"gss-tok1"`/`"gss-tok3"` for the full
//! handshake or `"gss-res1"`/`"gss-res3"` for the abbreviated
//! resumption handshake ([`gridsec_tls::session`]); replies are
//! `status ‖ body` with status `"ok"` or `"err"`. An `err` reply to a
//! resume op is how the acceptor signals "no resumable session" — the
//! initiator falls back to the full token loop.

use crate::context::{AcceptorContext, EstablishedContext, InitiatorContext, StepResult};
use crate::GssError;
use gridsec_bignum::prime::EntropySource;
use gridsec_pki::encoding::{Decoder, Encoder};
use gridsec_testbed::rpc::RpcClient;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::session::{
    resume_client, ClientSession, ClientSessionCache, ServerResumeAwait, ServerSessionCache,
    DEFAULT_SESSION_CAPACITY,
};
use gridsec_util::trace;
use std::collections::HashMap;

/// Op tag for the initiator's first token.
pub const OP_TOKEN1: &str = "gss-tok1";
/// Op tag for the initiator's finished token.
pub const OP_TOKEN3: &str = "gss-tok3";
/// Op tag for the resumption hello token.
pub const OP_RESUME1: &str = "gss-res1";
/// Op tag for the resumption finished token.
pub const OP_RESUME3: &str = "gss-res3";

fn request(op: &str, token: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(op).put_bytes(token);
    e.finish()
}

/// Parse an `op ‖ token` request frame.
pub fn parse_request(bytes: &[u8]) -> Result<(String, Vec<u8>), GssError> {
    let mut d = Decoder::new(bytes);
    let op = d
        .get_str()
        .map_err(|_| GssError::Transport("malformed gss request".into()))?;
    let token = d
        .get_bytes()
        .map_err(|_| GssError::Transport("malformed gss request".into()))?;
    Ok((op, token))
}

fn reply_ok(body: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str("ok").put_bytes(body);
    e.finish()
}

fn reply_err(msg: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str("err").put_bytes(msg.as_bytes());
    e.finish()
}

fn parse_reply(bytes: &[u8]) -> Result<Vec<u8>, GssError> {
    let mut d = Decoder::new(bytes);
    let status = d
        .get_str()
        .map_err(|_| GssError::Transport("malformed gss reply".into()))?;
    let body = d
        .get_bytes()
        .map_err(|_| GssError::Transport("malformed gss reply".into()))?;
    if status == "ok" {
        Ok(body)
    } else {
        Err(GssError::Transport(format!(
            "acceptor refused: {}",
            String::from_utf8_lossy(&body)
        )))
    }
}

/// Establish a GSS context as the initiator, exchanging tokens through
/// `rpc` (which carries the retry policy and, in single-threaded
/// scenarios, the pump hook that runs the acceptor's service loop).
pub fn establish_initiator<E: EntropySource>(
    rpc: &mut RpcClient,
    config: TlsConfig,
    rng: &mut E,
) -> Result<EstablishedContext, GssError> {
    let mut sp = trace::span_with("gss.establish", &format!("server={}", rpc.server()));
    let result = (|| {
        let (mut init, token1) = InitiatorContext::new(config, rng);
        trace::event("gss.token1.send", &format!("len={}", token1.len()));
        let token2 = parse_reply(&rpc.call(&request(OP_TOKEN1, &token1))?)?;
        trace::event("gss.token2.recv", &format!("len={}", token2.len()));
        let (token3, context) = match init.step(&token2)? {
            StepResult::Established { token, context } => (
                token.ok_or(GssError::BadState("missing finished token"))?,
                context,
            ),
            StepResult::ContinueWith(_) => {
                return Err(GssError::BadState("initiator should finish on token 2"))
            }
        };
        trace::event("gss.token3.send", &format!("len={}", token3.len()));
        parse_reply(&rpc.call(&request(OP_TOKEN3, &token3))?)?;
        trace::event("gss.established", &format!("peer={}", rpc.server()));
        trace::add("gss.contexts_established", 1);
        Ok(*context)
    })();
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

/// Establish a GSS context by resuming a cached session: two RPC
/// round trips carrying only symmetric-crypto tokens — no certificate
/// validation, RSA, or Diffie–Hellman on either side.
///
/// Fails with [`GssError::Transport`] when the acceptor no longer
/// knows the ticket (cache eviction, expiry, or a crash-reborn
/// acceptor); the caller falls back to the full handshake.
pub fn establish_initiator_resumed<E: EntropySource>(
    rpc: &mut RpcClient,
    session: ClientSession,
    now: u64,
    lifetime: u64,
    rng: &mut E,
) -> Result<EstablishedContext, GssError> {
    let mut sp = trace::span_with("gss.resume", &format!("server={}", rpc.server()));
    let result: Result<EstablishedContext, GssError> = (|| {
        let (resume, token1) = resume_client(session, now, lifetime, rng);
        trace::event("gss.resume1.send", &format!("len={}", token1.len()));
        let token2 = parse_reply(&rpc.call(&request(OP_RESUME1, &token1))?)?;
        trace::event("gss.resume2.recv", &format!("len={}", token2.len()));
        let (token3, channel) = resume.step(&token2)?;
        trace::event("gss.resume3.send", &format!("len={}", token3.len()));
        parse_reply(&rpc.call(&request(OP_RESUME3, &token3))?)?;
        trace::event("gss.resumed", &format!("peer={}", rpc.server()));
        trace::add("gss.contexts_resumed", 1);
        Ok(EstablishedContext::from_channel(channel))
    })();
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

/// Establish a GSS context through a client-side session cache:
/// resume when a live session for this server exists, fall back to
/// [`establish_initiator_resilient`] when it does not or when the
/// acceptor refuses the ticket. Either way the resulting session is
/// (re)stored, so the *next* establishment to this server is the
/// cheap one.
pub fn establish_initiator_cached<E: EntropySource>(
    rpc: &mut RpcClient,
    config: TlsConfig,
    rng: &mut E,
    cache: &mut ClientSessionCache,
    max_attempts: u64,
) -> Result<EstablishedContext, GssError> {
    let server = rpc.server().to_string();
    if let Some(session) = cache.lookup(&server, config.now) {
        match establish_initiator_resumed(rpc, session, config.now, config.session_lifetime, rng) {
            Ok(ctx) => {
                cache.store(&server, ctx.channel());
                return Ok(ctx);
            }
            Err(GssError::Transport(cause)) => {
                trace::event("gss.resume.fallback", &format!("cause={cause}"));
                trace::add("gss.resume_fallbacks", 1);
                cache.invalidate(&server);
            }
            Err(e) => return Err(e),
        }
    }
    let ctx = establish_initiator_resilient(rpc, config, rng, max_attempts)?;
    cache.store(&server, ctx.channel());
    Ok(ctx)
}

/// Establish a GSS context as the initiator, surviving acceptor
/// crashes: a [`GssError::Transport`] failure (retry budget exhausted
/// while the peer was down, or a reborn acceptor refusing a token it
/// has no session for) is answered by restarting the whole token loop.
/// Contexts are re-establishable by construction — the paper's §4
/// argument for stateless security services — so nothing is lost but
/// the handshake latency.
pub fn establish_initiator_resilient<E: EntropySource>(
    rpc: &mut RpcClient,
    config: TlsConfig,
    rng: &mut E,
    max_attempts: u64,
) -> Result<EstablishedContext, GssError> {
    let mut attempt = 0u64;
    loop {
        attempt += 1;
        match establish_initiator(rpc, config.clone(), rng) {
            Ok(ctx) => return Ok(ctx),
            Err(GssError::Transport(cause)) if attempt < max_attempts => {
                trace::event("gss.reestablish", &format!("cause={cause}"));
                trace::add("gss.reestablishes", 1);
            }
            Err(e) => return Err(e),
        }
    }
}

/// The acceptor side as a pollable service: plug
/// [`AcceptorService::handle`] into an
/// [`RpcServer::poll`][gridsec_testbed::rpc::RpcServer::poll] handler.
/// One in-progress handshake is tracked per calling endpoint name;
/// a fresh token 1 from the same caller abandons the old attempt
/// (the client gave up and started over).
pub struct AcceptorService<E: EntropySource> {
    config: TlsConfig,
    rng: E,
    pending: HashMap<String, AcceptorContext>,
    pending_resume: HashMap<String, ServerResumeAwait>,
    sessions: ServerSessionCache,
    established: HashMap<String, EstablishedContext>,
}

impl<E: EntropySource> AcceptorService<E> {
    /// Service accepting contexts under `config`, drawing handshake
    /// entropy from `rng`.
    pub fn new(config: TlsConfig, rng: E) -> Self {
        let sessions = ServerSessionCache::new(DEFAULT_SESSION_CAPACITY, config.session_lifetime);
        AcceptorService {
            config,
            rng,
            pending: HashMap::new(),
            pending_resume: HashMap::new(),
            sessions,
            established: HashMap::new(),
        }
    }

    /// The server-side session cache (hit/miss counters for tests and
    /// metrics).
    pub fn sessions(&self) -> &ServerSessionCache {
        &self.sessions
    }

    /// Handle one request frame from caller `from`; returns the reply
    /// frame. Never panics on malformed input — errors come back as
    /// `"err"` replies the initiator surfaces as [`GssError::Transport`].
    pub fn handle(&mut self, from: &str, payload: &[u8]) -> Vec<u8> {
        let _sp = trace::span_with("gss.accept", &format!("from={from}"));
        let (op, token) = match parse_request(payload) {
            Ok(x) => x,
            Err(_) => return reply_err("malformed request"),
        };
        trace::event("gss.accept.op", &format!("op={op} from={from}"));
        match op.as_str() {
            OP_TOKEN1 => {
                let mut acceptor = AcceptorContext::new(self.config.clone());
                match acceptor.step(&mut self.rng, &token) {
                    Ok(StepResult::ContinueWith(token2)) => {
                        self.pending.insert(from.to_string(), acceptor);
                        reply_ok(&token2)
                    }
                    Ok(StepResult::Established { .. }) => reply_err("acceptor finished too early"),
                    Err(e) => reply_err(&e.to_string()),
                }
            }
            OP_TOKEN3 => {
                let Some(mut acceptor) = self.pending.remove(from) else {
                    return reply_err("no handshake in progress");
                };
                match acceptor.step(&mut self.rng, &token) {
                    Ok(StepResult::Established { context, .. }) => {
                        self.sessions.store(context.channel());
                        self.established.insert(from.to_string(), *context);
                        reply_ok(b"")
                    }
                    Ok(StepResult::ContinueWith(_)) => reply_err("acceptor did not finish"),
                    Err(e) => reply_err(&e.to_string()),
                }
            }
            OP_RESUME1 => match self.sessions.accept(&token, self.config.now, &mut self.rng) {
                Ok((token2, await_finished)) => {
                    self.pending_resume.insert(from.to_string(), await_finished);
                    reply_ok(&token2)
                }
                Err(e) => reply_err(&e.to_string()),
            },
            OP_RESUME3 => {
                let Some(await_finished) = self.pending_resume.remove(from) else {
                    return reply_err("no resumption in progress");
                };
                match await_finished.step(&token) {
                    Ok(channel) => {
                        // Rotate: the resumed context mints a fresh ticket.
                        self.sessions.store(&channel);
                        trace::add("gss.accept.resumed", 1);
                        self.established
                            .insert(from.to_string(), EstablishedContext::from_channel(channel));
                        reply_ok(b"")
                    }
                    Err(e) => reply_err(&e.to_string()),
                }
            }
            _ => reply_err("unknown gss op"),
        }
    }

    /// Take the established context for caller `from`, if the token
    /// loop completed.
    pub fn take_established(&mut self, from: &str) -> Option<EstablishedContext> {
        self.established.remove(from)
    }
}

/// An [`AcceptorService`] as a crash-recoverable application for
/// [`CrashableServer`][gridsec_testbed::faults::CrashableServer].
///
/// Security contexts are deliberately *not* journaled: they are
/// ephemeral by design (paper §4 — contexts can always be
/// re-established from credentials), and replaying half a handshake
/// would be both pointless and unsound. A crash loses every pending and
/// established context *and the session cache* — a reborn acceptor
/// refuses resumption tickets, which is exactly the signal
/// [`establish_initiator_cached`] turns into a full-handshake
/// fallback. Initiators recover via
/// [`establish_initiator_resilient`]. Serve it with
/// `persist_replies = false` so a reborn acceptor re-executes token
/// exchanges instead of replaying token frames whose session died.
///
/// Kill point: `gss.accept.exec` — before a token exchange executes.
pub struct CrashableAcceptor {
    config: TlsConfig,
    seed: Vec<u8>,
    generation: u64,
    plan: gridsec_testbed::faults::CrashPlan,
    service: AcceptorService<gridsec_crypto::rng::ChaChaRng>,
}

impl CrashableAcceptor {
    /// Accept under `config`; `seed` (mixed with a per-incarnation
    /// generation counter) seeds handshake entropy deterministically.
    pub fn new(config: TlsConfig, seed: &[u8], plan: gridsec_testbed::faults::CrashPlan) -> Self {
        let service = AcceptorService::new(
            config.clone(),
            gridsec_crypto::rng::ChaChaRng::from_seed_bytes(seed),
        );
        CrashableAcceptor {
            config,
            seed: seed.to_vec(),
            generation: 0,
            plan,
            service,
        }
    }

    /// The live acceptor service (for `take_established`).
    pub fn service(&mut self) -> &mut AcceptorService<gridsec_crypto::rng::ChaChaRng> {
        &mut self.service
    }
}

impl gridsec_testbed::faults::CrashRecover for CrashableAcceptor {
    fn handle(&mut self, from: &str, _id: u64, body: &[u8]) -> Vec<u8> {
        // A dedicated injection point for the abbreviated handshake, so
        // chaos harnesses can arm a kill *mid-resume* specifically: the
        // reborn acceptor has lost its session cache, which forces the
        // initiator down the full-handshake fallback path.
        let resume_op = matches!(
            parse_request(body),
            Ok((op, _)) if op == OP_RESUME1 || op == OP_RESUME3
        );
        if resume_op && self.plan.fires("gss.accept.resume") {
            return Vec::new();
        }
        if self.plan.fires("gss.accept.exec") {
            return Vec::new();
        }
        self.service.handle(from, body)
    }

    fn crash(&mut self) {
        self.generation += 1;
        let mut seed = self.seed.clone();
        seed.extend_from_slice(&self.generation.to_be_bytes());
        self.service = AcceptorService::new(
            self.config.clone(),
            gridsec_crypto::rng::ChaChaRng::from_seed_bytes(&seed),
        );
    }

    fn recover(&mut self) {
        // Nothing durable to replay: contexts are re-established, not
        // recovered.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::clock::SimClock;
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::rpc::{RpcClient, RpcServer};
    use gridsec_util::retry::RetryPolicy;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        alice: Credential,
        service: Credential,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gss net tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let service = ca.issue_identity(&mut rng, dn("/O=G/CN=MJS"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            alice,
            service,
        }
    }

    fn establish_over(net: &Network) -> (EstablishedContext, EstablishedContext) {
        let mut w = world();
        let service = Rc::new(RefCell::new(AcceptorService::new(
            TlsConfig::new(w.service.clone(), w.trust.clone(), 100),
            ChaChaRng::from_seed_bytes(b"acceptor"),
        )));
        let rpc_server = Rc::new(RefCell::new(RpcServer::new(net.register("mjs"))));
        let mut rpc = RpcClient::new(
            net.register("alice"),
            "mjs",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = rpc_server.clone();
        let hook_service = service.clone();
        rpc.set_pump(move || {
            hook_server
                .borrow_mut()
                .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
        });
        let init_ctx = establish_initiator(
            &mut rpc,
            TlsConfig::new(w.alice.clone(), w.trust.clone(), 100),
            &mut w.rng,
        )
        .unwrap();
        let accept_ctx = service.borrow_mut().take_established("alice").unwrap();
        (init_ctx, accept_ctx)
    }

    #[test]
    fn establishes_over_perfect_network() {
        let net = Network::new();
        let (mut ic, mut ac) = establish_over(&net);
        assert_eq!(ic.peer().base_identity, dn("/O=G/CN=MJS"));
        assert_eq!(ac.peer().base_identity, dn("/O=G/CN=Alice"));
        let t = ic.wrap(b"over the wire");
        assert_eq!(ac.unwrap(&t).unwrap(), b"over the wire");
    }

    #[test]
    fn establishes_under_lossy_wan() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock, 0xA11CE, FaultProfile::lossy_wan());
        let (mut ic, mut ac) = establish_over(&net);
        let mic = ic.get_mic(b"job description");
        assert!(ac.verify_mic(b"job description", &mic).is_ok());
        let stats = net.fault_stats().unwrap();
        assert!(stats.sent >= 4, "at least two RPC round trips");
    }

    #[test]
    fn partition_exhausts_retries_with_transport_error() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock, 1, FaultProfile::default());
        let mut w = world();
        let _server_ep = net.register("mjs");
        let mut rpc = RpcClient::new(net.register("alice"), "mjs", RetryPolicy::default());
        rpc.set_pump(|| 0);
        net.partition("alice", "mjs");
        let result = establish_initiator(
            &mut rpc,
            TlsConfig::new(w.alice.clone(), w.trust.clone(), 100),
            &mut w.rng,
        );
        match result {
            Err(e) => assert!(matches!(e, GssError::Transport(_)), "{e}"),
            Ok(_) => panic!("establishment should not survive a partition"),
        }
    }

    #[test]
    fn acceptor_crash_mid_handshake_reestablishes() {
        use gridsec_testbed::faults::{CrashPlan, CrashableServer, Journal};
        use gridsec_testbed::os::{SimOs, ROOT_UID};

        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock, 0x6551, FaultProfile::default());
        let mut w = world();
        // Kill the acceptor on its second exchange: token 1 succeeds,
        // the process dies before token 3 executes.
        let plan = CrashPlan::manual(3);
        plan.arm("gss.accept.exec", 2);
        let os = SimOs::new();
        os.add_host("mjs-host");
        let journal = Journal::open(os, "mjs-host", "/var/gss/journal.wal", ROOT_UID);
        let acceptor = Rc::new(RefCell::new(CrashableAcceptor::new(
            TlsConfig::new(w.service.clone(), w.trust.clone(), 100),
            b"crashable acceptor",
            plan.clone(),
        )));
        let server = Rc::new(RefCell::new(CrashableServer::new(
            net.register("mjs"),
            "gss",
            plan.clone(),
            journal,
            false,
        )));
        let mut rpc = RpcClient::new(
            net.register("alice"),
            "mjs",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = server.clone();
        let hook_acceptor = acceptor.clone();
        rpc.set_pump(move || {
            hook_server
                .borrow_mut()
                .poll(&mut *hook_acceptor.borrow_mut())
        });
        let mut ic = establish_initiator_resilient(
            &mut rpc,
            TlsConfig::new(w.alice.clone(), w.trust.clone(), 100),
            &mut w.rng,
            8,
        )
        .unwrap();
        assert_eq!(plan.crashes(), 1, "the armed kill fired");
        assert_eq!(server.borrow().restarts(), 1, "the service was reborn");
        // The re-established context is fully functional end to end.
        let mut ac = acceptor
            .borrow_mut()
            .service()
            .take_established("alice")
            .unwrap();
        let t = ic.wrap(b"survived a crash");
        assert_eq!(ac.unwrap(&t).unwrap(), b"survived a crash");
    }

    /// Shared rig: one acceptor service behind an RPC pump, plus a
    /// client-side session cache.
    fn cached_rig(
        net: &Network,
    ) -> (
        World,
        Rc<RefCell<AcceptorService<ChaChaRng>>>,
        RpcClient,
        ClientSessionCache,
    ) {
        let w = world();
        let service = Rc::new(RefCell::new(AcceptorService::new(
            TlsConfig::new(w.service.clone(), w.trust.clone(), 100),
            ChaChaRng::from_seed_bytes(b"acceptor"),
        )));
        let rpc_server = Rc::new(RefCell::new(RpcServer::new(net.register("mjs"))));
        let mut rpc = RpcClient::new(
            net.register("alice"),
            "mjs",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = rpc_server.clone();
        let hook_service = service.clone();
        rpc.set_pump(move || {
            hook_server
                .borrow_mut()
                .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
        });
        (w, service, rpc, ClientSessionCache::new(4))
    }

    #[test]
    fn second_establishment_resumes_via_session_cache() {
        let net = Network::new();
        let (mut w, service, mut rpc, mut cache) = cached_rig(&net);
        let cfg = TlsConfig::new(w.alice.clone(), w.trust.clone(), 100);

        // First establishment: full handshake, session stored both sides.
        let _ctx1 =
            establish_initiator_cached(&mut rpc, cfg.clone(), &mut w.rng, &mut cache, 4).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(service.borrow().sessions().hits(), 0);

        // Second establishment: abbreviated handshake.
        let mut ctx2 =
            establish_initiator_cached(&mut rpc, cfg, &mut w.rng, &mut cache, 4).unwrap();
        assert_eq!(service.borrow().sessions().hits(), 1);
        assert_eq!(ctx2.peer().base_identity, dn("/O=G/CN=MJS"));

        // The resumed context protects traffic end to end.
        let mut ac = service.borrow_mut().take_established("alice").unwrap();
        assert_eq!(ac.peer().base_identity, dn("/O=G/CN=Alice"));
        let t = ctx2.wrap(b"resumed traffic");
        assert_eq!(ac.unwrap(&t).unwrap(), b"resumed traffic");
    }

    #[test]
    fn unknown_ticket_falls_back_to_full_handshake() {
        let net = Network::new();
        let (mut w, service, mut rpc, mut cache) = cached_rig(&net);
        let cfg = TlsConfig::new(w.alice.clone(), w.trust.clone(), 100);
        let _ctx1 =
            establish_initiator_cached(&mut rpc, cfg.clone(), &mut w.rng, &mut cache, 4).unwrap();

        // Wipe the server-side cache, simulating a reborn acceptor.
        *service.borrow_mut() = AcceptorService::new(
            TlsConfig::new(w.service.clone(), w.trust.clone(), 100),
            ChaChaRng::from_seed_bytes(b"acceptor gen2"),
        );

        // The stale ticket is refused; the fallback full handshake wins.
        let mut ctx2 =
            establish_initiator_cached(&mut rpc, cfg, &mut w.rng, &mut cache, 4).unwrap();
        assert_eq!(service.borrow().sessions().misses(), 1);
        assert_eq!(service.borrow().sessions().hits(), 0);
        let mut ac = service.borrow_mut().take_established("alice").unwrap();
        let t = ctx2.wrap(b"after fallback");
        assert_eq!(ac.unwrap(&t).unwrap(), b"after fallback");
        // The fallback re-stored a fresh session for next time.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn resumption_survives_lossy_wan() {
        let net = Network::new();
        let clock = SimClock::new();
        net.enable_faults(clock, 0x5E55, FaultProfile::lossy_wan());
        let (mut w, service, mut rpc, mut cache) = cached_rig(&net);
        let cfg = TlsConfig::new(w.alice.clone(), w.trust.clone(), 100);
        let _ctx1 =
            establish_initiator_cached(&mut rpc, cfg.clone(), &mut w.rng, &mut cache, 4).unwrap();
        let mut ctx2 =
            establish_initiator_cached(&mut rpc, cfg, &mut w.rng, &mut cache, 4).unwrap();
        let mut ac = service.borrow_mut().take_established("alice").unwrap();
        let mic = ctx2.get_mic(b"over a lossy link");
        assert!(ac.verify_mic(b"over a lossy link", &mic).is_ok());
    }

    #[test]
    fn malformed_frames_get_err_replies_not_panics() {
        let w = world();
        let mut svc = AcceptorService::new(
            TlsConfig::new(w.service.clone(), w.trust.clone(), 100),
            ChaChaRng::from_seed_bytes(b"acceptor"),
        );
        // Garbage, unknown op, and token3-without-token1 all answer err.
        for payload in [
            b"garbage".to_vec(),
            request("gss-unknown", b"x"),
            request(OP_TOKEN3, b"x"),
        ] {
            let reply = svc.handle("mallory", &payload);
            assert!(parse_reply(&reply).is_err());
        }
    }
}
