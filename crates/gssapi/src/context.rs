//! The GSS init/accept token loop and established-context operations.

use gridsec_bignum::prime::EntropySource;
use gridsec_pki::validate::ValidatedIdentity;
use gridsec_tls::channel::SecureChannel;
use gridsec_tls::handshake::{ClientHandshake, ServerAwaitFinished, ServerHandshake, TlsConfig};

use crate::GssError;

/// Result of feeding one token into a context under establishment.
pub enum StepResult {
    /// Send this token to the peer and keep stepping.
    ContinueWith(Vec<u8>),
    /// Context established; `token` (if any) must still be sent to the
    /// peer (the final handshake token), then use the context.
    Established {
        /// Final token to deliver to the peer (initiator side), if any.
        token: Option<Vec<u8>>,
        /// The established security context.
        context: Box<EstablishedContext>,
    },
}

/// A mutually-authenticated context: wrap/unwrap + MIC operations.
pub struct EstablishedContext {
    channel: SecureChannel,
}

impl EstablishedContext {
    /// Wrap a completed TLS channel (e.g. one produced by the
    /// abbreviated resumption handshake in [`gridsec_tls::session`]).
    pub fn from_channel(channel: SecureChannel) -> Self {
        EstablishedContext { channel }
    }

    /// The underlying channel — read-only, for harvesting resumption
    /// state into a session cache.
    pub fn channel(&self) -> &SecureChannel {
        &self.channel
    }

    /// The authenticated peer.
    pub fn peer(&self) -> &ValidatedIdentity {
        &self.channel.peer
    }

    /// Seal a message for the peer (GSS `Wrap` with confidentiality).
    pub fn wrap(&mut self, msg: &[u8]) -> Vec<u8> {
        self.channel.seal(msg)
    }

    /// Open a sealed message (GSS `Unwrap`).
    pub fn unwrap(&mut self, token: &[u8]) -> Result<Vec<u8>, GssError> {
        Ok(self.channel.open(token)?)
    }

    /// Detached integrity token (GSS `GetMIC`).
    pub fn get_mic(&mut self, msg: &[u8]) -> Vec<u8> {
        self.channel.get_mic(msg)
    }

    /// Verify a detached integrity token (GSS `VerifyMIC`).
    pub fn verify_mic(&mut self, msg: &[u8], mic: &[u8]) -> Result<(), GssError> {
        Ok(self.channel.verify_mic(msg, mic)?)
    }
}

enum InitState {
    AwaitServerHello(Box<ClientHandshake>),
    Done,
}

/// The initiating (client) side of context establishment.
pub struct InitiatorContext {
    state: InitState,
}

impl InitiatorContext {
    /// Begin establishment; returns the context and the first token
    /// (GSS `init_sec_context` with no input token).
    pub fn new<E: EntropySource>(config: TlsConfig, rng: &mut E) -> (Self, Vec<u8>) {
        let (hs, token) = ClientHandshake::new(config, rng);
        (
            InitiatorContext {
                state: InitState::AwaitServerHello(Box::new(hs)),
            },
            token,
        )
    }

    /// Feed the next token from the acceptor.
    pub fn step(&mut self, token_in: &[u8]) -> Result<StepResult, GssError> {
        match std::mem::replace(&mut self.state, InitState::Done) {
            InitState::AwaitServerHello(hs) => {
                let (finished, channel) = hs.step(token_in)?;
                Ok(StepResult::Established {
                    token: Some(finished),
                    context: Box::new(EstablishedContext { channel }),
                })
            }
            InitState::Done => Err(GssError::BadState("initiator already established")),
        }
    }
}

enum AcceptState {
    AwaitClientHello(Box<ServerHandshake>),
    AwaitFinished(Box<ServerAwaitFinished>),
    Done,
}

/// The accepting (server) side of context establishment.
pub struct AcceptorContext {
    state: AcceptState,
}

impl AcceptorContext {
    /// Create the acceptor (GSS `accept_sec_context` loop).
    pub fn new(config: TlsConfig) -> Self {
        AcceptorContext {
            state: AcceptState::AwaitClientHello(Box::new(ServerHandshake::new(config))),
        }
    }

    /// Acceptor that has already consumed a ClientHello (through a
    /// batch driver such as [`crate::mill::HandshakeMill`]) and awaits
    /// the ClientFinished token.
    pub fn from_await_finished(await_finished: ServerAwaitFinished) -> Self {
        AcceptorContext {
            state: AcceptState::AwaitFinished(Box::new(await_finished)),
        }
    }

    /// Feed the next token from the initiator.
    pub fn step<E: EntropySource>(
        &mut self,
        rng: &mut E,
        token_in: &[u8],
    ) -> Result<StepResult, GssError> {
        match std::mem::replace(&mut self.state, AcceptState::Done) {
            AcceptState::AwaitClientHello(hs) => {
                let (server_hello, await_finished) = hs.step(rng, token_in)?;
                self.state = AcceptState::AwaitFinished(Box::new(await_finished));
                Ok(StepResult::ContinueWith(server_hello))
            }
            AcceptState::AwaitFinished(wait) => {
                let channel = wait.step(token_in)?;
                Ok(StepResult::Established {
                    token: None,
                    context: Box::new(EstablishedContext { channel }),
                })
            }
            AcceptState::Done => Err(GssError::BadState("acceptor already established")),
        }
    }
}

/// Drive the full token loop in memory (both sides in one process);
/// returns `(initiator_context, acceptor_context)`.
pub fn establish_in_memory<E: EntropySource>(
    init_config: TlsConfig,
    accept_config: TlsConfig,
    rng: &mut E,
) -> Result<(EstablishedContext, EstablishedContext), GssError> {
    let (mut init, token1) = InitiatorContext::new(init_config, rng);
    let mut acceptor = AcceptorContext::new(accept_config);

    let token2 = match acceptor.step(rng, &token1)? {
        StepResult::ContinueWith(t) => t,
        StepResult::Established { .. } => {
            return Err(GssError::BadState("acceptor finished too early"))
        }
    };
    let (token3, init_ctx) = match init.step(&token2)? {
        StepResult::Established { token, context } => (token, context),
        StepResult::ContinueWith(_) => {
            return Err(GssError::BadState("initiator should finish on token 2"))
        }
    };
    let token3 = token3.ok_or(GssError::BadState("missing finished token"))?;
    let accept_ctx = match acceptor.step(rng, &token3)? {
        StepResult::Established { context, .. } => context,
        StepResult::ContinueWith(_) => {
            return Err(GssError::BadState("acceptor should finish on token 3"))
        }
    };
    Ok((*init_ctx, *accept_ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    pub(crate) struct World {
        pub rng: ChaChaRng,
        pub trust: TrustStore,
        pub alice: Credential,
        pub service: Credential,
    }

    pub(crate) fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gss tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 100_000);
        let service = ca.issue_identity(&mut rng, dn("/O=G/CN=MJS"), 512, 0, 100_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            rng,
            trust,
            alice,
            service,
        }
    }

    fn cfg(w: &World, cred: &Credential) -> TlsConfig {
        TlsConfig::new(cred.clone(), w.trust.clone(), 100)
    }

    #[test]
    fn token_loop_establishes_mutual_context() {
        let mut w = world();
        let (mut ic, mut ac) =
            establish_in_memory(cfg(&w, &w.alice), cfg(&w, &w.service), &mut w.rng).unwrap();
        assert_eq!(ic.peer().base_identity, dn("/O=G/CN=MJS"));
        assert_eq!(ac.peer().base_identity, dn("/O=G/CN=Alice"));

        let t = ic.wrap(b"secured request");
        assert_eq!(ac.unwrap(&t).unwrap(), b"secured request");
        let r = ac.wrap(b"secured reply");
        assert_eq!(ic.unwrap(&r).unwrap(), b"secured reply");
    }

    #[test]
    fn mic_operations() {
        let mut w = world();
        let (mut ic, mut ac) =
            establish_in_memory(cfg(&w, &w.alice), cfg(&w, &w.service), &mut w.rng).unwrap();
        let msg = b"signed but visible job description";
        let mic = ic.get_mic(msg);
        assert!(ac.verify_mic(msg, &mic).is_ok());
        assert!(ac.verify_mic(b"altered", &mic).is_err());
    }

    #[test]
    fn stepping_finished_context_errors() {
        let mut w = world();
        let (mut init, _t1) = InitiatorContext::new(cfg(&w, &w.alice), &mut w.rng);
        let mut acceptor = AcceptorContext::new(cfg(&w, &w.service));
        // Feed garbage to move initiator to Done state via error path.
        assert!(init.step(b"junk").is_err());
        assert!(matches!(init.step(b"junk"), Err(GssError::BadState(_))));
        // Acceptor consumed by garbage as well.
        assert!(acceptor.step(&mut w.rng, b"junk").is_err());
        assert!(matches!(
            acceptor.step(&mut w.rng, b"junk"),
            Err(GssError::BadState(_))
        ));
    }

    #[test]
    fn contexts_are_independent_sessions() {
        let mut w = world();
        let (mut ic1, mut ac1) =
            establish_in_memory(cfg(&w, &w.alice), cfg(&w, &w.service), &mut w.rng).unwrap();
        let (mut ic2, mut ac2) =
            establish_in_memory(cfg(&w, &w.alice), cfg(&w, &w.service), &mut w.rng).unwrap();
        let t1 = ic1.wrap(b"session 1");
        // Cross-session tokens do not decrypt.
        assert!(ac2.unwrap(&t1).is_err());
        assert!(ac1.unwrap(&t1).is_ok());
        let t2 = ic2.wrap(b"session 2");
        assert!(ac2.unwrap(&t2).is_ok());
    }
}
